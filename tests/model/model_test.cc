// Tests of the Section 3 analytical model and the Section 3.2 tuner.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"
#include "model/tuner.h"

namespace ltree {
namespace model {
namespace {

TEST(CostModelTest, HeightMatchesLog) {
  // d = f/s = 4, n = 4^10.
  EXPECT_NEAR(CostModel::Height(8, 2, std::pow(4.0, 10)), 10.0, 1e-9);
  EXPECT_NEAR(CostModel::Height(4, 2, 1024), 10.0, 1e-9);
}

TEST(CostModelTest, CostFormulaComponents) {
  // f=4, s=2, n=2^10: h=10; cost = (1 + 2*4/1)*10 + 4 = 94.
  EXPECT_NEAR(CostModel::AmortizedInsertCost(4, 2, 1024), 94.0, 1e-9);
}

TEST(CostModelTest, BitsFormula) {
  // f=4, s=2, n=2^10: bits = log2(5) * 10.
  EXPECT_NEAR(CostModel::LabelBits(4, 2, 1024), std::log2(5.0) * 10.0, 1e-9);
}

TEST(CostModelTest, CostIsLogarithmicInN) {
  const double c1 = CostModel::AmortizedInsertCost(16, 4, 1e4);
  const double c2 = CostModel::AmortizedInsertCost(16, 4, 1e8);
  // Doubling the exponent doubles the log-term; ratio < 2.1 given +f term.
  EXPECT_GT(c2, c1);
  EXPECT_LT(c2, 2.1 * c1);
}

TEST(CostModelTest, BatchCostDecreasesWithK) {
  const double n = 1e6;
  double prev = CostModel::BatchAmortizedCost(16, 4, n, 1);
  for (double k : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    const double cur = CostModel::BatchAmortizedCost(16, 4, n, k);
    EXPECT_LT(cur, prev) << "k=" << k;
    prev = cur;
  }
}

TEST(CostModelTest, BatchOfOneMatchesSingleShape) {
  // k=1 reduces to the single-insert cost (same leading terms).
  const double n = 1e6;
  const double single = CostModel::AmortizedInsertCost(16, 4, n);
  const double batch1 = CostModel::BatchAmortizedCost(16, 4, n, 1);
  EXPECT_NEAR(single, batch1, single * 0.25);
}

TEST(CostModelTest, QueryCompareCost) {
  EXPECT_EQ(CostModel::QueryCompareCost(10), 1.0);
  EXPECT_EQ(CostModel::QueryCompareCost(64), 1.0);
  EXPECT_NEAR(CostModel::QueryCompareCost(128), 2.0, 1e-9);
  EXPECT_NEAR(CostModel::QueryCompareCost(96), 1.5, 1e-9);
}

TEST(CostModelTest, OverallCostBlends) {
  const double n = 1e6;
  const double pure_update = CostModel::OverallCost(16, 4, n, 0.0);
  const double pure_query = CostModel::OverallCost(16, 4, n, 1.0);
  EXPECT_NEAR(pure_update, CostModel::AmortizedInsertCost(16, 4, n), 1e-9);
  EXPECT_NEAR(pure_query,
              CostModel::QueryCompareCost(CostModel::LabelBits(16, 4, n)),
              1e-9);
}

TEST(TunerTest, MinimizeCostBeatsNeighbours) {
  const double n = 1e6;
  TuningResult best = Tuner::MinimizeCost(n);
  const double best_cost = best.predicted_cost;
  // Probe the lattice: nothing in range does better.
  for (uint32_t s = 2; s <= 16; ++s) {
    for (uint32_t d = 2; d <= 64; ++d) {
      EXPECT_GE(CostModel::AmortizedInsertCost(s * d, s, n) + 1e-9, best_cost)
          << "s=" << s << " d=" << d;
    }
  }
  EXPECT_TRUE(Params{best.params}.Validate().ok());
}

TEST(TunerTest, ContinuousOptimumNearLatticeOptimum) {
  const double n = 1e6;
  auto [fc, sc] = Tuner::ContinuousMinimizeCost(n);
  TuningResult lattice = Tuner::MinimizeCost(n);
  const double cont_cost = CostModel::AmortizedInsertCost(fc, sc, n);
  // The lattice optimum is within a modest factor of the continuous one.
  EXPECT_LE(lattice.predicted_cost, 1.25 * cont_cost);
  EXPECT_GE(lattice.predicted_cost + 1e-9, cont_cost)
      << "continuous relaxation can only be better";
}

TEST(TunerTest, BitsBudgetRespected) {
  const double n = 1e6;
  const double budget = 40.0;
  auto constrained = Tuner::MinimizeCostWithBitsBudget(n, budget);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->predicted_bits, budget + 1e-9);
  // Constrained cost >= unconstrained cost.
  TuningResult free = Tuner::MinimizeCost(n);
  EXPECT_GE(constrained->predicted_cost + 1e-9, free.predicted_cost);
}

TEST(TunerTest, TightBudgetChangesChoice) {
  const double n = 1e6;
  TuningResult free = Tuner::MinimizeCost(n);
  if (free.predicted_bits > 30.0) {
    auto tight = Tuner::MinimizeCostWithBitsBudget(n, 30.0);
    ASSERT_TRUE(tight.ok());
    EXPECT_GT(tight->predicted_cost, free.predicted_cost)
        << "the budget binds, so cost must rise";
  }
}

TEST(TunerTest, ImpossibleBudgetFails) {
  EXPECT_FALSE(Tuner::MinimizeCostWithBitsBudget(1e6, 5.0).ok());
}

TEST(TunerTest, QueryHeavyWorkloadPrefersFewerBits) {
  const double n = 1e9;
  TuningResult update_heavy = Tuner::MinimizeOverallCost(n, 0.01, 16);
  TuningResult query_heavy = Tuner::MinimizeOverallCost(n, 0.999, 16);
  const double bits_update = CostModel::LabelBits(
      update_heavy.params.f, update_heavy.params.s, n);
  const double bits_query =
      CostModel::LabelBits(query_heavy.params.f, query_heavy.params.s, n);
  // With a tiny 16-bit word, the query-heavy optimum compresses labels.
  EXPECT_LE(bits_query, bits_update);
}

}  // namespace
}  // namespace model
}  // namespace ltree
