#include "query/node_table.h"

#include <gtest/gtest.h>

namespace ltree {
namespace query {
namespace {

NodeRow Row(xml::NodeId id, const char* tag, Label start, Label end,
            int32_t level = 0, xml::NodeId parent = 0) {
  NodeRow r;
  r.id = id;
  r.tag = tag;
  r.region = {start, end};
  r.level = level;
  r.parent_id = parent;
  return r;
}

TEST(NodeTableTest, AddFinalizeQuery) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 9));
  t.Add(Row(2, "b", 1, 4, 1, 1));
  t.Add(Row(3, "b", 5, 8, 1, 1));
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_EQ(t.size(), 3u);
  auto bs = t.ByTag("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->id, 2u);
  EXPECT_EQ(bs[1]->id, 3u);
  EXPECT_TRUE(t.ByTag("zzz").empty());
  EXPECT_EQ(t.AllElements().size(), 3u);
  EXPECT_EQ(t.ChildrenOf(1).size(), 2u);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(NodeTableTest, FinalizeRejectsBadRegions) {
  NodeTable t;
  t.Add(Row(1, "a", 5, 5));
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(NodeTableTest, FinalizeRejectsDuplicateIds) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 9));
  t.Add(Row(1, "b", 1, 2));
  EXPECT_TRUE(t.Finalize().IsAlreadyExists());
}

TEST(NodeTableTest, DoubleFinalizeRejected) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 9));
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_TRUE(t.Finalize().IsFailedPrecondition());
}

TEST(NodeTableTest, UpdateLabelsInPlace) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 9));
  t.Add(Row(2, "a", 2, 3, 1, 1));
  ASSERT_TRUE(t.Finalize().ok());
  ASSERT_TRUE(t.UpdateStart(2, 4).ok());
  ASSERT_TRUE(t.UpdateEnd(2, 6).ok());
  EXPECT_EQ((*t.Find(2))->region, (Region{4, 6}));
  // Order-preserving update keeps the index sorted.
  EXPECT_TRUE(t.CheckInvariants().ok());
  EXPECT_TRUE(t.UpdateStart(99, 1).IsNotFound());
}

TEST(NodeTableTest, InsertAfterFinalizeKeepsOrder) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 99));
  t.Add(Row(2, "b", 10, 19, 1, 1));
  t.Add(Row(3, "b", 30, 39, 1, 1));
  ASSERT_TRUE(t.Finalize().ok());
  ASSERT_TRUE(t.Insert(Row(4, "b", 20, 29, 1, 1)).ok());
  auto bs = t.ByTag("b");
  ASSERT_EQ(bs.size(), 3u);
  EXPECT_EQ(bs[0]->id, 2u);
  EXPECT_EQ(bs[1]->id, 4u);
  EXPECT_EQ(bs[2]->id, 3u);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(NodeTableTest, EraseRemovesFromAllIndexes) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 99));
  t.Add(Row(2, "b", 10, 19, 1, 1));
  ASSERT_TRUE(t.Finalize().ok());
  ASSERT_TRUE(t.Erase(2).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.ByTag("b").empty());
  EXPECT_TRUE(t.ChildrenOf(1).empty());
  EXPECT_TRUE(t.Find(2).status().IsNotFound());
  EXPECT_TRUE(t.Erase(2).IsNotFound());
}

TEST(NodeTableTest, TextRowsExcludedFromElementViews) {
  NodeTable t;
  t.Add(Row(1, "a", 0, 9));
  NodeRow text = Row(2, "", 1, 2, 1, 1);
  text.is_text = true;
  t.Add(text);
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_EQ(t.AllElements().size(), 1u);
}

}  // namespace
}  // namespace query
}  // namespace ltree
