// Path parsing plus the three-evaluator agreement property: the label plan
// and the edge plan must both match the naive DOM ground truth on random
// documents.

#include "query/path_query.h"

#include <gtest/gtest.h>

#include "docstore/labeled_document.h"
#include "workload/xml_generator.h"

namespace ltree {
namespace query {
namespace {

TEST(PathParseTest, Basic) {
  auto q = PathQuery::Parse("/site/books//title");
  ASSERT_TRUE(q.ok());
  const auto& steps = q->steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].axis, PathStep::Axis::kChild);
  EXPECT_EQ(steps[0].tag, "site");
  EXPECT_EQ(steps[1].axis, PathStep::Axis::kChild);
  EXPECT_EQ(steps[1].tag, "books");
  EXPECT_EQ(steps[2].axis, PathStep::Axis::kDescendant);
  EXPECT_EQ(steps[2].tag, "title");
}

TEST(PathParseTest, LeadingDoubleSlash) {
  auto q = PathQuery::Parse("//title");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps()[0].axis, PathStep::Axis::kDescendant);
}

TEST(PathParseTest, NoLeadingSlashIsDescendant) {
  auto q = PathQuery::Parse("book//title");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps().size(), 2u);
  EXPECT_EQ(q->steps()[0].axis, PathStep::Axis::kDescendant);
}

TEST(PathParseTest, Wildcard) {
  auto q = PathQuery::Parse("/site/*//para");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps()[1].tag, "*");
}

TEST(PathParseTest, Errors) {
  EXPECT_FALSE(PathQuery::Parse("").ok());
  EXPECT_FALSE(PathQuery::Parse("/").ok());
  EXPECT_FALSE(PathQuery::Parse("a/").ok());
  EXPECT_FALSE(PathQuery::Parse("a//").ok());
  EXPECT_FALSE(PathQuery::Parse("a|b").ok());
}

class EvaluatorFixture : public ::testing::Test {
 protected:
  void Load(const std::string& xml_text) {
    store_ = docstore::LabeledDocument::FromXml(xml_text, "ltree:8:2")
                 .MoveValueUnsafe();
  }

  std::vector<xml::NodeId> LabelIds(const std::string& path) {
    auto q = PathQuery::Parse(path).ValueOrDie();
    std::vector<xml::NodeId> ids;
    for (const NodeRow* row : EvaluateWithLabels(q, store_->table())) {
      ids.push_back(row->id);
    }
    return ids;
  }

  std::vector<xml::NodeId> EdgeIds(const std::string& path,
                                   uint64_t* joins = nullptr) {
    auto q = PathQuery::Parse(path).ValueOrDie();
    std::vector<xml::NodeId> ids;
    for (const NodeRow* row :
         EvaluateWithEdges(q, store_->table(), joins)) {
      ids.push_back(row->id);
    }
    return ids;
  }

  std::vector<xml::NodeId> DomIds(const std::string& path) {
    auto q = PathQuery::Parse(path).ValueOrDie();
    return EvaluateOnDocument(q, store_->document());
  }

  std::unique_ptr<docstore::LabeledDocument> store_;
};

TEST_F(EvaluatorFixture, PaperIntroQuery) {
  // Section 1: "book//title" over the Figure 1 document.
  Load("<book><chapter><title/></chapter><title/></book>");
  auto ids = LabelIds("book//title");
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids, DomIds("book//title"));
  EXPECT_EQ(ids, EdgeIds("book//title"));
  // Child axis: only the direct title.
  EXPECT_EQ(LabelIds("/book/title").size(), 1u);
  EXPECT_EQ(LabelIds("/book/title"), DomIds("/book/title"));
}

TEST_F(EvaluatorFixture, WildcardSteps) {
  Load("<a><b><c/></b><d><c/></d><c/></a>");
  EXPECT_EQ(LabelIds("/a/*/c").size(), 2u);
  EXPECT_EQ(LabelIds("/a/*/c"), DomIds("/a/*/c"));
  EXPECT_EQ(LabelIds("//c").size(), 3u);
  EXPECT_EQ(LabelIds("//*").size(), 6u);
  EXPECT_EQ(LabelIds("//*"), DomIds("//*"));
}

TEST_F(EvaluatorFixture, AnchoredRootMismatch) {
  Load("<a><b/></a>");
  EXPECT_TRUE(LabelIds("/b").empty());
  EXPECT_TRUE(DomIds("/b").empty());
  EXPECT_EQ(LabelIds("/a").size(), 1u);
}

TEST_F(EvaluatorFixture, SelfNestedTags) {
  // Same tag nested: //a//a must not report the outer node.
  Load("<a><a><a/></a></a>");
  EXPECT_EQ(LabelIds("//a").size(), 3u);
  EXPECT_EQ(LabelIds("a//a").size(), 2u);
  EXPECT_EQ(LabelIds("a//a"), DomIds("a//a"));
  EXPECT_EQ(LabelIds("a//a"), EdgeIds("a//a"));
}

TEST_F(EvaluatorFixture, ResultsSortedByDocumentOrder) {
  Load(workload::GenerateCatalogXml(20, 3, 11));
  auto rows = [&](const std::string& path) {
    auto q = PathQuery::Parse(path).ValueOrDie();
    return EvaluateWithLabels(q, store_->table());
  };
  auto titles = rows("//title");
  for (size_t i = 1; i < titles.size(); ++i) {
    EXPECT_LT(titles[i - 1]->region.start, titles[i]->region.start);
  }
}

TEST_F(EvaluatorFixture, EdgePlanCountsJoins) {
  Load(workload::GenerateCatalogXml(10, 3, 5));
  uint64_t joins = 0;
  EdgeIds("/site/books//title", &joins);
  // The descendant step must iterate multiple levels; the label plan always
  // needs one structural join per step.
  EXPECT_GT(joins, 2u);
}

class RandomDocAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDocAgreementTest, ThreeEvaluatorsAgree) {
  workload::RandomDocOptions opts;
  opts.num_elements = 400;
  opts.tag_vocabulary = 6;
  opts.seed = GetParam();
  xml::Document doc = workload::GenerateRandomDocument(opts);
  auto store =
      docstore::LabeledDocument::FromDocument(std::move(doc), "ltree:16:4")
          .MoveValueUnsafe();
  const char* paths[] = {"//tag0",         "//tag1//tag2", "/root//tag3",
                         "/root/*",        "//tag4/tag5",  "//*//tag0",
                         "root/tag1/tag1", "//tag2//*"};
  for (const char* path : paths) {
    auto q = query::PathQuery::Parse(path).ValueOrDie();
    std::vector<xml::NodeId> label_ids;
    for (const NodeRow* row : EvaluateWithLabels(q, store->table())) {
      label_ids.push_back(row->id);
    }
    std::vector<xml::NodeId> edge_ids;
    for (const NodeRow* row : EvaluateWithEdges(q, store->table())) {
      edge_ids.push_back(row->id);
    }
    std::vector<xml::NodeId> dom_ids =
        EvaluateOnDocument(q, store->document());
    EXPECT_EQ(label_ids, dom_ids) << path << " seed " << GetParam();
    EXPECT_EQ(edge_ids, dom_ids) << path << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDocAgreementTest,
                         ::testing::Values(1, 2, 3, 7, 19));

}  // namespace
}  // namespace query
}  // namespace ltree
