#include "query/structural_join.h"

#include <gtest/gtest.h>

namespace ltree {
namespace query {
namespace {

NodeRow Row(xml::NodeId id, Label start, Label end, int32_t level,
            const char* tag = "t") {
  NodeRow r;
  r.id = id;
  r.tag = tag;
  r.region = {start, end};
  r.level = level;
  return r;
}

TEST(RegionTest, Containment) {
  Region outer{0, 100};
  Region inner{10, 20};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_FALSE(outer.Contains(outer)) << "containment is strict";
  EXPECT_FALSE(Region({0, 10}).Contains(Region({20, 30})));
}

TEST(StructuralJoinTest, PaperFigure1Example) {
  // book(0,7) -> chapter(1,4) -> title(2,3); book -> title(5,6).
  NodeRow book = Row(1, 0, 7, 0, "book");
  NodeRow chapter = Row(2, 1, 4, 1, "chapter");
  NodeRow t1 = Row(3, 2, 3, 2, "title");
  NodeRow t2 = Row(4, 5, 6, 1, "title");
  std::vector<const NodeRow*> books{&book};
  std::vector<const NodeRow*> titles{&t1, &t2};
  auto pairs = AncestorDescendantJoin(books, titles);
  ASSERT_EQ(pairs.size(), 2u) << "book//title matches both titles";
  EXPECT_EQ(pairs[0].second, &t1);
  EXPECT_EQ(pairs[1].second, &t2);

  // book/title (child axis) only matches the direct title.
  auto children = ParentChildJoin(books, titles);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].second, &t2);
}

TEST(StructuralJoinTest, NestedAncestors) {
  NodeRow a1 = Row(1, 0, 100, 0);
  NodeRow a2 = Row(2, 10, 50, 1);
  NodeRow a3 = Row(3, 20, 30, 2);
  NodeRow d = Row(4, 24, 25, 3);
  std::vector<const NodeRow*> as{&a1, &a2, &a3};
  std::vector<const NodeRow*> ds{&d};
  auto pairs = AncestorDescendantJoin(as, ds);
  EXPECT_EQ(pairs.size(), 3u) << "d is under all three nested ancestors";
}

TEST(StructuralJoinTest, DisjointRegionsNoMatch) {
  NodeRow a = Row(1, 0, 10, 0);
  NodeRow d = Row(2, 20, 30, 0);
  auto pairs = AncestorDescendantJoin({&a}, {&d});
  EXPECT_TRUE(pairs.empty());
}

TEST(StructuralJoinTest, AncestorsRetiredByPosition) {
  // a1 ends before d2 starts; only a2 matches d2.
  NodeRow a1 = Row(1, 0, 10, 0);
  NodeRow a2 = Row(2, 15, 40, 0);
  NodeRow d1 = Row(3, 5, 6, 1);
  NodeRow d2 = Row(4, 20, 21, 1);
  auto pairs = AncestorDescendantJoin({&a1, &a2}, {&d1, &d2});
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, &a1);
  EXPECT_EQ(pairs[0].second, &d1);
  EXPECT_EQ(pairs[1].first, &a2);
  EXPECT_EQ(pairs[1].second, &d2);
}

TEST(StructuralJoinTest, SemiJoinDeduplicates) {
  NodeRow a1 = Row(1, 0, 100, 0);
  NodeRow a2 = Row(2, 10, 50, 1);
  NodeRow d = Row(3, 20, 21, 2);
  auto ds = DescendantsSemiJoin({&a1, &a2}, {&d});
  EXPECT_EQ(ds.size(), 1u) << "d reported once despite two ancestors";
}

TEST(StructuralJoinTest, EmptyInputs) {
  NodeRow a = Row(1, 0, 10, 0);
  EXPECT_TRUE(AncestorDescendantJoin({}, {&a}).empty());
  EXPECT_TRUE(AncestorDescendantJoin({&a}, {}).empty());
  EXPECT_TRUE(DescendantsSemiJoin({}, {}).empty());
}

TEST(StructuralJoinTest, ChildrenSemiJoinLevelFilter) {
  NodeRow p = Row(1, 0, 100, 3);
  NodeRow c_ok = Row(2, 10, 20, 4);
  NodeRow c_deep = Row(3, 12, 13, 5);
  auto out = ChildrenSemiJoin({&p}, {&c_ok, &c_deep});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &c_ok);
}

}  // namespace
}  // namespace query
}  // namespace ltree
