#include <gtest/gtest.h>

#include "workload/update_stream.h"
#include "workload/xml_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace ltree {
namespace workload {
namespace {

TEST(RandomDocumentTest, SizeAndValidity) {
  RandomDocOptions opts;
  opts.num_elements = 500;
  opts.seed = 1;
  xml::Document doc = GenerateRandomDocument(opts);
  EXPECT_EQ(doc.num_elements(), 500u);
  EXPECT_TRUE(doc.CheckInvariants().ok());
  // Serialized output re-parses.
  auto doc2 = xml::Parse(xml::Serialize(doc));
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->num_elements(), 500u);
}

TEST(RandomDocumentTest, Deterministic) {
  RandomDocOptions opts;
  opts.num_elements = 200;
  opts.seed = 7;
  const std::string a = xml::Serialize(GenerateRandomDocument(opts));
  const std::string b = xml::Serialize(GenerateRandomDocument(opts));
  EXPECT_EQ(a, b);
  opts.seed = 8;
  EXPECT_NE(xml::Serialize(GenerateRandomDocument(opts)), a);
}

TEST(RandomDocumentTest, RespectsMaxDepth) {
  RandomDocOptions opts;
  opts.num_elements = 2000;
  opts.max_depth = 4;
  xml::Document doc = GenerateRandomDocument(opts);
  uint32_t max_depth = 0;
  doc.Visit([&](const xml::Node& n) {
    uint32_t d = 0;
    for (const xml::Node* p = n.parent; p != nullptr; p = p->parent) ++d;
    max_depth = std::max(max_depth, d);
  });
  // Elements are capped at max_depth; text children may sit one deeper.
  EXPECT_LE(max_depth, opts.max_depth + 1);
}

TEST(CatalogTest, StructureAndDeterminism) {
  xml::Document doc = GenerateCatalog(5, 3, 42);
  EXPECT_TRUE(doc.CheckInvariants().ok());
  EXPECT_EQ(doc.root()->tag, "site");
  uint64_t books = 0;
  uint64_t titles = 0;
  doc.Visit([&](const xml::Node& n) {
    if (n.tag == "book") ++books;
    if (n.tag == "title") ++titles;
  });
  EXPECT_EQ(books, 5u);
  EXPECT_EQ(titles, 5u + 5u * 3u);  // one per book + one per chapter
  EXPECT_EQ(GenerateCatalogXml(5, 3, 42), GenerateCatalogXml(5, 3, 42));
}

TEST(UpdateStreamTest, AppendAlwaysTail) {
  UpdateStream stream(StreamOptions{.kind = StreamKind::kAppend, .seed = 1});
  for (uint64_t size : {1ull, 5ull, 100ull}) {
    ListOp op = stream.Next(size);
    EXPECT_EQ(op.kind, ListOp::Kind::kInsertAfter);
    EXPECT_EQ(op.rank, size - 1);
  }
}

TEST(UpdateStreamTest, PrependAlwaysHead) {
  UpdateStream stream(StreamOptions{.kind = StreamKind::kPrepend, .seed = 1});
  ListOp op = stream.Next(50);
  EXPECT_EQ(op.kind, ListOp::Kind::kInsertBefore);
  EXPECT_EQ(op.rank, 0u);
}

TEST(UpdateStreamTest, UniformInRange) {
  UpdateStream stream(StreamOptions{.kind = StreamKind::kUniform, .seed = 2});
  for (int i = 0; i < 1000; ++i) {
    ListOp op = stream.Next(37);
    EXPECT_LT(op.rank, 37u);
    EXPECT_EQ(op.kind, ListOp::Kind::kInsertAfter);
  }
}

TEST(UpdateStreamTest, HotspotConcentratesNearCenter) {
  UpdateStream stream(StreamOptions{.kind = StreamKind::kHotspot,
                                    .zipf_theta = 1.2,
                                    .seed = 3});
  const uint64_t size = 10000;
  int near = 0;
  const int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    ListOp op = stream.Next(size);
    ASSERT_LT(op.rank, size);
    if (op.rank > size / 2 - size / 10 && op.rank < size / 2 + size / 10) {
      ++near;
    }
  }
  EXPECT_GT(near, kOps / 2) << "most inserts land near the hotspot";
}

TEST(UpdateStreamTest, MixedContainsErases) {
  UpdateStream stream(StreamOptions{.kind = StreamKind::kMixed,
                                    .erase_fraction = 0.4,
                                    .seed = 4});
  int erases = 0;
  const int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    if (stream.Next(100).kind == ListOp::Kind::kErase) ++erases;
  }
  EXPECT_NEAR(erases / static_cast<double>(kOps), 0.4, 0.05);
}

TEST(UpdateStreamTest, KindNames) {
  EXPECT_STREQ(StreamKindName(StreamKind::kUniform), "uniform");
  EXPECT_STREQ(StreamKindName(StreamKind::kHotspot), "hotspot");
}

}  // namespace
}  // namespace workload
}  // namespace ltree
