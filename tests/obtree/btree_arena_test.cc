// Conservation and recycling guarantees of the counted B+-tree's node pool
// (the obtree mirror of tests/core/node_arena_test.cc):
//
//  * conservation — every node the pool ever handed out is either reachable
//    from the root or back on the free list, i.e.
//    arena_stats().live() == NodeCount(), across randomized insert/delete
//    scripts that exercise leaf/internal splits, borrow-left/right, merges,
//    root collapse and the empty-tree edge;
//  * recycling — Clear()+BulkBuild (the virtual L-Tree's root-split path)
//    and delete-then-insert churn are served by the free list, not fresh
//    chunks.
//
// This suite carries the obtree label, so CI's ASan+UBSan job
// (ctest -L "core|obtree") runs the whole merge/underflow path sanitized.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/epoch.h"
#include "obtree/counted_btree.h"

namespace ltree {
namespace obtree {
namespace {

std::vector<Entry> MakeEntries(uint64_t n, uint64_t stride = 2) {
  std::vector<Entry> entries;
  entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) entries.push_back({i * stride, i});
  return entries;
}

TEST(BTreeArenaTest, EmptyTreeHasNoTraffic) {
  CountedBTree tree(4);
  EXPECT_EQ(tree.arena_stats().TotalAllocs(), 0u);
  EXPECT_EQ(tree.arena_stats().live(), 0u);
  EXPECT_EQ(tree.NodeCount(), 0u);
}

TEST(BTreeArenaTest, InsertDeleteRoundTripConserves) {
  CountedBTree tree(4);
  ASSERT_TRUE(tree.Insert(1, 10).ok());
  EXPECT_EQ(tree.arena_stats().live(), 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  ASSERT_TRUE(tree.Delete(1).ok());
  // Deleting the last entry releases the root leaf back to the pool.
  EXPECT_EQ(tree.arena_stats().live(), 0u);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_EQ(tree.arena_stats().releases, 1u);
  // The next root comes off the free list, not a fresh chunk slot.
  ASSERT_TRUE(tree.Insert(2, 20).ok());
  EXPECT_EQ(tree.arena_stats().reused_allocs, 1u);
  EXPECT_EQ(tree.arena_stats().fresh_allocs, 1u);
}

// The randomized mirror of ArenaConservationTest: a delete-heavy script at
// minimum order, so underflow repair (borrow left/right, merge left/right,
// root collapse) runs constantly.
TEST(BTreeArenaTest, RandomInsertDeleteScriptConservesNodes) {
  CountedBTree tree(4);
  auto check = [&](const char* where, int step) {
    ASSERT_EQ(tree.arena_stats().live(), tree.NodeCount())
        << where << " at step " << step;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << where << " at step " << step;
  };

  Rng rng(20260727);
  std::vector<Label> present;
  uint64_t next_key = 0;
  for (int step = 0; step < 4000; ++step) {
    // Delete-biased so the population keeps shrinking back through merges.
    if (!present.empty() && rng.Bernoulli(0.45)) {
      const size_t r = static_cast<size_t>(rng.Uniform(present.size()));
      std::swap(present[r], present.back());
      ASSERT_TRUE(tree.Delete(present.back()).ok());
      present.pop_back();
    } else {
      const Label key = next_key++;
      ASSERT_TRUE(tree.Insert(key, key).ok());
      present.push_back(key);
    }
    if (step % 100 == 0) check("mid script", step);
  }
  check("after script", 4000);
  EXPECT_EQ(tree.size(), present.size());

  // Merges released internal nodes and later inserts recycled them.
  EXPECT_GT(tree.arena_stats().releases, 0u);
  EXPECT_GT(tree.arena_stats().reused_allocs, 0u);

  // Drain to empty: every node the pool ever handed out comes back.
  std::sort(present.begin(), present.end());
  for (Label key : present) ASSERT_TRUE(tree.Delete(key).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_EQ(tree.arena_stats().live(), 0u);
  EXPECT_EQ(tree.arena_stats().releases, tree.arena_stats().TotalAllocs());
}

TEST(BTreeArenaTest, ReplaceRangeRecyclesThroughThePool) {
  CountedBTree tree(8);
  ASSERT_TRUE(tree.BulkBuild(MakeEntries(512)).ok());
  const PoolArenaStats before = tree.arena_stats();
  // Rewrite the middle half — the virtual L-Tree's relabel primitive.
  std::vector<Entry> replacement;
  for (uint64_t i = 0; i < 200; ++i) replacement.push_back({300 + i, i});
  ASSERT_TRUE(tree.ReplaceRange(256, 768, replacement).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.arena_stats().live(), tree.NodeCount());
  // The deletes merged nodes away and the re-inserts recycled them: real
  // release/reuse traffic, with no more than one extra chunk of growth.
  EXPECT_GT(tree.arena_stats().releases, before.releases);
  EXPECT_GT(tree.arena_stats().reused_allocs, before.reused_allocs);
  EXPECT_LE(tree.arena_stats().chunks, before.chunks + 1);
}

TEST(BTreeArenaTest, ClearThenBulkBuildReusesInsteadOfGrowing) {
  CountedBTree tree(8);
  ASSERT_TRUE(tree.BulkBuild(MakeEntries(2000)).ok());
  const PoolArenaStats first = tree.arena_stats();
  ASSERT_GT(first.fresh_allocs, 0u);

  // BulkBuild(Clear()) is what every virtual root split runs: the second
  // build must be served by the nodes the first one released.
  ASSERT_TRUE(tree.BulkBuild(MakeEntries(2000, 3)).ok());
  const PoolArenaStats second = tree.arena_stats();
  EXPECT_EQ(second.chunks, first.chunks);
  EXPECT_EQ(second.fresh_allocs, first.fresh_allocs);
  EXPECT_GT(second.reused_allocs, first.reused_allocs);
  EXPECT_EQ(second.live(), tree.NodeCount());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeArenaTest, MoveTransfersPoolOwnership) {
  CountedBTree tree(8);
  ASSERT_TRUE(tree.BulkBuild(MakeEntries(300)).ok());
  const uint64_t live = tree.arena_stats().live();
  ASSERT_GT(live, 0u);

  CountedBTree moved(std::move(tree));
  EXPECT_EQ(moved.arena_stats().live(), live);
  EXPECT_EQ(moved.arena_stats().live(), moved.NodeCount());
  ASSERT_TRUE(moved.CheckInvariants().ok());

  // The moved-from tree is empty with no pool (so the noexcept move never
  // allocates); every accessor stays safe and the tree stays usable.
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.arena_stats().TotalAllocs(), 0u);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_EQ(tree.ApproxHeapBytes(), 0u);
  ASSERT_TRUE(tree.Insert(7, 7).ok());
  EXPECT_EQ(tree.arena_stats().live(), 1u);

  tree = std::move(moved);
  EXPECT_EQ(tree.arena_stats().live(), live);
  EXPECT_EQ(tree.arena_stats().live(), tree.NodeCount());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeArenaTest, ApproxHeapBytesCoversChunksAndBuffers) {
  CountedBTree tree(16);
  EXPECT_EQ(tree.ApproxHeapBytes(), 0u);
  ASSERT_TRUE(tree.BulkBuild(MakeEntries(4096)).ok());
  // At least one chunk was opened, and every entry occupies a key slot and
  // a value slot somewhere in the leaves.
  EXPECT_GT(tree.arena_stats().chunks, 0u);
  EXPECT_GE(tree.ApproxHeapBytes(), 4096 * 2 * sizeof(uint64_t));
}

TEST(BTreeArenaTest, NodesAreCacheLineAligned) {
  // The node type is opaque, but with an epoch attached every node freed
  // by Clear() is retired instead of recycled — ForEachPending then hands
  // us the raw slot pointers of a whole multi-level tree, which must all
  // sit on 64-byte boundaries (the pool pads slots to the cache line; see
  // PoolArena::kSlotAlign).
  epoch::EpochManager epoch;
  CountedBTree tree(4);
  tree.set_epoch(&epoch);
  for (const Entry& e : MakeEntries(512)) {
    ASSERT_TRUE(tree.Insert(e.key, e.value).ok());
  }
  const uint64_t nodes = tree.NodeCount();
  ASSERT_GT(nodes, 100u) << "want a tree deep enough to cover many slots";

  tree.Clear();
  uint64_t seen = 0;
  epoch.ForEachPending([&](void* node) {
    ++seen;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(node) % 64, 0u) << node;
  });
  EXPECT_EQ(seen, nodes);
  epoch.ReclaimAllUnsafe();
}

}  // namespace
}  // namespace obtree
}  // namespace ltree
