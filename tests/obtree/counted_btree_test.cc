// Unit tests for the counted B+-tree substrate.

#include "obtree/counted_btree.h"

#include <gtest/gtest.h>

#include <vector>

namespace ltree {
namespace obtree {
namespace {

TEST(CountedBTreeTest, EmptyTree) {
  CountedBTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_EQ(tree.CountLess(100), 0u);
  EXPECT_FALSE(tree.Select(0).ok());
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Delete(1).IsNotFound());
  EXPECT_TRUE(tree.Update(1, 2).IsNotFound());
}

TEST(CountedBTreeTest, InsertAndLookup) {
  CountedBTree tree(4);
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Insert(20, 200).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.Lookup(10), 100u);
  EXPECT_EQ(*tree.Lookup(5), 50u);
  EXPECT_EQ(*tree.Lookup(20), 200u);
  EXPECT_TRUE(tree.Lookup(15).status().IsNotFound());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, DuplicateInsertRejected) {
  CountedBTree tree;
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_TRUE(tree.Insert(1, 2).IsAlreadyExists());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Lookup(1), 1u);
}

TEST(CountedBTreeTest, UpdateChangesValueOnly) {
  CountedBTree tree;
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  ASSERT_TRUE(tree.Update(1, 42).ok());
  EXPECT_EQ(*tree.Lookup(1), 42u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(CountedBTreeTest, ManySequentialInsertsSplit) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(i, i * 2).ok());
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(*tree.Lookup(i), i * 2);
  }
}

TEST(CountedBTreeTest, ReverseInserts) {
  CountedBTree tree(4);
  for (uint64_t i = 1000; i > 0; --i) {
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.CountLess(501), 500u);
}

TEST(CountedBTreeTest, CountLessAndRangeCount) {
  CountedBTree tree(8);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i * 10, i).ok());  // keys 0,10,...,990
  }
  EXPECT_EQ(tree.CountLess(0), 0u);
  EXPECT_EQ(tree.CountLess(1), 1u);
  EXPECT_EQ(tree.CountLess(10), 1u);
  EXPECT_EQ(tree.CountLess(11), 2u);
  EXPECT_EQ(tree.CountLess(995), 100u);
  EXPECT_EQ(tree.RangeCount(0, 1000), 100u);
  EXPECT_EQ(tree.RangeCount(100, 200), 10u);
  EXPECT_EQ(tree.RangeCount(105, 106), 0u);
  EXPECT_EQ(tree.RangeCount(50, 50), 0u);
  EXPECT_EQ(tree.RangeCount(60, 50), 0u);
}

TEST(CountedBTreeTest, SelectMatchesOrder) {
  CountedBTree tree(4);
  std::vector<Label> keys{5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (Label k : keys) ASSERT_TRUE(tree.Insert(k, k * 100).ok());
  for (uint64_t r = 0; r < 10; ++r) {
    auto e = tree.Select(r);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e->key, r);
    EXPECT_EQ(e->value, r * 100);
  }
  EXPECT_TRUE(tree.Select(10).status().IsOutOfRange());
}

TEST(CountedBTreeTest, LowerBoundAndPredecessor) {
  CountedBTree tree;
  for (Label k : {10, 20, 30}) ASSERT_TRUE(tree.Insert(k, k).ok());
  EXPECT_EQ(tree.LowerBound(5)->key, 10u);
  EXPECT_EQ(tree.LowerBound(10)->key, 10u);
  EXPECT_EQ(tree.LowerBound(11)->key, 20u);
  EXPECT_TRUE(tree.LowerBound(31).status().IsNotFound());
  EXPECT_TRUE(tree.Predecessor(10).status().IsNotFound());
  EXPECT_EQ(tree.Predecessor(11)->key, 10u);
  EXPECT_EQ(tree.Predecessor(30)->key, 20u);
  EXPECT_EQ(tree.Predecessor(1000)->key, 30u);
}

TEST(CountedBTreeTest, IteratorFullScan) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 257; ++i) {
    ASSERT_TRUE(tree.Insert(i * 3, i).ok());
  }
  uint64_t expect = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expect * 3);
    EXPECT_EQ(it.value(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 257u);
}

TEST(CountedBTreeTest, SeekMidAndPastEnd) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i * 2, i).ok());  // even keys 0..198
  }
  auto it = tree.Seek(51);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 52u);
  it = tree.Seek(198);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 198u);
  it = tree.Seek(199);
  EXPECT_FALSE(it.Valid());
}

TEST(CountedBTreeTest, ScanRange) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  auto entries = tree.Scan(10, 20);
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries.front().key, 10u);
  EXPECT_EQ(entries.back().key, 19u);
  EXPECT_TRUE(tree.Scan(100, 200).empty());
}

TEST(CountedBTreeTest, DeleteSimple) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  ASSERT_TRUE(tree.Delete(7).ok());
  EXPECT_EQ(tree.size(), 19u);
  EXPECT_FALSE(tree.Contains(7));
  EXPECT_TRUE(tree.Delete(7).IsNotFound());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, DeleteEverything) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Delete(i).ok()) << i;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  // Tree is reusable afterwards.
  ASSERT_TRUE(tree.Insert(5, 5).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(CountedBTreeTest, DeleteReverseOrder) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  for (uint64_t i = 100; i > 0; --i) {
    ASSERT_TRUE(tree.Delete(i - 1).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok());
  }
  EXPECT_EQ(tree.size(), 0u);
}

TEST(CountedBTreeTest, BulkBuildMatchesInserts) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 1234; ++i) entries.push_back({i * 7, i});
  CountedBTree tree(16);
  ASSERT_TRUE(tree.BulkBuild(entries).ok());
  EXPECT_EQ(tree.size(), 1234u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.ScanAll(), entries);
  // Post-build mutations work.
  ASSERT_TRUE(tree.Insert(3, 999).ok());
  ASSERT_TRUE(tree.Delete(0).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, BulkBuildRejectsUnsorted) {
  std::vector<Entry> entries{{3, 0}, {1, 1}};
  CountedBTree tree;
  EXPECT_TRUE(tree.BulkBuild(entries).IsInvalidArgument());
  std::vector<Entry> dup{{3, 0}, {3, 1}};
  EXPECT_TRUE(tree.BulkBuild(dup).IsInvalidArgument());
}

TEST(CountedBTreeTest, BulkBuildSmallSizes) {
  for (size_t n : {0, 1, 2, 3, 4, 5, 8, 16, 17}) {
    std::vector<Entry> entries;
    for (uint64_t i = 0; i < n; ++i) entries.push_back({i, i});
    CountedBTree tree(4);
    ASSERT_TRUE(tree.BulkBuild(entries).ok()) << n;
    EXPECT_EQ(tree.size(), n);
    EXPECT_TRUE(tree.CheckInvariants().ok()) << n;
  }
}

TEST(CountedBTreeTest, ReplaceRangeBasic) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(tree.Insert(i * 10, i).ok());
  // Replace keys in [20, 60) (20,30,40,50) by two denser keys.
  std::vector<Entry> repl{{25, 100}, {26, 101}};
  ASSERT_TRUE(tree.ReplaceRange(20, 60, repl).ok());
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_FALSE(tree.Contains(20));
  EXPECT_FALSE(tree.Contains(50));
  EXPECT_EQ(*tree.Lookup(25), 100u);
  EXPECT_EQ(*tree.Lookup(26), 101u);
  EXPECT_TRUE(tree.Contains(10));
  EXPECT_TRUE(tree.Contains(60));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, ReplaceRangeValidation) {
  CountedBTree tree;
  ASSERT_TRUE(tree.Insert(5, 5).ok());
  std::vector<Entry> outside{{99, 0}};
  EXPECT_TRUE(tree.ReplaceRange(0, 10, outside).IsInvalidArgument());
  std::vector<Entry> unsorted{{7, 0}, {6, 0}};
  EXPECT_TRUE(tree.ReplaceRange(0, 10, unsorted).IsInvalidArgument());
  EXPECT_TRUE(tree.ReplaceRange(10, 0, {}).IsInvalidArgument());  // lo > hi
  // An entry can never lie inside an empty range.
  std::vector<Entry> one{{10, 0}};
  EXPECT_TRUE(tree.ReplaceRange(10, 10, one).IsInvalidArgument());
}

TEST(CountedBTreeTest, ReplaceRangeEmptyRangeIsNoop) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  ASSERT_TRUE(tree.ReplaceRange(5, 5, {}).ok());
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.Contains(5));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // Also a no-op on an empty tree.
  CountedBTree empty(4);
  ASSERT_TRUE(empty.ReplaceRange(0, 0, {}).ok());
  EXPECT_EQ(empty.size(), 0u);
}

TEST(CountedBTreeTest, ReplaceRangeEmptyReplacement) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  ASSERT_TRUE(tree.ReplaceRange(5, 15, {}).ok());
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.Contains(4));
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_FALSE(tree.Contains(14));
  EXPECT_TRUE(tree.Contains(15));
}

TEST(CountedBTreeTest, ReplaceRangeEraseToEmptyAndRefill) {
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  // Pure range erase of everything empties the tree.
  ASSERT_TRUE(tree.ReplaceRange(0, 100, {}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // A replacement into the now-empty tree rebuilds it.
  std::vector<Entry> repl;
  for (uint64_t i = 0; i < 9; ++i) repl.push_back({i * 3, i});
  ASSERT_TRUE(tree.ReplaceRange(0, 100, repl).ok());
  EXPECT_EQ(tree.size(), 9u);
  EXPECT_EQ(*tree.Lookup(24), 8u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, ReplaceRangeGrowsAndShrinksTheTree) {
  // A replacement much denser than the original range must grow the tree
  // (possibly in height), and a sparse one must shrink it, with counts and
  // occupancy intact either way.
  CountedBTree tree(4);
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(tree.Insert(i * 100, i).ok());
  std::vector<Entry> dense;
  for (uint64_t i = 0; i < 400; ++i) dense.push_back({1000 + i, i});
  ASSERT_TRUE(tree.ReplaceRange(1000, 2000, dense).ok());
  EXPECT_EQ(tree.size(), 50u - 10u + 400u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<Entry> sparse{{1500, 7u}};
  ASSERT_TRUE(tree.ReplaceRange(1000, 2000, sparse).ok());
  EXPECT_EQ(tree.size(), 50u - 10u + 1u);
  EXPECT_EQ(*tree.Lookup(1500), 7u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CountedBTreeTest, MoveConstruction) {
  CountedBTree a(4);
  ASSERT_TRUE(a.Insert(1, 1).ok());
  CountedBTree b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  CountedBTree c(8);
  c = std::move(b);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(*c.Lookup(1), 1u);
}


TEST(CountedBTreeTest, BulkBuildAllSizesMeetOccupancy) {
  // Regression: a small tail used to be split into two under-minimum
  // chunks (e.g. 49 entries at order 64).
  for (uint32_t order : {4u, 8u, 16u, 64u}) {
    for (size_t n = 1; n <= 3 * order + 5; ++n) {
      std::vector<Entry> entries;
      for (uint64_t i = 0; i < n; ++i) entries.push_back({i, i});
      CountedBTree tree(order);
      ASSERT_TRUE(tree.BulkBuild(entries).ok());
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "order=" << order << " n=" << n;
      ASSERT_EQ(tree.size(), n);
    }
    // A few larger sizes around multiples of order^2.
    for (size_t n : {size_t{order * order - 1}, size_t{order * order},
                     size_t{order * order + 1}, size_t{order * order + order / 2}}) {
      std::vector<Entry> entries;
      for (uint64_t i = 0; i < n; ++i) entries.push_back({i, i});
      CountedBTree tree(order);
      ASSERT_TRUE(tree.BulkBuild(entries).ok());
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "order=" << order << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace obtree
}  // namespace ltree
