// Randomized differential test: the counted B+-tree against a std::map
// reference model, parameterized over node order.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "obtree/counted_btree.h"

namespace ltree {
namespace obtree {
namespace {

class BTreeFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceModel) {
  const uint32_t order = GetParam();
  CountedBTree tree(order);
  std::map<Label, uint64_t> model;
  Rng rng(order * 7919 + 13);

  const int kOps = 4000;
  const uint64_t kKeySpace = 500;  // small key space => many collisions
  for (int op = 0; op < kOps; ++op) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const uint64_t action = rng.Uniform(10);
    if (action < 5) {
      Status st = tree.Insert(key, op);
      if (model.count(key) > 0) {
        EXPECT_TRUE(st.IsAlreadyExists());
      } else {
        EXPECT_TRUE(st.ok());
        model[key] = static_cast<uint64_t>(op);
      }
    } else if (action < 8) {
      Status st = tree.Delete(key);
      if (model.count(key) > 0) {
        EXPECT_TRUE(st.ok());
        model.erase(key);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else if (action < 9) {
      Status st = tree.Update(key, op + 1000000);
      if (model.count(key) > 0) {
        EXPECT_TRUE(st.ok());
        model[key] = static_cast<uint64_t>(op + 1000000);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else {
      // Point queries.
      auto found = tree.Lookup(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(found.ok());
      } else {
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(*found, it->second);
      }
    }

    if (op % 200 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
      ASSERT_EQ(tree.size(), model.size());
      // Order statistics agree with the model.
      const uint64_t probe = rng.Uniform(kKeySpace + 10);
      uint64_t model_less = 0;
      for (const auto& [k, v] : model) {
        if (k < probe) ++model_less;
      }
      EXPECT_EQ(tree.CountLess(probe), model_less) << "probe " << probe;
    }
  }

  // Final full comparison.
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto entries = tree.ScanAll();
  ASSERT_EQ(entries.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(entries[i].key, k);
    EXPECT_EQ(entries[i].value, v);
    ++i;
  }
  // Select agrees with scan order.
  for (uint64_t r = 0; r < entries.size(); ++r) {
    auto e = tree.Select(r);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e->key, entries[r].key);
  }
}

TEST_P(BTreeFuzzTest, ReplaceRangeMatchesModel) {
  const uint32_t order = GetParam();
  CountedBTree tree(order);
  std::map<Label, uint64_t> model;
  Rng rng(order * 104729 + 7);

  // Seed with spread-out keys.
  for (uint64_t i = 0; i < 300; ++i) {
    const Label key = i * 100;
    ASSERT_TRUE(tree.Insert(key, i).ok());
    model[key] = i;
  }

  for (int round = 0; round < 50; ++round) {
    const Label lo = rng.Uniform(30000);
    // Occasionally an empty range (lo == hi): must be a no-op.
    const Label hi = round % 10 == 9 ? lo : lo + 1 + rng.Uniform(5000);
    // Generate replacement entries within [lo, hi).
    std::vector<Entry> repl;
    const uint64_t n = rng.Uniform(20);
    Label k = lo;
    for (uint64_t i = 0; i < n && k < hi; ++i) {
      repl.push_back({k, round * 1000 + i});
      k += 1 + rng.Uniform((hi - lo) / 10 + 1);
    }
    ASSERT_TRUE(tree.ReplaceRange(lo, hi, repl).ok());
    model.erase(model.lower_bound(lo), model.lower_bound(hi));
    for (const Entry& e : repl) model[e.key] = e.value;

    ASSERT_TRUE(tree.CheckInvariants().ok()) << "round " << round;
    ASSERT_EQ(tree.size(), model.size()) << "round " << round;
  }
  auto entries = tree.ScanAll();
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(entries[i].key, k);
    ASSERT_EQ(entries[i].value, v);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeFuzzTest,
                         ::testing::Values(4, 6, 8, 16, 64),
                         [](const auto& info) {
                           return "order" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace obtree
}  // namespace ltree
