// Wire protocol tests: golden byte layout (pinned against an independent
// CRC32C implementation), encode/decode round trips for every frame type
// across all six labeling schemes, and total-decode guarantees — every
// malformed input comes back as Status::Corruption, never as a frame and
// never as undefined behavior.

#include "replica/wire_format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "store/document_store.h"
#include "store/mirror_store.h"
#include "store/state_vector.h"

namespace ltree {
namespace replica {
namespace {

constexpr const char* kSpecs[] = {"ltree:16:4", "ltree:16:4:purge",
                                  "virtual:16:4", "gap:64", "sequential",
                                  "bender"};

// ---------------------------------------------------------------------------
// Golden bytes: the layout is pinned. If one of these fails, the wire
// format changed — that requires a version bump, not a re-golden.
// ---------------------------------------------------------------------------

TEST(WireFormatGoldenTest, CatchUpRequestLayout) {
  const std::vector<uint8_t> bytes = EncodeFrame(MakeCatchUpRequestFrame(
      3, 0x1122334455667788ull, /*nonce=*/0x0F0E0D0C0B0A0908ull));
  // magic 'L' 'R', version 1, type 1, payload_len 20 LE, shard u32 LE,
  // nonce u64 LE, from_seq u64 LE, CRC32C LE (computed independently with
  // a bitwise Python implementation validated against the standard
  // "123456789" -> 0xE3069283 vector).
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x01, 0x01,              // magic, version, type
      0x14, 0x00, 0x00, 0x00,              // payload length = 20
      0x03, 0x00, 0x00, 0x00,              // shard = 3
      0x08, 0x09, 0x0A, 0x0B,              // nonce low half
      0x0C, 0x0D, 0x0E, 0x0F,              // nonce high half
      0x88, 0x77, 0x66, 0x55,              // from_seq low half
      0x44, 0x33, 0x22, 0x11,              // from_seq high half
      0x4C, 0x91, 0xAB, 0x58,              // CRC32C(frame[0..28))
  };
  EXPECT_EQ(bytes, expected);
}

TEST(WireFormatGoldenTest, AckLayout) {
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x01, 0x06,              // magic, version, type = ack
      0x00, 0x00, 0x00, 0x00,              // empty payload
      0xB2, 0x51, 0xB3, 0xBC,              // CRC32C(frame[0..8))
  };
  EXPECT_EQ(EncodeFrame(MakeAckFrame()), expected);
}

TEST(WireFormatGoldenTest, Crc32cStandardVector) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(check), 9), 0xE3069283u);
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(WireFormatRoundTripTest, CatchUpRequest) {
  const Frame in = MakeCatchUpRequestFrame(7, 42, /*nonce=*/0xDEADBEEF);
  const Result<Frame> out = DecodeFrame(EncodeFrame(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->type, FrameType::kCatchUpRequest);
  EXPECT_EQ(out->shard, 7u);
  EXPECT_EQ(out->from_seq, 42u);
  EXPECT_EQ(out->nonce, 0xDEADBEEFu);
}

TEST(WireFormatRoundTripTest, DeltaWithEvents) {
  Frame in;
  in.type = FrameType::kDelta;
  in.shard = 2;
  in.nonce = 777;
  in.from_seq = 10;
  in.to_seq = 13;
  for (uint64_t seq = 11; seq <= 13; ++seq) {
    store::FeedEvent event;
    event.seq = seq;
    event.kind = static_cast<store::FeedEvent::Kind>(seq % 3);
    event.cookie = seq * 1000;
    event.old_label = seq * 7;
    event.new_label = seq * 9;
    in.events.push_back(event);
  }
  const Result<Frame> out = DecodeFrame(EncodeFrame(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->type, FrameType::kDelta);
  EXPECT_EQ(out->shard, 2u);
  EXPECT_EQ(out->nonce, 777u);
  EXPECT_EQ(out->from_seq, 10u);
  EXPECT_EQ(out->to_seq, 13u);
  ASSERT_EQ(out->events.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out->events[i].seq, in.events[i].seq);
    EXPECT_EQ(out->events[i].kind, in.events[i].kind);
    EXPECT_EQ(out->events[i].cookie, in.events[i].cookie);
    EXPECT_EQ(out->events[i].old_label, in.events[i].old_label);
    EXPECT_EQ(out->events[i].new_label, in.events[i].new_label);
  }
}

TEST(WireFormatRoundTripTest, SnapshotEntries) {
  Frame in;
  in.type = FrameType::kSnapshot;
  in.shard = 5;
  in.to_seq = 99;
  in.state = {{100, 1}, {200, 2}, {300, 3}};
  const Result<Frame> out = DecodeFrame(EncodeFrame(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->type, FrameType::kSnapshot);
  EXPECT_EQ(out->shard, 5u);
  EXPECT_EQ(out->to_seq, 99u);
  EXPECT_EQ(out->state, in.state);
}

TEST(WireFormatRoundTripTest, RegisterCarriesStateVector) {
  store::StateVector sv(4);
  sv.Set(0, 17);
  sv.Set(2, 5);
  const Result<Frame> out =
      DecodeFrame(EncodeFrame(MakeRegisterFrame(0xABCDEF, sv)));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->type, FrameType::kRegister);
  EXPECT_EQ(out->subscriber, 0xABCDEFu);
  EXPECT_EQ(out->seqs, (std::vector<uint64_t>{17, 0, 5, 0}));
}

TEST(WireFormatRoundTripTest, ErrorCarriesStatus) {
  const Status original = Status::NotFound("document 7 does not exist");
  const Result<Frame> out = DecodeFrame(EncodeFrame(MakeErrorFrame(original)));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->type, FrameType::kError);
  const Status restored = ErrorFrameStatus(*out);
  EXPECT_EQ(restored.code(), original.code());
  EXPECT_EQ(restored.message(), original.message());
}

TEST(WireFormatRoundTripTest, EmptyDeltaAndEmptySnapshot) {
  Frame delta;
  delta.type = FrameType::kDelta;
  delta.shard = 0;
  delta.from_seq = 4;
  delta.to_seq = 4;
  Result<Frame> out = DecodeFrame(EncodeFrame(delta));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->events.empty());

  Frame snap;
  snap.type = FrameType::kSnapshot;
  snap.shard = 1;
  snap.to_seq = 0;
  out = DecodeFrame(EncodeFrame(snap));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->state.empty());
}

// Real catch-up payloads from every labeling scheme survive the wire: the
// decoded CatchUpResult drives a mirror to equivalence, through both the
// delta and the (forced-trim) snapshot path.
TEST(WireFormatRoundTripTest, CatchUpResultsAcrossAllSchemes) {
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    for (const bool force_snapshot : {false, true}) {
      SCOPED_TRACE(force_snapshot ? "snapshot" : "delta");
      store::DocStoreOptions options;
      options.num_shards = 4;
      options.scheme_spec = spec;
      options.feed_capacity = force_snapshot ? 8 : 4096;
      auto made = store::DocumentStore::Make(options);
      ASSERT_TRUE(made.ok()) << made.status().ToString();
      std::unique_ptr<store::DocumentStore> primary = std::move(*made);

      Rng rng(42);
      for (store::DocId doc = 0; doc < 6; ++doc) {
        ASSERT_TRUE(primary->CreateDocument(doc).ok());
        for (int i = 0; i < 30; ++i) {
          ASSERT_TRUE(primary->Append(doc).ok());
        }
        for (int i = 0; i < 10; ++i) {
          const uint64_t size = primary->DocSize(doc).ValueOrDie();
          ASSERT_TRUE(primary->EraseAt(doc, rng.Uniform(size)).ok());
        }
      }

      store::MirrorStore mirror(primary->num_shards());
      uint32_t snapshots = 0;
      for (uint32_t shard = 0; shard < primary->num_shards(); ++shard) {
        const auto result = primary->CatchUp(shard, 0);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        snapshots += result->snapshot ? 1 : 0;
        // Model -> frame -> bytes -> frame -> model.
        const std::vector<uint8_t> bytes =
            EncodeFrame(MakeCatchUpResponseFrame(shard, *result));
        const Result<Frame> frame = DecodeFrame(bytes);
        ASSERT_TRUE(frame.ok()) << frame.status().ToString();
        const auto restored = ToCatchUpResult(*frame);
        ASSERT_TRUE(restored.ok()) << restored.status().ToString();
        EXPECT_EQ(restored->snapshot, result->snapshot);
        EXPECT_EQ(restored->to_seq, result->to_seq);
        ASSERT_TRUE(mirror.ApplyCatchUp(shard, *restored).ok());
      }
      const Status eq = mirror.CheckEquivalent(*primary);
      EXPECT_TRUE(eq.ok()) << eq.ToString();
      // A tiny feed forces the snapshot path on every shard that saw
      // writes (an unlucky-hash empty shard legitimately serves a delta).
      if (force_snapshot) {
        EXPECT_GT(snapshots, 0u);
      } else {
        EXPECT_EQ(snapshots, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Total decode: malformed inputs are Corruption, never frames, never UB.
// ---------------------------------------------------------------------------

std::vector<uint8_t> ValidDeltaBytes() {
  Frame frame;
  frame.type = FrameType::kDelta;
  frame.shard = 1;
  frame.from_seq = 0;
  frame.to_seq = 2;
  store::FeedEvent event;
  event.seq = 1;
  event.kind = store::FeedEvent::Kind::kInsert;
  event.cookie = 11;
  event.new_label = 64;
  frame.events.push_back(event);
  event.seq = 2;
  event.cookie = 12;
  event.new_label = 128;
  frame.events.push_back(event);
  return EncodeFrame(frame);
}

TEST(WireFormatCorruptionTest, EveryPossibleSingleBitFlipIsRejected) {
  const std::vector<uint8_t> good = ValidDeltaBytes();
  ASSERT_TRUE(DecodeFrame(good).ok());
  for (size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<uint8_t> bad = good;
    bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const Result<Frame> out = DecodeFrame(bad);
    ASSERT_FALSE(out.ok()) << "bit " << bit << " flip was accepted";
    EXPECT_TRUE(out.status().IsCorruption()) << out.status().ToString();
  }
}

TEST(WireFormatCorruptionTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> good = ValidDeltaBytes();
  for (size_t len = 0; len < good.size(); ++len) {
    const Result<Frame> out = DecodeFrame(good.data(), len);
    ASSERT_FALSE(out.ok()) << "truncation to " << len << " was accepted";
    EXPECT_TRUE(out.status().IsCorruption());
  }
}

TEST(WireFormatCorruptionTest, TrailingBytesAreRejected) {
  std::vector<uint8_t> bytes = ValidDeltaBytes();
  bytes.push_back(0x00);
  EXPECT_TRUE(DecodeFrame(bytes).status().IsCorruption());
}

TEST(WireFormatCorruptionTest, BadMagicVersionAndType) {
  std::vector<uint8_t> bytes = EncodeFrame(MakeAckFrame());
  bytes[0] = 'X';
  EXPECT_TRUE(DecodeFrame(bytes).status().IsCorruption());

  bytes = EncodeFrame(MakeAckFrame());
  bytes[2] = 2;  // future protocol version
  EXPECT_TRUE(DecodeFrame(bytes).status().IsCorruption());

  for (const uint8_t type : {uint8_t{0}, uint8_t{7}, uint8_t{255}}) {
    bytes = EncodeFrame(MakeAckFrame());
    bytes[3] = type;
    EXPECT_TRUE(DecodeFrame(bytes).status().IsCorruption());
  }
}

TEST(WireFormatCorruptionTest, ForgedCountsCannotDriveAllocation) {
  // A delta frame whose event count claims more events than the payload
  // holds must fail BEFORE any reserve happens (valid CRC, hostile count).
  std::vector<uint8_t> payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  auto put_u64 = [&payload](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(0);           // shard
  put_u64(0);           // nonce
  put_u64(0);           // from_seq
  put_u64(1);           // to_seq
  put_u32(0xFFFFFFFF);  // forged event count; zero event bytes follow

  std::vector<uint8_t> bytes = {kWireMagic0, kWireMagic1, kWireVersion,
                                static_cast<uint8_t>(FrameType::kDelta)};
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  const Result<Frame> out = DecodeFrame(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCorruption());
  EXPECT_NE(out.status().message().find("count"), std::string::npos);
}

TEST(WireFormatCorruptionTest, ErrorFrameWithOkCodeIsRejected) {
  // Hand-build an error frame claiming StatusCode::kOk — a frame the
  // encoder can never produce; the decoder must still reject it.
  std::vector<uint8_t> bytes = {kWireMagic0, kWireMagic1, kWireVersion,
                                static_cast<uint8_t>(FrameType::kError),
                                8,           0,           0,
                                0,  // payload len = 8
                                0,           0,           0,
                                0,  // code = kOk
                                0,           0,           0,
                                0};  // message length = 0
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  EXPECT_TRUE(DecodeFrame(bytes).status().IsCorruption());
}

TEST(WireFormatCorruptionTest, RandomGarbageNeverDecodes) {
  // Random buffers essentially never carry a valid CRC; the point is that
  // none of them crash and all of them fail cleanly.
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.Uniform(64));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Next64());
    const Result<Frame> out = DecodeFrame(bytes);
    if (!out.ok()) {
      EXPECT_TRUE(out.status().IsCorruption());
    }
  }
}

}  // namespace
}  // namespace replica
}  // namespace ltree
