// Chaos suite: the headline acceptance test for the replication layer.
//
// Randomized multi-session Zipf edit scripts run against a primary while a
// ReplicationSession syncs a mirror over a FaultyTransport — one scenario
// per fault class (drop, duplicate, reorder, truncate, bit-flip, stall,
// server-side failpoint, and everything-at-once) crossed with all six
// labeling schemes. Every scenario must reach CheckEquivalent convergence
// within the bounded retry budget, the injected fault class must actually
// have fired, and corrupted frames must never have been applied (zero
// protocol violations; wire damage surfaces as retries, not state).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/failpoint.h"
#include "replica/clock.h"
#include "replica/replication_session.h"
#include "replica/transport.h"
#include "store/document_store.h"
#include "store/mirror_store.h"
#include "workload/update_stream.h"

namespace ltree {
namespace replica {
namespace {

constexpr const char* kSpecs[] = {"ltree:16:4", "ltree:16:4:purge",
                                  "virtual:16:4", "gap:64", "sequential",
                                  "bender"};

struct Scenario {
  const char* name = "";
  FaultOptions faults;          // seed is overridden per spec
  bool server_failpoint = false;
  /// Tiny feed to force snapshot degradation under this fault class too.
  uint64_t feed_capacity = 4096;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "drop";
    s.faults.drop = 0.25;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "duplicate";
    s.faults.duplicate = 0.35;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "reorder";
    s.faults.reorder = 0.35;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "truncate";
    s.faults.truncate = 0.3;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "bit-flip";
    s.faults.bit_flip = 0.3;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "stall";
    s.faults.stall = 0.4;
    s.faults.stall_ms = 120;  // past the 50ms request timeout
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "server-failpoint";
    s.server_failpoint = true;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "everything";
    s.feed_capacity = 64;
    s.faults.drop = 0.08;
    s.faults.duplicate = 0.08;
    s.faults.reorder = 0.08;
    s.faults.truncate = 0.08;
    s.faults.bit_flip = 0.08;
    s.faults.stall = 0.08;
    s.faults.stall_ms = 120;
    s.server_failpoint = true;
    scenarios.push_back(s);
  }
  return scenarios;
}

uint64_t ClassHits(const Scenario& scenario, const FaultStats& stats) {
  uint64_t hits = 0;
  if (scenario.faults.drop > 0) hits += stats.drops;
  if (scenario.faults.duplicate > 0) hits += stats.duplicates;
  if (scenario.faults.reorder > 0) hits += stats.reorders;
  if (scenario.faults.truncate > 0) hits += stats.truncations;
  if (scenario.faults.bit_flip > 0) hits += stats.bit_flips;
  if (scenario.faults.stall > 0) hits += stats.stalls;
  return hits;
}

void RunChaos(const std::string& spec, const Scenario& scenario,
              uint64_t seed) {
  store::DocStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.scheme_spec = spec;
  store_options.feed_capacity = scenario.feed_capacity;
  auto made = store::DocumentStore::Make(store_options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<store::DocumentStore> primary = std::move(*made);

  const uint64_t kDocs = 8;
  for (store::DocId doc = 0; doc < kDocs; ++doc) {
    ASSERT_TRUE(primary->CreateDocument(doc).ok());
  }

  PrimaryEndpoint endpoint(primary.get(), primary.get());
  FakeClock clock;
  FaultOptions faults = scenario.faults;
  faults.seed = seed;
  FaultyTransport transport(&endpoint, &clock, faults);

  store::MirrorStore mirror(primary->num_shards());
  SessionOptions session_options;
  session_options.subscriber_id = seed;
  session_options.request_timeout_ms = 50;
  session_options.max_attempts = 64;  // the bounded retry budget
  session_options.base_backoff_ms = 1;
  session_options.max_backoff_ms = 32;
  session_options.jitter = 0.25;
  session_options.jitter_seed = seed * 3 + 1;
  session_options.poison_after = 16;
  ReplicationSession session(&mirror, &transport, &clock, session_options);

  // Multi-session Zipf-skewed edit script, synced every 60 ops.
  workload::MultiSessionStream sessions(
      {.num_docs = kDocs,
       .num_sessions = 3,
       .doc_zipf_theta = 1.1,
       .session_stream = {.kind = workload::StreamKind::kMixed,
                          .erase_fraction = 0.3,
                          .seed = seed}});
  Rng script_rng(seed * 31 + 7);
  const int kOps = 600;
  const int kSyncEvery = 60;
  for (int i = 0; i < kOps; ++i) {
    const workload::DocOp op = sessions.Next(
        [&](uint64_t doc) { return primary->DocSize(doc).ValueOrDie(); });
    if (script_rng.Bernoulli(0.02)) {
      const uint64_t size = primary->DocSize(op.doc).ValueOrDie();
      const uint64_t rank = size == 0 ? 0 : script_rng.Uniform(size);
      ASSERT_TRUE(primary->InsertBatchAfterRank(op.doc, rank, 20).ok());
    } else {
      ASSERT_TRUE(primary->Apply(op.doc, op.op).ok());
    }
    if ((i + 1) % kSyncEvery != 0) continue;

    if (scenario.server_failpoint) {
      // A server-side outage at the start of every segment: the first few
      // serves fail with a store-level timeout the session must absorb.
      failpoint::Arm("store.catchup", Status::TimedOut("server busy"),
                     /*times=*/3);
    }
    const Status round = session.SyncRound();
    ASSERT_TRUE(round.ok())
        << scenario.name << "/" << spec << " op " << i << ": "
        << round.ToString();
    const Status eq = mirror.CheckEquivalent(*primary);
    ASSERT_TRUE(eq.ok()) << scenario.name << "/" << spec << " op " << i
                         << ": " << eq.ToString();
  }
  failpoint::DisarmAll();

  // The scenario must have genuinely exercised its fault class...
  if (scenario.server_failpoint) {
    EXPECT_GT(failpoint::Hits("store.catchup"), 0u)
        << scenario.name << "/" << spec;
  }
  const FaultStats& fstats = transport.stats();
  if (ClassHits(scenario, fstats) == 0 && !scenario.server_failpoint) {
    FAIL() << scenario.name << "/" << spec
           << ": fault class never fired (calls=" << fstats.calls << ")";
  }
  // ...and no damaged frame may ever have reached the mirror: corruption
  // surfaces as retries (wire_corruptions / server echoes), never as
  // protocol violations or poisoning.
  EXPECT_FALSE(session.poisoned()) << session.poison_reason();
  EXPECT_EQ(session.stats().protocol_violations, 0u)
      << scenario.name << "/" << spec;
  const audit::Report session_audit = session.Validate();
  EXPECT_TRUE(session_audit.ok()) << session_audit.ToString();
  const audit::Report store_audit = primary->Validate();
  EXPECT_TRUE(store_audit.ok()) << store_audit.ToString();
}

class ChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(ChaosTest, ConvergesUnderEveryFaultClass) {
  uint64_t seed = 1;
  for (const Scenario& scenario : Scenarios()) {
    SCOPED_TRACE(scenario.name);
    RunChaos(GetParam(), scenario, seed++);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChaosTest, ::testing::ValuesIn(kSpecs),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace replica
}  // namespace ltree
