// FaultyTransport and PrimaryEndpoint tests: deterministic replay, every
// fault class actually fires and is counted, endpoint behavior for good,
// mangled and unexpected requests, and the "replica.serve" failpoint.

#include "replica/transport.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "replica/clock.h"
#include "replica/wire_format.h"
#include "store/document_store.h"

namespace ltree {
namespace replica {
namespace {

std::unique_ptr<store::DocumentStore> MakePrimary(uint32_t shards = 2,
                                                  uint64_t feed_capacity =
                                                      4096) {
  store::DocStoreOptions options;
  options.num_shards = shards;
  options.scheme_spec = "ltree:16:4";
  options.feed_capacity = feed_capacity;
  auto made = store::DocumentStore::Make(options);
  EXPECT_TRUE(made.ok());
  std::unique_ptr<store::DocumentStore> primary = std::move(*made);
  EXPECT_TRUE(primary->CreateDocument(0).ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(primary->Append(0).ok());
  return primary;
}

// --------------------------------------------------------------- endpoint

TEST(PrimaryEndpointTest, ServesCatchUpRequests) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  const uint32_t shard = primary->ShardOf(0);

  const auto raw =
      endpoint.Call(EncodeFrame(MakeCatchUpRequestFrame(shard, 0)), 50);
  ASSERT_TRUE(raw.ok());
  const Result<Frame> frame = DecodeFrame(*raw);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kDelta);
  EXPECT_EQ(frame->shard, shard);
  EXPECT_EQ(frame->events.size(), 10u);
  EXPECT_EQ(endpoint.requests_served(), 1u);
  EXPECT_EQ(endpoint.bad_requests(), 0u);
}

TEST(PrimaryEndpointTest, MangledRequestComesBackAsCorruptionErrorFrame) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());

  std::vector<uint8_t> request = EncodeFrame(MakeCatchUpRequestFrame(0, 0));
  request[9] ^= 0x40;  // damage the payload; CRC now mismatches
  const auto raw = endpoint.Call(request, 50);
  ASSERT_TRUE(raw.ok());  // transport-level success: an error FRAME
  const Result<Frame> frame = DecodeFrame(*raw);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kError);
  EXPECT_TRUE(ErrorFrameStatus(*frame).IsCorruption());
  EXPECT_EQ(endpoint.bad_requests(), 1u);
}

TEST(PrimaryEndpointTest, StoreErrorsCrossAsErrorFrames) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());

  // Out-of-range shard: the store refuses, the status crosses the wire.
  const auto raw =
      endpoint.Call(EncodeFrame(MakeCatchUpRequestFrame(99, 0)), 50);
  ASSERT_TRUE(raw.ok());
  const Result<Frame> frame = DecodeFrame(*raw);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kError);
  EXPECT_FALSE(ErrorFrameStatus(*frame).ok());
}

TEST(PrimaryEndpointTest, UnexpectedRequestTypeIsRejected) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());

  const auto raw = endpoint.Call(EncodeFrame(MakeAckFrame()), 50);
  ASSERT_TRUE(raw.ok());
  const Result<Frame> frame = DecodeFrame(*raw);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, FrameType::kError);
  EXPECT_TRUE(ErrorFrameStatus(*frame).IsInvalidArgument());
  EXPECT_EQ(endpoint.bad_requests(), 1u);
}

TEST(PrimaryEndpointTest, RegisterRoutesToRegistryOrNotImplemented) {
  auto primary = MakePrimary();
  const std::vector<uint8_t> request = EncodeFrame(
      MakeRegisterFrame(7, store::StateVector(primary->num_shards())));

  PrimaryEndpoint read_only(primary.get());
  auto raw = read_only.Call(request, 50);
  ASSERT_TRUE(raw.ok());
  ASSERT_EQ(DecodeFrame(*raw)->type, FrameType::kError);
  EXPECT_TRUE(ErrorFrameStatus(*DecodeFrame(*raw)).IsNotImplemented());

  PrimaryEndpoint writable(primary.get(), primary.get());
  raw = writable.Call(request, 50);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(DecodeFrame(*raw)->type, FrameType::kAck);
  EXPECT_EQ(primary->num_subscribers(), 1u);
}

TEST(PrimaryEndpointTest, ServeFailpointInjectsServerSideOutage) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  failpoint::ScopedFailpoint fp("replica.serve",
                                Status::TimedOut("injected outage"),
                                /*times=*/2);

  for (int i = 0; i < 2; ++i) {
    const auto raw =
        endpoint.Call(EncodeFrame(MakeCatchUpRequestFrame(0, 0)), 50);
    ASSERT_TRUE(raw.ok());
    const Result<Frame> frame = DecodeFrame(*raw);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->type, FrameType::kError);
    EXPECT_TRUE(ErrorFrameStatus(*frame).IsTimedOut());
  }
  // The failpoint was bounded to two hits; service resumes.
  const auto raw =
      endpoint.Call(EncodeFrame(MakeCatchUpRequestFrame(0, 0)), 50);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(DecodeFrame(*raw)->type, FrameType::kDelta);
}

// -------------------------------------------------------- faulty transport

TEST(FaultyTransportTest, NoFaultsIsTransparent) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  FakeClock clock;
  FaultyTransport transport(&endpoint, &clock, FaultOptions{});

  const std::vector<uint8_t> request =
      EncodeFrame(MakeCatchUpRequestFrame(primary->ShardOf(0), 0));
  const auto direct = endpoint.Call(request, 50);
  const auto via = transport.Call(request, 50);
  ASSERT_TRUE(via.ok());
  EXPECT_EQ(*via, *direct);
  EXPECT_EQ(transport.stats().clean, 1u);
  EXPECT_EQ(clock.total_slept_ms(), 0u);
}

TEST(FaultyTransportTest, SameSeedSameFaultSchedule) {
  auto primary = MakePrimary();
  const std::vector<uint8_t> request =
      EncodeFrame(MakeCatchUpRequestFrame(primary->ShardOf(0), 0));

  FaultOptions options;
  options.seed = 1234;
  options.drop = 0.3;
  options.bit_flip = 0.3;

  std::vector<bool> ok_pattern[2];
  for (int run = 0; run < 2; ++run) {
    PrimaryEndpoint endpoint(primary.get());
    FakeClock clock;
    FaultyTransport transport(&endpoint, &clock, options);
    for (int i = 0; i < 50; ++i) {
      const auto response = transport.Call(request, 50);
      ok_pattern[run].push_back(response.ok());
    }
  }
  EXPECT_EQ(ok_pattern[0], ok_pattern[1]);
}

TEST(FaultyTransportTest, DropsTimeOutAndConsumeTheDeadline) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  FakeClock clock;
  FaultOptions options;
  options.seed = 9;
  options.drop = 1.0;
  FaultyTransport transport(&endpoint, &clock, options);

  const auto response =
      transport.Call(EncodeFrame(MakeCatchUpRequestFrame(0, 0)), 75);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsTimedOut());
  EXPECT_EQ(transport.stats().drops, 1u);
  EXPECT_EQ(clock.total_slept_ms(), 75u);
}

TEST(FaultyTransportTest, StallPastDeadlineTimesOutShortStallDelivers) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  const std::vector<uint8_t> request =
      EncodeFrame(MakeCatchUpRequestFrame(0, 0));

  FaultOptions options;
  options.seed = 5;
  options.stall = 1.0;
  options.stall_ms = 200;
  {
    FakeClock clock;
    FaultyTransport transport(&endpoint, &clock, options);
    const auto response = transport.Call(request, 100);  // 200ms stall > 100ms
    ASSERT_FALSE(response.ok());
    EXPECT_TRUE(response.status().IsTimedOut());
    EXPECT_EQ(transport.stats().stalls, 1u);
  }
  {
    options.stall_ms = 30;
    FakeClock clock;
    FaultyTransport transport(&endpoint, &clock, options);
    const auto response = transport.Call(request, 100);  // late but in time
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(DecodeFrame(*response).ok());
    EXPECT_EQ(clock.total_slept_ms(), 30u);
  }
}

TEST(FaultyTransportTest, TruncationAndBitFlipsAreCaughtByDecode) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  FakeClock clock;
  FaultOptions options;
  options.seed = 21;
  options.truncate = 0.5;
  options.bit_flip = 0.5;
  FaultyTransport transport(&endpoint, &clock, options);

  const std::vector<uint8_t> request =
      EncodeFrame(MakeCatchUpRequestFrame(primary->ShardOf(0), 0));
  int corrupted = 0;
  for (int i = 0; i < 100; ++i) {
    const auto response = transport.Call(request, 50);
    if (!response.ok()) continue;  // endpoint answered an error frame
    const Result<Frame> frame = DecodeFrame(*response);
    if (!frame.ok()) {
      EXPECT_TRUE(frame.status().IsCorruption());
      ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 0);
  EXPECT_GT(transport.stats().truncations + transport.stats().bit_flips, 0u);
}

TEST(FaultyTransportTest, DuplicateReplaysThePreviousResponse) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  FakeClock clock;
  FaultOptions options;
  options.seed = 3;
  options.duplicate = 1.0;
  FaultyTransport transport(&endpoint, &clock, options);
  const uint32_t shard = primary->ShardOf(0);

  // First exchange: nothing to duplicate yet — delivered fresh.
  const auto first =
      transport.Call(EncodeFrame(MakeCatchUpRequestFrame(shard, 0)), 50);
  ASSERT_TRUE(first.ok());
  // Second exchange asks from a LATER position but receives a replay of
  // the first response.
  const auto second =
      transport.Call(EncodeFrame(MakeCatchUpRequestFrame(shard, 5)), 50);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_GE(transport.stats().duplicates, 1u);
}

TEST(FaultyTransportTest, ReorderHoldsAResponseAndDeliversItLater) {
  auto primary = MakePrimary();
  PrimaryEndpoint endpoint(primary.get());
  FakeClock clock;
  FaultOptions options;
  options.seed = 11;
  options.reorder = 1.0;
  FaultyTransport transport(&endpoint, &clock, options);
  const uint32_t shard = primary->ShardOf(0);

  // First exchange: its response is held back; the caller times out.
  const auto first =
      transport.Call(EncodeFrame(MakeCatchUpRequestFrame(shard, 0)), 50);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsTimedOut());
  EXPECT_EQ(transport.stats().reorders, 1u);

  // Second exchange (different position): the HELD response from the
  // first request arrives instead.
  const auto second =
      transport.Call(EncodeFrame(MakeCatchUpRequestFrame(shard, 7)), 50);
  ASSERT_TRUE(second.ok());
  const Result<Frame> frame = DecodeFrame(*second);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->from_seq, 0u);  // the first request's answer
}

}  // namespace
}  // namespace replica
}  // namespace ltree
