// ReplicationSession tests: clean sync, retry/backoff schedule on the
// fake clock, resume-from-StateVector across retries, snapshot
// degradation after a mid-retry trim, stale-response screening, the
// poisoned terminal state, registration, and the session audit rules.

#include "replica/replication_session.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "replica/clock.h"
#include "replica/transport.h"
#include "replica/wire_format.h"
#include "store/document_store.h"
#include "store/mirror_store.h"

namespace ltree {
namespace replica {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store::DocStoreOptions options;
    options.num_shards = 4;
    options.scheme_spec = "ltree:16:4";
    options.feed_capacity = 4096;
    auto made = store::DocumentStore::Make(options);
    ASSERT_TRUE(made.ok());
    primary_ = std::move(*made);
    for (store::DocId doc = 0; doc < 4; ++doc) {
      ASSERT_TRUE(primary_->CreateDocument(doc).ok());
      for (int i = 0; i < 20; ++i) ASSERT_TRUE(primary_->Append(doc).ok());
    }
    endpoint_ = std::make_unique<PrimaryEndpoint>(primary_.get(),
                                                  primary_.get());
    mirror_ = std::make_unique<store::MirrorStore>(primary_->num_shards());
  }

  void TearDown() override { failpoint::DisarmAll(); }

  SessionOptions DefaultOptions() {
    SessionOptions options;
    options.request_timeout_ms = 50;
    options.max_attempts = 10;
    options.base_backoff_ms = 2;
    options.max_backoff_ms = 64;
    options.jitter = 0;  // exact backoff assertions
    options.poison_after = 3;
    return options;
  }

  std::unique_ptr<store::DocumentStore> primary_;
  std::unique_ptr<PrimaryEndpoint> endpoint_;
  std::unique_ptr<store::MirrorStore> mirror_;
  FakeClock clock_;
};

TEST_F(SessionTest, CleanRoundConverges) {
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             DefaultOptions());
  ASSERT_TRUE(session.SyncRound().ok());
  EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  EXPECT_EQ(session.stats().attempts, primary_->num_shards());
  EXPECT_EQ(session.stats().backoffs, 0u);
  EXPECT_EQ(session.stats().deltas_applied, primary_->num_shards());
  EXPECT_EQ(session.stats().registrations, 1u);
  EXPECT_EQ(primary_->num_subscribers(), 1u);
  EXPECT_TRUE(session.Validate().ok()) << session.Validate().ToString();
}

TEST_F(SessionTest, RetriesThroughTransientServerOutageWithBackoff) {
  // Three serving failures, then service resumes: the session must retry
  // through them and land converged.
  failpoint::Arm("replica.serve", Status::TimedOut("outage"), /*times=*/3);
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             DefaultOptions());
  ASSERT_TRUE(session.SyncShard(0).ok());
  EXPECT_EQ(session.stats().server_retryable, 3u);
  EXPECT_EQ(session.stats().backoffs, 3u);
  // Deterministic schedule with jitter 0: 2, 4, 8.
  EXPECT_EQ(clock_.sleeps(), (std::vector<uint64_t>{2, 4, 8}));
  EXPECT_TRUE(session.Validate().ok());
}

TEST_F(SessionTest, BackoffIsCappedAndJitterBounded) {
  SessionOptions options = DefaultOptions();
  options.jitter = 0.5;
  options.max_attempts = 8;
  options.base_backoff_ms = 4;
  options.max_backoff_ms = 16;
  failpoint::Arm("replica.serve", Status::TimedOut("outage"));  // unbounded
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             options);
  EXPECT_TRUE(session.SyncShard(0).IsTimedOut());
  ASSERT_EQ(clock_.sleeps().size(), 7u);  // max_attempts - 1 backoffs
  const std::vector<uint64_t> base = {4, 8, 16, 16, 16, 16, 16};
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(clock_.sleeps()[i], base[i]) << i;
    EXPECT_LE(clock_.sleeps()[i], base[i] + base[i] / 2) << i;
  }
}

TEST_F(SessionTest, ResumesFromStateVectorAcrossRetries) {
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             DefaultOptions());
  ASSERT_TRUE(session.SyncRound().ok());
  const uint64_t applied_before = session.stats().deltas_applied;

  // More writes, then a transient outage: the retry must ask from the
  // mirror's CURRENT position, not from zero — the delta that finally
  // lands is the small suffix, which strict ApplyCatchUp only accepts if
  // from_seq matches exactly.
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(primary_->Append(0).ok());
  failpoint::Arm("replica.serve", Status::TimedOut("blip"), /*times=*/2);
  ASSERT_TRUE(session.SyncRound().ok());
  EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  EXPECT_GT(session.stats().deltas_applied, applied_before);
  EXPECT_EQ(session.stats().snapshots_applied, 0u);
}

TEST_F(SessionTest, DegradesToSnapshotWhenFeedTrimmedMidRetry) {
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             DefaultOptions());
  ASSERT_TRUE(session.SyncRound().ok());

  // While the session is cut off (every serve fails), the primary keeps
  // writing and trims its feeds far past the mirror's position.
  failpoint::Arm("replica.serve", Status::TimedOut("partition"), /*times=*/2);
  for (store::DocId doc = 0; doc < 4; ++doc) {
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(primary_->Append(doc).ok());
  }
  primary_->TrimFeeds(/*keep=*/1);

  ASSERT_TRUE(session.SyncRound().ok());
  EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  EXPECT_GT(session.stats().snapshots_applied, 0u);
}

TEST_F(SessionTest, StaleDeliveriesAreScreenedNotApplied) {
  // Pure-reorder transport: every fresh response is held one exchange.
  FaultOptions faults;
  faults.seed = 17;
  faults.reorder = 0.4;
  FaultyTransport transport(endpoint_.get(), &clock_, faults);
  ReplicationSession session(mirror_.get(), &transport, &clock_,
                             DefaultOptions());

  for (int round = 0; round < 5; ++round) {
    for (store::DocId doc = 0; doc < 4; ++doc) {
      ASSERT_TRUE(primary_->Append(doc).ok());
    }
    const Status round_status = session.SyncRound();
    ASSERT_TRUE(round_status.ok()) << round_status.ToString();
    EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  }
  // Reordering fired, so stale screening must have fired too — and no
  // stale delivery ever became a protocol violation.
  EXPECT_GT(transport.stats().reorders, 0u);
  EXPECT_GT(session.stats().stale_responses, 0u);
  EXPECT_EQ(session.stats().protocol_violations, 0u);
  EXPECT_TRUE(session.Validate().ok()) << session.Validate().ToString();
}

// A transport that answers every request with a fixed frame (the
// request's nonce echoed, so the response passes the stale screen) —
// protocol-violating responses on demand.
class CannedTransport : public Transport {
 public:
  explicit CannedTransport(Frame response) : response_(std::move(response)) {}
  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request,
                                    uint64_t timeout_ms) override {
    (void)timeout_ms;
    const Result<Frame> decoded = DecodeFrame(request);
    if (decoded.ok()) response_.nonce = decoded->nonce;
    return EncodeFrame(response_);
  }

 private:
  Frame response_;
};

TEST_F(SessionTest, PersistentProtocolViolationsPoisonTheSession) {
  // A well-formed delta for the right shard/position but with a sequence
  // gap: decodes fine, fails strict apply — a protocol violation.
  Frame bad;
  bad.type = FrameType::kDelta;
  bad.shard = 0;
  bad.from_seq = 0;
  bad.to_seq = 2;
  store::FeedEvent event;
  event.seq = 2;  // gap: mirror expects seq 1 first
  event.kind = store::FeedEvent::Kind::kInsert;
  event.cookie = 99;
  event.new_label = 7;
  bad.events.push_back(event);
  CannedTransport transport(bad);

  SessionOptions options = DefaultOptions();
  options.poison_after = 3;
  ReplicationSession session(mirror_.get(), &transport, &clock_, options);

  const Status st = session.SyncShard(0);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_TRUE(session.poisoned());
  EXPECT_EQ(session.consecutive_violations(), 3u);
  EXPECT_EQ(session.stats().protocol_violations, 3u);
  // Poisoned is terminal: no further attempts happen.
  const uint64_t attempts = session.stats().attempts;
  EXPECT_TRUE(session.SyncShard(0).IsFailedPrecondition());
  EXPECT_TRUE(session.SyncRound().IsFailedPrecondition());
  EXPECT_EQ(session.stats().attempts, attempts);
  EXPECT_TRUE(session.Validate().ok()) << session.Validate().ToString();
}

TEST_F(SessionTest, SuccessResetsTheViolationStreak) {
  // Two violations, then service recovers: the streak must reset and the
  // session must stay healthy.
  failpoint::Arm("replica.serve", Status::InvalidArgument("bad peer"),
                 /*times=*/2);
  SessionOptions options = DefaultOptions();
  options.poison_after = 3;
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             options);
  ASSERT_TRUE(session.SyncShard(0).ok());
  EXPECT_FALSE(session.poisoned());
  EXPECT_EQ(session.consecutive_violations(), 0u);
  EXPECT_EQ(session.stats().protocol_violations, 2u);
}

TEST_F(SessionTest, WireCorruptionIsRetryableNotViolation) {
  FaultOptions faults;
  faults.seed = 23;
  faults.bit_flip = 0.5;
  FaultyTransport transport(endpoint_.get(), &clock_, faults);
  SessionOptions options = DefaultOptions();
  options.max_attempts = 40;
  ReplicationSession session(mirror_.get(), &transport, &clock_, options);

  ASSERT_TRUE(session.SyncRound().ok());
  EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  // Flips hit either the response (client-side decode failure) or the
  // request (server echoes Corruption); both are retryable weather.
  EXPECT_GT(session.stats().wire_corruptions + session.stats().server_retryable,
            0u);
  EXPECT_EQ(session.stats().protocol_violations, 0u);
  EXPECT_FALSE(session.poisoned());
}

TEST_F(SessionTest, RegistrationFeedsSubscriberAwareTrimming) {
  SessionOptions options = DefaultOptions();
  options.subscriber_id = 42;
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             options);
  ASSERT_TRUE(session.SyncRound().ok());
  ASSERT_EQ(primary_->num_subscribers(), 1u);

  // The registered position is the mirror's converged head, so trimming
  // to the slowest subscriber can drop every retained event.
  for (uint32_t shard = 0; shard < primary_->num_shards(); ++shard) {
    EXPECT_EQ(primary_->SlowestSubscriberSeq(shard),
              mirror_->state_vector().seq(shard));
  }
  EXPECT_GT(primary_->TrimToSlowestSubscriber(), 0u);
  // And the next delta sync still works: nothing the mirror needs was
  // dropped.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(primary_->Append(0).ok());
  ASSERT_TRUE(session.SyncRound().ok());
  EXPECT_TRUE(mirror_->CheckEquivalent(*primary_).ok());
  EXPECT_EQ(session.stats().snapshots_applied, 0u);
}

TEST_F(SessionTest, ShardOutOfRangeIsInvalidArgument) {
  ReplicationSession session(mirror_.get(), endpoint_.get(), &clock_,
                             DefaultOptions());
  EXPECT_TRUE(session.SyncShard(99).IsInvalidArgument());
}

}  // namespace
}  // namespace replica
}  // namespace ltree
