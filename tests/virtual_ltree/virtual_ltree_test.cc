// Unit tests for the virtual L-Tree (Section 4.2).

#include "virtual_ltree/virtual_ltree.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace ltree {
namespace {

std::vector<LeafCookie> MakeCookies(size_t n) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), 0);
  return cookies;
}

TEST(VirtualLTreeTest, CreateRejectsInvalidParams) {
  EXPECT_FALSE(VirtualLTree::Create(Params{.f = 5, .s = 2}).ok());
  EXPECT_TRUE(VirtualLTree::Create(Params{.f = 4, .s = 2}).ok());
}

TEST(VirtualLTreeTest, BulkLoadMatchesPaperFigure2) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  EXPECT_EQ(labels, (std::vector<Label>{0, 1, 5, 6, 25, 26, 30, 31}));
  EXPECT_EQ(vt->height(), 3u);
  EXPECT_EQ(vt->label_space(), 125u);
  EXPECT_TRUE(vt->CheckInvariants().ok());
}

TEST(VirtualLTreeTest, SecondBulkLoadRejected) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(4)).ok());
  EXPECT_TRUE(vt->BulkLoad(MakeCookies(4)).IsFailedPrecondition());
}

TEST(VirtualLTreeTest, CookiesRoundTrip) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(*vt->GetCookie(labels[i]), i);
    EXPECT_FALSE(*vt->IsDeleted(labels[i]));
  }
  EXPECT_TRUE(vt->GetCookie(999).status().IsNotFound());
}

TEST(VirtualLTreeTest, InsertAfterWithoutSplit) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  auto inserted = vt->InsertAfter(labels[1], 100);
  ASSERT_TRUE(inserted.ok());
  EXPECT_GT(*inserted, labels[1]);
  EXPECT_EQ(*vt->GetCookie(*inserted), 100u);
  EXPECT_EQ(vt->num_slots(), 9u);
  EXPECT_EQ(vt->stats().splits, 0u);
  EXPECT_TRUE(vt->CheckInvariants().ok());
}

TEST(VirtualLTreeTest, InsertOnUnknownLabelFails) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(4)).ok());
  EXPECT_TRUE(vt->InsertAfter(9999, 1).status().IsNotFound());
  EXPECT_TRUE(vt->InsertBefore(9999, 1).status().IsNotFound());
}

TEST(VirtualLTreeTest, PushBackOnEmpty) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto l0 = vt->PushBack(7);
  ASSERT_TRUE(l0.ok());
  EXPECT_EQ(*l0, 0u);
  auto l1 = vt->PushBack(8);
  ASSERT_TRUE(l1.ok());
  EXPECT_GT(*l1, *l0);
  EXPECT_TRUE(vt->CheckInvariants().ok());
}

TEST(VirtualLTreeTest, PushFrontShiftsExisting) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(vt->PushBack(1).ok());
  auto front = vt->PushFront(2);
  ASSERT_TRUE(front.ok());
  auto labels = vt->AllLabels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(*vt->GetCookie(labels[0]), 2u);
  EXPECT_EQ(*vt->GetCookie(labels[1]), 1u);
}

TEST(VirtualLTreeTest, SplitKeepsOrder) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  // Two inserts into the same height-1 interval force a split (Figure 2 d).
  auto a = vt->InsertBefore(labels[2], 100);
  ASSERT_TRUE(a.ok());
  auto b = vt->InsertAfter(*a, 101);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(vt->stats().splits, 1u);
  EXPECT_TRUE(vt->CheckInvariants().ok());
  // Cookie order must read 0,1,100,101,2,...,7.
  std::vector<LeafCookie> order;
  for (Label l : vt->AllLabels()) order.push_back(*vt->GetCookie(l));
  EXPECT_EQ(order,
            (std::vector<LeafCookie>{0, 1, 100, 101, 2, 3, 4, 5, 6, 7}));
}

TEST(VirtualLTreeTest, RootSplitGrowsHeight) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(4)).ok());
  EXPECT_EQ(vt->height(), 2u);
  uint64_t cookie = 100;
  while (vt->stats().root_splits == 0) {
    ASSERT_TRUE(vt->PushBack(cookie++).ok());
    ASSERT_TRUE(vt->CheckInvariants().ok());
    ASSERT_LT(cookie, 200u);
  }
  EXPECT_EQ(vt->height(), 3u);
}

TEST(VirtualLTreeTest, MarkDeletedKeepsSlot) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  ASSERT_TRUE(vt->MarkDeleted(labels[3]).ok());
  EXPECT_EQ(vt->num_slots(), 8u);
  EXPECT_EQ(vt->num_live_leaves(), 7u);
  EXPECT_TRUE(*vt->IsDeleted(labels[3]));
  EXPECT_TRUE(vt->MarkDeleted(labels[3]).IsFailedPrecondition());
  EXPECT_TRUE(vt->MarkDeleted(12345).IsNotFound());
  EXPECT_EQ(vt->LiveLabels().size(), 7u);
  EXPECT_EQ(vt->AllLabels().size(), 8u);
}

TEST(VirtualLTreeTest, SelectSlotByRank) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  for (uint64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(*vt->SelectSlot(r), labels[r]);
  }
  EXPECT_TRUE(vt->SelectSlot(8).status().IsOutOfRange());
}

class CountingListener : public RelabelListener {
 public:
  void OnRelabel(LeafCookie, Label, Label) override { ++count; }
  int count = 0;
};

TEST(VirtualLTreeTest, ListenerFiresOnShift) {
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8), &labels).ok());
  CountingListener listener;
  vt->set_listener(&listener);
  ASSERT_TRUE(vt->InsertBefore(labels[0], 100).ok());
  EXPECT_GT(listener.count, 0);
}

TEST(VirtualLTreeTest, BatchInsertAppendsInOrder) {
  auto vt = VirtualLTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(4), &labels).ok());
  std::vector<LeafCookie> batch{100, 101, 102, 103, 104};
  std::vector<Label> batch_labels;
  ASSERT_TRUE(vt->InsertBatchAfter(labels[1], batch, &batch_labels).ok());
  ASSERT_EQ(batch_labels.size(), 5u);
  EXPECT_TRUE(std::is_sorted(batch_labels.begin(), batch_labels.end()));
  EXPECT_TRUE(vt->CheckInvariants().ok());
  std::vector<LeafCookie> order;
  for (Label l : vt->AllLabels()) order.push_back(*vt->GetCookie(l));
  EXPECT_EQ(order, (std::vector<LeafCookie>{0, 1, 100, 101, 102, 103, 104, 2,
                                            3}));
}

TEST(VirtualLTreeTest, CapacityErrorWithoutCorruption) {
  // f=4,s=2: max height 27, label space 5^27. A bulk load needing height 28
  // must fail cleanly.
  auto vt = VirtualLTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  // 2^28 leaves won't fit in memory; use the capacity check path via
  // EnsureCapacityFor on a small tree instead: push the check through
  // InsertCore by faking a huge batch size is impractical, so just verify
  // BulkLoad's height check.
  // d=2 -> need n > 2^27 for h0=28.
  // (Covered more cheaply in the materialized tests; here check the small
  // params path that the tree stays usable after an error.)
  ASSERT_TRUE(vt->BulkLoad(MakeCookies(8)).ok());
  EXPECT_TRUE(vt->CheckInvariants().ok());
}

}  // namespace
}  // namespace ltree
