// The headline property of Section 4.2: the virtual L-Tree runs the same
// maintenance algorithm as the materialized tree, so identical operation
// streams must produce identical label sequences at every step.
//
// Operations are addressed by *rank* (slot position), which is well-defined
// in both representations even as labels change.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/ltree.h"
#include "virtual_ltree/virtual_ltree.h"

namespace ltree {
namespace {

struct ParamCase {
  uint32_t f;
  uint32_t s;
  bool purge;
};

class EquivalenceTest : public ::testing::TestWithParam<ParamCase> {};

// Drives both structures through the same rank-addressed op stream and
// compares the full label sequence after every operation.
TEST_P(EquivalenceTest, RandomSingleInsertsAndDeletes) {
  const ParamCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s, .purge_tombstones_on_split = pc.purge};
  auto mt = LTree::Create(params).ValueOrDie();
  auto vt = VirtualLTree::Create(params).ValueOrDie();

  const size_t kInitial = 16;
  std::vector<LeafCookie> cookies(kInitial);
  std::iota(cookies.begin(), cookies.end(), 0);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(mt->BulkLoad(cookies, &handles).ok());
  ASSERT_TRUE(vt->BulkLoad(cookies).ok());
  ASSERT_EQ(mt->AllLabels(), vt->AllLabels());

  Rng rng(pc.f * 1000 + pc.s * 10 + (pc.purge ? 1 : 0));
  // Rank-ordered list of materialized handles, mirroring slot order.
  std::vector<LTree::LeafHandle> slots = handles;

  const int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t action = rng.Uniform(10);
    if (action < 7 || slots.size() < 4) {
      // Insert after a random slot.
      const size_t r = static_cast<size_t>(rng.Uniform(slots.size()));
      const LeafCookie c = 1000 + static_cast<LeafCookie>(op);
      auto mh = mt->InsertAfter(slots[r], c);
      ASSERT_TRUE(mh.ok());
      auto vl = vt->InsertAfter(*vt->SelectSlot(r), c);
      ASSERT_TRUE(vl.ok());
      slots.insert(slots.begin() + static_cast<long>(r) + 1, *mh);
      ASSERT_EQ(mt->label(*mh), *vl) << "op " << op;
    } else if (action < 8) {
      // Insert before a random slot.
      const size_t r = static_cast<size_t>(rng.Uniform(slots.size()));
      const LeafCookie c = 5000 + static_cast<LeafCookie>(op);
      auto mh = mt->InsertBefore(slots[r], c);
      ASSERT_TRUE(mh.ok());
      auto vl = vt->InsertBefore(*vt->SelectSlot(r), c);
      ASSERT_TRUE(vl.ok());
      slots.insert(slots.begin() + static_cast<long>(r), *mh);
      ASSERT_EQ(mt->label(*mh), *vl) << "op " << op;
    } else {
      // Delete a random live slot (tombstone).
      const size_t r = static_cast<size_t>(rng.Uniform(slots.size()));
      if (!mt->deleted(slots[r])) {
        ASSERT_TRUE(mt->MarkDeleted(slots[r]).ok());
        ASSERT_TRUE(vt->MarkDeleted(*vt->SelectSlot(r)).ok());
      }
    }

    if (pc.purge) {
      // Purging drops tombstoned slots during rebuilds; handles into the
      // materialized tree die, so resync the slot list from iteration.
      if (mt->num_slots() != slots.size()) {
        slots.clear();
        for (auto leaf = mt->FirstLeaf(); leaf != nullptr;
             leaf = mt->NextLeaf(leaf)) {
          slots.push_back(leaf);
        }
      }
    }

    ASSERT_EQ(mt->num_slots(), vt->num_slots()) << "op " << op;
    ASSERT_EQ(mt->AllLabels(), vt->AllLabels()) << "op " << op;
    ASSERT_EQ(mt->height(), vt->height()) << "op " << op;
    if (op % 50 == 0) {
      ASSERT_TRUE(mt->CheckInvariants().ok()) << "op " << op;
      ASSERT_TRUE(vt->CheckInvariants().ok()) << "op " << op;
    }
  }
  // Structural event counts agree for single-insert streams.
  EXPECT_EQ(mt->stats().splits, vt->stats().splits);
  EXPECT_EQ(mt->stats().root_splits, vt->stats().root_splits);
}

TEST_P(EquivalenceTest, BatchInsertStreams) {
  const ParamCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s, .purge_tombstones_on_split = pc.purge};
  auto mt = LTree::Create(params).ValueOrDie();
  auto vt = VirtualLTree::Create(params).ValueOrDie();

  std::vector<LeafCookie> cookies(8);
  std::iota(cookies.begin(), cookies.end(), 0);
  ASSERT_TRUE(mt->BulkLoad(cookies).ok());
  ASSERT_TRUE(vt->BulkLoad(cookies).ok());

  Rng rng(pc.f * 131 + pc.s);
  LeafCookie next_cookie = 100;
  for (int round = 0; round < 60; ++round) {
    const uint64_t slots = mt->num_slots();
    const size_t r = static_cast<size_t>(rng.Uniform(slots));
    const uint64_t batch_size = 1 + rng.Uniform(40);
    std::vector<LeafCookie> batch(batch_size);
    std::iota(batch.begin(), batch.end(), next_cookie);
    next_cookie += batch_size;

    // Find the r-th materialized leaf.
    LTree::LeafHandle pos = mt->FirstLeaf();
    for (size_t i = 0; i < r; ++i) pos = mt->NextLeaf(pos);

    ASSERT_TRUE(mt->InsertBatchAfter(pos, batch).ok()) << "round " << round;
    ASSERT_TRUE(vt->InsertBatchAfter(*vt->SelectSlot(r), batch).ok())
        << "round " << round;

    ASSERT_EQ(mt->AllLabels(), vt->AllLabels()) << "round " << round;
    ASSERT_EQ(mt->height(), vt->height()) << "round " << round;
    ASSERT_TRUE(mt->CheckInvariants().ok()) << "round " << round;
    ASSERT_TRUE(vt->CheckInvariants().ok()) << "round " << round;
  }
  // The plan/apply pipeline makes the same coalescing decisions on both
  // representations, so the full structural accounting stays in lockstep
  // even through batch escalations.
  EXPECT_EQ(mt->stats().splits, vt->stats().splits);
  EXPECT_EQ(mt->stats().root_splits, vt->stats().root_splits);
  EXPECT_EQ(mt->stats().escalations, vt->stats().escalations);
  EXPECT_EQ(mt->stats().relabel_passes, vt->stats().relabel_passes);
  EXPECT_EQ(mt->stats().coalesced_regions, vt->stats().coalesced_regions);
  // Exactly one relabel pass per batch.
  EXPECT_EQ(mt->stats().relabel_passes, mt->stats().batch_inserts);
}

TEST_P(EquivalenceTest, AppendOnlyStream) {
  const ParamCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s, .purge_tombstones_on_split = pc.purge};
  auto mt = LTree::Create(params).ValueOrDie();
  auto vt = VirtualLTree::Create(params).ValueOrDie();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(mt->PushBack(static_cast<LeafCookie>(i)).ok());
    ASSERT_TRUE(vt->PushBack(static_cast<LeafCookie>(i)).ok());
    ASSERT_EQ(mt->AllLabels(), vt->AllLabels()) << "i=" << i;
  }
  EXPECT_EQ(mt->stats().splits, vt->stats().splits);
  EXPECT_EQ(mt->stats().root_splits, vt->stats().root_splits);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, EquivalenceTest,
    ::testing::Values(ParamCase{4, 2, false}, ParamCase{4, 2, true},
                      ParamCase{6, 2, false}, ParamCase{8, 2, false},
                      ParamCase{8, 4, false}, ParamCase{12, 3, false},
                      ParamCase{16, 4, false}, ParamCase{16, 4, true},
                      ParamCase{32, 2, false}),
    [](const auto& info) {
      return "f" + std::to_string(info.param.f) + "s" +
             std::to_string(info.param.s) +
             (info.param.purge ? "purge" : "");
    });

}  // namespace
}  // namespace ltree
