#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ltree {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  // bound 1 always yields 0
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(42);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    seen[static_cast<size_t>(rng.Uniform(10))]++;
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // each value ~1000 expected
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(19);
  ZipfSampler zipf(100, 0.0);
  std::vector<int> seen(100, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = zipf.Sample(&rng);
    ASSERT_LT(v, 100u);
    seen[static_cast<size_t>(v)]++;
  }
  for (int count : seen) {
    EXPECT_GT(count, 600);
    EXPECT_LT(count, 1400);
  }
}

TEST(ZipfTest, SkewConcentratesOnSmallValues) {
  Rng rng(23);
  ZipfSampler zipf(1000, 1.2);
  int in_top10 = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = zipf.Sample(&rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++in_top10;
  }
  // With theta=1.2, the top 10 of 1000 values get well over half the mass.
  EXPECT_GT(in_top10, kSamples / 2);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  Rng rng(29);
  ZipfSampler mild(1000, 0.5);
  ZipfSampler heavy(1000, 1.5);
  int mild_zero = 0;
  int heavy_zero = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild.Sample(&rng) == 0) ++mild_zero;
    if (heavy.Sample(&rng) == 0) ++heavy_zero;
  }
  EXPECT_LT(mild_zero, heavy_zero);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace ltree
