#include "common/math_util.h"

#include <gtest/gtest.h>

#include <limits>

namespace ltree {
namespace {

TEST(CheckedMulTest, Basic) {
  EXPECT_EQ(CheckedMul(3, 4), 12u);
  EXPECT_EQ(CheckedMul(0, 123456), 0u);
  EXPECT_EQ(CheckedMul(123456, 0), 0u);
}

TEST(CheckedMulTest, Overflow) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  EXPECT_FALSE(CheckedMul(big, 2).has_value());
  EXPECT_EQ(CheckedMul(big, 1), big);
  EXPECT_FALSE(CheckedMul(uint64_t{1} << 32, uint64_t{1} << 32).has_value());
  EXPECT_EQ(CheckedMul(uint64_t{1} << 31, uint64_t{1} << 32),
            uint64_t{1} << 63);
}

TEST(CheckedAddTest, Basic) {
  EXPECT_EQ(CheckedAdd(1, 2), 3u);
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(CheckedAdd(big, 0), big);
  EXPECT_FALSE(CheckedAdd(big, 1).has_value());
}

TEST(CheckedPowTest, Basic) {
  EXPECT_EQ(CheckedPow(2, 10), 1024u);
  EXPECT_EQ(CheckedPow(5, 0), 1u);
  EXPECT_EQ(CheckedPow(0, 0), 1u);
  EXPECT_EQ(CheckedPow(0, 5), 0u);
  EXPECT_EQ(CheckedPow(1, 1000), 1u);
  EXPECT_EQ(CheckedPow(3, 3), 27u);
  EXPECT_EQ(CheckedPow(10, 19), 10000000000000000000ull);
}

TEST(CheckedPowTest, Overflow) {
  EXPECT_FALSE(CheckedPow(2, 64).has_value());
  EXPECT_EQ(CheckedPow(2, 63), uint64_t{1} << 63);
  EXPECT_FALSE(CheckedPow(10, 20).has_value());
  EXPECT_FALSE(CheckedPow(5, 30).has_value());
  EXPECT_EQ(CheckedPow(5, 27), 7450580596923828125ull);
}

TEST(PowOrCapacityTest, ErrorsMapToCapacity) {
  EXPECT_TRUE(PowOrCapacity(2, 10).ok());
  EXPECT_EQ(*PowOrCapacity(2, 10), 1024u);
  auto r = PowOrCapacity(2, 64);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCapacityExceeded());
}

TEST(FloorLog2Test, Basic) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(FloorLog2(std::numeric_limits<uint64_t>::max()), 63u);
}

TEST(CeilLogTest, Basic) {
  EXPECT_EQ(CeilLog(2, 1), 0u);
  EXPECT_EQ(CeilLog(2, 2), 1u);
  EXPECT_EQ(CeilLog(2, 3), 2u);
  EXPECT_EQ(CeilLog(2, 8), 3u);
  EXPECT_EQ(CeilLog(2, 9), 4u);
  EXPECT_EQ(CeilLog(3, 27), 3u);
  EXPECT_EQ(CeilLog(3, 28), 4u);
  EXPECT_EQ(CeilLog(10, 1000000), 6u);
}

TEST(CeilLogTest, LargeValuesDoNotOverflow) {
  // 2^63 < max < 2^64: the answer is 64 even though 2^64 overflows.
  EXPECT_EQ(CeilLog(2, std::numeric_limits<uint64_t>::max()), 64u);
}

TEST(CeilDivTest, Basic) {
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
  EXPECT_EQ(CeilDiv(5, 5), 1u);
  EXPECT_EQ(CeilDiv(6, 5), 2u);
  EXPECT_EQ(CeilDiv(10, 5), 2u);
}

TEST(BitWidthTest, Basic) {
  EXPECT_EQ(BitWidth(0), 1u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(std::numeric_limits<uint64_t>::max()), 64u);
}

}  // namespace
}  // namespace ltree
