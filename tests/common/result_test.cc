#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/macros.h"

namespace ltree {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("boom");
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  LTREE_ASSIGN_OR_RETURN(int half, Halve(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status st = UseAssignOrReturn(3, &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

Status UseReturnIfError(bool fail) {
  LTREE_RETURN_IF_ERROR(fail ? Status::IoError("disk") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_TRUE(UseReturnIfError(true).IsIoError());
}

}  // namespace
}  // namespace ltree
