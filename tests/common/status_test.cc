#include "common/status.h"

#include <gtest/gtest.h>

namespace ltree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad f");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad f");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_FALSE(st.IsNotFound());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::CapacityExceeded("y").ToString(), "CapacityExceeded: y");
}

TEST(StatusTest, AllFactoriesMatchPredicates) {
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::CapacityExceeded("m").IsCapacityExceeded());
  EXPECT_TRUE(Status::NotFound("m").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("m").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("m").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("m").IsNotImplemented());
  EXPECT_TRUE(Status::ParseError("m").IsParseError());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::Corruption("broken");
  Status b = a;  // NOLINT
  EXPECT_EQ(b.code(), StatusCode::kCorruption);
  EXPECT_EQ(b.message(), "broken");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace ltree
