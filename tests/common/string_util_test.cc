#include "common/string_util.h"

#include <gtest/gtest.h>

namespace ltree {
namespace {

TEST(SplitStringTest, Basic) {
  auto parts = SplitString("a/b/c", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyPieces) {
  auto parts = SplitString("//a//", '/');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "a");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, NoSeparator) {
  auto parts = SplitString("abc", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"solo"}, ", "), "solo");
}

TEST(HumanCountTest, Basic) {
  EXPECT_EQ(HumanCount(12), "12.00");
  EXPECT_EQ(HumanCount(1500), "1.50k");
  EXPECT_EQ(HumanCount(2500000), "2.50M");
  EXPECT_EQ(HumanCount(3.2e9), "3.20G");
}

}  // namespace
}  // namespace ltree
