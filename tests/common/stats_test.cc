#include "common/stats.h"

#include <gtest/gtest.h>

namespace ltree {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.37;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    double x = i * 0.37;
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(RunningStatTest, Reset) {
  RunningStat s;
  s.Add(5);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1003.0 / 4.0);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  for (uint64_t i = 0; i < 1000; ++i) h.Add(i);
  double q50 = h.Quantile(0.5);
  double q90 = h.Quantile(0.9);
  double q99 = h.Quantile(0.99);
  EXPECT_LE(q50, q90);
  EXPECT_LE(q90, q99);
  EXPECT_GT(q99, 256.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, Merge) {
  Histogram a;
  Histogram b;
  a.Add(1);
  a.Add(100);
  b.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 100u);
}

TEST(HistogramTest, ToStringListsBuckets) {
  Histogram h;
  h.Add(3);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

TEST(HistogramTest, Reset) {
  Histogram h;
  h.Add(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

}  // namespace
}  // namespace ltree
