// End-to-end integration: generator -> serializer -> parser -> labeled
// store -> queries -> random edits -> queries again, cross-checked against
// naive DOM evaluation throughout. This is the "XML database" loop the
// paper's introduction describes, exercised over every module at once —
// and, since the pipeline is scheme-pluggable, over every labeling scheme.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "docstore/labeled_document.h"
#include "query/path_query.h"
#include "workload/xml_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace ltree {
namespace {

struct EndToEndCase {
  const char* spec;
  uint64_t books;
};

class EndToEndTest : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEndTest, FullPipelineStaysConsistent) {
  const EndToEndCase tc = GetParam();

  // Generate -> serialize -> reparse (exercises generator + serializer +
  // parser agreement), then label.
  const std::string xml_text = workload::GenerateCatalogXml(tc.books, 3, 77);
  auto store =
      docstore::LabeledDocument::FromXml(xml_text, tc.spec).MoveValueUnsafe();
  ASSERT_TRUE(store->CheckConsistency().ok());

  const char* paths[] = {"//book//title", "/site/books/book",
                         "//chapter/para", "//author/name", "/site//*"};
  auto verify_all = [&](const std::string& when) {
    for (const char* path : paths) {
      auto q = query::PathQuery::Parse(path).ValueOrDie();
      std::vector<xml::NodeId> label_ids;
      for (const auto* row : query::EvaluateWithLabels(q, store->table())) {
        label_ids.push_back(row->id);
      }
      auto dom_ids = query::EvaluateOnDocument(q, store->document());
      ASSERT_EQ(label_ids, dom_ids) << path << " " << when;
    }
  };
  verify_all("after load");

  // Edit storm: fragments, single elements, texts and deletions.
  auto books_q = query::PathQuery::Parse("/site/books").ValueOrDie();
  const xml::NodeId books_id =
      query::EvaluateWithLabels(books_q, store->table())[0]->id;
  Rng rng(std::hash<std::string>{}(tc.spec) & 0xffff);
  for (int op = 0; op < 120; ++op) {
    const uint64_t dice = rng.Uniform(10);
    if (dice < 4) {
      ASSERT_TRUE(store
                      ->InsertFragment(
                          books_id, 0,
                          "<book><title>x</title><chapter><title>y</title>"
                          "<para>z</para></chapter></book>")
                      .ok());
    } else if (dice < 7) {
      auto all_books = store->table().ByTag("book");
      if (!all_books.empty()) {
        const auto* victim = all_books[rng.Uniform(all_books.size())];
        auto ch = store->InsertElement(victim->id, 0, "chapter");
        ASSERT_TRUE(ch.ok());
        ASSERT_TRUE(store->InsertElement(*ch, 0, "para").ok());
      }
    } else if (dice < 8) {
      auto chapters = store->table().ByTag("chapter");
      if (!chapters.empty()) {
        const auto* target = chapters[rng.Uniform(chapters.size())];
        ASSERT_TRUE(store->InsertText(target->id, 0, "note").ok());
      }
    } else {
      auto chapters = store->table().ByTag("chapter");
      if (chapters.size() > 3) {
        const auto* victim = chapters[rng.Uniform(chapters.size())];
        ASSERT_TRUE(store->DeleteSubtree(victim->id).ok());
      }
    }
    if (op % 30 == 29) {
      ASSERT_TRUE(store->CheckConsistency().ok()) << "op " << op;
      verify_all("op " + std::to_string(op));
    }
  }
  ASSERT_TRUE(store->CheckConsistency().ok());
  verify_all("final");

  // The surviving document round-trips through the serializer.
  auto reparsed = xml::Parse(xml::Serialize(store->document()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_elements(), store->document().num_elements());
}

TEST_P(EndToEndTest, VirtualStoreTracksMaterializedLabels) {
  // Loading the same document over "ltree:f:s" and "virtual:f:s" must
  // produce label-for-label identical stores (Section 4.2: the virtual
  // variant mirrors the materialized algorithm decision-for-decision).
  const EndToEndCase tc = GetParam();
  const std::string spec = tc.spec;
  if (spec.rfind("ltree:", 0) != 0) {
    GTEST_SKIP() << "only meaningful for materialized L-Tree specs";
  }
  const std::string xml_text = workload::GenerateCatalogXml(tc.books, 2, 5);
  auto mat =
      docstore::LabeledDocument::FromXml(xml_text, spec).MoveValueUnsafe();
  auto virt = docstore::LabeledDocument::FromXml(
                  xml_text, "virtual:" + spec.substr(6))
                  .MoveValueUnsafe();
  EXPECT_EQ(mat->label_store().Labels(), virt->label_store().Labels());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, EndToEndTest,
    ::testing::Values(EndToEndCase{"ltree:4:2", 20},
                      EndToEndCase{"ltree:16:4", 60},
                      EndToEndCase{"ltree:32:2", 40},
                      EndToEndCase{"ltree:16:4:purge", 30},
                      EndToEndCase{"virtual:16:4", 30},
                      EndToEndCase{"bender", 25},
                      EndToEndCase{"gap:64", 25},
                      EndToEndCase{"sequential", 12}),
    [](const auto& info) {
      std::string name = info.param.spec;
      for (char& c : name) {
        if (c == ':' || c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ltree
