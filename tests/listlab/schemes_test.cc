// Behavioural tests for the individual labeling schemes.

#include <gtest/gtest.h>

#include "listlab/bender_list.h"
#include "listlab/factory.h"
#include "listlab/gap_list.h"
#include "listlab/ltree_adapters.h"
#include "listlab/sequential_list.h"

namespace ltree {
namespace listlab {
namespace {

TEST(SequentialListTest, BulkLoadIsConsecutive) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(5, &ids).ok());
  EXPECT_EQ(list.Labels(), (std::vector<Label>{0, 1, 2, 3, 4}));
  EXPECT_EQ(list.size(), 5u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, MidInsertShiftsSuffix) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  // Insert after position 3: labels 4..9 shift.
  auto id = list.InsertAfter(ids[3]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 4u);
  EXPECT_EQ(list.stats().items_relabeled, 6u);
  EXPECT_EQ(list.Labels(),
            (std::vector<Label>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, AppendIsFree) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.PushBack().ok());
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(SequentialListTest, PushFrontShiftsEverything) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.PushFront().ok());
  EXPECT_EQ(list.stats().items_relabeled, 10u);
}

TEST(SequentialListTest, EraseLeavesGapThatAbsorbsShift) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.Erase(ids[5]).ok());  // label 5 vacated
  ASSERT_TRUE(list.InsertAfter(ids[2]).ok());
  // Shift stops at the vacated slot: labels 3,4 move to 4,5.
  EXPECT_EQ(list.stats().items_relabeled, 2u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, ErasedIdRejected) {
  SequentialList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(3, &ids).ok());
  ASSERT_TRUE(list.Erase(ids[1]).ok());
  EXPECT_TRUE(list.Erase(ids[1]).IsNotFound());
  EXPECT_TRUE(list.GetLabel(ids[1]).status().IsNotFound());
  EXPECT_TRUE(list.InsertAfter(ids[1]).status().IsNotFound());
  EXPECT_TRUE(list.GetLabel(999).status().IsNotFound());
}

TEST(GapListTest, BulkLoadLeavesGaps) {
  GapList list(10);
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(4, &ids).ok());
  EXPECT_EQ(list.Labels(), (std::vector<Label>{0, 10, 20, 30}));
}

TEST(GapListTest, MidpointInsertNoRelabel) {
  GapList list(10);
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(4, &ids).ok());
  auto id = list.InsertAfter(ids[1]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 15u);
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(GapListTest, ExhaustedGapRenumbersAll) {
  GapList list(4);
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(8, &ids).ok());
  // Hammer one gap until it renumbers: gap 4 fits 2 midpoint inserts.
  ItemId pos = ids[0];
  uint64_t relabels_before = list.stats().items_relabeled;
  int renumbers = 0;
  for (int i = 0; i < 10; ++i) {
    auto id = list.InsertAfter(pos);
    ASSERT_TRUE(id.ok());
    if (list.stats().rebalances > static_cast<uint64_t>(renumbers)) {
      ++renumbers;
    }
    ASSERT_TRUE(list.CheckInvariants().ok());
  }
  EXPECT_GT(renumbers, 0);
  EXPECT_GT(list.stats().items_relabeled, relabels_before);
}

TEST(GapListTest, AppendExtends) {
  GapList list(16);
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(2, &ids).ok());
  auto id = list.PushBack();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 32u);
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(GapListTest, PushFrontUsesHalfGap) {
  GapList list(16);
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(2, &ids).ok());
  ASSERT_TRUE(list.PushFront().ok());
  EXPECT_EQ(list.Labels().front(), 0u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, BulkLoadEvenSpread) {
  BenderList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(16, &ids).ok());
  auto labels = list.Labels();
  ASSERT_EQ(labels.size(), 16u);
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, HotspotInsertsStayCheap) {
  BenderList list;
  std::vector<ItemId> ids;
  ASSERT_TRUE(list.BulkLoad(64, &ids).ok());
  ItemId pos = ids[32];
  for (int i = 0; i < 2000; ++i) {
    auto id = list.InsertAfter(pos);
    ASSERT_TRUE(id.ok());
    if (i % 200 == 0) {
      ASSERT_TRUE(list.CheckInvariants().ok());
    }
  }
  EXPECT_TRUE(list.CheckInvariants().ok());
  // Amortized relabels should be polylog, far below n/2 = ~1000.
  EXPECT_LT(list.stats().RelabelsPerInsert(), 100.0);
}

TEST(BenderListTest, UniverseGrowsWhenDense) {
  BenderList list(BenderList::Options{.initial_bits = 6, .root_density = 0.5});
  ASSERT_TRUE(list.BulkLoad(8, nullptr).ok());
  const uint32_t bits_before = list.universe_bits();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(list.PushBack().ok());
  }
  EXPECT_GT(list.universe_bits(), bits_before);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, EmptyListPushBack) {
  BenderList list;
  auto id = list.PushBack();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(list.size(), 1u);
  auto id2 = list.PushFront();
  ASSERT_TRUE(id2.ok());
  auto labels = list.Labels();
  EXPECT_LT(labels[0], labels[1]);
}

TEST(LTreeMaintainerTest, WrapsTree) {
  auto m = LTreeMaintainer::Make(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<ItemId> ids;
  ASSERT_TRUE(m->BulkLoad(16, &ids).ok());
  EXPECT_EQ(m->size(), 16u);
  auto id = m->InsertAfter(ids[4]);
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*m->GetLabel(*id), *m->GetLabel(ids[4]));
  EXPECT_LT(*m->GetLabel(*id), *m->GetLabel(ids[5]));
  ASSERT_TRUE(m->Erase(ids[0]).ok());
  EXPECT_EQ(m->size(), 16u);
  EXPECT_TRUE(m->GetLabel(ids[0]).status().IsNotFound());
  EXPECT_EQ(m->stats().inserts, 1u);
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(VirtualLTreeMaintainerTest, TracksLabelsAcrossRelabeling) {
  auto m = VirtualLTreeMaintainer::Make(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<ItemId> ids;
  ASSERT_TRUE(m->BulkLoad(8, &ids).ok());
  // Force splits; the id -> label map must stay consistent.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->InsertAfter(ids[3]).ok());
  }
  auto labels = m->Labels();
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  // ids[3] and ids[4] must still be in relative order.
  EXPECT_LT(*m->GetLabel(ids[3]), *m->GetLabel(ids[4]));
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(FactoryTest, BuildsEverySpec) {
  for (const char* spec :
       {"sequential", "gap:64", "bender", "bender:0.75", "ltree:16:4",
        "virtual:8:2"}) {
    auto m = MakeMaintainer(spec);
    ASSERT_TRUE(m.ok()) << spec;
    ASSERT_TRUE((*m)->BulkLoad(4, nullptr).ok()) << spec;
    EXPECT_EQ((*m)->size(), 4u) << spec;
  }
}

TEST(FactoryTest, RejectsBadSpecs) {
  EXPECT_FALSE(MakeMaintainer("nope").ok());
  EXPECT_FALSE(MakeMaintainer("gap").ok());
  EXPECT_FALSE(MakeMaintainer("gap:1").ok());
  EXPECT_FALSE(MakeMaintainer("bender:0").ok());
  EXPECT_FALSE(MakeMaintainer("bender:1.5").ok());
  EXPECT_FALSE(MakeMaintainer("ltree:16").ok());
  EXPECT_FALSE(MakeMaintainer("ltree:5:2").ok());
}

}  // namespace
}  // namespace listlab
}  // namespace ltree
