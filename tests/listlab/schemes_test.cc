// Behavioural tests for the individual labeling schemes behind the
// LabelStore interface.

#include <gtest/gtest.h>

#include "listlab/bender_list.h"
#include "listlab/factory.h"
#include "listlab/gap_list.h"
#include "listlab/ltree_store.h"
#include "listlab/sequential_list.h"
#include "workload/update_stream.h"

namespace ltree {
namespace listlab {
namespace {

TEST(SequentialListTest, BulkLoadIsConsecutive) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(5, &ids).ok());
  EXPECT_EQ(list.Labels(), (std::vector<Label>{0, 1, 2, 3, 4}));
  EXPECT_EQ(list.size(), 5u);
  EXPECT_EQ(list.erase_semantics(), EraseSemantics::kPhysical);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, MidInsertShiftsSuffix) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  // Insert after position 3: labels 4..9 shift.
  auto id = list.InsertAfter(ids[3], 77);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 4u);
  EXPECT_EQ(*list.GetCookie(*id), 77u);
  EXPECT_EQ(list.stats().items_relabeled, 6u);
  EXPECT_EQ(list.Labels(),
            (std::vector<Label>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, AppendIsFree) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.PushBack(0).ok());
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(SequentialListTest, PushFrontShiftsEverything) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.PushFront(0).ok());
  EXPECT_EQ(list.stats().items_relabeled, 10u);
}

TEST(SequentialListTest, EraseLeavesGapThatAbsorbsShift) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(10, &ids).ok());
  ASSERT_TRUE(list.Erase(ids[5]).ok());  // label 5 vacated
  ASSERT_TRUE(list.InsertAfter(ids[2], 0).ok());
  // Shift stops at the vacated slot: labels 3,4 move to 4,5.
  EXPECT_EQ(list.stats().items_relabeled, 2u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(SequentialListTest, ErasedHandleRejected) {
  SequentialList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(3, &ids).ok());
  ASSERT_TRUE(list.Erase(ids[1]).ok());
  EXPECT_TRUE(list.Erase(ids[1]).IsFailedPrecondition())
      << "double erase is FailedPrecondition in every scheme";
  EXPECT_TRUE(list.GetLabel(ids[1]).status().IsNotFound());
  EXPECT_TRUE(list.GetCookie(ids[1]).status().IsNotFound());
  EXPECT_TRUE(list.InsertAfter(ids[1], 0).status().IsNotFound());
  EXPECT_TRUE(list.GetLabel(999).status().IsNotFound());
  EXPECT_TRUE(list.Erase(999).IsNotFound());
}

TEST(GapListTest, BulkLoadLeavesGaps) {
  GapList list(10);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(4, &ids).ok());
  EXPECT_EQ(list.Labels(), (std::vector<Label>{0, 10, 20, 30}));
}

TEST(GapListTest, MidpointInsertNoRelabel) {
  GapList list(10);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(4, &ids).ok());
  auto id = list.InsertAfter(ids[1], 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 15u);
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(GapListTest, ExhaustedGapRenumbersAll) {
  GapList list(4);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(8, &ids).ok());
  // Hammer one gap until it renumbers: gap 4 fits 2 midpoint inserts.
  ItemHandle pos = ids[0];
  uint64_t relabels_before = list.stats().items_relabeled;
  int renumbers = 0;
  for (int i = 0; i < 10; ++i) {
    auto id = list.InsertAfter(pos, 0);
    ASSERT_TRUE(id.ok());
    if (list.stats().rebalances > static_cast<uint64_t>(renumbers)) {
      ++renumbers;
    }
    ASSERT_TRUE(list.CheckInvariants().ok());
  }
  EXPECT_GT(renumbers, 0);
  EXPECT_GT(list.stats().items_relabeled, relabels_before);
}

TEST(GapListTest, AppendExtends) {
  GapList list(16);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(2, &ids).ok());
  auto id = list.PushBack(0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*list.GetLabel(*id), 32u);
  EXPECT_EQ(list.stats().items_relabeled, 0u);
}

TEST(GapListTest, FailedBatchRollsBack) {
  // Fallback batches are all-or-nothing: the third append overflows the
  // 64-bit label space, so the first two must be erased again.
  GapList list(uint64_t{1} << 62);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(2, &ids).ok());
  const std::vector<LeafCookie> batch{9, 10, 11};
  std::vector<ItemHandle> fresh;
  auto st = list.PushBackBatch(batch, &fresh);
  EXPECT_TRUE(st.IsCapacityExceeded());
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Labels().size(), 2u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(GapListTest, PushFrontUsesHalfGap) {
  GapList list(16);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(2, &ids).ok());
  ASSERT_TRUE(list.PushFront(0).ok());
  EXPECT_EQ(list.Labels().front(), 0u);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, BulkLoadEvenSpread) {
  BenderList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(16, &ids).ok());
  auto labels = list.Labels();
  ASSERT_EQ(labels.size(), 16u);
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, HotspotInsertsStayCheap) {
  BenderList list;
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(list.BulkLoad(64, &ids).ok());
  ItemHandle pos = ids[32];
  for (int i = 0; i < 2000; ++i) {
    auto id = list.InsertAfter(pos, 0);
    ASSERT_TRUE(id.ok());
    if (i % 200 == 0) {
      ASSERT_TRUE(list.CheckInvariants().ok());
    }
  }
  EXPECT_TRUE(list.CheckInvariants().ok());
  // Amortized relabels should be polylog, far below n/2 = ~1000.
  EXPECT_LT(list.stats().RelabelsPerInsert(), 100.0);
}

TEST(BenderListTest, UniverseGrowsWhenDense) {
  BenderList list(BenderList::Options{.initial_bits = 6, .root_density = 0.5});
  ASSERT_TRUE(list.BulkLoad(8, nullptr).ok());
  const uint32_t bits_before = list.universe_bits();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(list.PushBack(0).ok());
  }
  EXPECT_GT(list.universe_bits(), bits_before);
  EXPECT_TRUE(list.CheckInvariants().ok());
}

TEST(BenderListTest, EmptyListPushBack) {
  BenderList list;
  auto id = list.PushBack(0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(list.size(), 1u);
  auto id2 = list.PushFront(0);
  ASSERT_TRUE(id2.ok());
  auto labels = list.Labels();
  EXPECT_LT(labels[0], labels[1]);
}

TEST(LTreeStoreTest, WrapsTree) {
  auto m = LTreeStore::Make(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(16, &ids).ok());
  EXPECT_EQ(m->size(), 16u);
  EXPECT_EQ(m->erase_semantics(), EraseSemantics::kTombstone);
  auto id = m->InsertAfter(ids[4], 1234);
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*m->GetLabel(*id), *m->GetLabel(ids[4]));
  EXPECT_LT(*m->GetLabel(*id), *m->GetLabel(ids[5]));
  EXPECT_EQ(*m->GetCookie(*id), 1234u);
  EXPECT_EQ(*m->GetCookie(ids[3]), 3u);
  ASSERT_TRUE(m->Erase(ids[0]).ok());
  EXPECT_EQ(m->size(), 16u);
  EXPECT_TRUE(m->GetLabel(ids[0]).status().IsNotFound());
  EXPECT_TRUE(m->Erase(ids[0]).IsFailedPrecondition());
  EXPECT_EQ(m->stats().inserts, 1u);
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(LTreeStoreTest, PurgeSpecKeepsHandlesSafe) {
  auto m = MakeLabelStore("ltree:4:2:purge").ValueOrDie();
  EXPECT_EQ(m->erase_semantics(), EraseSemantics::kTombstonePurge);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(8, &ids).ok());
  ASSERT_TRUE(m->Erase(ids[2]).ok());
  ASSERT_TRUE(m->Erase(ids[3]).ok());
  // Force splits around the tombstones so they get purged.
  ItemHandle pos = ids[1];
  for (int i = 0; i < 64; ++i) {
    auto fresh = m->InsertAfter(pos, 100 + i);
    ASSERT_TRUE(fresh.ok());
  }
  // The erased handles answer consistently even though their leaves are
  // gone.
  EXPECT_TRUE(m->GetLabel(ids[2]).status().IsNotFound());
  EXPECT_TRUE(m->Erase(ids[3]).IsFailedPrecondition());
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(LTreeStoreTest, BatchInsertIsOneRebalance) {
  auto m = LTreeStore::Make(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(8, &ids).ok());
  const std::vector<LeafCookie> cookies{50, 51, 52, 53, 54};
  std::vector<ItemHandle> fresh;
  ASSERT_TRUE(m->InsertBatchAfter(ids[3], cookies, &fresh).ok());
  ASSERT_EQ(fresh.size(), 5u);
  EXPECT_EQ(m->stats().batch_inserts, 1u);
  // Batch items sit between ids[3] and ids[4], in batch order.
  Label prev = *m->GetLabel(ids[3]);
  for (size_t i = 0; i < fresh.size(); ++i) {
    const Label l = *m->GetLabel(fresh[i]);
    EXPECT_GT(l, prev);
    EXPECT_EQ(*m->GetCookie(fresh[i]), cookies[i]);
    prev = l;
  }
  EXPECT_LT(prev, *m->GetLabel(ids[4]));
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(VirtualLTreeStoreTest, TracksLabelsAcrossRelabeling) {
  auto m = VirtualLTreeStore::Make(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(8, &ids).ok());
  // Force splits; the handle -> label map must stay consistent.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->InsertAfter(ids[3], 1000 + i).ok());
  }
  auto labels = m->Labels();
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  // ids[3] and ids[4] must still be in relative order, with their cookies.
  EXPECT_LT(*m->GetLabel(ids[3]), *m->GetLabel(ids[4]));
  EXPECT_EQ(*m->GetCookie(ids[3]), 3u);
  EXPECT_TRUE(m->CheckInvariants().ok());
}

TEST(VirtualLTreeStoreTest, BatchMatchesMaterialized) {
  // The Section 4.1 batch path must produce identical labels on both
  // L-Tree variants.
  auto mat = MakeLabelStore("ltree:4:2").ValueOrDie();
  auto virt = MakeLabelStore("virtual:4:2").ValueOrDie();
  for (LabelStore* m : {mat.get(), virt.get()}) {
    std::vector<ItemHandle> ids;
    ASSERT_TRUE(m->BulkLoad(6, &ids).ok());
    const std::vector<LeafCookie> batch{20, 21, 22, 23};
    ASSERT_TRUE(m->InsertBatchAfter(ids[2], batch, nullptr).ok());
    EXPECT_EQ(m->stats().batch_inserts, 1u) << m->name();
  }
  EXPECT_EQ(mat->Labels(), virt->Labels());
}

TEST(VirtualLTreeStoreTest, DoubleEraseFailedPrecondition) {
  auto m = VirtualLTreeStore::Make(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(4, &ids).ok());
  ASSERT_TRUE(m->Erase(ids[1]).ok());
  EXPECT_TRUE(m->Erase(ids[1]).IsFailedPrecondition());
  EXPECT_TRUE(m->GetLabel(ids[1]).status().IsNotFound());
  EXPECT_TRUE(m->Erase(12345).IsNotFound());
}

TEST(FactoryTest, BuildsEverySpec) {
  for (const char* spec :
       {"sequential", "gap:64", "bender", "bender:0.75", "ltree:16:4",
        "ltree:16:4:purge", "virtual:8:2", "virtual:8:2:purge"}) {
    auto m = MakeLabelStore(spec);
    ASSERT_TRUE(m.ok()) << spec;
    ASSERT_TRUE((*m)->BulkLoad(4, nullptr).ok()) << spec;
    EXPECT_EQ((*m)->size(), 4u) << spec;
  }
}

TEST(FactoryTest, RejectsBadSpecs) {
  EXPECT_FALSE(MakeLabelStore("nope").ok());
  EXPECT_FALSE(MakeLabelStore("gap").ok());
  EXPECT_FALSE(MakeLabelStore("gap:1").ok());
  EXPECT_FALSE(MakeLabelStore("bender:0").ok());
  EXPECT_FALSE(MakeLabelStore("bender:1.5").ok());
  EXPECT_FALSE(MakeLabelStore("ltree:16").ok());
  EXPECT_FALSE(MakeLabelStore("ltree:5:2").ok());
  EXPECT_FALSE(MakeLabelStore("ltree:16:4:oops").ok());
  EXPECT_FALSE(MakeLabelStore("sequential:1").ok());
}

// The RelabelListener must fire for exactly the items whose labels change,
// on every scheme.
class CountingListener : public RelabelListener {
 public:
  void OnRelabel(LeafCookie cookie, Label old_label,
                 Label new_label) override {
    (void)cookie;
    EXPECT_NE(old_label, new_label);
    ++events;
  }
  uint64_t events = 0;
};

class ListenerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ListenerTest, RelabelEventsMatchStats) {
  auto m = MakeLabelStore(GetParam()).ValueOrDie();
  CountingListener listener;
  m->set_listener(&listener);
  std::vector<ItemHandle> ids;
  ASSERT_TRUE(m->BulkLoad(16, &ids).ok());
  EXPECT_EQ(listener.events, 0u) << "bulk load must not fire the listener";
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(m->InsertAfter(ids[7], 100 + i).ok());
  }
  EXPECT_EQ(listener.events, m->stats().items_relabeled) << m->name();
}

INSTANTIATE_TEST_SUITE_P(Schemes, ListenerTest,
                         ::testing::Values("sequential", "gap:16", "bender",
                                           "ltree:4:2", "virtual:4:2"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Seed-golden maintenance stats: the paper-fidelity gate for perf work.
// The expected numbers were captured from the seed (pre-arena) build over a
// fixed uniform insert stream; any optimization of the L-Tree hot path must
// keep them bit-identical, since the paper's cost accounting counts node
// accesses, not wall time.
// ---------------------------------------------------------------------------

struct GoldenSweep {
  const char* spec;
  uint64_t items_relabeled;
  uint64_t rebalances;
  uint32_t label_bits;
};

class GoldenSweepTest : public ::testing::TestWithParam<GoldenSweep> {};

TEST_P(GoldenSweepTest, UniformStreamStatsMatchSeed) {
  const GoldenSweep& want = GetParam();
  auto store = MakeLabelStore(want.spec).ValueOrDie();
  std::vector<ItemHandle> handles;
  ASSERT_TRUE(store->BulkLoad(500, &handles).ok());
  store->ResetStats();
  workload::UpdateStream stream(workload::StreamOptions{
      .kind = workload::StreamKind::kUniform, .seed = 77});
  for (uint64_t i = 0; i < 2000; ++i) {
    const auto op = stream.Next(handles.size());
    auto h = store->InsertAfter(handles[op.rank], 500 + i);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  ASSERT_TRUE(store->CheckInvariants().ok());
  const MaintStats& st = store->stats();
  EXPECT_EQ(st.items_relabeled, want.items_relabeled) << store->name();
  EXPECT_EQ(st.rebalances, want.rebalances) << store->name();
  EXPECT_EQ(store->label_bits(), want.label_bits) << store->name();
  EXPECT_EQ(st.inserts, 2000u);
  // Plan/apply pipeline invariant: both L-Tree variants pay exactly one
  // relabel pass per insert, and single-leaf inserts never escalate.
  EXPECT_EQ(st.relabel_passes, 2000u) << store->name();
  EXPECT_EQ(st.coalesced_regions, 0u) << store->name();
  // Allocator-traffic accounting must balance: both L-Tree variants run
  // over pooled nodes (NodeArena for the materialized tree, the counted
  // B+-tree's pool for the virtual one), so both must report real nonzero
  // counters after a 2000-insert stream — the virtual store silently
  // reporting zeros was a bug this sweep pins against regressing.
  EXPECT_GT(st.nodes_allocated, 0u) << store->name();
  EXPECT_GT(st.nodes_reused, 0u) << store->name();
  EXPECT_GT(st.nodes_released, 0u) << store->name();
}

INSTANTIATE_TEST_SUITE_P(
    SeedGolden, GoldenSweepTest,
    ::testing::Values(
        GoldenSweep{"ltree:16:4", 13008, 60, 21},
        GoldenSweep{"virtual:16:4", 13008, 60, 21},
        GoldenSweep{"ltree:8:2:purge", 17065, 246, 20}),
    [](const auto& info) {
      std::string name = info.param.spec;
      for (char& c : name) {
        if (c == ':' || c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace listlab
}  // namespace ltree
