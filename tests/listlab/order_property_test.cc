// Cross-scheme property tests: every LabelStore must keep label order
// equal to list order under arbitrary op streams, and the relative cost
// ordering the paper claims (L-Tree ~ polylog << sequential) must hold.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "listlab/factory.h"

namespace ltree {
namespace listlab {
namespace {

class OrderPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OrderPropertyTest, LabelsMatchListOrderUnderRandomOps) {
  auto maintainer = MakeLabelStore(GetParam()).ValueOrDie();
  std::vector<ItemHandle> order;  // reference list order
  ASSERT_TRUE(maintainer->BulkLoad(8, &order).ok());

  Rng rng(std::hash<std::string>{}(GetParam()) & 0xffff);
  for (int op = 0; op < 800; ++op) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6 || order.size() < 4) {
      const size_t r = static_cast<size_t>(rng.Uniform(order.size()));
      auto id = maintainer->InsertAfter(order[r], 1000 + static_cast<LeafCookie>(op));
      ASSERT_TRUE(id.ok()) << "op " << op;
      order.insert(order.begin() + static_cast<long>(r) + 1, *id);
    } else if (action < 7) {
      const size_t r = static_cast<size_t>(rng.Uniform(order.size()));
      auto id = maintainer->InsertBefore(order[r], 1000 + static_cast<LeafCookie>(op));
      ASSERT_TRUE(id.ok()) << "op " << op;
      order.insert(order.begin() + static_cast<long>(r), *id);
    } else if (action < 8) {
      auto id = rng.Bernoulli(0.5)
                    ? maintainer->PushBack(1000 + static_cast<LeafCookie>(op))
                    : maintainer->PushFront(1000 + static_cast<LeafCookie>(op));
      ASSERT_TRUE(id.ok()) << "op " << op;
      if (rng.Bernoulli(0.5)) {
        // We can't know which end without querying; re-derive below.
      }
      // Maintain reference: PushBack appends, PushFront prepends. Determine
      // by comparing labels against current extremes.
      // (Simpler: just re-check via labels at verification time; here we
      // need order[], so place by label.)
      Label l = *maintainer->GetLabel(*id);
      bool placed = false;
      if (!order.empty()) {
        Label first = *maintainer->GetLabel(order.front());
        Label last = *maintainer->GetLabel(order.back());
        if (l < first) {
          order.insert(order.begin(), *id);
          placed = true;
        } else if (l > last) {
          order.push_back(*id);
          placed = true;
        }
      }
      ASSERT_TRUE(placed || order.empty()) << "op " << op;
      if (!placed) order.push_back(*id);
    } else {
      if (order.size() > 4) {
        const size_t r = static_cast<size_t>(rng.Uniform(order.size()));
        ASSERT_TRUE(maintainer->Erase(order[r]).ok()) << "op " << op;
        order.erase(order.begin() + static_cast<long>(r));
      }
    }

    if (op % 100 == 0) {
      ASSERT_TRUE(maintainer->CheckInvariants().ok()) << "op " << op;
    }
  }

  // Final verification: labels strictly increase along the reference order.
  ASSERT_EQ(maintainer->size(), order.size());
  Label prev = 0;
  bool first = true;
  for (ItemHandle id : order) {
    auto l = maintainer->GetLabel(id);
    ASSERT_TRUE(l.ok());
    if (!first) {
      ASSERT_GT(*l, prev);
    }
    prev = *l;
    first = false;
  }
  // Labels() agrees with per-item queries.
  auto labels = maintainer->Labels();
  ASSERT_EQ(labels.size(), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(labels[i], *maintainer->GetLabel(order[i]));
  }
  ASSERT_TRUE(maintainer->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, OrderPropertyTest,
    ::testing::Values("sequential", "gap:16", "gap:256", "bender",
                      "bender:0.75", "ltree:4:2", "ltree:16:4", "ltree:32:2",
                      "virtual:4:2", "virtual:16:4"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '.') c = '_';
      }
      return name;
    });

TEST(SchemeComparisonTest, LTreeBeatsSequentialOnRandomInserts) {
  // The paper's core positioning (Section 1): sequential labels cost ~n/2
  // relabels per insert, the L-Tree O(log n).
  auto seq = MakeLabelStore("sequential").ValueOrDie();
  auto lt = MakeLabelStore("ltree:16:4").ValueOrDie();
  std::vector<ItemHandle> seq_order;
  std::vector<ItemHandle> lt_order;
  ASSERT_TRUE(seq->BulkLoad(512, &seq_order).ok());
  ASSERT_TRUE(lt->BulkLoad(512, &lt_order).ok());
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const size_t r = static_cast<size_t>(rng.Uniform(seq_order.size()));
    auto sid = seq->InsertAfter(seq_order[r], i);
    auto lid = lt->InsertAfter(lt_order[r], i);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(lid.ok());
    seq_order.insert(seq_order.begin() + static_cast<long>(r) + 1, *sid);
    lt_order.insert(lt_order.begin() + static_cast<long>(r) + 1, *lid);
  }
  const double seq_cost = seq->stats().RelabelsPerInsert();
  const double lt_cost = lt->stats().RelabelsPerInsert();
  // Sequential should be two orders of magnitude worse at n ~ 1-2.5k.
  EXPECT_GT(seq_cost, 100.0);
  EXPECT_LT(lt_cost, 40.0);
  EXPECT_GT(seq_cost, 5.0 * lt_cost);
}

}  // namespace
}  // namespace listlab
}  // namespace ltree
