// ChangeFeed and StateVector mechanics: sequence numbering, bounded
// retention, delta servability, and — via ChangeFeedTestPeer — the
// negative direction of the feed-continuity audit rule (a corrupted feed
// MUST be reported with the right slug).

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "store/change_feed.h"
#include "store/state_vector.h"

namespace ltree {
namespace store {

/// Seeds corruptions for the negative feed-continuity tests.
class ChangeFeedTestPeer {
 public:
  static std::deque<FeedEvent>* events(ChangeFeed* feed) {
    return &feed->events_;
  }
  static uint64_t* trimmed(ChangeFeed* feed) { return &feed->trimmed_; }
  static uint64_t* last_seq(ChangeFeed* feed) { return &feed->last_seq_; }
};

namespace {

FeedEvent Insert(LeafCookie cookie, Label label) {
  return {.kind = FeedEvent::Kind::kInsert,
          .cookie = cookie,
          .new_label = label};
}

audit::Report Audit(const ChangeFeed& feed) {
  audit::Report report;
  feed.Audit(&report, "feed");
  return report;
}

// ---------------------------------------------------------------------------
// Sequencing and retention
// ---------------------------------------------------------------------------

TEST(ChangeFeedTest, AppendAssignsContiguousSeqsFromOne) {
  ChangeFeed feed(16);
  EXPECT_EQ(feed.last_seq(), 0u);
  EXPECT_EQ(feed.first_retained_seq(), 1u);  // empty: floor is "next"
  for (uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(feed.Append(Insert(i, i * 10)), i);
  }
  EXPECT_EQ(feed.last_seq(), 5u);
  EXPECT_EQ(feed.retained(), 5u);
  EXPECT_EQ(feed.trimmed(), 0u);
  EXPECT_EQ(feed.first_retained_seq(), 1u);
}

TEST(ChangeFeedTest, CapacityEvictsOldestAndRaisesFloor) {
  ChangeFeed feed(4);
  for (uint64_t i = 0; i < 10; ++i) feed.Append(Insert(i, i));
  EXPECT_EQ(feed.last_seq(), 10u);
  EXPECT_EQ(feed.retained(), 4u);
  EXPECT_EQ(feed.trimmed(), 6u);
  EXPECT_EQ(feed.first_retained_seq(), 7u);
}

TEST(ChangeFeedTest, EventKindsRoundTripThroughToString) {
  ChangeFeed feed(8);
  feed.Append(Insert(42, 7));
  feed.Append({.kind = FeedEvent::Kind::kRelabel,
               .cookie = 42,
               .old_label = 7,
               .new_label = 9});
  feed.Append(
      {.kind = FeedEvent::Kind::kErase, .cookie = 42, .old_label = 9});
  const auto events = feed.EventsSince(0).ValueOrDie();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ToString(), "#1 insert cookie=42 new=7");
  EXPECT_EQ(events[1].ToString(), "#2 relabel cookie=42 old=7 new=9");
  EXPECT_EQ(events[2].ToString(), "#3 erase cookie=42 old=9");
}

// ---------------------------------------------------------------------------
// Delta servability
// ---------------------------------------------------------------------------

TEST(ChangeFeedTest, EventsSinceReturnsExactSuffix) {
  ChangeFeed feed(16);
  for (uint64_t i = 0; i < 8; ++i) feed.Append(Insert(i, i));
  EXPECT_TRUE(feed.CanServeFrom(0));
  EXPECT_EQ(feed.EventsSince(0).ValueOrDie().size(), 8u);
  const auto tail = feed.EventsSince(5).ValueOrDie();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 6u);
  EXPECT_EQ(tail[2].seq, 8u);
  EXPECT_TRUE(feed.EventsSince(8).ValueOrDie().empty());
}

TEST(ChangeFeedTest, CanServeFromRespectsTrimFloor) {
  ChangeFeed feed(4);
  for (uint64_t i = 0; i < 10; ++i) feed.Append(Insert(i, i));
  // Floor is 7: positions 6.. can still be served a delta, 5 cannot.
  EXPECT_FALSE(feed.CanServeFrom(5));
  EXPECT_TRUE(feed.CanServeFrom(6));
  EXPECT_EQ(feed.EventsSince(6).ValueOrDie().size(), 4u);
  EXPECT_TRUE(feed.CanServeFrom(10));
}

TEST(ChangeFeedTest, PositionsBeyondHeadAreRejected) {
  // A corrupt or future-dated peer request claims a position this feed
  // never published; it must be refused, not walked off the deque.
  ChangeFeed feed(16);
  EXPECT_FALSE(feed.CanServeFrom(1));  // empty feed: head is 0
  EXPECT_TRUE(feed.EventsSince(1).status().IsInvalidArgument());
  for (uint64_t i = 0; i < 8; ++i) feed.Append(Insert(i, i));
  EXPECT_TRUE(feed.CanServeFrom(8));
  EXPECT_FALSE(feed.CanServeFrom(9));
  EXPECT_FALSE(feed.CanServeFrom(~uint64_t{0}));
  const auto beyond = feed.EventsSince(9);
  ASSERT_FALSE(beyond.ok());
  EXPECT_TRUE(beyond.status().IsInvalidArgument());
  // Below the trim floor is also an error (the snapshot path's job).
  feed.TrimTo(2);
  const auto below = feed.EventsSince(0);
  ASSERT_FALSE(below.ok());
  EXPECT_TRUE(below.status().IsInvalidArgument());
}

TEST(ChangeFeedTest, TrimToForcesSnapshotTerritory) {
  ChangeFeed feed(64);
  for (uint64_t i = 0; i < 10; ++i) feed.Append(Insert(i, i));
  feed.TrimTo(2);
  EXPECT_EQ(feed.retained(), 2u);
  EXPECT_EQ(feed.trimmed(), 8u);
  EXPECT_EQ(feed.first_retained_seq(), 9u);
  EXPECT_FALSE(feed.CanServeFrom(0));
  EXPECT_TRUE(feed.CanServeFrom(8));
  feed.TrimTo(0);
  EXPECT_EQ(feed.retained(), 0u);
  EXPECT_EQ(feed.first_retained_seq(), 11u);
  // A fully trimmed log can only serve the subscriber already at the head.
  EXPECT_FALSE(feed.CanServeFrom(9));
  EXPECT_TRUE(feed.CanServeFrom(10));
}

// ---------------------------------------------------------------------------
// feed-continuity audit: positive and negative direction
// ---------------------------------------------------------------------------

TEST(ChangeFeedAuditTest, CleanFeedAuditsOk) {
  ChangeFeed feed(4);
  for (uint64_t i = 0; i < 10; ++i) feed.Append(Insert(i, i));
  feed.TrimTo(2);
  EXPECT_TRUE(Audit(feed).ok());
}

TEST(ChangeFeedAuditTest, SequenceGapIsReported) {
  ChangeFeed feed(16);
  for (uint64_t i = 0; i < 5; ++i) feed.Append(Insert(i, i));
  ChangeFeedTestPeer::events(&feed)->at(2).seq = 99;
  const audit::Report report = Audit(feed);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("feed-continuity"));
}

TEST(ChangeFeedAuditTest, TrimCountMismatchIsReported) {
  ChangeFeed feed(16);
  for (uint64_t i = 0; i < 5; ++i) feed.Append(Insert(i, i));
  *ChangeFeedTestPeer::trimmed(&feed) = 3;  // nothing was actually trimmed
  const audit::Report report = Audit(feed);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("feed-continuity"));
}

TEST(ChangeFeedAuditTest, StaleHeadIsReported) {
  ChangeFeed feed(16);
  for (uint64_t i = 0; i < 5; ++i) feed.Append(Insert(i, i));
  *ChangeFeedTestPeer::last_seq(&feed) = 7;  // claims events never appended
  const audit::Report report = Audit(feed);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("feed-continuity"));
}

TEST(ChangeFeedAuditTest, OverCapacityIsReported) {
  ChangeFeed feed(2);
  for (uint64_t i = 0; i < 2; ++i) feed.Append(Insert(i, i));
  ChangeFeedTestPeer::events(&feed)->push_back(Insert(9, 9));
  ChangeFeedTestPeer::events(&feed)->back().seq = 3;
  const audit::Report report = Audit(feed);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("feed-continuity"));
}

// ---------------------------------------------------------------------------
// StateVector
// ---------------------------------------------------------------------------

TEST(StateVectorTest, AdvanceIsMonotonic) {
  StateVector sv(3);
  EXPECT_EQ(sv.seq(0), 0u);
  sv.Advance(1, 5);
  sv.Advance(1, 3);  // regression ignored
  EXPECT_EQ(sv.seq(1), 5u);
  sv.Set(1, 3);  // explicit override does regress
  EXPECT_EQ(sv.seq(1), 3u);
}

TEST(StateVectorTest, DominationAndLag) {
  StateVector a(3);
  StateVector b(3);
  a.Advance(0, 2);
  b.Advance(0, 5);
  b.Advance(2, 4);
  EXPECT_TRUE(a.DominatedBy(b));
  EXPECT_FALSE(b.DominatedBy(a));
  EXPECT_EQ(a.LagBehind(b), 7u);  // (5-2) + 0 + (4-0)
  EXPECT_EQ(b.LagBehind(a), 0u);
  a.Advance(0, 5);
  a.Advance(2, 4);
  EXPECT_TRUE(a == b);
}

TEST(StateVectorTest, ToStringIsCompact) {
  StateVector sv(4);
  sv.Advance(0, 17);
  sv.Advance(2, 4);
  sv.Advance(3, 9);
  EXPECT_EQ(sv.ToString(), "[17 0 4 9]");
}

}  // namespace
}  // namespace store
}  // namespace ltree
