// Mirror equivalence: the acceptance suite for the change-feed protocol.
//
// A MirrorStore following the per-shard feeds must reproduce the primary's
// live label state exactly — per-shard label order and cookie sequences —
// under randomized multi-session, multi-document edit scripts, across
// every labeling scheme, through both the delta path and the forced
// log-trim snapshot path, and in ONE Sync round from an arbitrarily stale
// state vector.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "store/document_store.h"
#include "store/mirror_store.h"
#include "workload/update_stream.h"

namespace ltree {
namespace store {
namespace {

constexpr const char* kSpecs[] = {"ltree:16:4", "ltree:16:4:purge",
                                  "virtual:16:4", "gap:64", "sequential",
                                  "bender"};

struct Script {
  uint64_t docs = 12;
  uint32_t sessions = 3;
  int ops = 1500;
  int sync_every = 100;
  uint64_t seed = 1;
};

/// Drives `ops` randomized multi-session ops against `store`, syncing
/// `mirror` (if non-null) every `sync_every` ops and checking equivalence
/// after each sync.
void RunScript(DocumentStore* store, MirrorStore* mirror,
               const Script& script) {
  for (DocId doc = 0; doc < script.docs; ++doc) {
    if (!store->HasDocument(doc)) {
      ASSERT_TRUE(store->CreateDocument(doc).ok());
    }
  }
  workload::MultiSessionStream sessions(
      {.num_docs = script.docs,
       .num_sessions = script.sessions,
       .doc_zipf_theta = 1.1,
       .session_stream = {.kind = workload::StreamKind::kMixed,
                          .erase_fraction = 0.3,
                          .seed = script.seed}});
  Rng batch_rng(script.seed * 31 + 7);
  for (int i = 0; i < script.ops; ++i) {
    const workload::DocOp op = sessions.Next(
        [&](uint64_t doc) { return store->DocSize(doc).ValueOrDie(); });
    // A slice of batch inserts keeps the Section 4.1 path in the script.
    if (batch_rng.Bernoulli(0.02)) {
      const uint64_t size = store->DocSize(op.doc).ValueOrDie();
      const uint64_t rank = size == 0 ? 0 : batch_rng.Uniform(size);
      ASSERT_TRUE(store->InsertBatchAfterRank(op.doc, rank, 20).ok());
    } else {
      ASSERT_TRUE(store->Apply(op.doc, op.op).ok());
    }
    if (mirror != nullptr && (i + 1) % script.sync_every == 0) {
      const Status sync = mirror->Sync(*store);
      ASSERT_TRUE(sync.ok()) << sync.ToString();
      const Status eq = mirror->CheckEquivalent(*store);
      ASSERT_TRUE(eq.ok()) << "after op " << i << ": " << eq.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Delta-path equivalence across schemes
// ---------------------------------------------------------------------------

TEST(MirrorStoreTest, PerBatchEquivalenceAcrossSchemes) {
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    auto store = DocumentStore::Make({.num_shards = 4,
                                      .scheme_spec = spec,
                                      .feed_capacity = 1 << 20})
                     .ValueOrDie();
    MirrorStore mirror(store->num_shards());
    RunScript(store.get(), &mirror, {.seed = 11});
    ASSERT_TRUE(mirror.Sync(*store).ok());
    EXPECT_TRUE(mirror.CheckEquivalent(*store).ok());
    EXPECT_TRUE(mirror.state_vector() == store->CurrentStateVector());
    EXPECT_GT(mirror.events_applied(), 0u);
    EXPECT_EQ(mirror.snapshot_syncs(), 0u);  // capacity never trimmed
    EXPECT_TRUE(store->Validate().ok());
  }
}

TEST(MirrorStoreTest, SingleShardAndManyShardsConverge) {
  for (const uint32_t shards : {1u, 2u, 16u}) {
    SCOPED_TRACE(shards);
    auto store = DocumentStore::Make({.num_shards = shards,
                                      .scheme_spec = "ltree:16:4",
                                      .feed_capacity = 1 << 20})
                     .ValueOrDie();
    MirrorStore mirror(shards);
    RunScript(store.get(), &mirror,
              {.docs = 20, .ops = 1000, .seed = shards});
    ASSERT_TRUE(mirror.Sync(*store).ok());
    EXPECT_TRUE(mirror.CheckEquivalent(*store).ok());
  }
}

// ---------------------------------------------------------------------------
// Snapshot path: log trimmed past the subscriber
// ---------------------------------------------------------------------------

TEST(MirrorStoreTest, TinyFeedForcesSnapshotRecovery) {
  // Capacity 32 with sync_every 200: the mirror falls behind the trim
  // floor between syncs, so catch-up must route through snapshots.
  auto store = DocumentStore::Make({.num_shards = 4,
                                    .scheme_spec = "ltree:16:4",
                                    .feed_capacity = 32})
                   .ValueOrDie();
  MirrorStore mirror(store->num_shards());
  RunScript(store.get(), &mirror, {.ops = 2000, .sync_every = 200, .seed = 3});
  ASSERT_TRUE(mirror.Sync(*store).ok());
  EXPECT_TRUE(mirror.CheckEquivalent(*store).ok());
  EXPECT_GT(mirror.snapshot_syncs(), 0u);
}

TEST(MirrorStoreTest, ExplicitTrimFlipsStaleMirrorToSnapshot) {
  auto store = DocumentStore::Make({.num_shards = 2,
                                    .scheme_spec = "virtual:16:4",
                                    .feed_capacity = 1 << 20})
                   .ValueOrDie();
  MirrorStore mirror(2);
  RunScript(store.get(), &mirror, {.ops = 600, .seed = 9});
  ASSERT_TRUE(mirror.Sync(*store).ok());

  // More edits the mirror has not seen, then trim their history away.
  RunScript(store.get(), nullptr, {.ops = 400, .seed = 10});
  store->TrimFeeds(0);
  const uint64_t snapshots_before = mirror.snapshot_syncs();
  ASSERT_TRUE(mirror.Sync(*store).ok());
  EXPECT_TRUE(mirror.CheckEquivalent(*store).ok());
  EXPECT_GT(mirror.snapshot_syncs(), snapshots_before);
}

// ---------------------------------------------------------------------------
// One-round convergence from arbitrary stale state vectors
// ---------------------------------------------------------------------------

TEST(MirrorStoreTest, OneSyncRoundConvergesMirrorsOfEveryAge) {
  auto store = DocumentStore::Make({.num_shards = 4,
                                    .scheme_spec = "ltree:16:4",
                                    .feed_capacity = 256})
                   .ValueOrDie();
  // Mirrors peel off at different points of the script: one never syncs,
  // the others stop syncing after their segment. Their state vectors end
  // up arbitrarily stale relative to the final primary.
  constexpr int kMirrors = 5;
  std::vector<MirrorStore> mirrors;
  for (int i = 0; i < kMirrors; ++i) mirrors.emplace_back(4);
  for (int seg = 0; seg < kMirrors; ++seg) {
    RunScript(store.get(), nullptr,
              {.ops = 400, .seed = 100 + static_cast<uint64_t>(seg)});
    // Mirrors seg.. still follow; mirrors 0..seg-1 have gone stale.
    for (int m = seg; m < kMirrors; ++m) {
      ASSERT_TRUE(mirrors[m].Sync(*store).ok());
    }
  }
  const StateVector head = store->CurrentStateVector();
  for (int m = 0; m < kMirrors; ++m) {
    SCOPED_TRACE(m);
    ASSERT_TRUE(mirrors[m].state_vector().DominatedBy(head));
    // Exactly one round, no concurrent writes: full convergence.
    ASSERT_TRUE(mirrors[m].Sync(*store).ok());
    EXPECT_TRUE(mirrors[m].CheckEquivalent(*store).ok());
    EXPECT_TRUE(mirrors[m].state_vector() == head);
  }
}

TEST(MirrorStoreTest, FreshMirrorConvergesInOneRound) {
  auto store = DocumentStore::Make({.num_shards = 8,
                                    .scheme_spec = "ltree:16:4",
                                    .feed_capacity = 64})
                   .ValueOrDie();
  RunScript(store.get(), nullptr, {.docs = 24, .ops = 3000, .seed = 21});
  MirrorStore mirror(8);  // knows nothing; most shards need snapshots
  ASSERT_TRUE(mirror.Sync(*store).ok());
  EXPECT_TRUE(mirror.CheckEquivalent(*store).ok());
  // Idempotence: a second round with no writes applies nothing.
  const uint64_t applied = mirror.events_applied();
  ASSERT_TRUE(mirror.Sync(*store).ok());
  EXPECT_EQ(mirror.events_applied(), applied);
}

// ---------------------------------------------------------------------------
// Protocol strictness: the mirror rejects malformed catch-ups
// ---------------------------------------------------------------------------

TEST(MirrorStoreTest, RewoundPositionIsDetectedAsDoubleApply) {
  auto store = DocumentStore::Make({.num_shards = 1,
                                    .scheme_spec = "sequential",
                                    .feed_capacity = 1 << 20})
                   .ValueOrDie();
  ASSERT_TRUE(store->CreateDocument(1).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store->Append(1).ok());
  MirrorStore mirror(1);
  ASSERT_TRUE(mirror.Sync(*store).ok());
  // Claiming staleness while holding the state makes the replayed inserts
  // double-applies — the mirror must refuse, not silently overwrite.
  mirror.ForcePosition(0, 0);
  EXPECT_TRUE(mirror.Sync(*store).IsCorruption());
}

TEST(MirrorStoreTest, DeltaGapsAndUnknownCookiesAreRejected) {
  MirrorStore mirror(2);
  CatchUpResult gap;
  gap.from_seq = 0;
  gap.to_seq = 2;
  gap.events = {{.seq = 2,
                 .kind = FeedEvent::Kind::kInsert,
                 .cookie = 1,
                 .new_label = 10}};  // #1 is missing
  EXPECT_TRUE(mirror.ApplyCatchUp(0, gap).IsCorruption());

  CatchUpResult orphan_erase;
  orphan_erase.from_seq = 0;
  orphan_erase.to_seq = 1;
  orphan_erase.events = {
      {.seq = 1, .kind = FeedEvent::Kind::kErase, .cookie = 77}};
  EXPECT_TRUE(mirror.ApplyCatchUp(0, orphan_erase).IsCorruption());

  CatchUpResult orphan_relabel;
  orphan_relabel.from_seq = 0;
  orphan_relabel.to_seq = 1;
  orphan_relabel.events = {{.seq = 1,
                            .kind = FeedEvent::Kind::kRelabel,
                            .cookie = 77,
                            .old_label = 1,
                            .new_label = 2}};
  EXPECT_TRUE(mirror.ApplyCatchUp(0, orphan_relabel).IsCorruption());

  CatchUpResult misaligned;
  misaligned.from_seq = 5;  // mirror is at 0
  misaligned.to_seq = 5;
  EXPECT_TRUE(mirror.ApplyCatchUp(0, misaligned).IsCorruption());

  EXPECT_TRUE(mirror.ApplyCatchUp(9, {}).IsInvalidArgument());
}

TEST(MirrorStoreTest, ShardCountMismatchIsRejected) {
  auto store = DocumentStore::Make({.num_shards = 4}).ValueOrDie();
  MirrorStore mirror(2);
  EXPECT_TRUE(mirror.Sync(*store).IsInvalidArgument());
  EXPECT_FALSE(mirror.CheckEquivalent(*store).ok());
}

}  // namespace
}  // namespace store
}  // namespace ltree
