// Randomized edit-script equivalence suite (the acceptance gate for the
// scheme-pluggable pipeline): drive LabeledDocument over every labeling
// scheme spec with a random stream of fragment/element/text insertions and
// subtree deletions, and after every step assert
//   * label-plan query results == naive DOM ground truth
//     (EvaluateWithLabels vs. EvaluateOnDocument), and
//   * labels are order-preserving along the tag stream.
// If any scheme's relabel notifications, batch path or erase semantics
// desynced the node table, these checks catch it at the op that broke.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "docstore/labeled_document.h"
#include "listlab/factory.h"
#include "query/path_query.h"
#include "workload/xml_generator.h"

namespace ltree {
namespace docstore {
namespace {

class SchemeEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeEquivalenceTest, RandomEditScriptMatchesDomGroundTruth) {
  const std::string spec = GetParam();
  auto store = LabeledDocument::FromXml(workload::GenerateCatalogXml(8, 2, 42),
                                        spec)
                   .MoveValueUnsafe();
  ASSERT_EQ(store->scheme_spec(), spec);

  const char* paths[] = {"//book//title", "//chapter/para", "/site//*",
                         "//edit", "/site/books/book"};
  auto verify = [&](int op) {
    // Query equivalence against the DOM ground truth.
    for (const char* path : paths) {
      auto q = query::PathQuery::Parse(path).ValueOrDie();
      std::vector<xml::NodeId> label_ids;
      for (const auto* row : query::EvaluateWithLabels(q, store->table())) {
        label_ids.push_back(row->id);
      }
      const auto dom_ids = query::EvaluateOnDocument(q, store->document());
      ASSERT_EQ(label_ids, dom_ids)
          << spec << " diverged on " << path << " at op " << op;
    }
    // Order preservation: live labels strictly increase in list order.
    const auto labels = store->label_store().Labels();
    for (size_t i = 1; i < labels.size(); ++i) {
      ASSERT_LT(labels[i - 1], labels[i])
          << spec << " labels out of order at op " << op;
    }
  };
  verify(-1);

  auto books_q = query::PathQuery::Parse("/site/books").ValueOrDie();
  const xml::NodeId root_id = store->document().root()->id;
  const xml::NodeId books_id =
      query::EvaluateWithLabels(books_q, store->table())[0]->id;

  Rng rng(std::hash<std::string>{}(spec) & 0xffffff);
  auto random_element = [&]() -> xml::NodeId {
    auto rows = store->table().AllElements();
    const auto* row = rows[rng.Uniform(rows.size())];
    return row->id;
  };

  for (int op = 0; op < 60; ++op) {
    const uint64_t dice = rng.Uniform(10);
    if (dice < 3) {
      ASSERT_TRUE(store
                      ->InsertFragment(
                          books_id, 0,
                          "<book><title>t</title><chapter><para>p</para>"
                          "</chapter></book>")
                      .ok())
          << spec << " op " << op;
    } else if (dice < 6) {
      // New element under a random live element (possibly a nested edit).
      auto fresh = store->InsertElement(random_element(), 0, "edit");
      ASSERT_TRUE(fresh.ok()) << spec << " op " << op;
    } else if (dice < 8) {
      auto text = store->InsertText(random_element(), 0, "note");
      ASSERT_TRUE(text.ok()) << spec << " op " << op;
    } else {
      // Delete a random subtree, but keep the skeleton alive.
      const xml::NodeId victim = random_element();
      if (victim != root_id && victim != books_id) {
        ASSERT_TRUE(store->DeleteSubtree(victim).ok())
            << spec << " op " << op;
      }
    }
    verify(op);
    if (op % 15 == 14) {
      ASSERT_TRUE(store->CheckConsistency().ok()) << spec << " op " << op;
    }
  }
  ASSERT_TRUE(store->CheckConsistency().ok());
}

// Paper-fidelity sweep: the materialized and virtual L-Tree run the same
// maintenance algorithm (Section 4.2), so an identical edit script through
// the whole document pipeline must produce identical labels AND identical
// maintenance statistics — relabels and rebalances are the paper's cost
// currency, and the arena refactors must never change them. Only the
// allocator-traffic counters may differ in value (each scheme pools its
// own node type: L-Tree nodes vs counted-B+-tree nodes), but BOTH sides
// must report real nonzero traffic — the virtual store silently reporting
// zeros was exactly the accounting bug this pins against regressing.
TEST(SchemeStatsFidelityTest, MaterializedAndVirtualAgreeOnCostStats) {
  const std::string xml = workload::GenerateCatalogXml(8, 2, 42);
  auto mat = LabeledDocument::FromXml(xml, "ltree:16:4").MoveValueUnsafe();
  auto virt = LabeledDocument::FromXml(xml, "virtual:16:4").MoveValueUnsafe();

  auto run_script = [](LabeledDocument& store) {
    auto books_q = query::PathQuery::Parse("/site/books").ValueOrDie();
    const xml::NodeId books_id =
        query::EvaluateWithLabels(books_q, store.table())[0]->id;
    Rng rng(4242);  // same stream for both schemes
    for (int op = 0; op < 40; ++op) {
      auto rows = store.table().AllElements();
      const xml::NodeId target = rows[rng.Uniform(rows.size())]->id;
      const uint64_t dice = rng.Uniform(3);
      if (dice == 0) {
        ASSERT_TRUE(store
                        .InsertFragment(books_id, 0,
                                        "<book><title>t</title></book>")
                        .ok());
      } else if (dice == 1) {
        ASSERT_TRUE(store.InsertElement(target, 0, "edit").ok());
      } else {
        ASSERT_TRUE(store.InsertText(target, 0, "note").ok());
      }
    }
  };
  run_script(*mat);
  run_script(*virt);

  EXPECT_EQ(mat->label_store().Labels(), virt->label_store().Labels());
  const listlab::MaintStats& ms = mat->label_store().stats();
  const listlab::MaintStats& vs = virt->label_store().stats();
  EXPECT_EQ(ms.inserts, vs.inserts);
  EXPECT_EQ(ms.batch_inserts, vs.batch_inserts);
  EXPECT_EQ(ms.items_relabeled, vs.items_relabeled);
  EXPECT_EQ(ms.rebalances, vs.rebalances);
  // The plan/apply pipeline runs the same coalescing decision on both
  // representations: one relabel pass per operation, identical counts.
  EXPECT_EQ(ms.relabel_passes, vs.relabel_passes);
  EXPECT_EQ(ms.coalesced_regions, vs.coalesced_regions);
  EXPECT_GT(ms.relabel_passes, 0u);
  // Arena counters: both stores run over pooled nodes, so after inserts
  // both must report real allocator traffic (never silent zeros again).
  EXPECT_GT(ms.nodes_allocated, 0u);
  EXPECT_GT(vs.nodes_allocated, 0u);
  // The edit script splits virtual intervals, and a virtual split rewrites
  // B+-tree entries (Delete frees nodes via merges, Insert re-splits), so
  // recycling must have both released and reused nodes.
  EXPECT_GT(vs.nodes_released, 0u);
  EXPECT_GT(vs.nodes_reused, 0u);
  ASSERT_TRUE(mat->CheckConsistency().ok());
  ASSERT_TRUE(virt->CheckConsistency().ok());
}

// ---------------------------------------------------------------------------
// Batch edge cases, uniformly across every scheme family: the LabelStore
// batch contract (empty batches, head insertion, batches into an empty
// store, and the all-or-nothing failure guarantee) must hold whether the
// scheme has a native batch path (the L-Tree variants, now plan/apply) or
// rides the per-item fallback.
// ---------------------------------------------------------------------------

class BatchEdgeCaseTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchEdgeCaseTest, EmptyBatchIsNoopEverywhere) {
  auto store = listlab::MakeLabelStore(GetParam()).ValueOrDie();
  std::vector<listlab::ItemHandle> handles;
  ASSERT_TRUE(store->BulkLoad(8, &handles).ok());
  store->ResetStats();
  const auto labels_before = store->Labels();
  EXPECT_TRUE(store->InsertBatchAfter(handles[3], {}).ok());
  EXPECT_TRUE(store->InsertBatchBefore(handles[0], {}).ok());
  EXPECT_TRUE(store->PushBackBatch({}).ok());
  EXPECT_EQ(store->size(), 8u);
  EXPECT_EQ(store->Labels(), labels_before);
  EXPECT_EQ(store->stats().inserts, 0u);
  EXPECT_EQ(store->stats().batch_inserts, 0u);
}

TEST_P(BatchEdgeCaseTest, InsertBatchBeforeHead) {
  auto store = listlab::MakeLabelStore(GetParam()).ValueOrDie();
  std::vector<listlab::ItemHandle> handles;
  ASSERT_TRUE(store->BulkLoad(6, &handles).ok());
  const std::vector<LeafCookie> batch{100, 101, 102};
  std::vector<listlab::ItemHandle> fresh;
  ASSERT_TRUE(store->InsertBatchBefore(handles[0], batch, &fresh).ok());
  ASSERT_EQ(fresh.size(), 3u);
  EXPECT_EQ(store->size(), 9u);
  // The batch lands, in order, strictly before the old head.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(*store->GetCookie(fresh[i]), batch[i]);
  }
  EXPECT_LT(*store->GetLabel(fresh[0]), *store->GetLabel(fresh[1]));
  EXPECT_LT(*store->GetLabel(fresh[1]), *store->GetLabel(fresh[2]));
  EXPECT_LT(*store->GetLabel(fresh[2]), *store->GetLabel(handles[0]));
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST_P(BatchEdgeCaseTest, PushBackBatchOnEmptyStore) {
  auto store = listlab::MakeLabelStore(GetParam()).ValueOrDie();
  const std::vector<LeafCookie> batch{7, 8, 9, 10};
  std::vector<listlab::ItemHandle> fresh;
  ASSERT_TRUE(store->PushBackBatch(batch, &fresh).ok());
  ASSERT_EQ(fresh.size(), 4u);
  EXPECT_EQ(store->size(), 4u);
  const auto labels = store->Labels();
  ASSERT_EQ(labels.size(), 4u);
  for (size_t i = 1; i < labels.size(); ++i) {
    EXPECT_LT(labels[i - 1], labels[i]);
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(*store->GetCookie(fresh[i]), batch[i]);
  }
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST_P(BatchEdgeCaseTest, FailedBatchLeavesStoreUntouched) {
  // All-or-nothing: a batch that fails (here: against an erased anchor,
  // which every scheme must reject) leaves size, labels and stats alone.
  auto store = listlab::MakeLabelStore(GetParam()).ValueOrDie();
  std::vector<listlab::ItemHandle> handles;
  ASSERT_TRUE(store->BulkLoad(8, &handles).ok());
  ASSERT_TRUE(store->Erase(handles[4]).ok());
  store->ResetStats();
  const auto labels_before = store->Labels();
  const std::vector<LeafCookie> batch{200, 201};
  Status st = store->InsertBatchAfter(handles[4], batch);
  EXPECT_FALSE(st.ok()) << GetParam();
  st = store->InsertBatchBefore(handles[4], batch);
  EXPECT_FALSE(st.ok()) << GetParam();
  EXPECT_EQ(store->size(), 7u);
  EXPECT_EQ(store->Labels(), labels_before);
  EXPECT_EQ(store->stats().inserts, 0u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

// Mid-batch capacity failure: only the L-Tree variants have a bounded
// label space to exhaust; the batch must fail atomically, the store must
// stay fully usable, and a smaller insert must still succeed.
class BatchCapacityRollbackTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchCapacityRollbackTest, CapacityFailureIsAtomic) {
  // f=4096, s=2048: the (f+1)-ary label space caps the height at 5, so the
  // leaf budget is 2048 * 2^5 = 65536.
  auto store = listlab::MakeLabelStore(GetParam()).ValueOrDie();
  std::vector<LeafCookie> load(60000);
  for (uint64_t i = 0; i < load.size(); ++i) load[i] = i;
  std::vector<listlab::ItemHandle> handles;
  // PushBackBatch, not BulkLoad: a complete d-ary bulk build of 60000
  // leaves needs height 16, beyond this parameterization's label space;
  // the incremental path packs up to f children per node.
  ASSERT_TRUE(store->PushBackBatch(load, &handles).ok());
  store->ResetStats();

  std::vector<LeafCookie> batch(10000);
  for (uint64_t i = 0; i < batch.size(); ++i) batch[i] = 100000 + i;
  std::vector<listlab::ItemHandle> fresh;
  Status st = store->InsertBatchAfter(handles[30000], batch, &fresh);
  EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(store->size(), 60000u);
  EXPECT_EQ(store->stats().inserts, 0u);
  EXPECT_TRUE(store->CheckInvariants().ok());
  // The store is not poisoned: smaller batches still fit.
  const std::vector<LeafCookie> small{1, 2, 3};
  ASSERT_TRUE(store->InsertBatchAfter(handles[30000], small).ok());
  EXPECT_EQ(store->size(), 60003u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Schemes, BatchEdgeCaseTest,
                         ::testing::Values("ltree:16:4", "ltree:4:2:purge",
                                           "virtual:16:4", "sequential",
                                           "gap:16", "bender"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return name;
                         });

INSTANTIATE_TEST_SUITE_P(LTreeSchemes, BatchCapacityRollbackTest,
                         ::testing::Values("ltree:4096:2048",
                                           "virtual:4096:2048"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return name;
                         });

// The full parse -> edit -> query pipeline must run under (at least) these
// five scheme families — the acceptance bar for the pluggable LabelStore.
INSTANTIATE_TEST_SUITE_P(Schemes, SchemeEquivalenceTest,
                         ::testing::Values("ltree:16:4", "ltree:4:2:purge",
                                           "virtual:16:4", "virtual:4:2",
                                           "sequential", "gap:64", "gap:16",
                                           "bender", "bender:0.75"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace docstore
}  // namespace ltree
