// DocumentStore behavior: routing, document edits, feed publication,
// state-vector catch-up, stats rollup, and — via DocumentStoreTestPeer —
// the negative direction of the shard-routing and stats-rollup audit
// rules (a desynced registry or ledger MUST be reported).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "store/document_store.h"
#include "workload/update_stream.h"

namespace ltree {
namespace store {

/// Seeds corruptions for the negative audit tests. Only registry/ledger
/// state is reachable from here (ShardCtx lives in the .cc), which is
/// exactly what the shard-routing and stats-rollup rules guard.
class DocumentStoreTestPeer {
 public:
  static void SetDocShard(DocumentStore* s, DocId doc, uint32_t shard) {
    s->docs_[doc].shard = shard;
  }
  static void AddPhantomItem(DocumentStore* s, DocId doc,
                             listlab::ItemHandle handle) {
    s->docs_[doc].items.push_back(handle);
  }
  static void ForgetDocument(DocumentStore* s, DocId doc) {
    s->docs_.erase(doc);
  }
  static void BumpLedgerInserts(DocumentStore* s, uint64_t n) {
    s->ledger_.inserts += n;
  }
  static void CorruptSubscriber(DocumentStore* s, uint64_t subscriber,
                                StateVector position) {
    s->subscribers_[subscriber] = std::move(position);
  }
};

namespace {

std::unique_ptr<DocumentStore> MakeStore(const DocStoreOptions& options) {
  return DocumentStore::Make(options).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Construction and routing
// ---------------------------------------------------------------------------

TEST(DocumentStoreTest, MakeRejectsBadOptions) {
  EXPECT_TRUE(DocumentStore::Make({.num_shards = 0}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DocumentStore::Make({.feed_capacity = 0}).status()
                  .IsInvalidArgument());
  EXPECT_FALSE(DocumentStore::Make({.scheme_spec = "no-such-scheme"})
                   .status()
                   .ok());
}

TEST(DocumentStoreTest, RoutingIsDeterministicAndRoughlyUniform) {
  auto store = MakeStore({.num_shards = 8});
  std::vector<uint64_t> counts(8, 0);
  for (DocId doc = 0; doc < 4000; ++doc) {
    const uint32_t shard = store->ShardOf(doc);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(shard, store->ShardOf(doc));  // stable
    ++counts[shard];
  }
  for (const uint64_t c : counts) {
    // 4000 docs over 8 shards: expect 500 per shard; allow wide slack.
    EXPECT_GT(c, 350u);
    EXPECT_LT(c, 650u);
  }
}

TEST(DocumentStoreTest, DocumentLifecycle) {
  auto store = MakeStore({.num_shards = 4});
  EXPECT_FALSE(store->HasDocument(7));
  EXPECT_TRUE(store->CreateDocument(7).ok());
  EXPECT_TRUE(store->HasDocument(7));
  EXPECT_TRUE(store->CreateDocument(7).IsAlreadyExists());
  EXPECT_EQ(store->DocSize(7).ValueOrDie(), 0u);
  EXPECT_TRUE(store->DocSize(8).status().IsNotFound());
  EXPECT_TRUE(store->Append(8).status().IsNotFound());

  ASSERT_TRUE(store->Append(7).ok());
  ASSERT_TRUE(store->Append(7).ok());
  EXPECT_EQ(store->DocSize(7).ValueOrDie(), 2u);
  EXPECT_EQ(store->num_documents(), 1u);

  // Dropping erases every item (publishing erases) and forgets the doc.
  const uint32_t shard = store->ShardOf(7);
  ASSERT_TRUE(store->DropDocument(7).ok());
  EXPECT_FALSE(store->HasDocument(7));
  EXPECT_EQ(store->stats().live_items, 0u);
  EXPECT_EQ(store->feed(shard).last_seq(), 4u);  // 2 inserts + 2 erases
  EXPECT_TRUE(store->Validate().ok());
}

// ---------------------------------------------------------------------------
// Edits and document order
// ---------------------------------------------------------------------------

TEST(DocumentStoreTest, RankEditsPreserveDocumentOrder) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  const LeafCookie a = store->Append(1).ValueOrDie();
  const LeafCookie b = store->InsertAfterRank(1, 0).ValueOrDie();   // a b
  const LeafCookie c = store->InsertBeforeRank(1, 0).ValueOrDie();  // c a b
  const LeafCookie d = store->InsertAfterRank(1, 1).ValueOrDie();   // c a d b
  EXPECT_EQ(store->DocCookies(1).ValueOrDie(),
            (std::vector<LeafCookie>{c, a, d, b}));

  // Labels along document order are strictly increasing: the registry
  // keeps each document's items a contiguous-order subsequence of its
  // shard list.
  Label prev = 0;
  for (uint64_t rank = 0; rank < 4; ++rank) {
    const Label label = store->LabelAt(1, rank).ValueOrDie();
    if (rank > 0) {
      EXPECT_GT(label, prev) << "rank " << rank;
    }
    prev = label;
  }

  ASSERT_TRUE(store->EraseAt(1, 1).ok());  // drop a -> c d b
  EXPECT_EQ(store->DocCookies(1).ValueOrDie(),
            (std::vector<LeafCookie>{c, d, b}));
  EXPECT_TRUE(store->EraseAt(1, 3).IsOutOfRange());
  EXPECT_TRUE(store->InsertAfterRank(1, 3).status().IsOutOfRange());
  EXPECT_TRUE(store->Validate().ok());
}

TEST(DocumentStoreTest, DocumentsSharingAShardStayIndependent) {
  // One shard: every document lands in the same LabelStore.
  auto store = MakeStore({.num_shards = 1});
  for (DocId doc = 0; doc < 4; ++doc) {
    ASSERT_TRUE(store->CreateDocument(doc).ok());
  }
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    const DocId doc = rng.Uniform(4);
    const uint64_t size = store->DocSize(doc).ValueOrDie();
    if (size == 0) {
      ASSERT_TRUE(store->Append(doc).ok());
    } else if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(store->EraseAt(doc, rng.Uniform(size)).ok());
    } else {
      ASSERT_TRUE(store->InsertAfterRank(doc, rng.Uniform(size)).ok());
    }
  }
  // Each document's label sequence is strictly increasing independently.
  for (DocId doc = 0; doc < 4; ++doc) {
    const uint64_t size = store->DocSize(doc).ValueOrDie();
    Label prev = 0;
    for (uint64_t rank = 0; rank < size; ++rank) {
      const Label label = store->LabelAt(doc, rank).ValueOrDie();
      if (rank > 0) {
        EXPECT_GT(label, prev);
      }
      prev = label;
    }
  }
  EXPECT_TRUE(store->Validate().ok());
}

TEST(DocumentStoreTest, BatchInsertPublishesEveryItem) {
  auto store = MakeStore({.num_shards = 2, .scheme_spec = "ltree:16:4"});
  ASSERT_TRUE(store->CreateDocument(5).ok());
  std::vector<LeafCookie> cookies;
  ASSERT_TRUE(store->InsertBatchAfterRank(5, 0, 100, &cookies).ok());
  ASSERT_EQ(cookies.size(), 100u);
  EXPECT_EQ(store->DocSize(5).ValueOrDie(), 100u);
  // Cookies are store-assigned and contiguous for a batch.
  for (size_t i = 1; i < cookies.size(); ++i) {
    EXPECT_EQ(cookies[i], cookies[i - 1] + 1);
  }
  EXPECT_EQ(store->DocCookies(5).ValueOrDie(), cookies);

  // A second batch splices after rank 49.
  std::vector<LeafCookie> more;
  ASSERT_TRUE(store->InsertBatchAfterRank(5, 49, 10, &more).ok());
  const auto order = store->DocCookies(5).ValueOrDie();
  ASSERT_EQ(order.size(), 110u);
  EXPECT_EQ(order[49], cookies[49]);
  EXPECT_EQ(order[50], more[0]);
  EXPECT_EQ(order[59], more[9]);
  EXPECT_EQ(order[60], cookies[50]);

  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.live_items, 110u);
  EXPECT_GE(stats.rollup.batch_inserts, 2u);
  EXPECT_TRUE(store->Validate().ok());
}

TEST(DocumentStoreTest, ApplyClampsRanksAndHandlesEmptyDocs) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  // Insert into an empty document appends regardless of rank.
  ASSERT_TRUE(store
                  ->Apply(1, {.kind = workload::ListOp::Kind::kInsertAfter,
                              .rank = 42})
                  .ok());
  EXPECT_EQ(store->DocSize(1).ValueOrDie(), 1u);
  // Overlarge ranks clamp to the tail item.
  ASSERT_TRUE(store
                  ->Apply(1, {.kind = workload::ListOp::Kind::kInsertBefore,
                              .rank = 42})
                  .ok());
  EXPECT_EQ(store->DocSize(1).ValueOrDie(), 2u);
  ASSERT_TRUE(
      store->Apply(1, {.kind = workload::ListOp::Kind::kErase, .rank = 42})
          .ok());
  ASSERT_TRUE(
      store->Apply(1, {.kind = workload::ListOp::Kind::kErase, .rank = 0})
          .ok());
  // Erase on an empty document is the one op that cannot be clamped away.
  EXPECT_TRUE(
      store->Apply(1, {.kind = workload::ListOp::Kind::kErase, .rank = 0})
          .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Feed publication and catch-up
// ---------------------------------------------------------------------------

TEST(DocumentStoreTest, FeedCarriesLiveHistoryOnly) {
  // Front inserts on a small-f tree force plenty of relabel passes; the
  // huge capacity keeps the full history replayable.
  auto store = MakeStore({.num_shards = 1,
                          .scheme_spec = "ltree:4:2",
                          .feed_capacity = 1 << 20});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  ASSERT_TRUE(store->Append(1).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store->InsertBeforeRank(1, 0).ok());
  }
  // Replaying the feed into a cookie->label map must reproduce the live
  // state exactly (tombstone shuffles are filtered at the tap).
  std::unordered_map<LeafCookie, Label> replay;
  const std::vector<FeedEvent> events =
      store->feed(0).EventsSince(0).ValueOrDie();
  for (const FeedEvent& event : events) {
    switch (event.kind) {
      case FeedEvent::Kind::kInsert:
        ASSERT_EQ(replay.count(event.cookie), 0u) << event.ToString();
        replay[event.cookie] = event.new_label;
        break;
      case FeedEvent::Kind::kRelabel:
        ASSERT_EQ(replay.count(event.cookie), 1u) << event.ToString();
        replay[event.cookie] = event.new_label;
        break;
      case FeedEvent::Kind::kErase:
        ASSERT_EQ(replay.erase(event.cookie), 1u) << event.ToString();
        break;
    }
  }
  const auto state = store->ShardState(0);
  ASSERT_EQ(replay.size(), state.size());
  for (const auto& [label, cookie] : state) {
    ASSERT_EQ(replay.at(cookie), label);
  }
}

TEST(DocumentStoreTest, CatchUpServesDeltaThenSnapshotAfterTrim) {
  auto store = MakeStore({.num_shards = 2, .feed_capacity = 1024});
  ASSERT_TRUE(store->CreateDocument(3).ok());
  const uint32_t shard = store->ShardOf(3);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store->Append(3).ok());

  // 50 inserts plus however many relabels the scheme needed.
  const uint64_t head_seq = store->feed(shard).last_seq();
  ASSERT_GE(head_seq, 50u);

  // Delta from scratch.
  auto full = store->CatchUp(shard, 0).ValueOrDie();
  EXPECT_FALSE(full.snapshot);
  EXPECT_EQ(full.events.size(), head_seq);
  EXPECT_EQ(full.to_seq, head_seq);

  // Empty delta at the head.
  auto head = store->CatchUp(shard, head_seq).ValueOrDie();
  EXPECT_FALSE(head.snapshot);
  EXPECT_TRUE(head.events.empty());

  // Beyond the head is a protocol error.
  EXPECT_TRUE(store->CatchUp(shard, head_seq + 1).status().IsInvalidArgument());
  EXPECT_TRUE(store->CatchUp(99, 0).status().IsInvalidArgument());

  // After a trim the stale position flips to the snapshot path.
  store->TrimFeeds(10);
  auto snap = store->CatchUp(shard, 0).ValueOrDie();
  EXPECT_TRUE(snap.snapshot);
  EXPECT_EQ(snap.to_seq, head_seq);
  EXPECT_EQ(snap.state.size(), 50u);
  // A position still inside the retained window stays on the delta path.
  auto late = store->CatchUp(shard, head_seq - 5).ValueOrDie();
  EXPECT_FALSE(late.snapshot);
  EXPECT_EQ(late.events.size(), 5u);
}

TEST(DocumentStoreTest, StateVectorTracksPerShardHeads) {
  auto store = MakeStore({.num_shards = 4});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  ASSERT_TRUE(store->CreateDocument(1).ok());
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(store->Append(0).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store->Append(1).ok());
  const StateVector sv = store->CurrentStateVector();
  ASSERT_EQ(sv.num_shards(), 4u);
  uint64_t total = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(sv.seq(shard), store->feed(shard).last_seq());
    total += sv.seq(shard);
  }
  // Relabels may add events beyond the 10 inserts, never fewer.
  EXPECT_GE(total, 10u);
}

// ---------------------------------------------------------------------------
// Stats rollup
// ---------------------------------------------------------------------------

TEST(DocumentStoreTest, StatsRollupAggregatesShards) {
  auto store =
      MakeStore({.num_shards = 4, .scheme_spec = "ltree:4:2"});
  workload::MultiSessionStream sessions(
      {.num_docs = 16,
       .num_sessions = 3,
       .doc_zipf_theta = 1.1,
       .session_stream = {.kind = workload::StreamKind::kMixed, .seed = 5}});
  for (DocId doc = 0; doc < 16; ++doc) {
    ASSERT_TRUE(store->CreateDocument(doc).ok());
  }
  for (int i = 0; i < 2000; ++i) {
    const workload::DocOp op = sessions.Next([&](uint64_t doc) {
      return store->DocSize(doc).ValueOrDie();
    });
    ASSERT_TRUE(store->Apply(op.doc, op.op).ok());
  }
  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.documents, 16u);
  EXPECT_EQ(stats.rollup.inserts - stats.rollup.erases, stats.live_items);
  uint64_t doc_total = 0;
  for (DocId doc = 0; doc < 16; ++doc) {
    doc_total += store->DocSize(doc).ValueOrDie();
  }
  EXPECT_EQ(stats.live_items, doc_total);
  ASSERT_EQ(stats.per_shard_items.size(), 4u);
  ASSERT_EQ(stats.per_shard_heap_bytes.size(), 4u);
  uint64_t shard_total = 0;
  uint64_t heap_total = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    shard_total += stats.per_shard_items[shard];
    heap_total += stats.per_shard_heap_bytes[shard];
    EXPECT_GT(stats.per_shard_heap_bytes[shard], 0u);
  }
  EXPECT_EQ(shard_total, stats.live_items);
  EXPECT_EQ(heap_total, stats.heap_bytes);
  EXPECT_EQ(stats.feed_retained + stats.feed_trimmed, stats.feed_events);
  EXPECT_TRUE(store->Validate().ok());
}

// ---------------------------------------------------------------------------
// Audit rules: negative direction
// ---------------------------------------------------------------------------

TEST(DocumentStoreAuditTest, CleanStoreAuditsOkAcrossSchemes) {
  for (const char* spec : {"ltree:16:4", "ltree:16:4:purge", "virtual:16:4",
                           "gap:64", "sequential", "bender"}) {
    auto store = MakeStore({.num_shards = 3, .scheme_spec = spec});
    for (DocId doc = 0; doc < 6; ++doc) {
      ASSERT_TRUE(store->CreateDocument(doc).ok()) << spec;
      for (int i = 0; i < 20; ++i) ASSERT_TRUE(store->Append(doc).ok());
    }
    ASSERT_TRUE(store->EraseAt(2, 5).ok()) << spec;
    const audit::Report report = store->Validate();
    EXPECT_TRUE(report.ok()) << spec << ": " << report.ToString();
    EXPECT_TRUE(store->CheckInvariants().ok()) << spec;
  }
}

TEST(DocumentStoreAuditTest, MisroutedDocumentIsReported) {
  auto store = MakeStore({.num_shards = 4});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  ASSERT_TRUE(store->Append(1).ok());
  const uint32_t wrong = (store->ShardOf(1) + 1) % 4;
  DocumentStoreTestPeer::SetDocShard(store.get(), 1, wrong);
  const audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("shard-routing"));
}

TEST(DocumentStoreAuditTest, OutOfRangeShardIsReported) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  DocumentStoreTestPeer::SetDocShard(store.get(), 1, 7);
  const audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("shard-routing"));
}

TEST(DocumentStoreAuditTest, PhantomItemIsReported) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  ASSERT_TRUE(store->Append(1).ok());
  DocumentStoreTestPeer::AddPhantomItem(store.get(), 1,
                                        listlab::ItemHandle{987654});
  const audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("shard-routing"));
}

TEST(DocumentStoreAuditTest, ForgottenDocumentBreaksConservation) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  ASSERT_TRUE(store->Append(1).ok());
  // Dropping the registry entry orphans the item in the shard live table.
  DocumentStoreTestPeer::ForgetDocument(store.get(), 1);
  const audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("shard-routing"));
}

TEST(DocumentStoreAuditTest, LedgerTamperBreaksStatsRollup) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(1).ok());
  ASSERT_TRUE(store->Append(1).ok());
  DocumentStoreTestPeer::BumpLedgerInserts(store.get(), 5);
  const audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("stats-rollup"));
}

// ---------------------------------------------------------------------------
// Subscriber registry and subscriber-aware trimming
// ---------------------------------------------------------------------------

TEST(SubscriberTrimTest, RegisterValidatesShardCountAndPositions) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store->Append(0).ok());

  EXPECT_TRUE(store->RegisterSubscriber(1, StateVector(2)).ok());
  EXPECT_EQ(store->num_subscribers(), 1u);
  // Wrong shard count.
  EXPECT_TRUE(store->RegisterSubscriber(2, StateVector(3))
                  .IsInvalidArgument());
  // Position beyond the feed head claims a future the feed never
  // published.
  StateVector future(2);
  future.Set(store->ShardOf(0), 999);
  EXPECT_TRUE(store->RegisterSubscriber(3, future).IsInvalidArgument());
  EXPECT_EQ(store->num_subscribers(), 1u);

  // Re-registering overwrites the position; unregistering forgets it.
  StateVector current = store->CurrentStateVector();
  EXPECT_TRUE(store->RegisterSubscriber(1, current).ok());
  EXPECT_EQ(store->num_subscribers(), 1u);
  EXPECT_TRUE(store->UnregisterSubscriber(1).ok());
  EXPECT_TRUE(store->UnregisterSubscriber(1).IsNotFound());
  EXPECT_EQ(store->num_subscribers(), 0u);
}

TEST(SubscriberTrimTest, TrimStopsAtTheSlowestSubscriber) {
  auto store = MakeStore({.num_shards = 1, .feed_capacity = 4096});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(store->Append(0).ok());
  // Appends may emit relabel events too, so measure the head rather than
  // assuming one event per append.
  const uint64_t head = store->CurrentStateVector().seq(0);
  ASSERT_GE(head, 20u);

  StateVector fast(1);
  fast.Set(0, head - 2);
  StateVector slow(1);
  slow.Set(0, 5);
  ASSERT_TRUE(store->RegisterSubscriber(1, fast).ok());
  ASSERT_TRUE(store->RegisterSubscriber(2, slow).ok());
  EXPECT_EQ(store->SlowestSubscriberSeq(0), 5u);

  // Events (5, head] are still owed to the slow subscriber: exactly the
  // first 5 retained events may go.
  EXPECT_EQ(store->TrimToSlowestSubscriber(), 5u);
  const auto served = store->CatchUp(0, 5);
  ASSERT_TRUE(served.ok());
  EXPECT_FALSE(served->snapshot);  // the slow subscriber still gets deltas
  EXPECT_EQ(served->events.size(), head - 5);

  // Once the laggard unregisters, everything up to the fast subscriber
  // can be trimmed.
  ASSERT_TRUE(store->UnregisterSubscriber(2).ok());
  EXPECT_EQ(store->SlowestSubscriberSeq(0), head - 2);
  EXPECT_EQ(store->TrimToSlowestSubscriber(), head - 7);
}

TEST(SubscriberTrimTest, MemoryBudgetWinsOverTheLaggard) {
  auto store = MakeStore({.num_shards = 1, .feed_capacity = 4096});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store->Append(0).ok());

  const uint64_t head = store->CurrentStateVector().seq(0);
  StateVector laggard(1);  // position 0: owed the whole feed
  ASSERT_TRUE(store->RegisterSubscriber(1, laggard).ok());
  // Unbudgeted trim keeps everything for the laggard.
  EXPECT_EQ(store->TrimToSlowestSubscriber(), 0u);
  // A 10-event budget evicts all older events; the laggard must now take
  // the snapshot path, exactly like a trim-during-partition in the chaos
  // suite.
  EXPECT_EQ(store->TrimToSlowestSubscriber(/*max_retained=*/10), head - 10);
  const auto served = store->CatchUp(0, 0);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->snapshot);
}

TEST(SubscriberTrimTest, NoSubscribersMeansTrimToHead) {
  auto store = MakeStore({.num_shards = 1});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(store->Append(0).ok());
  EXPECT_EQ(store->SlowestSubscriberSeq(0), 8u);
  EXPECT_EQ(store->TrimToSlowestSubscriber(), 8u);
}

TEST(DocumentStoreAuditTest, CorruptSubscriberPositionIsReported) {
  auto store = MakeStore({.num_shards = 2});
  ASSERT_TRUE(store->CreateDocument(0).ok());
  ASSERT_TRUE(store->Append(0).ok());

  // A position past the feed head can never arise through
  // RegisterSubscriber; plant one directly.
  StateVector beyond(2);
  beyond.Set(0, 999);
  beyond.Set(1, 999);
  DocumentStoreTestPeer::CorruptSubscriber(store.get(), 9,
                                           std::move(beyond));
  audit::Report report = store->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("subscriber-registry")) << report.ToString();

  // Same rule for a shard-count mismatch.
  auto store2 = MakeStore({.num_shards = 2});
  DocumentStoreTestPeer::CorruptSubscriber(store2.get(), 9, StateVector(5));
  report = store2->Validate();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("subscriber-registry")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Multi-session workload generator
// ---------------------------------------------------------------------------

TEST(MultiSessionStreamTest, RoundRobinsSessionsAndSkewsDocs) {
  workload::MultiSessionStream sessions(
      {.num_docs = 32,
       .num_sessions = 4,
       .doc_zipf_theta = 1.2,
       .session_stream = {.kind = workload::StreamKind::kUniform,
                          .seed = 42}});
  std::vector<uint64_t> per_doc(32, 0);
  uint32_t expect_session = 0;
  for (int i = 0; i < 4000; ++i) {
    const workload::DocOp op = sessions.Next([](uint64_t) { return 10; });
    EXPECT_EQ(op.session, expect_session);
    expect_session = (expect_session + 1) % 4;
    ASSERT_LT(op.doc, 32u);
    ASSERT_LT(op.op.rank, 10u);
    ++per_doc[op.doc];
  }
  // Zipf theta 1.2: the hottest document dominates a uniform share.
  uint64_t hottest = 0;
  for (const uint64_t c : per_doc) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 4000u / 32 * 4);
}

TEST(MultiSessionStreamTest, EmptyDocumentsAlwaysGetInserts) {
  workload::MultiSessionStream sessions(
      {.num_docs = 8,
       .num_sessions = 2,
       .session_stream = {.kind = workload::StreamKind::kMixed,
                          .erase_fraction = 0.9,
                          .seed = 3}});
  for (int i = 0; i < 500; ++i) {
    const workload::DocOp op = sessions.Next([](uint64_t) { return 0; });
    EXPECT_EQ(op.op.kind, workload::ListOp::Kind::kInsertAfter);
    EXPECT_EQ(op.op.rank, 0u);
  }
}

TEST(MultiSessionStreamTest, SameSeedReproducesTheStream) {
  const workload::MultiSessionOptions options{
      .num_docs = 16,
      .num_sessions = 3,
      .doc_zipf_theta = 0.9,
      .session_stream = {.kind = workload::StreamKind::kMixed, .seed = 77}};
  workload::MultiSessionStream a(options);
  workload::MultiSessionStream b(options);
  for (int i = 0; i < 200; ++i) {
    const auto size = [](uint64_t doc) { return doc % 5 + 1; };
    const workload::DocOp x = a.Next(size);
    const workload::DocOp y = b.Next(size);
    EXPECT_EQ(x.doc, y.doc);
    EXPECT_EQ(x.session, y.session);
    EXPECT_EQ(static_cast<int>(x.op.kind), static_cast<int>(y.op.kind));
    EXPECT_EQ(x.op.rank, y.op.rank);
  }
}

}  // namespace
}  // namespace store
}  // namespace ltree
