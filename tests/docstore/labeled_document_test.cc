// End-to-end tests of the LabeledDocument glue: labels stay consistent with
// document order across element/fragment insertion and subtree deletion,
// and label-based queries keep answering correctly — the system-level claim
// of the paper.

#include "docstore/labeled_document.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/path_query.h"
#include "workload/xml_generator.h"

namespace ltree {
namespace docstore {
namespace {

const char* const kScheme = "ltree:8:2";

TEST(LabeledDocumentTest, BuildFromXml) {
  auto store = LabeledDocument::FromXml(
      "<book><chapter><title/></chapter><title/></book>", kScheme);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->table().size(), 4u);
  EXPECT_TRUE((*store)->CheckConsistency().ok());
}

TEST(LabeledDocumentTest, RejectsMalformedXml) {
  EXPECT_FALSE(LabeledDocument::FromXml("<a>", kScheme).ok());
  EXPECT_FALSE(LabeledDocument::FromXml("", kScheme).ok());
}

TEST(LabeledDocumentTest, RegionsReflectAncestry) {
  auto store = LabeledDocument::FromXml(
      "<book><chapter><title/></chapter><title/></book>", kScheme)
                   .MoveValueUnsafe();
  const xml::Node* book = store->document().root();
  const xml::Node* chapter = book->first_child;
  const xml::Node* inner_title = chapter->first_child;
  const xml::Node* outer_title = book->last_child;

  EXPECT_TRUE(*store->IsAncestor(book->id, inner_title->id));
  EXPECT_TRUE(*store->IsAncestor(book->id, outer_title->id));
  EXPECT_TRUE(*store->IsAncestor(chapter->id, inner_title->id));
  EXPECT_FALSE(*store->IsAncestor(chapter->id, outer_title->id));
  EXPECT_FALSE(*store->IsAncestor(inner_title->id, book->id));
  EXPECT_FALSE(*store->IsAncestor(book->id, book->id));
}

TEST(LabeledDocumentTest, InsertElementKeepsQueriesCorrect) {
  auto store = LabeledDocument::FromXml(
      "<book><chapter><title/></chapter></book>", kScheme)
                   .MoveValueUnsafe();
  const xml::Node* book = store->document().root();
  const xml::NodeId book_id = book->id;
  // Append 30 new chapters, each with a title inside.
  for (int i = 0; i < 30; ++i) {
    auto ch = store->InsertElement(book_id, 0, "chapter");
    ASSERT_TRUE(ch.ok());
    auto t = store->InsertElement(*ch, 0, "title");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(store->CheckConsistency().ok()) << "i=" << i;
  }
  auto q = query::PathQuery::Parse("book//title").ValueOrDie();
  auto rows = query::EvaluateWithLabels(q, store->table());
  EXPECT_EQ(rows.size(), 31u);
  auto dom = query::EvaluateOnDocument(q, store->document());
  ASSERT_EQ(rows.size(), dom.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i]->id, dom[i]);
  }
}

TEST(LabeledDocumentTest, InsertAfterSpecificSibling) {
  auto store =
      LabeledDocument::FromXml("<r><a/><c/></r>", kScheme).MoveValueUnsafe();
  const xml::Node* r = store->document().root();
  const xml::NodeId a_id = r->first_child->id;
  auto b = store->InsertElement(r->id, a_id, "b");
  ASSERT_TRUE(b.ok());
  // Document order must now be a, b, c.
  std::vector<std::string> tags;
  for (const xml::Node* c = store->document().root()->first_child;
       c != nullptr; c = c->next_sibling) {
    tags.push_back(c->tag);
  }
  EXPECT_EQ(tags, (std::vector<std::string>{"a", "b", "c"}));
  // Region of b sits between a and c.
  auto ra = store->GetRegion(a_id);
  auto rb = store->GetRegion(*b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(rb->start, ra->end);
  EXPECT_TRUE(store->CheckConsistency().ok());
}

TEST(LabeledDocumentTest, InsertErrors) {
  auto store =
      LabeledDocument::FromXml("<r><a/></r>", kScheme).MoveValueUnsafe();
  const xml::NodeId root_id = store->document().root()->id;
  EXPECT_TRUE(store->InsertElement(9999, 0, "x").status().IsNotFound());
  EXPECT_TRUE(
      store->InsertElement(root_id, 12345, "x").status().IsNotFound());
  // Text node as parent is rejected.
  auto text = store->InsertText(root_id, 0, "hello");
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(store->InsertElement(*text, 0, "x").status().IsNotFound());
}

TEST(LabeledDocumentTest, InsertTextOccupiesOrderSlot) {
  auto store =
      LabeledDocument::FromXml("<r><a/><b/></r>", kScheme).MoveValueUnsafe();
  const xml::Node* r = store->document().root();
  const xml::NodeId a_id = r->first_child->id;
  const xml::NodeId b_id = r->last_child->id;
  auto text = store->InsertText(r->id, a_id, "between");
  ASSERT_TRUE(text.ok());
  auto rt = store->GetRegion(*text);
  ASSERT_TRUE(rt.ok());
  EXPECT_GT(rt->start, store->GetRegion(a_id)->end);
  EXPECT_LT(rt->start, store->GetRegion(b_id)->start);
  EXPECT_TRUE(store->CheckConsistency().ok());
}

TEST(LabeledDocumentTest, FragmentInsertIsOneBatch) {
  auto store =
      LabeledDocument::FromXml("<site><books/></site>", kScheme)
          .MoveValueUnsafe();
  const xml::Node* books = store->document().root()->first_child;
  const uint64_t batches_before =
      store->label_store().stats().batch_inserts;
  auto frag = store->InsertFragment(
      books->id, 0,
      "<book id=\"b1\"><title>T</title><chapter><para>p</para></chapter>"
      "</book>");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(store->label_store().stats().batch_inserts, batches_before + 1)
      << "the whole fragment enters as a single Section 4.1 batch";
  EXPECT_TRUE(store->CheckConsistency().ok());
  // The fragment is queryable immediately.
  auto q = query::PathQuery::Parse("//book//para").ValueOrDie();
  EXPECT_EQ(query::EvaluateWithLabels(q, store->table()).size(), 1u);
  // Attributes survived the copy.
  const xml::Node* book = store->document().FindById(*frag);
  ASSERT_NE(book, nullptr);
  ASSERT_NE(book->FindAttr("id"), nullptr);
  EXPECT_EQ(*book->FindAttr("id"), "b1");
}

TEST(LabeledDocumentTest, FragmentRejectsBadXml) {
  auto store =
      LabeledDocument::FromXml("<r/>", kScheme).MoveValueUnsafe();
  const xml::NodeId root_id = store->document().root()->id;
  EXPECT_TRUE(
      store->InsertFragment(root_id, 0, "<oops>").status().IsParseError());
  EXPECT_TRUE(store->CheckConsistency().ok());
}

TEST(LabeledDocumentTest, DeleteSubtree) {
  auto store = LabeledDocument::FromXml(
      "<r><a><b/><c/></a><d/></r>", kScheme)
                   .MoveValueUnsafe();
  const xml::Node* r = store->document().root();
  const xml::NodeId a_id = r->first_child->id;
  const uint64_t live_before = store->label_store().size();
  ASSERT_TRUE(store->DeleteSubtree(a_id).ok());
  // a, b, c each had 2 leaves -> 6 tombstones.
  EXPECT_EQ(store->label_store().size(), live_before - 6);
  EXPECT_EQ(store->table().size(), 2u);  // r and d remain
  EXPECT_TRUE(store->GetRegion(a_id).status().IsNotFound());
  EXPECT_TRUE(store->DeleteSubtree(a_id).IsNotFound());
  EXPECT_TRUE(store->CheckConsistency().ok());
  auto q = query::PathQuery::Parse("//b").ValueOrDie();
  EXPECT_TRUE(query::EvaluateWithLabels(q, store->table()).empty());
}

TEST(LabeledDocumentTest, RandomEditStormStaysConsistent) {
  auto store = LabeledDocument::FromDocument(
                   workload::GenerateCatalog(10, 2, 3), "ltree:4:2")
                   .MoveValueUnsafe();
  Rng rng(99);
  std::vector<xml::NodeId> elements;
  store->document().Visit([&](const xml::Node& n) {
    if (n.IsElement()) elements.push_back(n.id);
  });
  for (int op = 0; op < 200; ++op) {
    const xml::NodeId target =
        elements[static_cast<size_t>(rng.Uniform(elements.size()))];
    if (store->document().FindById(target) == nullptr ||
        !store->document().FindById(target)->IsElement()) {
      continue;
    }
    auto fresh = store->InsertElement(target, 0, "edit");
    if (fresh.ok()) elements.push_back(*fresh);
    if (op % 20 == 0) {
      ASSERT_TRUE(store->CheckConsistency().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(store->CheckConsistency().ok());
}

}  // namespace
}  // namespace docstore
}  // namespace ltree
