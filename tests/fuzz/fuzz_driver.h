// Standalone driver for the differential fuzz harnesses.
//
// Each harness defines the libFuzzer entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
// When the toolchain is Clang, CMake adds -fsanitize=fuzzer and defines
// LTREE_FUZZ_LIBFUZZER, so libFuzzer supplies main() and drives coverage-
// guided mutation. Everywhere else (this container only ships g++, which
// has no libFuzzer runtime) this header supplies a main() that replays
// inputs deterministically:
//
//   fuzz_x seed_file_or_dir...   — replay each corpus input once
//   fuzz_x --rounds N [seeds...] — additionally run N pseudo-random inputs
//                                  from a fixed-seed xorshift generator
//
// The same binary therefore works as a CTest smoke gate (replay the seed
// corpus + a few hundred random inputs) and as the CI fuzzing entry point.

#ifndef LTREE_TESTS_FUZZ_FUZZ_DRIVER_H_
#define LTREE_TESTS_FUZZ_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef LTREE_FUZZ_LIBFUZZER

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ltree_fuzz {

inline std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

inline int ReplayPath(const std::filesystem::path& path) {
  int replayed = 0;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const std::vector<uint8_t> bytes = ReadFile(entry.path());
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++replayed;
    }
    return replayed;
  }
  const std::vector<uint8_t> bytes = ReadFile(path);
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace ltree_fuzz

int main(int argc, char** argv) {
  uint64_t rounds = 0;
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    replayed += ltree_fuzz::ReplayPath(argv[i]);
  }
  // Fixed-seed xorshift64* stream: deterministic, so a CTest failure is
  // reproducible by rerunning the same binary.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  std::vector<uint8_t> input;
  for (uint64_t r = 0; r < rounds; ++r) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const size_t len = static_cast<size_t>((state * 0x2545f4914f6cdd1dull) %
                                           512);
    input.resize(len);
    for (size_t i = 0; i < len; ++i) {
      state ^= state >> 12;
      state ^= state << 25;
      state ^= state >> 27;
      input[i] = static_cast<uint8_t>(state * 0x2545f4914f6cdd1dull >> 56);
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("replayed %d corpus input(s), %llu random round(s): OK\n",
              replayed, static_cast<unsigned long long>(rounds));
  return 0;
}

#endif  // !LTREE_FUZZ_LIBFUZZER
#endif  // LTREE_TESTS_FUZZ_FUZZ_DRIVER_H_
