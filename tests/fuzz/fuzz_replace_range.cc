// Differential fuzzer: CountedBTree::ReplaceRange vs a sorted-vector oracle.
//
// ReplaceRange is the virtual L-Tree's bulk relabel primitive and by far
// the most structurally aggressive CountedBTree mutation (in-place leaf
// splicing plus a bottom-up occupancy/count/separator repair). The oracle
// is a plain sorted std::vector<Entry> where the same operation is a
// trivial erase+insert. After every mutation the tree must match the
// oracle exactly (ScanAll), agree on the rank/count queries the virtual
// scheme depends on, and pass the deep auditor.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obtree/counted_btree.h"

#include "fuzz_driver.h"

namespace {

using ltree::Label;
using ltree::Status;
using ltree::obtree::CountedBTree;
using ltree::obtree::Entry;

constexpr size_t kMaxOps = 128;
constexpr size_t kMaxEntries = 4096;
// Small key universe so ranges actually overlap existing keys.
constexpr Label kKeySpace = 1 << 14;

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool done() const { return pos >= size; }
  uint8_t U8() { return done() ? 0 : data[pos++]; }
  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }
};

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "replace-range mismatch: %s\n", what);
  std::abort();
}

void RequireOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "replace-range: %s failed: %s\n", what,
                 s.message().c_str());
    std::abort();
  }
}

bool OracleContains(const std::vector<Entry>& oracle, Label key) {
  auto it = std::lower_bound(
      oracle.begin(), oracle.end(), key,
      [](const Entry& e, Label k) { return e.key < k; });
  return it != oracle.end() && it->key == key;
}

/// Mirrors ReplaceRange on the sorted vector: drop [lo, hi), splice in the
/// replacement run.
void OracleReplaceRange(std::vector<Entry>* oracle, Label lo, Label hi,
                        const std::vector<Entry>& entries) {
  auto first = std::lower_bound(
      oracle->begin(), oracle->end(), lo,
      [](const Entry& e, Label k) { return e.key < k; });
  auto last = std::lower_bound(
      first, oracle->end(), hi,
      [](const Entry& e, Label k) { return e.key < k; });
  const auto at = oracle->erase(first, last);
  oracle->insert(at, entries.begin(), entries.end());
}

void CheckAgainstOracle(const CountedBTree& tree,
                        const std::vector<Entry>& oracle, ByteReader* in) {
  if (tree.size() != oracle.size()) Die("size mismatch");
  if (tree.ScanAll() != oracle) Die("ScanAll mismatch");
  // Spot-check the order-statistic queries at fuzz-chosen points.
  if (!oracle.empty()) {
    const uint64_t rank = in->U16() % oracle.size();
    const auto sel = tree.Select(rank);
    if (!sel.ok() || !(*sel == oracle[rank])) Die("Select mismatch");
    const Label probe = in->U16() % kKeySpace;
    const uint64_t want_less = static_cast<uint64_t>(
        std::lower_bound(oracle.begin(), oracle.end(), probe,
                         [](const Entry& e, Label k) { return e.key < k; }) -
        oracle.begin());
    if (tree.CountLess(probe) != want_less) Die("CountLess mismatch");
  }
  const Status invariants = tree.CheckInvariants();
  if (!invariants.ok()) {
    std::fprintf(stderr, "replace-range: auditor: %s\n",
                 invariants.message().c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in{data, size};

  // Fuzz the node order too: occupancy repair behaves differently at the
  // minimum order than at wide nodes.
  const uint32_t order = 4 + in.U8() % 60;
  CountedBTree tree(order);
  std::vector<Entry> oracle;

  // Seed load: a strided run so ReplaceRange windows hit gaps and keys.
  const size_t seed = in.U16() % 1024;
  for (size_t i = 0; i < seed; ++i) {
    oracle.push_back(Entry{static_cast<Label>(i * 7 % kKeySpace), i});
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  oracle.erase(std::unique(oracle.begin(), oracle.end(),
                           [](const Entry& a, const Entry& b) {
                             return a.key == b.key;
                           }),
               oracle.end());
  RequireOk(tree.BulkBuild(oracle), "BulkBuild");

  uint64_t next_value = 1 << 20;
  size_t ops = 0;
  while (!in.done() && ops < kMaxOps) {
    ++ops;
    const uint8_t op = in.U8() % 4;
    switch (op) {
      case 0: {  // Insert a fresh key
        if (oracle.size() >= kMaxEntries) break;
        const Label key = in.U16() % kKeySpace;
        const Entry entry{key, next_value++};
        if (OracleContains(oracle, key)) {
          // Differential negative: duplicate insert must be rejected and
          // must not disturb the tree.
          if (!tree.Insert(key, entry.value).IsAlreadyExists()) {
            Die("duplicate Insert not rejected");
          }
          break;
        }
        RequireOk(tree.Insert(key, entry.value), "Insert");
        OracleReplaceRange(&oracle, key, key + 1, {entry});
        break;
      }
      case 1: {  // Delete
        const Label key = in.U16() % kKeySpace;
        if (!OracleContains(oracle, key)) {
          if (!tree.Delete(key).IsNotFound()) {
            Die("Delete of absent key not rejected");
          }
          break;
        }
        RequireOk(tree.Delete(key), "Delete");
        OracleReplaceRange(&oracle, key, key + 1, {});
        break;
      }
      case 2:    // ReplaceRange with a fresh run
      case 3: {  // ReplaceRange as a pure range-erase
        Label lo = in.U16() % kKeySpace;
        Label hi = in.U16() % kKeySpace;
        if (lo > hi) std::swap(lo, hi);
        std::vector<Entry> entries;
        if (op == 2 && hi > lo) {
          // Evenly spaced replacement keys inside [lo, hi).
          const size_t k = in.U8() % 32;
          const Label width = hi - lo;
          for (size_t i = 0; i < k; ++i) {
            const Label key = lo + static_cast<Label>(i) * width / k;
            if (!entries.empty() && entries.back().key == key) continue;
            entries.push_back(Entry{key, next_value++});
          }
        }
        if (oracle.size() + entries.size() > kMaxEntries + 1024) break;
        RequireOk(tree.ReplaceRange(lo, hi, entries), "ReplaceRange");
        OracleReplaceRange(&oracle, lo, hi, entries);
        break;
      }
    }
    CheckAgainstOracle(tree, oracle, &in);
  }
  return 0;
}
