// Wire-frame fuzzer: DecodeFrame must be TOTAL.
//
// The replication protocol's whole corruption story rests on one promise:
// any byte string that is not the exact encoding of a valid frame decodes
// to Status::Corruption — never to a frame, never to UB, never to an
// allocation driven by forged counts. This harness feeds DecodeFrame
// arbitrary bytes and cross-checks the round-trip property both ways:
//
//   * decode(bytes) ok  =>  encode(decode(bytes)) == bytes (canonical
//     encoding: a valid frame has exactly one byte representation);
//   * any accepted frame re-decodes to an identical frame (idempotence);
//   * a single flipped bit in accepted bytes must be rejected.
//
// Run under ASan/UBSan (LTREE_SANITIZE) this is the memory-safety proof
// for the decoder; the checked-in corpus seeds valid frames of every type
// so coverage starts inside the payload parsers rather than dying at the
// CRC gate.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "replica/wire_format.h"

#include "fuzz_driver.h"

namespace {

using ltree::Result;
using ltree::replica::DecodeFrame;
using ltree::replica::EncodeFrame;
using ltree::replica::Frame;

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "wire-frame fuzz violation: %s\n", what);
  std::abort();
}

bool FramesEqual(const Frame& a, const Frame& b) {
  if (a.type != b.type || a.shard != b.shard || a.nonce != b.nonce ||
      a.from_seq != b.from_seq || a.to_seq != b.to_seq ||
      a.subscriber != b.subscriber || a.seqs != b.seqs ||
      a.state != b.state || a.error_code != b.error_code ||
      a.error_message != b.error_message ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].seq != b.events[i].seq ||
        a.events[i].kind != b.events[i].kind ||
        a.events[i].cookie != b.events[i].cookie ||
        a.events[i].old_label != b.events[i].old_label ||
        a.events[i].new_label != b.events[i].new_label) {
      return false;
    }
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const Result<Frame> decoded = DecodeFrame(data, size);
  if (!decoded.ok()) {
    // Rejection must be the decoder's one failure mode.
    if (!decoded.status().IsCorruption()) Die("rejection is not Corruption");
    return 0;
  }

  // Accepted input: the encoding is canonical, so re-encoding must
  // reproduce the input bytes exactly...
  const std::vector<uint8_t> reencoded = EncodeFrame(*decoded);
  if (reencoded.size() != size) Die("re-encode changed the length");
  for (size_t i = 0; i < size; ++i) {
    if (reencoded[i] != data[i]) Die("re-encode changed the bytes");
  }
  // ...and re-decoding must reproduce the frame (idempotence).
  const Result<Frame> redecoded = DecodeFrame(reencoded);
  if (!redecoded.ok()) Die("canonical bytes failed to decode");
  if (!FramesEqual(*decoded, *redecoded)) Die("re-decode changed the frame");

  // Every single-bit corruption of accepted bytes must be caught. Probing
  // all positions is quadratic in input size; one deterministic
  // input-dependent position per run keeps the harness fast while the
  // corpus sweeps the space.
  if (size > 0) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) h = (h ^ data[i]) * 0x100000001b3ull;
    const size_t bit = static_cast<size_t>(h % (size * 8));
    std::vector<uint8_t> damaged(data, data + size);
    damaged[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    if (DecodeFrame(damaged).ok()) Die("single bit flip was accepted");
  }
  return 0;
}
