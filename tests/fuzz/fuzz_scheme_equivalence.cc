// Differential fuzzer: one byte-decoded edit script, five labeling schemes.
//
// The input is decoded into a sequence of list edits (insert before/after a
// random live position, push front/back, erase, batch insert) and replayed
// in lockstep against every scheme the factory knows, plus the purge
// variant of the materialized L-Tree. The shared oracle is the live cookie
// sequence; after every edit each scheme must agree with it exactly, and
// labels read back through the handles must be strictly increasing in list
// order (the paper's order-preservation property). Periodically — and
// always at the end — every store must also pass its own deep Validate().
//
// Schemes may legitimately diverge on *capacity*: a fixed-width scheme can
// exhaust its label space on an adversarial script while the L-Trees keep
// going. A failed insertion is therefore rolled back on the schemes where
// it succeeded (keeping the lockstep), but a failure that claims to be
// Corruption aborts immediately.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "listlab/factory.h"
#include "listlab/order_maintainer.h"

#include "fuzz_driver.h"

namespace {

using ltree::Label;
using ltree::LeafCookie;
using ltree::Status;
using ltree::listlab::ItemHandle;
using ltree::listlab::kInvalidItemHandle;
using ltree::listlab::LabelStore;

constexpr size_t kMaxOps = 256;
constexpr size_t kMaxItems = 2048;
constexpr size_t kValidateEvery = 32;

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool done() const { return pos >= size; }
  uint8_t U8() { return done() ? 0 : data[pos++]; }
  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }
};

struct SchemeState {
  std::unique_ptr<LabelStore> store;
  // One handle per live oracle position, in list order.
  std::vector<ItemHandle> handles;
};

[[noreturn]] void Die(const SchemeState& scheme, const char* what) {
  std::fprintf(stderr, "scheme-equivalence mismatch in %s: %s\n",
               scheme.store->name().c_str(), what);
  std::abort();
}

void CheckStatusNotCorruption(const SchemeState& scheme, const Status& s) {
  if (s.IsCorruption()) {
    std::fprintf(stderr, "%s reported corruption: %s\n",
                 scheme.store->name().c_str(), s.message().c_str());
    std::abort();
  }
}

/// Full lockstep check of one scheme against the cookie oracle.
void CheckEquivalence(const SchemeState& scheme,
                      const std::vector<LeafCookie>& oracle) {
  const LabelStore& store = *scheme.store;
  if (store.size() != oracle.size()) Die(scheme, "live size mismatch");
  if (scheme.handles.size() != oracle.size()) {
    Die(scheme, "handle bookkeeping out of sync");
  }
  Label prev = 0;
  for (size_t i = 0; i < oracle.size(); ++i) {
    const auto cookie = store.GetCookie(scheme.handles[i]);
    if (!cookie.ok() || *cookie != oracle[i]) Die(scheme, "cookie mismatch");
    const auto label = store.GetLabel(scheme.handles[i]);
    if (!label.ok()) Die(scheme, "live handle has no label");
    if (i > 0 && *label <= prev) Die(scheme, "labels not increasing");
    prev = *label;
  }
  // Labels() is the store's own notion of live list order; it must agree
  // with the per-handle walk above.
  if (store.Labels().size() != oracle.size()) {
    Die(scheme, "Labels() size mismatch");
  }
}

void CheckValidate(const SchemeState& scheme) {
  const ltree::audit::Report report = scheme.store->Validate();
  if (!report.ok()) {
    std::fprintf(stderr, "%s failed Validate():\n%s\n",
                 scheme.store->name().c_str(), report.ToString().c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Small f/s and a tight gap so rebalances and relabels fire early.
  static const char* const kSpecs[] = {
      "ltree:8:2", "ltree:8:2:purge", "virtual:8:2",
      "sequential", "gap:16",         "bender",
  };

  std::vector<SchemeState> schemes;
  for (const char* spec : kSpecs) {
    auto store = ltree::listlab::MakeLabelStore(spec);
    if (!store.ok()) std::abort();  // factory specs are hardcoded
    schemes.push_back(SchemeState{std::move(*store), {}});
  }

  ByteReader in{data, size};
  std::vector<LeafCookie> oracle;
  LeafCookie next_cookie = 1;

  // Optional bulk-loaded prefix so scripts start from a populated list.
  const size_t preload = in.U8() % 64;
  if (preload > 0) {
    std::vector<LeafCookie> cookies;
    for (size_t i = 0; i < preload; ++i) cookies.push_back(next_cookie++);
    for (SchemeState& scheme : schemes) {
      std::vector<ItemHandle> handles;
      const Status s = scheme.store->BulkLoad(cookies, &handles);
      if (!s.ok()) CheckStatusNotCorruption(scheme, s);
      if (!s.ok() || handles.size() != preload) Die(scheme, "bulk load");
      scheme.handles = std::move(handles);
    }
    oracle = cookies;
  }

  size_t ops = 0;
  while (!in.done() && ops < kMaxOps) {
    ++ops;
    const uint8_t op = in.U8() % 7;
    const size_t pos = oracle.empty() ? 0 : in.U16() % oracle.size();

    switch (op) {
      case 0:    // InsertAfter
      case 1: {  // InsertBefore
        if (oracle.empty() || oracle.size() >= kMaxItems) break;
        const LeafCookie cookie = next_cookie++;
        std::vector<ItemHandle> inserted(schemes.size(), kInvalidItemHandle);
        bool all_ok = true;
        for (size_t s = 0; s < schemes.size(); ++s) {
          auto h = op == 0 ? schemes[s].store->InsertAfter(
                                 schemes[s].handles[pos], cookie)
                           : schemes[s].store->InsertBefore(
                                 schemes[s].handles[pos], cookie);
          if (!h.ok()) {
            CheckStatusNotCorruption(schemes[s], h.status());
            all_ok = false;
            break;
          }
          inserted[s] = *h;
        }
        if (!all_ok) {
          // Roll back the schemes that did insert so lockstep holds.
          for (size_t s = 0; s < schemes.size(); ++s) {
            if (inserted[s] != kInvalidItemHandle) {
              if (!schemes[s].store->Erase(inserted[s]).ok()) {
                Die(schemes[s], "rollback erase failed");
              }
            }
          }
          break;
        }
        const size_t at = op == 0 ? pos + 1 : pos;
        oracle.insert(oracle.begin() + static_cast<ptrdiff_t>(at), cookie);
        for (size_t s = 0; s < schemes.size(); ++s) {
          schemes[s].handles.insert(
              schemes[s].handles.begin() + static_cast<ptrdiff_t>(at),
              inserted[s]);
        }
        break;
      }
      case 2:    // PushBack
      case 3: {  // PushFront
        if (oracle.size() >= kMaxItems) break;
        const LeafCookie cookie = next_cookie++;
        std::vector<ItemHandle> inserted(schemes.size(), kInvalidItemHandle);
        bool all_ok = true;
        for (size_t s = 0; s < schemes.size(); ++s) {
          auto h = op == 2 ? schemes[s].store->PushBack(cookie)
                           : schemes[s].store->PushFront(cookie);
          if (!h.ok()) {
            CheckStatusNotCorruption(schemes[s], h.status());
            all_ok = false;
            break;
          }
          inserted[s] = *h;
        }
        if (!all_ok) {
          for (size_t s = 0; s < schemes.size(); ++s) {
            if (inserted[s] != kInvalidItemHandle) {
              if (!schemes[s].store->Erase(inserted[s]).ok()) {
                Die(schemes[s], "rollback erase failed");
              }
            }
          }
          break;
        }
        const size_t at = op == 2 ? oracle.size() : 0;
        oracle.insert(oracle.begin() + static_cast<ptrdiff_t>(at), cookie);
        for (size_t s = 0; s < schemes.size(); ++s) {
          schemes[s].handles.insert(
              schemes[s].handles.begin() + static_cast<ptrdiff_t>(at),
              inserted[s]);
        }
        break;
      }
      case 4: {  // Erase
        if (oracle.empty()) break;
        for (SchemeState& scheme : schemes) {
          // A live handle must erase cleanly in every scheme.
          if (!scheme.store->Erase(scheme.handles[pos]).ok()) {
            Die(scheme, "erase of live handle failed");
          }
          scheme.handles.erase(scheme.handles.begin() +
                               static_cast<ptrdiff_t>(pos));
        }
        oracle.erase(oracle.begin() + static_cast<ptrdiff_t>(pos));
        break;
      }
      case 5:    // InsertBatchAfter
      case 6: {  // PushBackBatch
        const size_t k = in.U8() % 24 + 1;
        if (oracle.size() + k > kMaxItems) break;
        if (op == 5 && oracle.empty()) break;
        std::vector<LeafCookie> cookies;
        for (size_t i = 0; i < k; ++i) cookies.push_back(next_cookie++);
        std::vector<std::vector<ItemHandle>> batches(schemes.size());
        bool all_ok = true;
        for (size_t s = 0; s < schemes.size(); ++s) {
          const Status st =
              op == 5 ? schemes[s].store->InsertBatchAfter(
                            schemes[s].handles[pos], cookies, &batches[s])
                      : schemes[s].store->PushBackBatch(cookies, &batches[s]);
          if (!st.ok()) {
            CheckStatusNotCorruption(schemes[s], st);
            all_ok = false;
            break;
          }
          if (batches[s].size() != k) Die(schemes[s], "batch handle count");
        }
        if (!all_ok) {
          // Batches are all-or-nothing per scheme; undo completed ones.
          for (size_t s = 0; s < schemes.size(); ++s) {
            for (ItemHandle h : batches[s]) {
              if (!schemes[s].store->Erase(h).ok()) {
                Die(schemes[s], "rollback erase failed");
              }
            }
          }
          break;
        }
        const size_t at = op == 5 ? pos + 1 : oracle.size();
        oracle.insert(oracle.begin() + static_cast<ptrdiff_t>(at),
                      cookies.begin(), cookies.end());
        for (size_t s = 0; s < schemes.size(); ++s) {
          schemes[s].handles.insert(
              schemes[s].handles.begin() + static_cast<ptrdiff_t>(at),
              batches[s].begin(), batches[s].end());
        }
        break;
      }
    }

    for (const SchemeState& scheme : schemes) {
      CheckEquivalence(scheme, oracle);
      if (ops % kValidateEvery == 0) CheckValidate(scheme);
    }
  }

  for (const SchemeState& scheme : schemes) {
    CheckEquivalence(scheme, oracle);
    CheckValidate(scheme);
  }
  return 0;
}
