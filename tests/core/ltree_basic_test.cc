// Basic behavioural tests of the materialized L-Tree: bulk loading
// (Section 2.2), labeling rule (Section 2.1) and single insertions with
// splits (Section 2.3 / Algorithm 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/ltree.h"

namespace ltree {
namespace {

std::vector<LeafCookie> MakeCookies(size_t n) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), 0);
  return cookies;
}

TEST(LTreeCreateTest, RejectsInvalidParams) {
  EXPECT_FALSE(LTree::Create(Params{.f = 5, .s = 2}).ok());
  EXPECT_TRUE(LTree::Create(Params{.f = 4, .s = 2}).ok());
}

TEST(LTreeCreateTest, EmptyTree) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  EXPECT_EQ(tree->num_slots(), 0u);
  EXPECT_EQ(tree->num_live_leaves(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->FirstLeaf(), nullptr);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeBulkLoadTest, PaperFigure2LabelAssignment) {
  // Figure 2(a): 8 tags bulk-loaded with f=4, s=2 -> complete binary tree of
  // height 3. With the Section 2.1 rule num(w) = num(v) + i*(f+1)^{h(w)},
  // the leaf labels are the base-5 encodings of leaf positions:
  // 0,1,5,6,25,26,30,31.
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(8);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  ASSERT_EQ(handles.size(), 8u);
  EXPECT_EQ(tree->height(), 3u);
  std::vector<Label> expected{0, 1, 5, 6, 25, 26, 30, 31};
  EXPECT_EQ(tree->LiveLabels(), expected);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->label_space(), 125u);
}

TEST(LTreeBulkLoadTest, SingleLeaf) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(1);
  ASSERT_TRUE(tree->BulkLoad(cookies).ok());
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->num_slots(), 1u);
  EXPECT_EQ(tree->LiveLabels(), std::vector<Label>{0});
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeBulkLoadTest, EmptyLoadIsNoop) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad({}).ok());
  EXPECT_EQ(tree->num_slots(), 0u);
}

TEST(LTreeBulkLoadTest, SecondLoadRejected) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(4);
  ASSERT_TRUE(tree->BulkLoad(cookies).ok());
  EXPECT_TRUE(tree->BulkLoad(cookies).IsFailedPrecondition());
}

TEST(LTreeBulkLoadTest, NonPowerSizesKeepLeavesAtOneLevel) {
  for (size_t n : {2, 3, 5, 7, 9, 13, 100, 1000, 1023, 1025}) {
    auto tree = LTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
    auto cookies = MakeCookies(n);
    ASSERT_TRUE(tree->BulkLoad(cookies).ok()) << "n=" << n;
    EXPECT_EQ(tree->num_slots(), n);
    ASSERT_TRUE(tree->CheckInvariants().ok()) << "n=" << n;
    // Labels strictly increasing and cookie order preserved.
    auto labels = tree->LiveLabels();
    EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
    size_t i = 0;
    for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
         leaf = tree->NextLeaf(leaf)) {
      EXPECT_EQ(tree->cookie(leaf), i++);
    }
  }
}

TEST(LTreeInsertTest, PaperFigure2cInsertWithoutSplit) {
  // Figure 2(b)->(c): inserting the begin tag "D" before "C" relabels the
  // right siblings within the height-1 node but does not split.
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(8);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  // handles[2] is the leaf of tag "C" in the paper's running example.
  auto inserted = tree->InsertBefore(handles[2], 100);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(tree->stats().inserts, 1u);
  EXPECT_EQ(tree->stats().splits, 0u);
  EXPECT_EQ(tree->stats().root_splits, 0u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->num_slots(), 9u);
  // The new leaf lands between handles[1] and handles[2].
  EXPECT_GT(tree->label(*inserted), tree->label(handles[1]));
  EXPECT_LT(tree->label(*inserted), tree->label(handles[2]));
}

TEST(LTreeInsertTest, PaperFigure2dSecondInsertSplits) {
  // Figure 2(c)->(d): the second insertion into the same height-1 node
  // pushes it to lmax(1) = f = 4 leaves and splits it into s = 2 subtrees.
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(8);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  auto first = tree->InsertBefore(handles[2], 100);
  ASSERT_TRUE(first.ok());
  auto second = tree->InsertAfter(*first, 101);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(tree->stats().splits, 1u);
  EXPECT_EQ(tree->stats().root_splits, 0u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // Order: handles[1] < first < second < handles[2].
  EXPECT_LT(tree->label(handles[1]), tree->label(*first));
  EXPECT_LT(tree->label(*first), tree->label(*second));
  EXPECT_LT(tree->label(*second), tree->label(handles[2]));
}

TEST(LTreeInsertTest, PushBackIntoEmptyTree) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto h0 = tree->PushBack(7);
  ASSERT_TRUE(h0.ok());
  EXPECT_EQ(tree->label(*h0), 0u);
  auto h1 = tree->PushBack(8);
  ASSERT_TRUE(h1.ok());
  EXPECT_GT(tree->label(*h1), tree->label(*h0));
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->num_slots(), 2u);
}

TEST(LTreeInsertTest, PushFrontIntoEmptyAndNonEmpty) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto h0 = tree->PushFront(1);
  ASSERT_TRUE(h0.ok());
  auto h1 = tree->PushFront(2);
  ASSERT_TRUE(h1.ok());
  EXPECT_LT(tree->label(*h1), tree->label(*h0));
  size_t count = 0;
  for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
       leaf = tree->NextLeaf(leaf)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(LTreeInsertTest, RootSplitGrowsHeight) {
  // f=4, s=2: bulk 4 leaves -> height 2 (budget 8). Keep appending until the
  // root splits.
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  auto cookies = MakeCookies(4);
  ASSERT_TRUE(tree->BulkLoad(cookies).ok());
  EXPECT_EQ(tree->height(), 2u);
  uint64_t cookie = 100;
  while (tree->stats().root_splits == 0) {
    ASSERT_TRUE(tree->PushBack(cookie++).ok());
    ASSERT_TRUE(tree->CheckInvariants().ok());
    ASSERT_LT(cookie, 200u) << "root split never happened";
  }
  EXPECT_EQ(tree->height(), 3u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeInsertTest, OrderPreservedUnderManyAppends) {
  auto tree = LTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(2)).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->PushBack(static_cast<LeafCookie>(i + 10)).ok());
  }
  auto labels = tree->AllLabels();
  EXPECT_EQ(labels.size(), 502u);
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeDeleteTest, TombstoneDoesNotRelabel) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8), &handles).ok());
  auto labels_before = tree->AllLabels();
  ASSERT_TRUE(tree->MarkDeleted(handles[3]).ok());
  EXPECT_EQ(tree->AllLabels(), labels_before);
  EXPECT_EQ(tree->num_slots(), 8u);
  EXPECT_EQ(tree->num_live_leaves(), 7u);
  EXPECT_TRUE(tree->deleted(handles[3]));
  EXPECT_EQ(tree->stats().deletes, 1u);
  EXPECT_EQ(tree->stats().leaves_relabeled, 0u);
  // Live iteration skips the tombstone.
  std::vector<LeafCookie> live;
  for (auto leaf = tree->FirstLiveLeaf(); leaf != nullptr;
       leaf = tree->NextLiveLeaf(leaf)) {
    live.push_back(tree->cookie(leaf));
  }
  EXPECT_EQ(live, (std::vector<LeafCookie>{0, 1, 2, 4, 5, 6, 7}));
}

TEST(LTreeDeleteTest, DoubleDeleteFails) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(4), &handles).ok());
  ASSERT_TRUE(tree->MarkDeleted(handles[0]).ok());
  EXPECT_TRUE(tree->MarkDeleted(handles[0]).IsFailedPrecondition());
}

TEST(LTreeLabelBitsTest, TracksHeight) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8)).ok());
  // label space 5^3 = 125 -> 7 bits
  EXPECT_EQ(tree->label_bits(), 7u);
}

class RecordingListener : public RelabelListener {
 public:
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override {
    events.push_back({cookie, old_label, new_label});
  }
  struct Event {
    LeafCookie cookie;
    Label old_label;
    Label new_label;
  };
  std::vector<Event> events;
};

TEST(LTreeListenerTest, FiredOnlyForChangedExistingLeaves) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8), &handles).ok());
  RecordingListener listener;
  tree->set_listener(&listener);
  // Insert before the leaf with cookie 2: its sibling (cookie 3 shares the
  // height-1 parent) shifts.
  ASSERT_TRUE(tree->InsertBefore(handles[2], 99).ok());
  EXPECT_FALSE(listener.events.empty());
  for (const auto& e : listener.events) {
    EXPECT_NE(e.cookie, 99u) << "fresh leaf must not fire OnRelabel";
    EXPECT_NE(e.old_label, e.new_label);
  }
}

TEST(LTreeStatsTest, AmortizedCostAccounting) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8)).ok());
  EXPECT_EQ(tree->stats().NodeAccesses(), 0u) << "bulk load not counted";
  ASSERT_TRUE(tree->PushBack(50).ok());
  const auto& st = tree->stats();
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_GT(st.ancestor_updates, 0u);
  EXPECT_GT(st.nodes_relabeled, 0u);
  EXPECT_GT(st.AmortizedCostPerInsert(), 0.0);
}

TEST(LTreeFindLeafByLabelTest, ResolvesEveryLeafArithmetically) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8)).ok());
  // Grow past one rebuild so labels are no longer the bulk-load pattern.
  auto mid = tree->FirstLeaf();
  for (int i = 0; i < 40; ++i) {
    mid = tree->InsertAfter(mid, 100 + i).ValueOrDie();
  }
  for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
       leaf = tree->NextLeaf(leaf)) {
    EXPECT_EQ(tree->FindLeafByLabel(tree->label(leaf)), leaf);
  }
}

TEST(LTreeFindLeafByLabelTest, UnassignedLabelsResolveToNull) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8)).ok());
  std::vector<Label> assigned = tree->AllLabels();
  for (Label probe = 0; probe < tree->label_space() + 3; ++probe) {
    const bool taken =
        std::find(assigned.begin(), assigned.end(), probe) != assigned.end();
    const LTree::LeafHandle got = tree->FindLeafByLabel(probe);
    EXPECT_EQ(got != nullptr, taken) << "label " << probe;
    if (got != nullptr) EXPECT_EQ(tree->label(got), probe);
  }
}

TEST(LTreeFindLeafByLabelTest, TombstonedLeavesStillResolve) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8)).ok());
  auto leaf = tree->NextLeaf(tree->FirstLeaf());
  ASSERT_TRUE(tree->MarkDeleted(leaf).ok());
  EXPECT_EQ(tree->FindLeafByLabel(tree->label(leaf)), leaf);
}

TEST(LTreeDebugStringTest, MentionsShape) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(4)).ok());
  std::string s = tree->DebugString();
  EXPECT_NE(s.find("height=2"), std::string::npos);
  EXPECT_NE(s.find("leaf num=0"), std::string::npos);
}

}  // namespace
}  // namespace ltree
