// Property tests of the materialized L-Tree, parameterized over (f, s):
//  * Proposition 1: document order == label order, always;
//  * Proposition 2: structural invariants after every operation;
//  * Proposition 3: a single-leaf insertion causes at most one split and
//    never escalates (no cascading);
//  * cookie sequence integrity under arbitrary op streams.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/ltree.h"

namespace ltree {
namespace {

struct PropertyCase {
  uint32_t f;
  uint32_t s;
  uint64_t initial;
  bool purge;
};

class LTreePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LTreePropertyTest, RandomOpStreamKeepsAllInvariants) {
  const PropertyCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s, .purge_tombstones_on_split = pc.purge};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LeafCookie> cookies(pc.initial);
  std::iota(cookies.begin(), cookies.end(), 0);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());

  // Reference sequence of cookies in document order.
  std::vector<LeafCookie> reference(cookies.begin(), cookies.end());

  Rng rng(pc.f * 7919 + pc.s * 131 + pc.initial);
  LeafCookie next_cookie = 1000000;
  for (int op = 0; op < 500; ++op) {
    const uint64_t dice = rng.Uniform(10);
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    if (dice < 6) {
      auto h = tree->InsertAfter(handles[r], next_cookie);
      ASSERT_TRUE(h.ok());
      handles.insert(handles.begin() + static_cast<long>(r) + 1, *h);
      reference.insert(reference.begin() + static_cast<long>(r) + 1,
                       next_cookie);
      ++next_cookie;
    } else if (dice < 8) {
      auto h = tree->InsertBefore(handles[r], next_cookie);
      ASSERT_TRUE(h.ok());
      handles.insert(handles.begin() + static_cast<long>(r), *h);
      reference.insert(reference.begin() + static_cast<long>(r),
                       next_cookie);
      ++next_cookie;
    } else if (!pc.purge) {
      // Tombstone (skip when purging: handles would die inside splits).
      if (!tree->deleted(handles[r])) {
        ASSERT_TRUE(tree->MarkDeleted(handles[r]).ok());
      }
    }

    ASSERT_TRUE(tree->CheckInvariants().ok())
        << "op " << op << " params f=" << pc.f << " s=" << pc.s;
  }

  if (!pc.purge) {
    // Proposition 1 via the reference: iterate leaves, compare cookies.
    std::vector<LeafCookie> seen;
    for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
         leaf = tree->NextLeaf(leaf)) {
      seen.push_back(tree->cookie(leaf));
    }
    EXPECT_EQ(seen, reference);
    EXPECT_EQ(tree->num_slots(), reference.size());
  }
  // Labels strictly increasing in all cases.
  auto labels = tree->AllLabels();
  for (size_t i = 1; i < labels.size(); ++i) {
    ASSERT_LT(labels[i - 1], labels[i]);
  }
}

TEST_P(LTreePropertyTest, SingleInsertNeverCascades) {
  const PropertyCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s, .purge_tombstones_on_split = pc.purge};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LeafCookie> cookies(pc.initial);
  std::iota(cookies.begin(), cookies.end(), 0);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());

  Rng rng(pc.f + pc.s + 1);
  uint64_t prev_splits = 0;
  uint64_t prev_roots = 0;
  for (int op = 0; op < 800; ++op) {
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    auto h = tree->InsertAfter(handles[r], 5000 + op);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
    const auto& st = tree->stats();
    // Proposition 3: at most one structural event per single insert, and
    // no fanout escalation ever.
    const uint64_t events =
        (st.splits - prev_splits) + (st.root_splits - prev_roots);
    ASSERT_LE(events, 1u) << "op " << op;
    ASSERT_EQ(st.escalations, 0u) << "op " << op;
    prev_splits = st.splits;
    prev_roots = st.root_splits;
  }
}

TEST_P(LTreePropertyTest, LabelDigitsEncodeAncestors) {
  // Section 4.2's premise: the base-(f+1) digits of every leaf label equal
  // the child indices along its root path.
  const PropertyCase pc = GetParam();
  Params params{.f = pc.f, .s = pc.s};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LeafCookie> cookies(pc.initial);
  std::iota(cookies.begin(), cookies.end(), 0);
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  Rng rng(3);
  for (int op = 0; op < 200; ++op) {
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    auto h = tree->InsertAfter(handles[r], 9000 + op);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  const uint64_t base = params.f + 1;
  for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
       leaf = tree->NextLeaf(leaf)) {
    Label label = tree->label(leaf);
    const Node* node = leaf;
    uint32_t h = 0;
    while (node->parent != nullptr) {
      uint64_t pow = 1;
      for (uint32_t i = 0; i < h; ++i) pow *= base;
      ASSERT_EQ((label / pow) % base, node->index_in_parent)
          << "digit at height " << h;
      node = node->parent;
      ++h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, LTreePropertyTest,
    ::testing::Values(PropertyCase{4, 2, 8, false},
                      PropertyCase{4, 2, 8, true},
                      PropertyCase{6, 2, 100, false},
                      PropertyCase{8, 4, 64, false},
                      PropertyCase{12, 3, 1, false},
                      PropertyCase{16, 4, 1000, false},
                      PropertyCase{16, 4, 1000, true},
                      PropertyCase{32, 2, 500, false},
                      PropertyCase{64, 8, 37, false}),
    [](const auto& info) {
      return "f" + std::to_string(info.param.f) + "s" +
             std::to_string(info.param.s) + "n" +
             std::to_string(info.param.initial) +
             (info.param.purge ? "purge" : "");
    });

}  // namespace
}  // namespace ltree
