// Negative tests: the invariant checkers must actually detect corruption.
// Node is exposed in core/node.h precisely so these tests can seed faults.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/macros.h"
#include "core/ltree.h"

namespace ltree {
namespace {

std::unique_ptr<LTree> MakeTree(std::vector<LTree::LeafHandle>* handles) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LeafCookie> cookies(8);
  std::iota(cookies.begin(), cookies.end(), 0);
  LTREE_CHECK_OK(tree->BulkLoad(cookies, handles));
  return tree;
}

TEST(InvariantCheckerTest, DetectsWrongLeafLabel) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  const Label saved = handles[3]->num;
  handles[3]->num = saved + 1;  // violates num(w) = num(v) + i*(f+1)^h
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  handles[3]->num = saved;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(InvariantCheckerTest, DetectsWrongLeafCount) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  Node* internal = handles[0]->parent;
  const uint64_t saved = internal->leaf_count;
  internal->leaf_count = saved + 1;
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  internal->leaf_count = saved;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(InvariantCheckerTest, DetectsBrokenParentPointer) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  Node* leaf = handles[2];
  Node* saved = leaf->parent;
  leaf->parent = handles[7]->parent;
  if (saved != leaf->parent) {
    EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  }
  leaf->parent = saved;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(InvariantCheckerTest, DetectsWrongIndexInParent) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  Node* leaf = handles[0];
  const uint32_t saved = leaf->index_in_parent;
  leaf->index_in_parent = saved + 1;
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  leaf->index_in_parent = saved;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(InvariantCheckerTest, DetectsBudgetViolation) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  // Pretend a height-1 node owns more leaves than lmax(1) = 4 by wiring
  // extra children in (steal a leaf's slot bookkeeping): simply inflate
  // the count on the root beyond its budget.
  Node* root = const_cast<Node*>(tree->root());
  const uint64_t saved = root->leaf_count;
  root->leaf_count = tree->powers().LeafBudget(root->height);
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  root->leaf_count = saved;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(InvariantCheckerTest, DetectsStaleLiveCounter) {
  std::vector<LTree::LeafHandle> handles;
  auto tree = MakeTree(&handles);
  handles[1]->deleted = true;  // bypassing MarkDeleted leaves counters stale
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
  handles[1]->deleted = false;
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace ltree
