// NodeArena unit tests plus the two system-level guarantees the arena
// refactor must uphold:
//
//  * conservation — every node the arena ever handed out is either
//    reachable from the root or back on the free list, i.e.
//    arena_stats().live() == nodes reachable from root(), across any
//    insert/erase/purge script;
//  * paper fidelity — the node-access statistics (the paper's Section 3.1
//    cost accounting) are bit-identical to the pre-arena seed
//    implementation. The golden numbers below were captured from the seed
//    build; if they move, the allocator change leaked into the algorithm.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/ltree.h"
#include "core/node_arena.h"

namespace ltree {
namespace {

// ---------------------------------------------------------------------------
// NodeArena unit tests
// ---------------------------------------------------------------------------

TEST(NodeArenaTest, FreshAllocationsComeFromChunks) {
  NodeArena arena;
  EXPECT_EQ(arena.stats().chunks, 0u);
  Node* a = arena.Allocate();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.stats().chunks, 1u);
  EXPECT_EQ(arena.stats().fresh_allocs, 1u);
  EXPECT_EQ(arena.stats().reused_allocs, 0u);
  EXPECT_EQ(arena.stats().live(), 1u);

  // Fill the first chunk; the next allocation opens a second one.
  std::vector<Node*> nodes;
  for (size_t i = 1; i < NodeArena::kChunkNodes; ++i) {
    nodes.push_back(arena.Allocate());
  }
  EXPECT_EQ(arena.stats().chunks, 1u);
  nodes.push_back(arena.Allocate());
  EXPECT_EQ(arena.stats().chunks, 2u);
  EXPECT_EQ(arena.stats().fresh_allocs, NodeArena::kChunkNodes + 1);
}

TEST(NodeArenaTest, SlotsAreCacheLineAligned) {
  // Concurrent readers tag erased slot pointers in their low bit and the
  // planned SIMD node scan assumes line-aligned loads, so every slot —
  // fresh from a chunk or recycled off the free list — must start on a
  // 64-byte boundary.
  static_assert(NodeArena::kSlotAlign == 64, "slots must be line-aligned");
  static_assert(NodeArena::kSlotStride % NodeArena::kSlotAlign == 0,
                "stride must preserve the alignment of every slot");

  NodeArena arena;
  std::vector<Node*> nodes;
  // Span two chunks so chunk bases (not just strides) are covered.
  for (size_t i = 0; i < NodeArena::kChunkNodes + 8; ++i) {
    nodes.push_back(arena.Allocate());
  }
  ASSERT_EQ(arena.stats().chunks, 2u);
  for (const Node* n : nodes) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(n) % NodeArena::kSlotAlign, 0u);
  }

  // Recycling preserves alignment: the free list hands back slot bases.
  for (size_t i = 0; i < 8; ++i) arena.Release(nodes[i * 3]);
  for (size_t i = 0; i < 8; ++i) {
    const Node* n = arena.Allocate();
    EXPECT_EQ(reinterpret_cast<uintptr_t>(n) % NodeArena::kSlotAlign, 0u);
  }
  EXPECT_EQ(arena.stats().reused_allocs, 8u);
}

TEST(NodeArenaTest, ReleaseThenAllocateRecycles) {
  NodeArena arena;
  Node* a = arena.Allocate();
  a->height = 3;
  a->num = 42;
  a->deleted = true;
  arena.Release(a);
  EXPECT_EQ(arena.stats().releases, 1u);
  EXPECT_EQ(arena.stats().live(), 0u);

  Node* b = arena.Allocate();
  EXPECT_EQ(b, a);  // LIFO free list
  EXPECT_EQ(arena.stats().reused_allocs, 1u);
  EXPECT_EQ(arena.stats().fresh_allocs, 1u);
  // Recycled node is back in the default (fresh leaf) state.
  EXPECT_EQ(b->height, 0u);
  EXPECT_EQ(b->num, 0u);
  EXPECT_EQ(b->leaf_count, 1u);
  EXPECT_FALSE(b->deleted);
  EXPECT_EQ(b->parent, nullptr);
  EXPECT_TRUE(b->children.empty());
}

TEST(NodeArenaTest, RecycledNodeKeepsChildrenCapacity) {
  NodeArena arena;
  Node* a = arena.Allocate();
  a->children.reserve(17);
  const size_t cap = a->children.capacity();
  ASSERT_GE(cap, 17u);
  arena.Release(a);
  Node* b = arena.Allocate();
  ASSERT_EQ(b, a);
  EXPECT_TRUE(b->children.empty());
  EXPECT_EQ(b->children.capacity(), cap);  // the buffer survived recycling
}

TEST(NodeArenaStatsTest, TotalAllocsAndLive) {
  NodeArenaStats st;
  st.fresh_allocs = 10;
  st.reused_allocs = 4;
  st.releases = 6;
  EXPECT_EQ(st.TotalAllocs(), 14u);
  EXPECT_EQ(st.live(), 8u);
  EXPECT_NE(st.ToString().find("fresh=10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Conservation: arena live count == nodes reachable from the root
// ---------------------------------------------------------------------------

uint64_t CountNodes(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t total = 1;
  for (const Node* child : n->children) total += CountNodes(child);
  return total;
}

class ArenaConservationTest : public ::testing::TestWithParam<bool> {};

TEST_P(ArenaConservationTest, RandomScriptConservesNodes) {
  const bool purge = GetParam();
  Params params{.f = 8, .s = 2, .purge_tombstones_on_split = purge};
  auto tree = LTree::Create(params).ValueOrDie();

  auto check = [&](const char* where) {
    ASSERT_EQ(tree->arena_stats().live(), CountNodes(tree->root()))
        << where << " (purge=" << purge << ")";
  };
  check("empty tree");

  std::vector<LeafCookie> cookies(300);
  for (uint64_t i = 0; i < 300; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  check("after bulk load");

  // Randomized insert/erase script. Purging frees the node an erased
  // handle points at, so all positioning goes through live-leaf walks.
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.25) && tree->num_live_leaves() > 1) {
      Node* victim = tree->FirstLiveLeaf();
      const size_t skip = static_cast<size_t>(rng.Uniform(8));
      for (size_t s = 0; s < skip; ++s) {
        Node* next = tree->NextLiveLeaf(victim);
        if (next == nullptr) break;
        victim = next;
      }
      ASSERT_TRUE(tree->MarkDeleted(victim).ok());
    }
    Node* pos = tree->FirstLiveLeaf();
    const size_t skip = static_cast<size_t>(rng.Uniform(32));
    for (size_t s = 0; s < skip; ++s) {
      Node* next = tree->NextLiveLeaf(pos);
      if (next == nullptr) break;
      pos = next;
    }
    ASSERT_TRUE(tree->InsertAfter(pos, 1000 + i).ok());
    if (i % 100 == 0) check("mid script");
  }
  check("after script");
  ASSERT_TRUE(tree->CheckInvariants().ok());

  if (purge) {
    EXPECT_GT(tree->stats().tombstones_purged, 0u);
    EXPECT_GT(tree->stats().nodes_released, 0u);
  }
  // Splits happened, so recycling must have happened.
  EXPECT_GT(tree->stats().splits, 0u);
  EXPECT_GT(tree->arena_stats().reused_allocs, 0u);
}

INSTANTIATE_TEST_SUITE_P(PurgeModes, ArenaConservationTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "purge" : "tombstone";
                         });

TEST(ArenaConservationTest, BatchScriptConservesNodes) {
  Params params{.f = 16, .s = 4};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  std::vector<LeafCookie> batch(64);
  uint64_t next = 0;
  Rng rng(7);
  for (int b = 0; b < 40; ++b) {
    for (auto& c : batch) c = next++;
    if (handles.empty()) {
      ASSERT_TRUE(tree->PushBackBatch(batch, &handles).ok());
    } else {
      const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
      ASSERT_TRUE(tree->InsertBatchAfter(handles[r], batch, &handles).ok());
    }
    ASSERT_EQ(tree->arena_stats().live(), CountNodes(tree->root()));
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Stats window semantics
// ---------------------------------------------------------------------------

TEST(ArenaStatsWindowTest, ResetStatsRestartsAllocCounters) {
  Params params{.f = 8, .s = 2};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LeafCookie> cookies(100);
  for (uint64_t i = 0; i < 100; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  EXPECT_GT(tree->stats().nodes_allocated, 0u);

  tree->ResetStats();
  EXPECT_EQ(tree->stats().nodes_allocated, 0u);
  EXPECT_EQ(tree->stats().nodes_reused, 0u);
  EXPECT_EQ(tree->stats().nodes_released, 0u);

  ASSERT_TRUE(tree->InsertAfter(handles[50], 100).ok());
  // Exactly one node-slot was requested: the new leaf (no split here, and
  // even with one the skeleton recycles).
  EXPECT_EQ(tree->stats().nodes_allocated + tree->stats().nodes_reused, 1u);
  // Lifetime counters are monotonic and unaffected by the reset.
  EXPECT_GE(tree->arena_stats().TotalAllocs(), 101u);
}

// ---------------------------------------------------------------------------
// Paper fidelity: node-access stats bit-identical to the seed build
// ---------------------------------------------------------------------------

struct GoldenExpectation {
  uint64_t ancestor_updates;
  uint64_t nodes_relabeled;
  uint64_t leaves_relabeled;
  uint64_t splits;
  uint64_t root_splits;
  uint64_t escalations = 0;
  uint64_t relabel_passes = 0;
  uint64_t coalesced_regions = 0;
  uint64_t tombstones_purged;
  uint64_t max_label;
  uint32_t height;
};

void ExpectGolden(const LTree& tree, const GoldenExpectation& want) {
  const LTreeStats& st = tree.stats();
  EXPECT_EQ(st.ancestor_updates, want.ancestor_updates);
  EXPECT_EQ(st.nodes_relabeled, want.nodes_relabeled);
  EXPECT_EQ(st.leaves_relabeled, want.leaves_relabeled);
  EXPECT_EQ(st.splits, want.splits);
  EXPECT_EQ(st.root_splits, want.root_splits);
  EXPECT_EQ(st.escalations, want.escalations);
  // The plan/apply invariant: exactly one relabel pass per mutation, no
  // matter how many escalation levels the planner folded into the region.
  EXPECT_EQ(st.relabel_passes, want.relabel_passes);
  EXPECT_EQ(st.coalesced_regions, want.coalesced_regions);
  EXPECT_EQ(st.tombstones_purged, want.tombstones_purged);
  EXPECT_EQ(tree.max_label(), want.max_label);
  EXPECT_EQ(tree.height(), want.height);
}

TEST(SeedGoldenStatsTest, UniformSingleInserts) {
  Params p{.f = 16, .s = 4};
  auto tree = LTree::Create(p).ValueOrDie();
  std::vector<LeafCookie> cookies(1000);
  for (uint64_t i = 0; i < 1000; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  tree->ResetStats();
  Rng rng(123);
  for (uint64_t i = 0; i < 5000; ++i) {
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    handles.push_back(tree->InsertAfter(handles[r], 1000 + i).ValueOrDie());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  ExpectGolden(*tree, {.ancestor_updates = 26904,
                       .nodes_relabeled = 53482,
                       .leaves_relabeled = 36285,
                       .splits = 129,
                       .root_splits = 1,
                       .relabel_passes = 5000,  // one pass per insert
                       .tombstones_purged = 0,
                       .max_label = 4525800,
                       .height = 6});
}

TEST(SeedGoldenStatsTest, BatchInserts) {
  Params p{.f = 16, .s = 4};
  auto tree = LTree::Create(p).ValueOrDie();
  std::vector<LeafCookie> cookies(1000);
  for (uint64_t i = 0; i < 1000; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  tree->ResetStats();
  Rng rng(7);
  uint64_t next = 1000;
  for (int b = 0; b < 64; ++b) {
    std::vector<LeafCookie> batch(64);
    for (auto& c : batch) c = next++;
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    ASSERT_TRUE(tree->InsertBatchAfter(handles[r], batch, &handles).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  ExpectGolden(*tree, {.ancestor_updates = 335,
                       .nodes_relabeled = 19262,
                       .leaves_relabeled = 9446,
                       .splits = 63,
                       .root_splits = 1,
                       .relabel_passes = 64,  // one pass per batch
                       .tombstones_purged = 0,
                       .max_label = 5945634,
                       .height = 6});
}

TEST(SeedGoldenStatsTest, MixedEraseInsertWithPurge) {
  Params p{.f = 8, .s = 2, .purge_tombstones_on_split = true};
  auto tree = LTree::Create(p).ValueOrDie();
  std::vector<LeafCookie> cookies(512);
  for (uint64_t i = 0; i < 512; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  tree->ResetStats();
  Rng rng(99);
  std::vector<bool> erased(handles.size(), false);
  for (uint64_t i = 0; i < 3000; ++i) {
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    if (rng.Bernoulli(0.3) && !erased[r] && !tree->deleted(handles[r]) &&
        tree->num_live_leaves() > 1) {
      ASSERT_TRUE(tree->MarkDeleted(handles[r]).ok());
      erased[r] = true;
    }
    Node* live = tree->FirstLiveLeaf();
    const size_t skip = static_cast<size_t>(rng.Uniform(16));
    for (size_t s = 0; s < skip && live != nullptr; ++s) {
      Node* nxt = tree->NextLiveLeaf(live);
      if (nxt == nullptr) break;
      live = nxt;
    }
    handles.push_back(tree->InsertAfter(live, 512 + i).ValueOrDie());
    erased.push_back(false);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  ExpectGolden(*tree, {.ancestor_updates = 15932,
                       .nodes_relabeled = 101354,
                       .leaves_relabeled = 68980,
                       .splits = 604,
                       .root_splits = 7,
                       .relabel_passes = 3000,  // one pass per insert
                       .tombstones_purged = 562,
                       .max_label = 81192,
                       .height = 6});
}

// Re-goldened for the plan/apply pipeline: batches large enough to overflow
// the parent fanout used to rebuild once per escalation level; the planner
// now folds the whole chain into one region, so `splits` counts regions
// (not levels) and every batch still pays exactly one relabel pass. The
// label outcome (max_label/height) is unchanged from the seed algorithm —
// only the per-level rebuild accounting collapsed.
TEST(SeedGoldenStatsTest, EscalatingBatchesCoalesceIntoOneRegion) {
  Params p{.f = 16, .s = 2};
  auto tree = LTree::Create(p).ValueOrDie();
  std::vector<LeafCookie> cookies(64);
  for (uint64_t i = 0; i < 64; ++i) cookies[i] = i;
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(cookies, &handles).ok());
  tree->ResetStats();
  Rng rng(11);
  uint64_t next = 64;
  for (int b = 0; b < 48; ++b) {
    const uint64_t k = 8 + rng.Uniform(120);
    std::vector<LeafCookie> batch(k);
    for (auto& c : batch) c = next++;
    const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
    ASSERT_TRUE(tree->InsertBatchAfter(handles[r], batch, &handles).ok());
    ASSERT_TRUE(tree->CheckInvariants().ok()) << "batch " << b;
  }
  // 48 batches -> 48 relabel passes, even though one region absorbed a
  // fanout-overflow escalation (esc=1, coal=1): splits counts regions.
  ExpectGolden(*tree, {.ancestor_updates = 173,
                       .nodes_relabeled = 14850,
                       .leaves_relabeled = 9224,
                       .splits = 45,
                       .root_splits = 2,
                       .escalations = 1,
                       .relabel_passes = 48,
                       .coalesced_regions = 1,
                       .tombstones_purged = 0,
                       .max_label = 18332,
                       .height = 4});
  // The pipeline invariant in closed form: every mutation ran exactly one
  // relabel pass, regardless of how many levels its region coalesced.
  EXPECT_EQ(tree->stats().relabel_passes, tree->stats().batch_inserts);
}

}  // namespace
}  // namespace ltree
