// Section 4.1 batch insertion and failure-injection (capacity) tests.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/ltree.h"
#include "model/cost_model.h"

namespace ltree {
namespace {

std::vector<LeafCookie> MakeCookies(size_t n, uint64_t start = 0) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), start);
  return cookies;
}

TEST(LTreeBatchTest, EmptyBatchIsNoop) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(4), &handles).ok());
  ASSERT_TRUE(tree->InsertBatchAfter(handles[0], {}).ok());
  EXPECT_EQ(tree->num_slots(), 4u);
  EXPECT_EQ(tree->stats().batch_inserts, 0u);
}

TEST(LTreeBatchTest, OrderAndCountsAfterBatch) {
  auto tree = LTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(10), &handles).ok());
  auto batch = MakeCookies(25, 100);
  std::vector<LTree::LeafHandle> fresh;
  ASSERT_TRUE(tree->InsertBatchAfter(handles[3], batch, &fresh).ok());
  ASSERT_EQ(fresh.size(), 25u);
  EXPECT_EQ(tree->num_slots(), 35u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // Sequence: 0..3, 100..124, 4..9.
  std::vector<LeafCookie> seen;
  for (auto leaf = tree->FirstLeaf(); leaf != nullptr;
       leaf = tree->NextLeaf(leaf)) {
    seen.push_back(tree->cookie(leaf));
  }
  std::vector<LeafCookie> expect;
  for (uint64_t i = 0; i <= 3; ++i) expect.push_back(i);
  for (uint64_t i = 100; i < 125; ++i) expect.push_back(i);
  for (uint64_t i = 4; i <= 9; ++i) expect.push_back(i);
  EXPECT_EQ(seen, expect);
}

TEST(LTreeBatchTest, BatchIntoEmptyTree) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> fresh;
  ASSERT_TRUE(tree->PushBackBatch(MakeCookies(50), &fresh).ok());
  EXPECT_EQ(tree->num_slots(), 50u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  auto labels = tree->AllLabels();
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
}

TEST(LTreeBatchTest, HugeBatchTriggersEscalationSafely) {
  // A batch far larger than the subtree budgets must keep every invariant
  // (this is the fanout-escalation path unreachable by single inserts).
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(64), &handles).ok());
  ASSERT_TRUE(tree->InsertBatchAfter(handles[10], MakeCookies(5000, 1000))
                  .ok());
  EXPECT_EQ(tree->num_slots(), 5064u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // However the region coalesced, the batch paid exactly one relabel pass.
  EXPECT_EQ(tree->stats().relabel_passes, 1u);
}

TEST(LTreeBatchTest, PlanMatchesApplyOutcome) {
  // The planning phase is pure: it predicts the rebuild decision without
  // mutating anything, and applying the same batch realizes it exactly.
  auto tree = LTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(64), &handles).ok());

  // Small splice below every budget: no rebuild planned.
  auto small = tree->PlanBatchAfter(handles[5], 2).ValueOrDie();
  EXPECT_FALSE(small.needs_rebuild);
  EXPECT_EQ(small.batch_size, 2u);
  EXPECT_EQ(tree->num_slots(), 64u) << "planning must not mutate";

  // A batch above the root budget: the planned region is the root.
  auto big = tree->PlanBatchAfter(handles[5], 1000).ValueOrDie();
  EXPECT_TRUE(big.needs_rebuild);
  EXPECT_TRUE(big.rebuild_root);
  EXPECT_EQ(tree->num_slots(), 64u) << "planning must not mutate";

  // A mid-size batch: planned region pieces and leaves must match what the
  // rebuild actually produces.
  auto plan = tree->PlanBatchAfter(handles[5], 40).ValueOrDie();
  tree->ResetStats();
  ASSERT_TRUE(tree->InsertBatchAfter(handles[5], MakeCookies(40, 500)).ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  const LTreeStats& st = tree->stats();
  if (plan.needs_rebuild && !plan.rebuild_root) {
    EXPECT_EQ(st.splits, 1u);
    EXPECT_EQ(st.escalations, plan.levels_coalesced);
  }
  EXPECT_EQ(st.relabel_passes, 1u);

  // Capacity failures surface at plan time, exactly like the insert.
  Params tiny{.f = 4096, .s = 2048};
  auto small_tree = LTree::Create(tiny).ValueOrDie();
  ASSERT_TRUE(small_tree->PushBackBatch(MakeCookies(60000)).ok());
  auto overflow =
      small_tree->PlanBatchAfter(small_tree->FirstLeaf(), 10000);
  EXPECT_TRUE(overflow.status().IsCapacityExceeded());
}

TEST(LTreeBatchTest, BatchBeforeFirstLeaf) {
  auto tree = LTree::Create(Params{.f = 8, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(8), &handles).ok());
  ASSERT_TRUE(
      tree->InsertBatchBefore(handles[0], MakeCookies(10, 100)).ok());
  EXPECT_EQ(tree->cookie(tree->FirstLeaf()), 100u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeBatchTest, ManyRandomBatchesStressInvariants) {
  for (uint32_t f : {4u, 16u}) {
    Params params{.f = f, .s = f == 4 ? 2u : 4u};
    auto tree = LTree::Create(params).ValueOrDie();
    std::vector<LTree::LeafHandle> handles;
    ASSERT_TRUE(tree->BulkLoad(MakeCookies(16), &handles).ok());
    Rng rng(f);
    uint64_t cookie = 1000;
    for (int round = 0; round < 100; ++round) {
      const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
      const uint64_t k = 1 + rng.Uniform(100);
      ASSERT_TRUE(tree->InsertBatchAfter(handles[r],
                                         MakeCookies(k, cookie), &handles)
                      .ok());
      cookie += k;
      ASSERT_TRUE(tree->CheckInvariants().ok())
          << "round " << round << " f=" << f;
    }
    auto labels = tree->AllLabels();
    EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  }
}

TEST(LTreeCapacityTest, BulkLoadBeyondLabelSpaceFails) {
  // f=4, s=2: max height 27, so d^h = 2^27 leaves fit but 2^27+... require
  // height 28. Use a tree whose max height is tiny instead: f=1024, s=2 ->
  // (f+1)^h grows fast; max height = floor(64 / log2(1025)) = 6;
  // d = 512 -> d^6 = 2^54 leaves, too many to allocate. So go the other
  // way: check EnsureCapacity through the virtual interface cheaply by
  // requesting an absurd batch.
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(4), &handles).ok());
  // A batch of 2^62 cannot be allocated, but the capacity check fires
  // before any allocation happens only on leaf-count overflow; test the
  // fast-failing path: total would exceed every feasible height.
  // Simulate by checking the status type from a fake span with huge size is
  // not possible safely, so instead verify deep growth works up to a large
  // but feasible size and the structure stays sound.
  ASSERT_TRUE(tree->PushBackBatch(MakeCookies(100000, 10)).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_LT(tree->label_bits(), 64u);
}

TEST(LTreeCapacityTest, TinyLabelSpaceReportsCapacityExceeded) {
  // f=4096, s=2048: d=2, base 4097 -> (f+1)^h overflows at h=6, so the
  // max height is 5 and the leaf budget is s*d^5 = 65536. Exceeding it must
  // yield CapacityExceeded without corrupting the tree.
  Params params{.f = 4096, .s = 2048};
  auto tree = LTree::Create(params).ValueOrDie();
  ASSERT_TRUE(tree->PushBackBatch(MakeCookies(60000)).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  Status st = tree->PushBackBatch(MakeCookies(10000, 60000));
  EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();
  // The failed batch must not have mutated anything.
  EXPECT_EQ(tree->num_slots(), 60000u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // Smaller inserts still work afterwards.
  EXPECT_TRUE(tree->PushBack(999999).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(LTreeBatchTest, MeasuredAmortizedCostStaysUnderSection41Bound) {
  // The paper's Section 4.1 bound batch(f,s,n,k) is the invariant the
  // plan/apply pipeline must respect: measured amortized node accesses per
  // leaf never exceed it, and batching must beat single-leaf insertion.
  const Params p{.f = 16, .s = 4};
  double k1_cost = 0.0;
  for (const uint64_t k : {1u, 4u, 16u, 64u, 256u}) {
    auto tree = LTree::Create(p).ValueOrDie();
    std::vector<LTree::LeafHandle> handles;
    ASSERT_TRUE(tree->BulkLoad(MakeCookies(2000), &handles).ok());
    tree->ResetStats();
    Rng rng(57);
    uint64_t remaining = 2000;
    uint64_t next = 2000;
    while (remaining > 0) {
      const uint64_t b = std::min(k, remaining);
      std::vector<LeafCookie> batch(b);
      for (auto& c : batch) c = next++;
      const size_t r = static_cast<size_t>(rng.Uniform(handles.size()));
      ASSERT_TRUE(tree->InsertBatchAfter(handles[r], batch, &handles).ok());
      remaining -= b;
    }
    ASSERT_TRUE(tree->CheckInvariants().ok());
    const double measured = tree->stats().AmortizedCostPerInsert();
    const double bound = model::CostModel::BatchAmortizedCost(
        p.f, p.s, 2000.0, static_cast<double>(k));
    EXPECT_LE(measured, bound) << "k=" << k;
    if (k == 1) {
      k1_cost = measured;
    } else if (k >= 16) {
      EXPECT_LT(measured, k1_cost) << "k=" << k;
    }
  }
}

TEST(LTreePurgeTest, TombstonesReclaimedBySplits) {
  Params params{.f = 4, .s = 2, .purge_tombstones_on_split = true};
  auto tree = LTree::Create(params).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(32), &handles).ok());
  // Delete every other leaf, then hammer inserts to force splits through
  // the deleted regions.
  for (size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(tree->MarkDeleted(handles[i]).ok());
  }
  Rng rng(5);
  auto live = tree->FirstLiveLeaf();
  ASSERT_NE(live, nullptr);
  for (int i = 0; i < 200; ++i) {
    auto h = tree->InsertAfter(live, 100 + i);
    ASSERT_TRUE(h.ok());
    live = *h;
    ASSERT_TRUE(tree->CheckInvariants().ok());
  }
  EXPECT_GT(tree->stats().tombstones_purged, 0u);
  // All originally deleted slots near the hot region are gone; slot count
  // reflects the purge.
  EXPECT_LT(tree->num_slots(), 32u + 200u);
}

}  // namespace
}  // namespace ltree
