// Unit tests for the epoch-based reclamation core (core/epoch.h): bucket
// rotation, reader stalls, RAII guard semantics, and the counters the
// epoch-reclamation audit rule builds on. Multi-threaded interleavings are
// covered by concurrent_read_test.cc and tsan_smoke_test.cc; these tests
// pin down the single-threaded state machine.

#include "core/epoch.h"

#include <vector>

#include "gtest/gtest.h"

namespace ltree {
namespace epoch {
namespace {

/// Deleter that appends the retired object's id to a log.
struct ReclaimLog {
  std::vector<int> ids;

  static void Run(void* obj, void* ctx) {
    static_cast<ReclaimLog*>(ctx)->ids.push_back(*static_cast<int*>(obj));
  }
};

TEST(EpochManagerTest, StartsQuiescent) {
  EpochManager epoch;
  EXPECT_EQ(epoch.pending(), 0u);
  EXPECT_FALSE(epoch.HasActiveReaders());
  EXPECT_FALSE(epoch.TryAdvance()) << "nothing pending: advance is a no-op";
  EXPECT_EQ(epoch.stats().advances, 0u);
  EXPECT_EQ(epoch.stats().stalls, 0u);
}

TEST(EpochManagerTest, RetireDefersUntilBucketRecycles) {
  EpochManager epoch;
  ReclaimLog log;
  int a = 1;
  epoch.Retire(&a, ReclaimLog::Run, &log);
  EXPECT_EQ(epoch.pending(), 1u);
  EXPECT_TRUE(log.ids.empty());

  // Retired during epoch e: reclaimed when the bucket is recycled for
  // epoch e+3, i.e. after at most three advances with no readers.
  int advances = 0;
  while (epoch.TryAdvance()) ++advances;
  EXPECT_LE(advances, 3);
  EXPECT_EQ(epoch.pending(), 0u);
  ASSERT_EQ(log.ids.size(), 1u);
  EXPECT_EQ(log.ids[0], 1);
  EXPECT_EQ(epoch.stats().retired, 1u);
  EXPECT_EQ(epoch.stats().reclaimed, 1u);
}

TEST(EpochManagerTest, PinnedReaderStallsAdvance) {
  EpochManager epoch;
  ReclaimLog log;
  int a = 7;

  ReadGuard guard(&epoch);
  ASSERT_TRUE(guard.pinned());
  EXPECT_TRUE(epoch.HasActiveReaders());

  epoch.Retire(&a, ReclaimLog::Run, &log);
  // The reader announced the current epoch, so ONE advance may succeed
  // (nobody is two epochs behind); but the reader never re-announces, so
  // the next advance must stall and the node must stay pending.
  epoch.TryAdvance();
  EXPECT_FALSE(epoch.TryAdvance());
  EXPECT_GE(epoch.stats().stalls, 1u);
  EXPECT_EQ(epoch.pending(), 1u);
  EXPECT_TRUE(log.ids.empty()) << "reclaimed under an active reader";

  // Drain before scope exit: `log` is destroyed before `epoch`, so leaving
  // the node pending would make ~EpochManager run the callback on a dead
  // log.
  guard = ReadGuard();
  EXPECT_EQ(epoch.ReclaimAllUnsafe(), 1u);
  ASSERT_EQ(log.ids.size(), 1u);
  EXPECT_EQ(log.ids[0], 7);
}

TEST(EpochManagerTest, DroppedGuardUnblocksReclamation) {
  EpochManager epoch;
  ReclaimLog log;
  int a = 3;
  {
    ReadGuard guard(&epoch);
    epoch.Retire(&a, ReclaimLog::Run, &log);
    epoch.TryAdvance();
    EXPECT_FALSE(epoch.TryAdvance());
  }
  EXPECT_FALSE(epoch.HasActiveReaders());
  while (epoch.TryAdvance()) {
  }
  EXPECT_EQ(epoch.pending(), 0u);
  ASSERT_EQ(log.ids.size(), 1u);
  EXPECT_EQ(log.ids[0], 3);
}

TEST(EpochManagerTest, ReclaimAllUnsafeDrainsEveryBucket) {
  EpochManager epoch;
  ReclaimLog log;
  int objs[3] = {10, 11, 12};
  // Spread the retirees across distinct epochs/buckets.
  epoch.Retire(&objs[0], ReclaimLog::Run, &log);
  epoch.TryAdvance();
  epoch.Retire(&objs[1], ReclaimLog::Run, &log);
  epoch.Retire(&objs[2], ReclaimLog::Run, &log);
  const uint64_t pending = epoch.pending();
  EXPECT_GT(pending, 0u);
  EXPECT_EQ(epoch.ReclaimAllUnsafe(), pending);
  EXPECT_EQ(epoch.pending(), 0u);
  EXPECT_EQ(log.ids.size(), 3u);
}

TEST(EpochManagerTest, ForEachPendingVisitsAllBuckets) {
  EpochManager epoch;
  ReclaimLog log;
  int objs[2] = {1, 2};
  epoch.Retire(&objs[0], ReclaimLog::Run, &log);
  epoch.TryAdvance();
  epoch.Retire(&objs[1], ReclaimLog::Run, &log);

  std::vector<void*> seen;
  epoch.ForEachPending([&](void* obj) { seen.push_back(obj); });
  EXPECT_EQ(seen.size(), epoch.pending());
  epoch.ReclaimAllUnsafe();
}

TEST(EpochManagerTest, PinCountsAndSlotReuse) {
  EpochManager epoch;
  for (int i = 0; i < 10; ++i) {
    ReadGuard guard(&epoch);
    EXPECT_TRUE(guard.pinned());
  }
  EXPECT_EQ(epoch.stats().pins, 10u);
  EXPECT_FALSE(epoch.HasActiveReaders());
}

TEST(ReadGuardTest, NullManagerPinsNothing) {
  ReadGuard guard(nullptr);
  EXPECT_FALSE(guard.pinned());
}

TEST(ReadGuardTest, MoveTransfersThePin) {
  EpochManager epoch;
  ReadGuard a(&epoch);
  ReadGuard b(std::move(a));
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move): asserted
  EXPECT_TRUE(b.pinned());
  EXPECT_TRUE(epoch.HasActiveReaders());

  ReadGuard c;
  c = std::move(b);
  EXPECT_TRUE(c.pinned());
  EXPECT_TRUE(epoch.HasActiveReaders());
  c = ReadGuard();
  EXPECT_FALSE(epoch.HasActiveReaders());
  EXPECT_EQ(epoch.stats().pins, 1u);
}

TEST(EpochManagerTest, ManyReadersUpToSlotCapacity) {
  EpochManager epoch;
  std::vector<ReadGuard> guards;
  for (uint32_t i = 0; i < EpochManager::kMaxReaders; ++i) {
    guards.emplace_back(&epoch);
  }
  EXPECT_TRUE(epoch.HasActiveReaders());
  guards.clear();
  EXPECT_FALSE(epoch.HasActiveReaders());
  EXPECT_EQ(epoch.stats().pins, uint64_t{EpochManager::kMaxReaders});
}

}  // namespace
}  // namespace epoch
}  // namespace ltree
