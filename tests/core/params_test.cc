#include "core/params.h"

#include <gtest/gtest.h>

namespace ltree {
namespace {

TEST(ParamsTest, DefaultIsValid) {
  Params p;
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.d(), 4u);
}

TEST(ParamsTest, PaperExampleValid) {
  // Figure 2 uses f=4, s=2.
  Params p{.f = 4, .s = 2};
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.d(), 2u);
}

TEST(ParamsTest, RejectsSmallS) {
  Params p{.f = 4, .s = 1};
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = Params{.f = 4, .s = 0};
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ParamsTest, RejectsNonDivisibleF) {
  Params p{.f = 7, .s = 2};
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = Params{.f = 10, .s = 4};
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ParamsTest, RejectsSmallBranchingBase) {
  Params p{.f = 4, .s = 4};  // d = 1
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = Params{.f = 6, .s = 3};  // d = 2 ok
  EXPECT_TRUE(p.Validate().ok());
  p = Params{.f = 0, .s = 2};
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ParamsTest, ToStringMentionsValues) {
  Params p{.f = 8, .s = 2};
  std::string s = p.ToString();
  EXPECT_NE(s.find("f=8"), std::string::npos);
  EXPECT_NE(s.find("s=2"), std::string::npos);
  EXPECT_NE(s.find("d=4"), std::string::npos);
}

TEST(PowerTableTest, PaperExamplePowers) {
  Params p{.f = 4, .s = 2};
  auto table = PowerTable::Make(p);
  ASSERT_TRUE(table.ok());
  // (f+1)^h = 5^h
  EXPECT_EQ(table->PowF1(0), 1u);
  EXPECT_EQ(table->PowF1(1), 5u);
  EXPECT_EQ(table->PowF1(2), 25u);
  EXPECT_EQ(table->PowF1(3), 125u);
  // d^h = 2^h
  EXPECT_EQ(table->PowD(0), 1u);
  EXPECT_EQ(table->PowD(3), 8u);
  // lmax(h) = s * d^h = 2 * 2^h
  EXPECT_EQ(table->LeafBudget(0), 2u);
  EXPECT_EQ(table->LeafBudget(1), 4u);
  EXPECT_EQ(table->LeafBudget(2), 8u);
}

TEST(PowerTableTest, MaxHeightBoundsLabelSpace) {
  Params p{.f = 4, .s = 2};
  auto table = PowerTable::Make(p);
  ASSERT_TRUE(table.ok());
  // 5^27 < 2^64 < 5^28
  EXPECT_EQ(table->max_height(), 27u);
}

TEST(PowerTableTest, InvalidParamsRejected) {
  Params p{.f = 3, .s = 2};
  EXPECT_FALSE(PowerTable::Make(p).ok());
}

TEST(PowerTableTest, LargeFanout) {
  Params p{.f = 1024, .s = 2};
  auto table = PowerTable::Make(p);
  ASSERT_TRUE(table.ok());
  EXPECT_GE(table->max_height(), 6u);
  EXPECT_EQ(table->PowF1(1), 1025u);
  EXPECT_EQ(table->PowD(1), 512u);
}

}  // namespace
}  // namespace ltree
