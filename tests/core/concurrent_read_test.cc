// Multi-reader / one-writer stress suite for the concurrent LabelStore
// read contract (ctest labels: core, concurrent).
//
// For every scheme spec — both L-Tree variants (lock-free epoch-pinned
// reads), and the three serialized-fallback baselines — kReaders threads
// hammer the guard-based read API while this thread runs a deterministic
// mutation script. Readers assert the invariants that must hold at every
// instant:
//
//   * a pinned (never-erased) handle always resolves: LabelOf is ok and
//     CookieOf returns exactly the cookie it was inserted with;
//   * CompareOrder over two pinned handles always reports their original
//     relative order (order maintenance never reorders surviving items);
//   * ScanAll under a guard yields strictly increasing labels.
//
// After the writer quiesces, the racing store must be byte-for-byte
// equivalent to a single-threaded replay of the identical script — labels
// and cookie sequence both — and its deep audit (including the
// epoch-reclamation rule) must be clean.
//
// Iterations scale with the LTREE_STRESS_REPS environment variable so the
// TSan CI job can run an elevated count without slowing the default build.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "listlab/factory.h"
#include "store/document_store.h"

namespace ltree {
namespace {

using listlab::ItemHandle;
using listlab::LabelStore;

constexpr int kReaders = 4;
constexpr uint64_t kInitial = 512;   // bulk-loaded items
constexpr uint64_t kPinned = 64;     // prefix the script never erases
constexpr int kOps = 600;            // script length per iteration

int StressReps() {
  const char* env = std::getenv("LTREE_STRESS_REPS");
  if (env == nullptr) return 1;
  const int reps = std::atoi(env);
  return reps < 1 ? 1 : reps;
}

std::vector<LeafCookie> MakeCookies(uint64_t n) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), 0);
  return cookies;
}

/// One scripted mutation. `arg` selects anchors/victims deterministically;
/// `count` sizes batches.
struct Op {
  enum Kind { kInsertAfter, kInsertBefore, kPushBack, kErase, kBatchAfter };
  Kind kind;
  uint64_t arg;
  uint64_t count;
};

std::vector<Op> MakeScript(uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (int i = 0; i < n; ++i) {
    const uint64_t roll = rng() % 100;
    Op op;
    op.arg = rng();
    op.count = 1 + rng() % 16;
    if (roll < 45) {
      op.kind = Op::kInsertAfter;
    } else if (roll < 60) {
      op.kind = Op::kInsertBefore;
    } else if (roll < 70) {
      op.kind = Op::kPushBack;
    } else if (roll < 90) {
      op.kind = Op::kErase;
    } else {
      op.kind = Op::kBatchAfter;
    }
    ops.push_back(op);
  }
  return ops;
}

/// Applies the script to `store`. Fully deterministic: anchors come from
/// the pinned prefix (always live), erase victims from the non-pinned
/// suffix (skipping already-erased ones), fresh cookies count up from
/// kInitial. Two stores fed the same script end in equivalent states.
void ApplyScript(LabelStore* store, const std::vector<Op>& ops,
                 std::vector<ItemHandle>* handles) {
  std::vector<bool> erased(handles->size(), false);
  LeafCookie next_cookie = kInitial;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kInsertAfter: {
        auto h = store->InsertAfter((*handles)[op.arg % kPinned],
                                    next_cookie++);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        handles->push_back(*h);
        erased.push_back(false);
        break;
      }
      case Op::kInsertBefore: {
        auto h = store->InsertBefore((*handles)[op.arg % kPinned],
                                     next_cookie++);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        handles->push_back(*h);
        erased.push_back(false);
        break;
      }
      case Op::kPushBack: {
        auto h = store->PushBack(next_cookie++);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        handles->push_back(*h);
        erased.push_back(false);
        break;
      }
      case Op::kErase: {
        if (handles->size() <= kPinned) break;
        const uint64_t idx =
            kPinned + op.arg % (handles->size() - kPinned);
        if (erased[idx]) break;
        const Status st = store->Erase((*handles)[idx]);
        ASSERT_TRUE(st.ok()) << st.ToString();
        erased[idx] = true;
        break;
      }
      case Op::kBatchAfter: {
        std::vector<LeafCookie> cookies(op.count);
        std::iota(cookies.begin(), cookies.end(), next_cookie);
        next_cookie += op.count;
        const Status st = store->InsertBatchAfter(
            (*handles)[op.arg % kPinned], cookies, handles);
        ASSERT_TRUE(st.ok()) << st.ToString();
        erased.resize(handles->size(), false);
        break;
      }
    }
  }
}

class ConcurrentReadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConcurrentReadTest, ReadersRaceOneWriter) {
  const std::string spec = GetParam();
  const int reps = StressReps();
  for (int rep = 0; rep < reps; ++rep) {
    auto store = listlab::MakeLabelStore(spec).ValueOrDie();
    std::vector<ItemHandle> handles;
    ASSERT_TRUE(store->BulkLoad(MakeCookies(kInitial), &handles).ok());

    const std::vector<Op> ops = MakeScript(7919u * rep + 17, kOps);
    // Readers index this frozen copy, never the live `handles` vector —
    // the writer's push_backs reallocate its buffer mid-run.
    const std::vector<ItemHandle> pinned(handles.begin(),
                                         handles.begin() + kPinned);
    std::atomic<bool> writer_done{false};
    std::atomic<uint64_t> violations{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        std::mt19937_64 rng(1000u + t);
        do {
          {
            const LabelStore::ReadGuard guard = store->AcquireRead();
            // Pinned handles: stable cookie, resolvable label, original
            // relative order.
            const uint64_t i = rng() % (kPinned - 1);
            const uint64_t j = i + 1 + rng() % (kPinned - 1 - i);
            auto cmp =
                store->CompareOrder(guard, pinned[i], pinned[j]);
            if (!cmp.ok() || *cmp != -1) violations.fetch_add(1);
            auto cookie = store->CookieOf(guard, pinned[i]);
            if (!cookie.ok() || *cookie != i) violations.fetch_add(1);
            if (!store->LabelOf(guard, pinned[j]).ok()) {
              violations.fetch_add(1);
            }
            if (rng() % 32 == 0) {
              const auto scan = store->ScanAll(guard);
              if (scan.size() < kPinned) violations.fetch_add(1);
              for (size_t k = 1; k < scan.size(); ++k) {
                if (scan[k].first <= scan[k - 1].first) {
                  violations.fetch_add(1);
                }
              }
            }
          }
          // Release the guard before yielding so serialized-scheme writers
          // get a window between reader lock acquisitions.
          std::this_thread::yield();
        } while (!writer_done.load(std::memory_order_acquire));
      });
    }

    ApplyScript(store.get(), ops, &handles);
    writer_done.store(true, std::memory_order_release);
    for (std::thread& th : readers) th.join();
    EXPECT_EQ(violations.load(), 0u) << spec << " rep " << rep;

    // Post-quiesce equivalence: the store the readers raced must match a
    // single-threaded replay of the identical script, label for label and
    // cookie for cookie.
    auto ref = listlab::MakeLabelStore(spec).ValueOrDie();
    std::vector<ItemHandle> ref_handles;
    ASSERT_TRUE(ref->BulkLoad(MakeCookies(kInitial), &ref_handles).ok());
    ApplyScript(ref.get(), ops, &ref_handles);

    const LabelStore::ReadGuard guard = store->AcquireRead();
    const LabelStore::ReadGuard ref_guard = ref->AcquireRead();
    const auto got = store->ScanAll(guard);
    const auto want = ref->ScanAll(ref_guard);
    ASSERT_EQ(got.size(), want.size()) << spec << " rep " << rep;
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].first, want[k].first) << spec << " position " << k;
      EXPECT_EQ(got[k].second, want[k].second) << spec << " position " << k;
    }

    // Deep audit of the raced store, including arena conservation against
    // epoch-pending nodes and the epoch-reclamation rule.
    const audit::Report report = store->Validate();
    EXPECT_TRUE(report.ok()) << spec << ":\n" << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ConcurrentReadTest,
    ::testing::Values("ltree:16:4", "ltree:16:4:purge", "virtual:16:4",
                      "sequential", "gap:64", "bender"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

TEST(DocStoreConcurrentReadTest, GuardedShardReadsRaceWriter) {
  // One writer appends round-robin across documents (hitting every shard)
  // while reader threads snapshot each shard's label state through
  // AcquireShardRead + ScanAll. Readers touch only the shard schemes —
  // the store-level registries keep their thread-compatible contract.
  auto store = store::DocumentStore::Make({.num_shards = 4,
                                           .scheme_spec = "ltree:16:4",
                                           .feed_capacity = 1 << 20})
                   .ValueOrDie();
  constexpr store::DocId kDocs = 8;
  for (store::DocId doc = 0; doc < kDocs; ++doc) {
    ASSERT_TRUE(store->CreateDocument(doc).ok());
    ASSERT_TRUE(store->InsertBatchAfterRank(doc, 0, 64).ok());
  }

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      do {
        for (uint32_t shard = 0; shard < store->num_shards(); ++shard) {
          const listlab::LabelStore::ReadGuard guard =
              store->AcquireShardRead(shard);
          const auto scan = store->shard_store(shard).ScanAll(guard);
          if (scan.empty()) violations.fetch_add(1);
          for (size_t k = 1; k < scan.size(); ++k) {
            if (scan[k].first <= scan[k - 1].first) {
              violations.fetch_add(1);
            }
          }
        }
        std::this_thread::yield();
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }

  const int writes = 400 * StressReps();
  for (int i = 0; i < writes; ++i) {
    const store::DocId doc = static_cast<store::DocId>(i) % kDocs;
    ASSERT_TRUE(store->Append(doc).ok());
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_TRUE(store->Validate().ok());
}

}  // namespace
}  // namespace ltree
