// Negative tests for the unified invariant auditor (core/validate.h).
//
// The positive direction — auditors stay clean across every scheme and
// workload — is covered implicitly by the whole suite (and explicitly by
// the LISTLAB_VALIDATE preset, which re-audits after every mutation). What
// nothing else covers is the other direction: a corrupted structure MUST
// be reported, with the right rule slug and a usable path. Each test here
// seeds one deliberate corruption and asserts the auditor names it.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "core/ltree.h"
#include "core/node.h"
#include "core/validate.h"
#include "listlab/factory.h"

namespace ltree {
namespace {

std::vector<LeafCookie> MakeCookies(uint64_t n) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), 0);
  return cookies;
}

std::unique_ptr<LTree> MakeTree(uint64_t leaves) {
  auto tree = LTree::Create(Params{.f = 4, .s = 2}).ValueOrDie();
  EXPECT_TRUE(tree->BulkLoad(MakeCookies(leaves)).ok());
  return tree;
}

audit::Report Audit(const LTree& tree) {
  audit::Report report;
  audit::AuditLTree(tree, &report);
  return report;
}

// ---------------------------------------------------------------------------
// Report mechanics
// ---------------------------------------------------------------------------

TEST(ReportTest, EmptyReportIsOk) {
  audit::Report report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.total(), 0u);
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_EQ(report.ToString(), "ok");
}

TEST(ReportTest, ToStatusCarriesFirstViolationAndCount) {
  audit::Report report;
  report.Add("t:/0", "rule-a", "first");
  report.Add("t:/1", "rule-b", "second");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule("rule-a"));
  EXPECT_TRUE(report.HasRule("rule-b"));
  EXPECT_FALSE(report.HasRule("rule-c"));
  const Status status = report.ToStatus();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("rule-a"), std::string::npos);
  EXPECT_NE(status.message().find("t:/0"), std::string::npos);
  EXPECT_NE(status.message().find("+1 more"), std::string::npos);
}

TEST(ReportTest, CapsViolationsAndCountsDropped) {
  audit::Report report;
  for (int i = 0; i < 100; ++i) {
    report.Add("t:/", "flood", "violation");
  }
  EXPECT_EQ(report.violations().size(), 64u);
  EXPECT_EQ(report.total(), 100u);
  EXPECT_NE(report.ToString().find("36 more"), std::string::npos);
}

TEST(ReportTest, AbsorbPrefixesPaths) {
  audit::Report inner;
  inner.Add("/leaf", "inner-rule", "nested");
  audit::Report outer;
  outer.Absorb(inner, "store:");
  ASSERT_EQ(outer.total(), 1u);
  EXPECT_EQ(outer.violations()[0].path, "store:/leaf");
  EXPECT_TRUE(outer.HasRule("inner-rule"));
}

// ---------------------------------------------------------------------------
// Seeded corruptions: the auditor must name each one
// ---------------------------------------------------------------------------

TEST(LTreeAuditTest, CleanTreeHasNoViolations) {
  auto tree = MakeTree(300);
  const audit::Report report = Audit(*tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LTreeAuditTest, DetectsSwappedLeafLabels) {
  auto tree = MakeTree(300);
  Node* first = tree->FirstLeaf();
  Node* second = tree->NextLeaf(first);
  ASSERT_NE(second, nullptr);
  std::swap(first->num, second->num);

  const audit::Report report = Audit(*tree);
  EXPECT_TRUE(report.HasRule("label-order")) << report.ToString();
  // The swap also breaks the num(w) identity — both slugs must surface.
  EXPECT_TRUE(report.HasRule("label-identity")) << report.ToString();
  EXPECT_TRUE(tree->CheckInvariants().IsCorruption());
}

TEST(LTreeAuditTest, DetectsBrokenParentLink) {
  auto tree = MakeTree(300);
  Node* leaf = tree->FirstLeaf();
  for (int i = 0; i < 10; ++i) leaf = tree->NextLeaf(leaf);
  Node* const saved = leaf->parent;
  leaf->parent = leaf;  // point anywhere but the real parent

  const audit::Report report = Audit(*tree);
  EXPECT_TRUE(report.HasRule("parent-link")) << report.ToString();
  leaf->parent = saved;  // restore so teardown walks a sane tree
}

TEST(LTreeAuditTest, DetectsWrongSubtreeLeafCount) {
  auto tree = MakeTree(300);
  Node* root = const_cast<Node*>(tree->root());
  ASSERT_FALSE(root->children.empty());
  Node* child = root->children[0];
  child->leaf_count += 1;

  const audit::Report report = Audit(*tree);
  // Wrong at the child (its children no longer sum to it) and at the root
  // (whose stored total now disagrees with the actual slot count).
  EXPECT_TRUE(report.HasRule("leaf-count-sum")) << report.ToString();
  child->leaf_count -= 1;
}

TEST(LTreeAuditTest, DetectsTombstoneAccountingDrift) {
  auto tree = MakeTree(300);
  Node* leaf = tree->FirstLeaf();
  // Tombstone a leaf behind the tree's back: num_live_leaves() is stale.
  ASSERT_FALSE(leaf->deleted);
  leaf->deleted = true;

  const audit::Report report = Audit(*tree);
  EXPECT_TRUE(report.HasRule("live-count")) << report.ToString();
  leaf->deleted = false;
}

TEST(LTreeAuditTest, DetectsChildIndexMismatch) {
  auto tree = MakeTree(300);
  Node* root = const_cast<Node*>(tree->root());
  ASSERT_GE(root->children.size(), 2u);
  root->children[1]->index_in_parent = 0;

  const audit::Report report = Audit(*tree);
  EXPECT_TRUE(report.HasRule("child-index")) << report.ToString();
  root->children[1]->index_in_parent = 1;
}

TEST(LTreeAuditTest, ViolationPathsAreStructural) {
  auto tree = MakeTree(300);
  Node* root = const_cast<Node*>(tree->root());
  Node* child = root->children[0];
  child->leaf_count += 1;

  const audit::Report report = Audit(*tree);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const audit::Violation& v : report.violations()) {
    if (v.rule == "leaf-count-sum" && v.path == "ltree:/0") found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
  child->leaf_count -= 1;
}

// ---------------------------------------------------------------------------
// Scheme-generic Validate(): every store self-audits clean after real work
// ---------------------------------------------------------------------------

TEST(StoreValidateTest, AllSchemesValidateCleanAfterMixedWorkload) {
  for (const char* spec :
       {"ltree:16:4", "ltree:16:4:purge", "virtual:16:4", "sequential",
        "gap:64", "bender"}) {
    auto store = listlab::MakeLabelStore(spec).ValueOrDie();
    std::vector<listlab::ItemHandle> handles;
    ASSERT_TRUE(store->BulkLoad(MakeCookies(500), &handles).ok()) << spec;
    for (int i = 0; i < 100; ++i) {
      auto h = store->InsertAfter(handles[i * 3], 1000 + i);
      ASSERT_TRUE(h.ok()) << spec;
      handles.push_back(*h);
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store->Erase(handles[i * 7]).ok()) << spec;
    }
    const audit::Report report = store->Validate();
    EXPECT_TRUE(report.ok()) << spec << ": " << report.ToString();
  }
}

}  // namespace
}  // namespace ltree
