// Differential coverage for core/simd_search.h: every kernel (scalar,
// branchless, SSE2, AVX2 — as available on the host) must return exactly
// std::lower_bound / std::upper_bound on every width a tree node can have,
// including adversarial shapes: boundary duplicates, all-equal runs, and
// min/max labels. Also pins the dispatcher (cpuid default, env override,
// SetKernelForTest) and the strided LowerBoundBy used on entry runs.

#include "core/simd_search.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "obtree/counted_btree.h"

namespace ltree {
namespace search {
namespace {

using LowerFn = uint32_t (*)(const Label*, uint32_t, Label);

struct KernelFns {
  Kernel kernel;
  LowerFn lower;
  LowerFn upper;
};

std::vector<KernelFns> AvailableKernels() {
  std::vector<KernelFns> out = {
      {Kernel::kScalar, LowerBoundScalar, UpperBoundScalar},
      {Kernel::kBranchless, LowerBoundBranchless, UpperBoundBranchless},
  };
  if (KernelAvailable(Kernel::kSse2)) {
    out.push_back({Kernel::kSse2, LowerBoundSse2, UpperBoundSse2});
  }
  if (KernelAvailable(Kernel::kAvx2)) {
    out.push_back({Kernel::kAvx2, LowerBoundAvx2, UpperBoundAvx2});
  }
  return out;
}

void CheckAllProbes(const std::vector<Label>& keys) {
  const uint32_t n = static_cast<uint32_t>(keys.size());
  // Probe every element, its neighbors, and the domain extremes.
  std::vector<Label> probes = {0, 1, ~Label{0}, ~Label{0} - 1};
  for (Label k : keys) {
    probes.push_back(k);
    if (k > 0) probes.push_back(k - 1);
    if (k < ~Label{0}) probes.push_back(k + 1);
  }
  for (const auto& fns : AvailableKernels()) {
    for (Label probe : probes) {
      const uint32_t want_lower = static_cast<uint32_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      const uint32_t want_upper = static_cast<uint32_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ(fns.lower(keys.data(), n, probe), want_lower)
          << KernelName(fns.kernel) << " lower, n=" << n
          << " probe=" << probe;
      ASSERT_EQ(fns.upper(keys.data(), n, probe), want_upper)
          << KernelName(fns.kernel) << " upper, n=" << n
          << " probe=" << probe;
    }
  }
}

TEST(SimdSearchTest, EveryWidthRandomized) {
  std::mt19937_64 rng(42);
  // Every width a node can reach, including the transient order+1 overflow.
  for (uint32_t n = 0; n <= obtree::kMaxNodeOrder + 1; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<Label> keys(n);
      for (auto& k : keys) k = rng();
      std::sort(keys.begin(), keys.end());
      CheckAllProbes(keys);
    }
  }
}

TEST(SimdSearchTest, BoundaryDuplicates) {
  // Sorted-with-duplicates arrays: lower/upper bound diverge, which the
  // tree never exercises (unique keys) but the primitive must still get
  // right for any future caller.
  for (uint32_t n : {1u, 2u, 3u, 7u, 8u, 15u, 16u, 33u, 64u, 65u}) {
    std::vector<Label> all_equal(n, Label{1000});
    CheckAllProbes(all_equal);
    std::vector<Label> pairs(n);
    for (uint32_t i = 0; i < n; ++i) pairs[i] = 10 * (i / 2);
    CheckAllProbes(pairs);
  }
}

TEST(SimdSearchTest, MinMaxLabels) {
  CheckAllProbes({0});
  CheckAllProbes({~Label{0}});
  CheckAllProbes({0, ~Label{0}});
  CheckAllProbes({0, 0, 1, ~Label{0} - 1, ~Label{0}, ~Label{0}});
  // Sign-flip edge: values straddling the 2^63 boundary, where a naive
  // signed SIMD compare would order them wrong.
  CheckAllProbes({Label{1} << 62, (Label{1} << 63) - 1, Label{1} << 63,
                  (Label{1} << 63) + 1, Label{3} << 62});
}

TEST(SimdSearchTest, DispatchedEntryPointsMatchForcedKernels) {
  std::mt19937_64 rng(7);
  std::vector<Label> keys(37);
  for (auto& k : keys) k = rng() % 1000;
  std::sort(keys.begin(), keys.end());
  const uint32_t n = static_cast<uint32_t>(keys.size());
  for (const auto& fns : AvailableKernels()) {
    SetKernelForTest(fns.kernel);
    EXPECT_EQ(ActiveKernel(), fns.kernel);
    for (Label probe = 0; probe < 1001; probe += 13) {
      EXPECT_EQ(LowerBound(keys.data(), n, probe),
                LowerBoundScalar(keys.data(), n, probe));
      EXPECT_EQ(UpperBound(keys.data(), n, probe),
                UpperBoundScalar(keys.data(), n, probe));
    }
  }
  ResetKernel();
}

TEST(SimdSearchTest, EnvOverrideForcesScalarPath) {
  ASSERT_EQ(setenv("LTREE_SEARCH_KERNEL", "scalar", /*overwrite=*/1), 0);
  ResetKernel();
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  // Unknown names fall back to cpuid detection instead of crashing.
  ASSERT_EQ(setenv("LTREE_SEARCH_KERNEL", "quantum", 1), 0);
  ResetKernel();
  EXPECT_NE(ActiveKernel(), Kernel::kScalar);
  ASSERT_EQ(unsetenv("LTREE_SEARCH_KERNEL"), 0);
  ResetKernel();
}

TEST(SimdSearchTest, KernelNamesRoundTrip) {
  for (Kernel k : {Kernel::kScalar, Kernel::kBranchless, Kernel::kSse2,
                   Kernel::kAvx2}) {
    EXPECT_STRNE(KernelName(k), "unknown");
  }
}

TEST(SimdSearchTest, LowerBoundByMatchesStdOnStridedRuns) {
  struct Row {
    Label key;
    uint64_t payload;
  };
  std::mt19937_64 rng(99);
  // Small (pure linear) through large (binary-narrowed) runs.
  for (uint32_t n : {0u, 1u, 5u, 32u, 33u, 100u, 1000u, 5000u}) {
    std::vector<Row> rows(n);
    for (auto& r : rows) r = {rng() % (4 * n + 1), rng()};
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.key < b.key; });
    for (int rep = 0; rep < 200; ++rep) {
      const Label probe = rng() % (4 * n + 2);
      const uint32_t want = static_cast<uint32_t>(
          std::lower_bound(rows.begin(), rows.end(), probe,
                           [](const Row& r, Label key) {
                             return r.key < key;
                           }) -
          rows.begin());
      EXPECT_EQ(LowerBoundBy(rows.data(), n, probe,
                             [](const Row& r) { return r.key; }),
                want);
    }
  }
}

// The in-tree effect: a tree fed through each kernel must produce
// bit-identical query answers.
TEST(SimdSearchTest, TreeQueriesAgreeAcrossKernels) {
  std::mt19937_64 rng(1234);
  std::vector<Label> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(rng());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<std::vector<uint64_t>> ranks;
  for (const auto& fns : AvailableKernels()) {
    SetKernelForTest(fns.kernel);
    obtree::CountedBTree tree(8);
    for (Label k : keys) ASSERT_TRUE(tree.Insert(k, k ^ 0x5a5a).ok());
    std::vector<uint64_t> r;
    std::mt19937_64 probe_rng(777);  // identical probe stream per kernel
    for (int i = 0; i < 500; ++i) {
      const Label probe = probe_rng();
      r.push_back(tree.CountLess(probe));
      const auto hit = tree.Lookup(keys[i % keys.size()]);
      ASSERT_TRUE(hit.ok());
      r.push_back(*hit);
    }
    ranks.push_back(std::move(r));
  }
  ResetKernel();
  for (size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i], ranks[0]) << "kernel " << i << " diverged";
  }
}

}  // namespace
}  // namespace search
}  // namespace ltree
