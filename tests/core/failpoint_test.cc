// Failpoint registry tests: arm/disarm lifecycle, bounded budgets,
// hit accounting, the LTREE_FAILPOINT macro, and the store-layer hooks
// ("store.insert" / "store.erase" / "store.catchup").

#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/status.h"
#include "store/document_store.h"

namespace ltree {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedCheckIsOk) {
  EXPECT_TRUE(failpoint::Check("never.armed").ok());
}

TEST_F(FailpointTest, ArmedCheckReturnsInjectedStatus) {
  failpoint::Arm("fp.basic", Status::IoError("injected"));
  const Status st = failpoint::Check("fp.basic");
  EXPECT_TRUE(st.IsIoError());
  EXPECT_EQ(st.message(), "injected");
  EXPECT_TRUE(failpoint::Disarm("fp.basic"));
  EXPECT_TRUE(failpoint::Check("fp.basic").ok());
}

TEST_F(FailpointTest, DisarmReportsWhetherArmed) {
  EXPECT_FALSE(failpoint::Disarm("fp.nothing"));
  failpoint::Arm("fp.once", Status::Internal("x"));
  EXPECT_TRUE(failpoint::Disarm("fp.once"));
  EXPECT_FALSE(failpoint::Disarm("fp.once"));
}

TEST_F(FailpointTest, BoundedArmConsumesItsBudgetThenDisarms) {
  failpoint::Arm("fp.bounded", Status::TimedOut("boom"), /*times=*/3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(failpoint::Check("fp.bounded").IsTimedOut()) << i;
  }
  EXPECT_TRUE(failpoint::Check("fp.bounded").ok());
  EXPECT_FALSE(failpoint::Disarm("fp.bounded"));  // already self-disarmed
}

TEST_F(FailpointTest, HitsAccumulateAcrossArms) {
  const uint64_t before = failpoint::Hits("fp.counted");
  failpoint::Arm("fp.counted", Status::Internal("a"), 2);
  (void)failpoint::Check("fp.counted");
  (void)failpoint::Check("fp.counted");
  failpoint::Arm("fp.counted", Status::Internal("b"), 1);
  (void)failpoint::Check("fp.counted");
  EXPECT_EQ(failpoint::Hits("fp.counted"), before + 3);
}

TEST_F(FailpointTest, RearmReplacesStatusAndBudget) {
  failpoint::Arm("fp.rearm", Status::Internal("old"));
  failpoint::Arm("fp.rearm", Status::NotFound("new"), 1);
  EXPECT_TRUE(failpoint::Check("fp.rearm").IsNotFound());
  EXPECT_TRUE(failpoint::Check("fp.rearm").ok());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint fp("fp.scoped", Status::IoError("scoped"));
    EXPECT_TRUE(failpoint::Check("fp.scoped").IsIoError());
  }
  EXPECT_TRUE(failpoint::Check("fp.scoped").ok());
}

Status GuardedOperation() {
  LTREE_FAILPOINT("fp.macro");
  return Status::OK();
}

TEST_F(FailpointTest, MacroPropagatesInjectedError) {
  EXPECT_TRUE(GuardedOperation().ok());
  failpoint::ScopedFailpoint fp("fp.macro", Status::CapacityExceeded("full"));
  EXPECT_TRUE(GuardedOperation().IsCapacityExceeded());
}

// ------------------------------------------------------- store-layer hooks

class StoreFailpointTest : public FailpointTest {
 protected:
  void SetUp() override {
    store::DocStoreOptions options;
    options.num_shards = 2;
    auto made = store::DocumentStore::Make(options);
    ASSERT_TRUE(made.ok());
    store_ = std::move(*made);
    ASSERT_TRUE(store_->CreateDocument(0).ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(store_->Append(0).ok());
  }

  std::unique_ptr<store::DocumentStore> store_;
};

TEST_F(StoreFailpointTest, InsertFailpointFailsInsertsOnly) {
  failpoint::ScopedFailpoint fp("store.insert", Status::IoError("disk full"));
  EXPECT_TRUE(store_->Append(0).status().IsIoError());
  EXPECT_TRUE(store_->InsertBatchAfterRank(0, 0, 4).IsIoError());
  // Reads and erases still work: the failpoint is path-scoped.
  EXPECT_TRUE(store_->DocSize(0).ok());
  EXPECT_TRUE(store_->EraseAt(0, 0).ok());
}

TEST_F(StoreFailpointTest, EraseFailpointFailsErasePaths) {
  failpoint::ScopedFailpoint fp("store.erase", Status::IoError("wedged"));
  EXPECT_TRUE(store_->EraseAt(0, 0).IsIoError());
  EXPECT_TRUE(store_->DropDocument(0).IsIoError());
  EXPECT_TRUE(store_->Append(0).ok());
}

TEST_F(StoreFailpointTest, CatchUpFailpointFailsSyncServing) {
  failpoint::ScopedFailpoint fp("store.catchup",
                                Status::TimedOut("replica stall"), 1);
  EXPECT_TRUE(store_->CatchUp(0, 0).status().IsTimedOut());
  EXPECT_TRUE(store_->CatchUp(0, 0).ok());  // budget of one consumed
}

TEST_F(StoreFailpointTest, FailedInsertLeavesStoreConsistent) {
  const uint64_t size = store_->DocSize(0).ValueOrDie();
  {
    failpoint::ScopedFailpoint fp("store.insert", Status::IoError("x"));
    EXPECT_FALSE(store_->Append(0).ok());
  }
  // The failpoint fires before any mutation, so nothing changed and the
  // full audit still passes.
  EXPECT_EQ(store_->DocSize(0).ValueOrDie(), size);
  const audit::Report report = store_->Validate();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace ltree
