// TSan smoke suite: concurrent read-only traversal of every core
// structure.
//
// The library is documented thread-compatible (const operations may run
// concurrently as long as no thread mutates), which is also the baseline
// the planned concurrent LabelStore mode builds on. These tests pin that
// contract under `cmake --preset tsan`: several threads traverse a frozen
// structure at once, and ThreadSanitizer flags any const path that
// secretly writes shared state. They are deliberately cheap enough to run
// in every preset, not just the TSan one.
//
// NOTE: stats() is excluded on purpose — it refreshes mutable counters and
// is documented as requiring external synchronization, like any mutation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/ltree.h"
#include "listlab/factory.h"
#include "obtree/counted_btree.h"
#include "store/document_store.h"
#include "virtual_ltree/virtual_ltree.h"

namespace ltree {
namespace {

constexpr int kThreads = 4;
constexpr uint64_t kLeaves = 4000;

std::vector<LeafCookie> MakeCookies(uint64_t n) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), 0);
  return cookies;
}

/// Runs `fn` on kThreads threads concurrently and joins them.
template <typename Fn>
void RunConcurrently(Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(fn, t);
  }
  for (std::thread& th : threads) th.join();
}

TEST(TsanSmokeTest, ConcurrentLTreeTraversal) {
  auto tree = LTree::Create(Params{.f = 16, .s = 4}).ValueOrDie();
  std::vector<LTree::LeafHandle> handles;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(kLeaves), &handles).ok());
  // Mix in splits and tombstones before freezing the tree.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->InsertAfter(handles[i * 7], 100000 + i).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree->MarkDeleted(handles[i * 11]).ok());
  }

  std::vector<uint64_t> sums(kThreads, 0);
  std::atomic<int> ordered_threads{0};
  RunConcurrently([&](int t) {
    // Full leaf walk: labels must strictly increase, and every thread
    // must see the identical frozen sequence.
    uint64_t sum = 0;
    Label prev = 0;
    bool first = true;
    bool ordered = true;
    for (LTree::LeafHandle leaf = tree->FirstLeaf(); leaf != nullptr;
         leaf = tree->NextLeaf(leaf)) {
      const Label label = tree->label(leaf);
      if (!first && label <= prev) ordered = false;
      prev = label;
      first = false;
      sum += label + tree->cookie(leaf);
    }
    if (ordered) ordered_threads.fetch_add(1);
    sums[t] = sum;
  });
  EXPECT_EQ(ordered_threads.load(), kThreads);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(sums[t], sums[0]);
}

TEST(TsanSmokeTest, ConcurrentCountedBTreeQueries) {
  obtree::CountedBTree tree(16);
  std::vector<obtree::Entry> entries;
  entries.reserve(kLeaves);
  for (uint64_t i = 0; i < kLeaves; ++i) {
    entries.push_back({i * 3, i});
  }
  ASSERT_TRUE(tree.BulkBuild(entries).ok());

  std::vector<uint64_t> hits(kThreads, 0);
  RunConcurrently([&](int t) {
    uint64_t hit = 0;
    for (uint64_t i = static_cast<uint64_t>(t); i < kLeaves;
         i += kThreads) {
      if (tree.Contains(i * 3)) ++hit;
      hit += tree.CountLess(i * 3);
      hit += tree.RangeCount(i, i + 1000);
      auto sel = tree.Select(i);
      if (sel.ok()) hit += sel->value;
    }
    // Ordered scans from different threads over the same frozen tree.
    for (auto it = tree.Seek(static_cast<Label>(t) * 100); it.Valid();
         it.Next()) {
      hit += it.key() & 1;
    }
    hits[t] = hit;
  });
  uint64_t total = 0;
  for (uint64_t h : hits) total += h;
  EXPECT_GT(total, 0u);
}

TEST(TsanSmokeTest, ConcurrentVirtualLTreeQueries) {
  auto tree = VirtualLTree::Create(Params{.f = 16, .s = 4}).ValueOrDie();
  std::vector<Label> labels;
  ASSERT_TRUE(tree->BulkLoad(MakeCookies(kLeaves), &labels).ok());

  std::atomic<uint64_t> mismatches{0};
  RunConcurrently([&](int t) {
    for (uint64_t i = static_cast<uint64_t>(t); i < kLeaves;
         i += kThreads) {
      auto cookie = tree->GetCookie(labels[i]);
      if (!cookie.ok() || *cookie != i) mismatches.fetch_add(1);
      auto slot = tree->SelectSlot(i);
      if (!slot.ok() || *slot != labels[i]) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(TsanSmokeTest, ConcurrentStoreReadsAcrossSchemes) {
  for (const char* spec :
       {"ltree:16:4", "virtual:16:4", "sequential", "gap:64", "bender"}) {
    auto store = listlab::MakeLabelStore(spec).ValueOrDie();
    std::vector<listlab::ItemHandle> handles;
    ASSERT_TRUE(store->BulkLoad(MakeCookies(1000), &handles).ok()) << spec;

    std::atomic<uint64_t> mismatches{0};
    RunConcurrently([&](int t) {
      for (size_t i = static_cast<size_t>(t); i < handles.size();
           i += kThreads) {
        auto cookie = store->GetCookie(handles[i]);
        if (!cookie.ok() || *cookie != i) mismatches.fetch_add(1);
        if (!store->GetLabel(handles[i]).ok()) mismatches.fetch_add(1);
      }
      // The deep auditor itself must be a pure read: concurrent
      // Validate() calls are the validate-after-traverse pattern the
      // concurrent mode will lean on.
      if (!store->Validate().ok()) mismatches.fetch_add(1);
    });
    EXPECT_EQ(mismatches.load(), 0u) << spec;
  }
}

TEST(TsanSmokeTest, ConcurrentDocumentStoreReadsAcrossShards) {
  // Freeze a populated sharded store, then read it from every side at
  // once: per-document label walks, per-shard live-state snapshots, feed
  // suffixes and state vectors. stats() and Validate() are excluded like
  // LabelStore::stats() — both refresh mutable scheme counters.
  auto store = store::DocumentStore::Make({.num_shards = 4,
                                           .scheme_spec = "ltree:16:4",
                                           .feed_capacity = 1 << 20})
                   .ValueOrDie();
  constexpr store::DocId kDocs = 12;
  for (store::DocId doc = 0; doc < kDocs; ++doc) {
    ASSERT_TRUE(store->CreateDocument(doc).ok());
    ASSERT_TRUE(store->InsertBatchAfterRank(doc, 0, 200).ok());
  }

  std::atomic<uint64_t> mismatches{0};
  RunConcurrently([&](int t) {
    // Each thread walks a different slice of documents...
    for (store::DocId doc = static_cast<store::DocId>(t); doc < kDocs;
         doc += kThreads) {
      const uint64_t size = store->DocSize(doc).ValueOrDie();
      Label prev = 0;
      for (uint64_t rank = 0; rank < size; ++rank) {
        const auto label = store->LabelAt(doc, rank);
        if (!label.ok() || (rank > 0 && *label <= prev)) {
          mismatches.fetch_add(1);
        }
        if (label.ok()) prev = *label;
      }
      if (store->DocCookies(doc).ValueOrDie().size() != size) {
        mismatches.fetch_add(1);
      }
    }
    // ...and every thread scans every shard's frozen feed and live state.
    const store::StateVector head = store->CurrentStateVector();
    for (uint32_t shard = 0; shard < store->num_shards(); ++shard) {
      const store::ChangeFeed& feed = store->feed(shard);
      if (head.seq(shard) != feed.last_seq()) mismatches.fetch_add(1);
      uint64_t events = 0;
      const std::vector<store::FeedEvent> suffix =
          feed.EventsSince(0).ValueOrDie();
      for (const store::FeedEvent& event : suffix) {
        events += event.cookie != 0 ? 1 : 0;
      }
      if (events != feed.retained()) mismatches.fetch_add(1);
      const auto state = store->ShardState(shard);
      for (size_t i = 1; i < state.size(); ++i) {
        if (state[i].first <= state[i - 1].first) mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace ltree
