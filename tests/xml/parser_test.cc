#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace ltree {
namespace xml {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto doc = Parse("<a/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->tag, "a");
  EXPECT_EQ(doc->num_nodes(), 1u);
}

TEST(ParserTest, NestedElements) {
  auto doc = Parse("<book><chapter><title/></chapter><title/></book>");
  ASSERT_TRUE(doc.ok());
  Node* book = doc->root();
  ASSERT_EQ(book->tag, "book");
  ASSERT_EQ(book->ChildCount(), 2u);
  EXPECT_EQ(book->first_child->tag, "chapter");
  EXPECT_EQ(book->first_child->first_child->tag, "title");
  EXPECT_EQ(book->last_child->tag, "title");
}

TEST(ParserTest, TextContent) {
  auto doc = Parse("<a>hello <b>world</b>!</a>");
  ASSERT_TRUE(doc.ok());
  Node* a = doc->root();
  ASSERT_EQ(a->ChildCount(), 3u);
  EXPECT_TRUE(a->first_child->IsText());
  EXPECT_EQ(a->first_child->text, "hello ");
  EXPECT_EQ(a->first_child->next_sibling->tag, "b");
  EXPECT_EQ(a->last_child->text, "!");
}

TEST(ParserTest, Attributes) {
  auto doc = Parse(R"(<a id="1" name='two' empty=""/>)");
  ASSERT_TRUE(doc.ok());
  Node* a = doc->root();
  ASSERT_EQ(a->attrs.size(), 3u);
  EXPECT_EQ(*a->FindAttr("id"), "1");
  EXPECT_EQ(*a->FindAttr("name"), "two");
  EXPECT_EQ(*a->FindAttr("empty"), "");
}

TEST(ParserTest, EntityDecoding) {
  auto doc = Parse("<a x=\"&lt;&amp;&gt;\">&quot;&apos;&#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root()->FindAttr("x"), "<&>");
  EXPECT_EQ(doc->root()->first_child->text, "\"'AB");
}

TEST(ParserTest, NumericEntityUtf8) {
  auto doc = Parse("<a>&#233;&#x4E2D;</a>");  // é + CJK
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->first_child->text, "\xC3\xA9\xE4\xB8\xAD");
}

TEST(ParserTest, CommentsSkipped) {
  auto doc = Parse("<!-- pre --><a><!-- inside -->x<!-- post --></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->ChildCount(), 1u);
  EXPECT_EQ(doc->root()->first_child->text, "x");
}

TEST(ParserTest, PrologAndDoctype) {
  auto doc = Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE book [ <!ENTITY x \"y\"> ]>\n"
      "<book/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->tag, "book");
}

TEST(ParserTest, CdataIsLiteral) {
  auto doc = Parse("<a><![CDATA[<not> &amp; parsed]]></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->ChildCount(), 1u);
  EXPECT_EQ(doc->root()->first_child->text, "<not> &amp; parsed");
}

TEST(ParserTest, WhitespaceTextDroppedByDefault) {
  auto doc = Parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->ChildCount(), 2u);
}

TEST(ParserTest, WhitespaceTextKeptOnRequest) {
  ParseOptions opts;
  opts.keep_whitespace_text = true;
  auto doc = Parse("<a>\n  <b/>\n</a>", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->ChildCount(), 3u);
}

TEST(ParserTest, NamespacishTags) {
  auto doc = Parse("<ns:a xmlns:ns=\"urn:x\"><ns:b/></ns:a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->tag, "ns:a");
  EXPECT_EQ(doc->root()->first_child->tag, "ns:b");
}

struct BadCase {
  const char* name;
  const char* input;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  auto doc = Parse(GetParam().input);
  ASSERT_FALSE(doc.ok()) << GetParam().input;
  EXPECT_TRUE(doc.status().IsParseError());
  // Error messages carry location context.
  EXPECT_NE(doc.status().message().find("line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadCase{"Empty", ""},
        BadCase{"TextOnly", "just text"},
        BadCase{"UnclosedRoot", "<a>"},
        BadCase{"MismatchedTags", "<a><b></a></b>"},
        BadCase{"TrailingGarbage", "<a/><b/>"},
        BadCase{"TrailingText", "<a/>extra"},
        BadCase{"BadAttrNoValue", "<a id></a>"},
        BadCase{"BadAttrUnquoted", "<a id=5></a>"},
        BadCase{"DuplicateAttr", "<a x=\"1\" x=\"2\"/>"},
        BadCase{"UnknownEntity", "<a>&nope;</a>"},
        BadCase{"UnterminatedEntity", "<a>&amp</a>"},
        BadCase{"BadCharRef", "<a>&#xZZ;</a>"},
        BadCase{"UnterminatedCdata", "<a><![CDATA[x</a>"},
        BadCase{"UnterminatedAttr", "<a x=\"1/>"},
        BadCase{"BadName", "<1a/>"}),
    [](const auto& info) { return info.param.name; });

TEST(ParserRoundTripTest, SerializeParseIdentity) {
  const char* kDoc =
      "<site><people><person id=\"p1\"><name>Alice &amp; Bob</name>"
      "<emails><email>a@x</email><email>b@x</email></emails></person>"
      "</people><regions><region name=\"eu\"/><region name=\"us\"/>"
      "</regions></site>";
  auto doc = Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = Serialize(*doc);
  auto doc2 = Parse(serialized);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(Serialize(*doc2), serialized);
  EXPECT_EQ(doc2->num_nodes(), doc->num_nodes());
}

TEST(ParserRoundTripTest, PrettyPrintedRoundTrip) {
  auto doc = Parse("<a><b>text</b><c x=\"1\"/></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.indent = 2;
  const std::string pretty = Serialize(*doc, opts);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto doc2 = Parse(pretty);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(Serialize(*doc2), Serialize(*doc));
}

TEST(SerializerTest, EscapesSpecials) {
  Document doc;
  Node* a = doc.CreateElement("a");
  a->attrs.emplace_back("q", "a\"b<c");
  ASSERT_TRUE(doc.SetRoot(a).ok());
  ASSERT_TRUE(doc.AppendChild(a, doc.CreateText("x<y&z")).ok());
  const std::string s = Serialize(doc);
  EXPECT_EQ(s, "<a q=\"a&quot;b&lt;c\">x&lt;y&amp;z</a>");
}

TEST(SerializerTest, EmptyDocument) {
  Document doc;
  EXPECT_EQ(Serialize(doc), "");
}

}  // namespace
}  // namespace xml
}  // namespace ltree
