#include "xml/xml_node.h"

#include <gtest/gtest.h>

namespace ltree {
namespace xml {
namespace {

TEST(DocumentTest, EmptyDocument) {
  Document doc;
  EXPECT_EQ(doc.root(), nullptr);
  EXPECT_EQ(doc.num_nodes(), 0u);
  EXPECT_TRUE(doc.CheckInvariants().ok());
  EXPECT_TRUE(doc.TagStream().empty());
}

TEST(DocumentTest, BuildSmallTree) {
  Document doc;
  Node* book = doc.CreateElement("book");
  ASSERT_TRUE(doc.SetRoot(book).ok());
  Node* chapter = doc.CreateElement("chapter");
  Node* title1 = doc.CreateElement("title");
  Node* title2 = doc.CreateElement("title");
  ASSERT_TRUE(doc.AppendChild(book, chapter).ok());
  ASSERT_TRUE(doc.AppendChild(chapter, title1).ok());
  ASSERT_TRUE(doc.AppendChild(book, title2).ok());
  EXPECT_EQ(doc.num_nodes(), 4u);
  EXPECT_EQ(doc.num_elements(), 4u);
  EXPECT_EQ(book->ChildCount(), 2u);
  EXPECT_TRUE(doc.CheckInvariants().ok());
}

TEST(DocumentTest, TagStreamMatchesPaperFigure1) {
  // Figure 1: book(0,7), chapter(1,4), title(2,3), title(5,6): the tag
  // stream is <book><chapter><title></title></chapter><title></title></book>
  Document doc;
  Node* book = doc.CreateElement("book");
  ASSERT_TRUE(doc.SetRoot(book).ok());
  Node* chapter = doc.CreateElement("chapter");
  Node* t1 = doc.CreateElement("title");
  Node* t2 = doc.CreateElement("title");
  ASSERT_TRUE(doc.AppendChild(book, chapter).ok());
  ASSERT_TRUE(doc.AppendChild(chapter, t1).ok());
  ASSERT_TRUE(doc.AppendChild(book, t2).ok());
  auto stream = doc.TagStream();
  ASSERT_EQ(stream.size(), 8u);
  EXPECT_EQ(stream[0].kind, TagEntry::Kind::kBegin);
  EXPECT_EQ(stream[0].node, book);
  EXPECT_EQ(stream[1].node, chapter);
  EXPECT_EQ(stream[2].node, t1);
  EXPECT_EQ(stream[3].kind, TagEntry::Kind::kEnd);
  EXPECT_EQ(stream[3].node, t1);
  EXPECT_EQ(stream[4].node, chapter);
  EXPECT_EQ(stream[5].kind, TagEntry::Kind::kBegin);
  EXPECT_EQ(stream[5].node, t2);
  EXPECT_EQ(stream[7].node, book);
  EXPECT_EQ(stream[7].kind, TagEntry::Kind::kEnd);
}

TEST(DocumentTest, TextNodesInStream) {
  Document doc;
  Node* a = doc.CreateElement("a");
  ASSERT_TRUE(doc.SetRoot(a).ok());
  ASSERT_TRUE(doc.AppendChild(a, doc.CreateText("hello")).ok());
  auto stream = doc.TagStream();
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[1].kind, TagEntry::Kind::kText);
}

TEST(DocumentTest, InsertBeforeAndAfter) {
  Document doc;
  Node* r = doc.CreateElement("r");
  ASSERT_TRUE(doc.SetRoot(r).ok());
  Node* b = doc.CreateElement("b");
  ASSERT_TRUE(doc.AppendChild(r, b).ok());
  Node* a = doc.CreateElement("a");
  ASSERT_TRUE(doc.InsertBefore(r, b, a).ok());
  Node* c = doc.CreateElement("c");
  ASSERT_TRUE(doc.InsertAfter(r, b, c).ok());
  Node* b2 = doc.CreateElement("b2");
  ASSERT_TRUE(doc.InsertAfter(r, b, b2).ok());
  // Order: a, b, b2, c
  std::vector<std::string> tags;
  for (Node* n = r->first_child; n != nullptr; n = n->next_sibling) {
    tags.push_back(n->tag);
  }
  EXPECT_EQ(tags, (std::vector<std::string>{"a", "b", "b2", "c"}));
  EXPECT_TRUE(doc.CheckInvariants().ok());
}

TEST(DocumentTest, InsertValidation) {
  Document doc;
  Node* r = doc.CreateElement("r");
  ASSERT_TRUE(doc.SetRoot(r).ok());
  Node* child = doc.CreateElement("c");
  ASSERT_TRUE(doc.AppendChild(r, child).ok());
  // Already-attached child rejected.
  EXPECT_TRUE(doc.AppendChild(r, child).IsInvalidArgument());
  // Text nodes cannot be parents.
  Node* text = doc.CreateText("t");
  ASSERT_TRUE(doc.AppendChild(r, text).ok());
  EXPECT_TRUE(doc.AppendChild(text, doc.CreateElement("x")).IsInvalidArgument());
  // ref must be a child of parent.
  Node* other = doc.CreateElement("o");
  EXPECT_TRUE(doc.InsertBefore(r, other, doc.CreateElement("y"))
                  .IsInvalidArgument());
  // Second root rejected.
  EXPECT_TRUE(doc.SetRoot(doc.CreateElement("z")).IsFailedPrecondition());
}

TEST(DocumentTest, DetachAndReattach) {
  Document doc;
  Node* r = doc.CreateElement("r");
  ASSERT_TRUE(doc.SetRoot(r).ok());
  Node* a = doc.CreateElement("a");
  Node* b = doc.CreateElement("b");
  ASSERT_TRUE(doc.AppendChild(r, a).ok());
  ASSERT_TRUE(doc.AppendChild(r, b).ok());
  ASSERT_TRUE(doc.Detach(a).ok());
  EXPECT_EQ(r->first_child, b);
  EXPECT_EQ(a->parent, nullptr);
  ASSERT_TRUE(doc.AppendChild(b, a).ok());
  EXPECT_EQ(a->parent, b);
  EXPECT_TRUE(doc.CheckInvariants().ok());
  EXPECT_TRUE(doc.Detach(doc.CreateElement("loose")).IsFailedPrecondition());
}

TEST(DocumentTest, RemoveSubtreeUpdatesCounts) {
  Document doc;
  Node* r = doc.CreateElement("r");
  ASSERT_TRUE(doc.SetRoot(r).ok());
  Node* a = doc.CreateElement("a");
  ASSERT_TRUE(doc.AppendChild(r, a).ok());
  ASSERT_TRUE(doc.AppendChild(a, doc.CreateText("x")).ok());
  ASSERT_TRUE(doc.AppendChild(a, doc.CreateElement("b")).ok());
  EXPECT_EQ(doc.num_nodes(), 4u);
  ASSERT_TRUE(doc.Remove(a).ok());
  EXPECT_EQ(doc.num_nodes(), 1u);
  EXPECT_EQ(doc.num_elements(), 1u);
  EXPECT_EQ(r->first_child, nullptr);
  EXPECT_TRUE(doc.CheckInvariants().ok());
}

TEST(DocumentTest, FindAttr) {
  Document doc;
  Node* e = doc.CreateElement("e");
  e->attrs.emplace_back("id", "42");
  e->attrs.emplace_back("name", "x");
  ASSERT_NE(e->FindAttr("id"), nullptr);
  EXPECT_EQ(*e->FindAttr("id"), "42");
  EXPECT_EQ(e->FindAttr("missing"), nullptr);
}

TEST(DocumentTest, VisitIsPreorder) {
  Document doc;
  Node* r = doc.CreateElement("r");
  ASSERT_TRUE(doc.SetRoot(r).ok());
  Node* a = doc.CreateElement("a");
  Node* b = doc.CreateElement("b");
  ASSERT_TRUE(doc.AppendChild(r, a).ok());
  ASSERT_TRUE(doc.AppendChild(a, b).ok());
  ASSERT_TRUE(doc.AppendChild(r, doc.CreateElement("c")).ok());
  std::vector<std::string> order;
  doc.Visit([&](const Node& n) { order.push_back(n.tag); });
  EXPECT_EQ(order, (std::vector<std::string>{"r", "a", "b", "c"}));
}

TEST(DocumentTest, MoveSemantics) {
  Document doc;
  ASSERT_TRUE(doc.SetRoot(doc.CreateElement("r")).ok());
  Document moved(std::move(doc));
  ASSERT_NE(moved.root(), nullptr);
  EXPECT_EQ(moved.root()->tag, "r");
  Document assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.root()->tag, "r");
  EXPECT_EQ(assigned.num_nodes(), 1u);
}

TEST(DocumentTest, NodeIdsAreUniqueAndStable) {
  Document doc;
  Node* r = doc.CreateElement("r");
  Node* a = doc.CreateElement("a");
  EXPECT_NE(r->id, a->id);
  ASSERT_TRUE(doc.SetRoot(r).ok());
  ASSERT_TRUE(doc.AppendChild(r, a).ok());
  const NodeId a_id = a->id;
  ASSERT_TRUE(doc.Detach(a).ok());
  ASSERT_TRUE(doc.AppendChild(r, a).ok());
  EXPECT_EQ(a->id, a_id);
}

}  // namespace
}  // namespace xml
}  // namespace ltree
