// LabeledDocument: the end-to-end system of the paper.
//
// Binds an ordered XML document to a labeling scheme over its tag stream
// (begin tag, end tag and text-section leaves, Section 2) and maintains a
// relational NodeTable whose (start, end) interval labels stay valid across
// edits: the scheme's relabel notifications are applied to the table in
// place, so query plans built on label comparisons keep working without any
// re-indexing — the paper's core selling point.
//
// The labeling scheme is pluggable: the document owns a listlab::LabelStore
// chosen by spec string (factory.h grammar, e.g. "ltree:16:4",
// "virtual:16:4", "bender", "gap:64", "sequential"), so the same parse ->
// node table -> label-join -> edit pipeline runs unchanged over the paper's
// L-Tree, its virtual variant, and every baseline it compares against.
//
// Element updates:
//   * InsertElement        — single new element (two leaf insertions);
//   * InsertFragment*      — a parsed subtree, inserted as one leaf batch
//     (the Section 4.1 bulk insertion — on schemes with a native batch
//     path this rides the plan/apply pipeline: one coalesced rebuild
//     region, one relabel pass, surfaced as MaintStats::relabel_passes /
//     coalesced_regions);
//   * DeleteSubtree        — erases the leaves (tombstones on the L-Tree
//     variants, physical unlink on the baselines; see order_maintainer.h)
//     and drops the rows.

#ifndef LTREE_DOCSTORE_LABELED_DOCUMENT_H_
#define LTREE_DOCSTORE_LABELED_DOCUMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "listlab/order_maintainer.h"
#include "query/node_table.h"
#include "xml/parser.h"
#include "xml/xml_node.h"

namespace ltree {
namespace docstore {

class LabeledDocument : private RelabelListener {
 public:
  /// Builds the store from parsed XML text (bulk load, Section 2.2) over
  /// the labeling scheme named by `scheme_spec` (factory.h grammar).
  static Result<std::unique_ptr<LabeledDocument>> FromXml(
      std::string_view xml_text, const std::string& scheme_spec);

  /// Builds the store from an existing document (takes ownership).
  static Result<std::unique_ptr<LabeledDocument>> FromDocument(
      xml::Document doc, const std::string& scheme_spec);

  ~LabeledDocument() override;

  // ---------------------------------------------------------------- updates

  /// Inserts a new childless element under `parent_id`. If `after_sibling`
  /// is non-zero the new element goes right after that child; otherwise it
  /// becomes the last child. Returns the new element's node id.
  Result<xml::NodeId> InsertElement(xml::NodeId parent_id,
                                    xml::NodeId after_sibling,
                                    std::string tag);

  /// Inserts a new text node (single tag-stream leaf) under `parent_id`.
  Result<xml::NodeId> InsertText(xml::NodeId parent_id,
                                 xml::NodeId after_sibling, std::string text);

  /// Parses `fragment` and inserts the whole subtree right after
  /// `after_sibling` (a child of `parent_id`), or as the last child when
  /// `after_sibling` is 0. All leaves enter the label store as one batch
  /// (Section 4.1). Returns the fragment root's node id.
  Result<xml::NodeId> InsertFragment(xml::NodeId parent_id,
                                     xml::NodeId after_sibling,
                                     std::string_view fragment);

  /// Removes the subtree rooted at `node_id`: its leaves are erased from
  /// the label store (no relabeling), its rows leave the table, and the DOM
  /// subtree is destroyed.
  Status DeleteSubtree(xml::NodeId node_id);

  // ---------------------------------------------------------------- queries

  /// The current (start, end) interval label of a node.
  Result<query::Region> GetRegion(xml::NodeId node_id) const;

  /// True iff `ancestor` is a proper ancestor of `descendant`, decided
  /// purely by label comparison (Proposition 1 / Section 1).
  Result<bool> IsAncestor(xml::NodeId ancestor, xml::NodeId descendant) const;

  const query::NodeTable& table() const { return table_; }
  const xml::Document& document() const { return doc_; }

  /// The labeling scheme, read-only: name, stats, label bits, invariants.
  /// (Mutating the store directly would desync the node table, so no
  /// mutable accessor exists — use the update methods above.)
  const listlab::LabelStore& label_store() const { return *store_; }

  /// The spec string this document was constructed with.
  const std::string& scheme_spec() const { return spec_; }

  /// Cross-checks DOM order/ancestry against table regions and the label
  /// store's labels.
  Status CheckConsistency() const;

 private:
  struct LeafPair {
    listlab::ItemHandle begin = listlab::kInvalidItemHandle;
    listlab::ItemHandle end = listlab::kInvalidItemHandle;  ///< invalid for text
  };

  LabeledDocument(xml::Document doc,
                  std::unique_ptr<listlab::LabelStore> store,
                  std::string spec);

  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;

  Status BulkLoadFromDocument();

  /// Registers a freshly labeled node in the handle map and node table.
  Status RegisterNode(const xml::Node* node, LeafPair leaves);

  /// Recursively copies `src` (from another document) under `parent`,
  /// appending to `cookies`/`nodes` in tag-stream order.
  xml::Node* CopySubtree(const xml::Node* src, xml::Node* parent);

  static LeafCookie BeginCookie(xml::NodeId id) { return id << 1; }
  static LeafCookie EndCookie(xml::NodeId id) { return (id << 1) | 1; }

  xml::Document doc_;
  std::unique_ptr<listlab::LabelStore> store_;
  std::string spec_;
  query::NodeTable table_;
  std::unordered_map<xml::NodeId, LeafPair> leaves_;
};

}  // namespace docstore
}  // namespace ltree

#endif  // LTREE_DOCSTORE_LABELED_DOCUMENT_H_
