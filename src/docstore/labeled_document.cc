#include "docstore/labeled_document.h"

#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "listlab/factory.h"

namespace ltree {
namespace docstore {

using listlab::ItemHandle;
using listlab::kInvalidItemHandle;

namespace {

int32_t DepthOf(const xml::Node* node) {
  int32_t depth = 0;
  for (const xml::Node* p = node->parent; p != nullptr; p = p->parent) {
    ++depth;
  }
  return depth;
}

}  // namespace

LabeledDocument::LabeledDocument(xml::Document doc,
                                 std::unique_ptr<listlab::LabelStore> store,
                                 std::string spec)
    : doc_(std::move(doc)), store_(std::move(store)), spec_(std::move(spec)) {
  store_->set_listener(this);
}

LabeledDocument::~LabeledDocument() { store_->set_listener(nullptr); }

Result<std::unique_ptr<LabeledDocument>> LabeledDocument::FromXml(
    std::string_view xml_text, const std::string& scheme_spec) {
  LTREE_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  return FromDocument(std::move(doc), scheme_spec);
}

Result<std::unique_ptr<LabeledDocument>> LabeledDocument::FromDocument(
    xml::Document doc, const std::string& scheme_spec) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  LTREE_ASSIGN_OR_RETURN(std::unique_ptr<listlab::LabelStore> store,
                         listlab::MakeLabelStore(scheme_spec));
  auto labeled = std::unique_ptr<LabeledDocument>(new LabeledDocument(
      std::move(doc), std::move(store), scheme_spec));
  LTREE_RETURN_IF_ERROR(labeled->BulkLoadFromDocument());
  return labeled;
}

Status LabeledDocument::BulkLoadFromDocument() {
  const std::vector<xml::TagEntry> stream = doc_.TagStream();
  std::vector<LeafCookie> cookies;
  cookies.reserve(stream.size());
  for (const xml::TagEntry& entry : stream) {
    cookies.push_back(entry.kind == xml::TagEntry::Kind::kEnd
                          ? EndCookie(entry.node->id)
                          : BeginCookie(entry.node->id));
  }
  std::vector<ItemHandle> handles;
  LTREE_RETURN_IF_ERROR(store_->BulkLoad(cookies, &handles));

  for (size_t i = 0; i < stream.size(); ++i) {
    const xml::TagEntry& entry = stream[i];
    LeafPair& pair = leaves_[entry.node->id];
    if (entry.kind == xml::TagEntry::Kind::kEnd) {
      pair.end = handles[i];
    } else {
      pair.begin = handles[i];
    }
  }
  for (const xml::TagEntry& entry : stream) {
    if (entry.kind != xml::TagEntry::Kind::kBegin) continue;
    LTREE_RETURN_IF_ERROR(
        RegisterNode(entry.node, leaves_[entry.node->id]));
  }
  return table_.Finalize();
}

Status LabeledDocument::RegisterNode(const xml::Node* node, LeafPair leaves) {
  if (!node->IsElement()) return Status::OK();  // text: leaves only
  query::NodeRow row;
  row.id = node->id;
  row.tag = node->tag;
  LTREE_ASSIGN_OR_RETURN(const Label start, store_->GetLabel(leaves.begin));
  LTREE_ASSIGN_OR_RETURN(const Label end, store_->GetLabel(leaves.end));
  row.region = {start, end};
  row.level = DepthOf(node);
  row.parent_id = node->parent == nullptr ? 0 : node->parent->id;
  row.is_text = false;
  return table_.Insert(std::move(row));
}

void LabeledDocument::OnRelabel(LeafCookie cookie, Label old_label,
                                Label new_label) {
  (void)old_label;
  const xml::NodeId id = cookie >> 1;
  const bool is_end = (cookie & 1) != 0;
  // Text nodes and not-yet-registered fresh nodes have no table row; ignore
  // the NotFound.
  Status st = is_end ? table_.UpdateEnd(id, new_label)
                     : table_.UpdateStart(id, new_label);
  (void)st;
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

namespace {

/// Resolves the insertion anchor inside `parent`:
///  - returns the node to insert after (nullptr = append as last child).
Result<xml::Node*> ResolveSibling(xml::Node* parent, xml::NodeId after) {
  if (after == 0) return static_cast<xml::Node*>(nullptr);
  for (xml::Node* c = parent->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->id == after) return c;
  }
  return Status::NotFound("after_sibling is not a child of parent");
}

}  // namespace

Result<xml::NodeId> LabeledDocument::InsertElement(xml::NodeId parent_id,
                                                   xml::NodeId after_sibling,
                                                   std::string tag) {
  auto pit = leaves_.find(parent_id);
  if (pit == leaves_.end() || pit->second.end == kInvalidItemHandle) {
    return Status::NotFound("parent is not a live element");
  }
  xml::Node* parent = doc_.FindById(parent_id);
  LTREE_CHECK(parent != nullptr);
  LTREE_ASSIGN_OR_RETURN(xml::Node * sibling,
                         ResolveSibling(parent, after_sibling));

  xml::Node* fresh = doc_.CreateElement(std::move(tag));
  Status attach = sibling == nullptr
                      ? doc_.AppendChild(parent, fresh)
                      : doc_.InsertAfter(parent, sibling, fresh);
  LTREE_RETURN_IF_ERROR(attach);

  const LeafCookie cookies[2] = {BeginCookie(fresh->id), EndCookie(fresh->id)};
  std::vector<ItemHandle> handles;
  Status st;
  if (sibling == nullptr) {
    st = store_->InsertBatchBefore(pit->second.end, cookies, &handles);
  } else {
    const LeafPair& sib = leaves_.at(sibling->id);
    const ItemHandle anchor =
        sib.end != kInvalidItemHandle ? sib.end : sib.begin;
    st = store_->InsertBatchAfter(anchor, cookies, &handles);
  }
  if (!st.ok()) {
    LTREE_CHECK_OK(doc_.Remove(fresh));
    return st;
  }
  LeafPair pair{handles[0], handles[1]};
  leaves_[fresh->id] = pair;
  LTREE_RETURN_IF_ERROR(RegisterNode(fresh, pair));
  return fresh->id;
}

Result<xml::NodeId> LabeledDocument::InsertText(xml::NodeId parent_id,
                                                xml::NodeId after_sibling,
                                                std::string text) {
  auto pit = leaves_.find(parent_id);
  if (pit == leaves_.end() || pit->second.end == kInvalidItemHandle) {
    return Status::NotFound("parent is not a live element");
  }
  xml::Node* parent = doc_.FindById(parent_id);
  LTREE_CHECK(parent != nullptr);
  LTREE_ASSIGN_OR_RETURN(xml::Node * sibling,
                         ResolveSibling(parent, after_sibling));

  xml::Node* fresh = doc_.CreateText(std::move(text));
  Status attach = sibling == nullptr
                      ? doc_.AppendChild(parent, fresh)
                      : doc_.InsertAfter(parent, sibling, fresh);
  LTREE_RETURN_IF_ERROR(attach);

  Result<ItemHandle> handle = [&]() -> Result<ItemHandle> {
    if (sibling == nullptr) {
      return store_->InsertBefore(pit->second.end, BeginCookie(fresh->id));
    }
    const LeafPair& sib = leaves_.at(sibling->id);
    const ItemHandle anchor =
        sib.end != kInvalidItemHandle ? sib.end : sib.begin;
    return store_->InsertAfter(anchor, BeginCookie(fresh->id));
  }();
  if (!handle.ok()) {
    LTREE_CHECK_OK(doc_.Remove(fresh));
    return handle.status();
  }
  leaves_[fresh->id] = LeafPair{*handle, kInvalidItemHandle};
  return fresh->id;
}

xml::Node* LabeledDocument::CopySubtree(const xml::Node* src,
                                        xml::Node* parent) {
  xml::Node* clone = src->IsElement() ? doc_.CreateElement(src->tag)
                                      : doc_.CreateText(src->text);
  clone->attrs = src->attrs;
  if (parent != nullptr) {
    LTREE_CHECK_OK(doc_.AppendChild(parent, clone));
  }
  for (const xml::Node* c = src->first_child; c != nullptr;
       c = c->next_sibling) {
    CopySubtree(c, clone);
  }
  return clone;
}

Result<xml::NodeId> LabeledDocument::InsertFragment(xml::NodeId parent_id,
                                                    xml::NodeId after_sibling,
                                                    std::string_view fragment) {
  auto pit = leaves_.find(parent_id);
  if (pit == leaves_.end() || pit->second.end == kInvalidItemHandle) {
    return Status::NotFound("parent is not a live element");
  }
  LTREE_ASSIGN_OR_RETURN(xml::Document frag, xml::Parse(fragment));
  xml::Node* parent = doc_.FindById(parent_id);
  LTREE_CHECK(parent != nullptr);
  LTREE_ASSIGN_OR_RETURN(xml::Node * sibling,
                         ResolveSibling(parent, after_sibling));

  // Clone the fragment into this document and attach it.
  xml::Node* clone_root = CopySubtree(frag.root(), nullptr);
  Status attach = sibling == nullptr
                      ? doc_.AppendChild(parent, clone_root)
                      : doc_.InsertAfter(parent, sibling, clone_root);
  LTREE_RETURN_IF_ERROR(attach);

  // Tag stream of the clone, in order, as one leaf batch (Section 4.1).
  std::vector<xml::TagEntry> stream;
  {
    // Reuse Document::TagStream logic via a local recursion.
    struct Walker {
      static void Walk(const xml::Node* n, std::vector<xml::TagEntry>* out) {
        if (n->IsText()) {
          out->push_back({xml::TagEntry::Kind::kText, n});
          return;
        }
        out->push_back({xml::TagEntry::Kind::kBegin, n});
        for (const xml::Node* c = n->first_child; c != nullptr;
             c = c->next_sibling) {
          Walk(c, out);
        }
        out->push_back({xml::TagEntry::Kind::kEnd, n});
      }
    };
    Walker::Walk(clone_root, &stream);
  }
  std::vector<LeafCookie> cookies;
  cookies.reserve(stream.size());
  for (const xml::TagEntry& entry : stream) {
    cookies.push_back(entry.kind == xml::TagEntry::Kind::kEnd
                          ? EndCookie(entry.node->id)
                          : BeginCookie(entry.node->id));
  }

  std::vector<ItemHandle> handles;
  Status st;
  if (sibling == nullptr) {
    st = store_->InsertBatchBefore(pit->second.end, cookies, &handles);
  } else {
    const LeafPair& sib = leaves_.at(sibling->id);
    const ItemHandle anchor =
        sib.end != kInvalidItemHandle ? sib.end : sib.begin;
    st = store_->InsertBatchAfter(anchor, cookies, &handles);
  }
  if (!st.ok()) {
    LTREE_CHECK_OK(doc_.Remove(clone_root));
    return st;
  }

  for (size_t i = 0; i < stream.size(); ++i) {
    LeafPair& pair = leaves_[stream[i].node->id];
    if (stream[i].kind == xml::TagEntry::Kind::kEnd) {
      pair.end = handles[i];
    } else {
      pair.begin = handles[i];
    }
  }
  for (const xml::TagEntry& entry : stream) {
    if (entry.kind != xml::TagEntry::Kind::kBegin) continue;
    LTREE_RETURN_IF_ERROR(RegisterNode(entry.node, leaves_[entry.node->id]));
  }
  return clone_root->id;
}

Status LabeledDocument::DeleteSubtree(xml::NodeId node_id) {
  auto it = leaves_.find(node_id);
  if (it == leaves_.end()) return Status::NotFound("unknown node id");
  xml::Node* node = doc_.FindById(node_id);
  if (node == nullptr) return Status::NotFound("node not attached");

  // Collect the subtree in document order.
  std::vector<const xml::Node*> subtree;
  std::vector<const xml::Node*> stack{node};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    subtree.push_back(n);
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  for (const xml::Node* n : subtree) {
    const LeafPair pair = leaves_.at(n->id);
    LTREE_RETURN_IF_ERROR(store_->Erase(pair.begin));
    if (pair.end != kInvalidItemHandle) {
      LTREE_RETURN_IF_ERROR(store_->Erase(pair.end));
    }
    if (n->IsElement()) {
      LTREE_RETURN_IF_ERROR(table_.Erase(n->id));
    }
    leaves_.erase(n->id);
  }
  return doc_.Remove(node);
}

// ---------------------------------------------------------------------------
// Queries / checks
// ---------------------------------------------------------------------------

Result<query::Region> LabeledDocument::GetRegion(xml::NodeId node_id) const {
  auto it = leaves_.find(node_id);
  if (it == leaves_.end()) return Status::NotFound("unknown node id");
  LTREE_ASSIGN_OR_RETURN(const Label start,
                         store_->GetLabel(it->second.begin));
  Label end = start;
  if (it->second.end != kInvalidItemHandle) {
    LTREE_ASSIGN_OR_RETURN(end, store_->GetLabel(it->second.end));
  }
  return query::Region{start, end};
}

Result<bool> LabeledDocument::IsAncestor(xml::NodeId ancestor,
                                         xml::NodeId descendant) const {
  LTREE_ASSIGN_OR_RETURN(query::Region a, GetRegion(ancestor));
  LTREE_ASSIGN_OR_RETURN(query::Region d, GetRegion(descendant));
  return a.Contains(d);
}

Status LabeledDocument::CheckConsistency() const {
  LTREE_RETURN_IF_ERROR(store_->CheckInvariants());
  LTREE_RETURN_IF_ERROR(table_.CheckInvariants());
  LTREE_RETURN_IF_ERROR(doc_.CheckInvariants());
  // The labels read through the handles must be strictly increasing along
  // the current tag stream, and table regions must match them.
  Label prev = 0;
  bool first = true;
  for (const xml::TagEntry& entry : doc_.TagStream()) {
    auto it = leaves_.find(entry.node->id);
    if (it == leaves_.end()) {
      return Status::Corruption("attached node missing from the leaf map");
    }
    const ItemHandle h = entry.kind == xml::TagEntry::Kind::kEnd
                             ? it->second.end
                             : it->second.begin;
    if (h == kInvalidItemHandle) {
      return Status::Corruption("missing leaf handle");
    }
    auto label = store_->GetLabel(h);
    if (!label.ok()) {
      return Status::Corruption("leaf handle no longer resolves: " +
                                label.status().ToString());
    }
    if (!first && *label <= prev) {
      return Status::Corruption("tag-stream labels not increasing");
    }
    prev = *label;
    first = false;
    if (entry.kind == xml::TagEntry::Kind::kBegin &&
        entry.node->IsElement()) {
      LTREE_ASSIGN_OR_RETURN(const query::NodeRow* row,
                             table_.Find(entry.node->id));
      LTREE_ASSIGN_OR_RETURN(const Label start,
                             store_->GetLabel(it->second.begin));
      LTREE_ASSIGN_OR_RETURN(const Label end,
                             store_->GetLabel(it->second.end));
      if (row->region.start != start || row->region.end != end) {
        return Status::Corruption(StrFormat(
            "table region stale for node %llu",
            static_cast<unsigned long long>(entry.node->id)));
      }
    }
  }
  return Status::OK();
}

}  // namespace docstore
}  // namespace ltree
