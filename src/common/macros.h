// Error-propagation and invariant-check macros.

#ifndef LTREE_COMMON_MACROS_H_
#define LTREE_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>

#include "common/status.h"

#define LTREE_CONCAT_IMPL(a, b) a##b
#define LTREE_CONCAT(a, b) LTREE_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller.
#define LTREE_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::ltree::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define LTREE_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  LTREE_ASSIGN_OR_RETURN_IMPL(LTREE_CONCAT(_res_, __LINE__), lhs, rexpr)

#define LTREE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.MoveValueUnsafe()

/// Aborts on violated invariants (programmer errors, not user errors).
#define LTREE_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "LTREE_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << "\n";                                    \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define LTREE_CHECK_OK(expr)                                               \
  do {                                                                     \
    ::ltree::Status _st = (expr);                                          \
    if (!_st.ok()) {                                                       \
      std::cerr << "LTREE_CHECK_OK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " << _st.ToString() << "\n";             \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define LTREE_DCHECK(cond) LTREE_CHECK(cond)

#endif  // LTREE_COMMON_MACROS_H_
