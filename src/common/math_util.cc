#include "common/math_util.h"

#include <limits>

#include "common/macros.h"

namespace ltree {

std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return uint64_t{0};
  if (a > std::numeric_limits<uint64_t>::max() / b) return std::nullopt;
  return a * b;
}

std::optional<uint64_t> CheckedAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) return std::nullopt;
  return a + b;
}

std::optional<uint64_t> CheckedPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  uint64_t acc = base;
  uint32_t e = exp;
  while (e > 0) {
    if (e & 1u) {
      auto r = CheckedMul(result, acc);
      if (!r) return std::nullopt;
      result = *r;
    }
    e >>= 1u;
    if (e == 0) break;
    auto a = CheckedMul(acc, acc);
    if (!a) return std::nullopt;
    acc = *a;
  }
  return result;
}

Result<uint64_t> PowOrCapacity(uint64_t base, uint32_t exp) {
  auto p = CheckedPow(base, exp);
  if (!p) {
    return Status::CapacityExceeded("power overflows 64-bit label space");
  }
  return *p;
}

uint32_t FloorLog2(uint64_t x) {
  LTREE_CHECK(x > 0);
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

uint32_t CeilLog(uint64_t base, uint64_t x) {
  LTREE_CHECK(base >= 2);
  LTREE_CHECK(x >= 1);
  uint32_t h = 0;
  // acc = base^h, tracked with overflow care: once acc >= x we stop; overflow
  // implies acc definitely exceeded x.
  uint64_t acc = 1;
  while (acc < x) {
    auto next = CheckedMul(acc, base);
    ++h;
    if (!next) return h;  // base^h overflowed => certainly >= x
    acc = *next;
  }
  return h;
}

uint32_t BitWidth(uint64_t x) {
  if (x == 0) return 1;
  return FloorLog2(x) + 1;
}

}  // namespace ltree
