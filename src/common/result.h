// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef LTREE_COMMON_RESULT_H_
#define LTREE_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ltree {

/// Holds either a `T` or a non-OK `Status`. Use `ok()` / `status()` to test,
/// `ValueOrDie()` / `operator*` to access, or the LTREE_ASSIGN_OR_RETURN
/// macro (macros.h) to propagate.
template <typename T>
class Result {
 public:
  /// Constructs from an error status. Aborts if `status.ok()` — an OK result
  /// must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK() when a value is present, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out; valid only when ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(repr_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

}  // namespace ltree

#endif  // LTREE_COMMON_RESULT_H_
