// Deterministic pseudo-random generators for workloads and tests.
//
// All generators are seeded explicitly so that every experiment in the bench
// harness is reproducible run-to-run.

#ifndef LTREE_COMMON_RANDOM_H_
#define LTREE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ltree {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next64();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  /// bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf(theta) sampler over {0, ..., n-1} using the rejection-inversion
/// method so construction is O(1) rather than O(n). theta = 0 is uniform;
/// larger theta is more skewed.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace ltree

#endif  // LTREE_COMMON_RANDOM_H_
