#include "common/status.h"

namespace ltree {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimedOut:
      return "TimedOut";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace ltree
