#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/macros.h"
#include "common/math_util.h"

namespace ltree {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(uint64_t v) {
  if (v == 0) return 0;
  return 1 + static_cast<int>(FloorLog2(v));
}

void Histogram::Add(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (seen + buckets_[static_cast<size_t>(b)] > target) {
      if (b == 0) return 0.0;
      double lo = std::pow(2.0, b - 1);
      double hi = std::pow(2.0, b);
      double frac = buckets_[static_cast<size_t>(b)] == 0
                        ? 0.0
                        : static_cast<double>(target - seen) /
                              static_cast<double>(buckets_[static_cast<size_t>(b)]);
      return lo + frac * (hi - lo);
    }
    seen += buckets_[static_cast<size_t>(b)];
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " max=" << max_ << "\n";
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[static_cast<size_t>(b)] == 0) continue;
    uint64_t lo = b == 0 ? 0 : (1ull << (b - 1));
    uint64_t hi = b == 0 ? 0 : (1ull << b) - 1;
    os << "  [" << lo << ", " << hi << "]: " << buckets_[static_cast<size_t>(b)]
       << "\n";
  }
  return os.str();
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<size_t>(b)] += other.buckets_[static_cast<size_t>(b)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = max_ = 0;
}

}  // namespace ltree
