#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace ltree {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  LTREE_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  LTREE_CHECK(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

// Rejection-inversion sampling for Zipf (Hormann & Derflinger 1996).
ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  LTREE_CHECK(n >= 1);
  LTREE_CHECK(theta >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfSampler::H(double x) const {
  if (std::abs(theta_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(theta_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfSampler::Sample(Rng* rng) {
  if (theta_ == 0.0) return rng->Uniform(n_);
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_) return k - 1;
    if (u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -theta_)) {
      return k - 1;
    }
  }
}

}  // namespace ltree
