// Streaming statistics helpers used by the benchmark harness.

#ifndef LTREE_COMMON_STATS_H_
#define LTREE_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ltree {

/// Welford streaming mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Merge(const RunningStat& other);
  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, +inf) with power-of-two bucket bounds,
/// suitable for per-operation cost distributions (relabels per insert etc.).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double mean() const;

  /// Approximate quantile (q in [0,1]) from bucket interpolation.
  double Quantile(double q) const;

  /// Multi-line human-readable dump of non-empty buckets.
  std::string ToString() const;

  void Merge(const Histogram& other);
  void Reset();

 private:
  static constexpr int kBuckets = 65;  // value 0, then [2^i, 2^{i+1})
  static int BucketFor(uint64_t v);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace ltree

#endif  // LTREE_COMMON_STATS_H_
