#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ltree {

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return StrFormat("%.2f%s", v, suffix);
}

}  // namespace ltree
