// Small string helpers shared by the XML parser, query parser and the
// table-printing bench harness.

#ifndef LTREE_COMMON_STRING_UTIL_H_
#define LTREE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ltree {

/// Splits on a single character; keeps empty pieces.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Human-readable count, e.g. 1234567 -> "1.23M".
std::string HumanCount(double v);

}  // namespace ltree

#endif  // LTREE_COMMON_STRING_UTIL_H_
