// Checked integer math used by the labeling structures.
//
// Label arithmetic works in base (f+1) over uint64_t; every power computation
// that could overflow goes through the checked helpers here so that label
// space exhaustion surfaces as Status::CapacityExceeded rather than silent
// wraparound.

#ifndef LTREE_COMMON_MATH_UTIL_H_
#define LTREE_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <optional>

#include "common/result.h"
#include "common/status.h"

namespace ltree {

/// base^exp, or nullopt on uint64 overflow.
std::optional<uint64_t> CheckedPow(uint64_t base, uint32_t exp);

/// a*b, or nullopt on uint64 overflow.
std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b);

/// a+b, or nullopt on uint64 overflow.
std::optional<uint64_t> CheckedAdd(uint64_t a, uint64_t b);

/// base^exp as a Result (CapacityExceeded on overflow).
Result<uint64_t> PowOrCapacity(uint64_t base, uint32_t exp);

/// Floor of log2(x); x must be > 0.
uint32_t FloorLog2(uint64_t x);

/// Smallest h >= 0 with base^h >= x (base >= 2, x >= 1).
/// I.e. ceil(log_base(x)).
uint32_t CeilLog(uint64_t base, uint64_t x);

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Number of bits needed to represent label value `x` (0 -> 1).
uint32_t BitWidth(uint64_t x);

}  // namespace ltree

#endif  // LTREE_COMMON_MATH_UTIL_H_
