// Status: lightweight error model in the style of Arrow/RocksDB.
//
// All fallible operations in this library return either a `Status` (no
// payload) or a `Result<T>` (payload or error). Exceptions are not used on
// library paths; invariant violations that indicate programmer error abort
// via the LTREE_CHECK macros (see macros.h).

#ifndef LTREE_COMMON_STATUS_H_
#define LTREE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace ltree {

/// Machine-readable error category.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kCapacityExceeded = 3,  ///< label space (f+1)^H would overflow 64 bits
  kNotFound = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kCorruption = 7,  ///< structural invariant violated in stored data
  kNotImplemented = 8,
  kIoError = 9,
  kParseError = 10,  ///< malformed XML / query text
  kInternal = 11,
  kTimedOut = 12,  ///< deadline elapsed before the operation completed
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to pass by value: the OK status carries no
/// allocation; error statuses hold a heap `State` with code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status copyable; errors are rare so the allocation is
  // off the hot path.
  std::shared_ptr<const State> state_;
};

}  // namespace ltree

#endif  // LTREE_COMMON_STATUS_H_
