// Wall-clock timing helper for the bench harness.

#ifndef LTREE_COMMON_TIMER_H_
#define LTREE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ltree {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ltree

#endif  // LTREE_COMMON_TIMER_H_
