#include "workload/update_stream.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace ltree {
namespace workload {

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kUniform:
      return "uniform";
    case StreamKind::kAppend:
      return "append";
    case StreamKind::kPrepend:
      return "prepend";
    case StreamKind::kHotspot:
      return "hotspot";
    case StreamKind::kMixed:
      return "mixed";
  }
  return "unknown";
}

UpdateStream::UpdateStream(const StreamOptions& options)
    : options_(options), rng_(options.seed) {}

ListOp UpdateStream::Next(uint64_t live_size) {
  LTREE_CHECK(live_size > 0);
  ListOp op;
  switch (options_.kind) {
    case StreamKind::kUniform:
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = rng_.Uniform(live_size);
      break;
    case StreamKind::kAppend:
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = live_size - 1;
      break;
    case StreamKind::kPrepend:
      op.kind = ListOp::Kind::kInsertBefore;
      op.rank = 0;
      break;
    case StreamKind::kHotspot: {
      // Zipf distance from a hotspot at the middle of the list.
      ZipfSampler zipf(std::max<uint64_t>(live_size / 2, 1),
                       options_.zipf_theta);
      const uint64_t offset = zipf.Sample(&rng_);
      const uint64_t center = live_size / 2;
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = rng_.Bernoulli(0.5)
                    ? std::min(center + offset, live_size - 1)
                    : center - std::min(offset, center);
      break;
    }
    case StreamKind::kMixed:
      if (live_size > 2 && rng_.Bernoulli(options_.erase_fraction)) {
        op.kind = ListOp::Kind::kErase;
        op.rank = rng_.Uniform(live_size);
      } else {
        op.kind = ListOp::Kind::kInsertAfter;
        op.rank = rng_.Uniform(live_size);
      }
      break;
  }
  return op;
}

MultiSessionStream::MultiSessionStream(const MultiSessionOptions& options)
    : options_(options),
      doc_rng_(SplitMix64(options.session_stream.seed).Next() ^
               0x6d756c746973ull),
      doc_zipf_(std::max<uint64_t>(options.num_docs, 1),
                options.doc_zipf_theta),
      doc_perm_(std::max<uint64_t>(options.num_docs, 1)) {
  LTREE_CHECK(options.num_docs > 0);
  LTREE_CHECK(options.num_sessions > 0);
  std::iota(doc_perm_.begin(), doc_perm_.end(), 0);
  doc_rng_.Shuffle(&doc_perm_);
  sessions_.reserve(options.num_sessions);
  for (uint32_t i = 0; i < options.num_sessions; ++i) {
    StreamOptions per_session = options.session_stream;
    // Decorrelate sessions; keep the run reproducible from the one seed.
    per_session.seed = SplitMix64(options.session_stream.seed + i).Next();
    sessions_.emplace_back(per_session);
  }
}

uint64_t MultiSessionStream::PickDoc() {
  return doc_perm_[doc_zipf_.Sample(&doc_rng_)];
}

}  // namespace workload
}  // namespace ltree
