#include "workload/update_stream.h"

#include <algorithm>

#include "common/macros.h"

namespace ltree {
namespace workload {

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kUniform:
      return "uniform";
    case StreamKind::kAppend:
      return "append";
    case StreamKind::kPrepend:
      return "prepend";
    case StreamKind::kHotspot:
      return "hotspot";
    case StreamKind::kMixed:
      return "mixed";
  }
  return "unknown";
}

UpdateStream::UpdateStream(const StreamOptions& options)
    : options_(options), rng_(options.seed) {}

ListOp UpdateStream::Next(uint64_t live_size) {
  LTREE_CHECK(live_size > 0);
  ListOp op;
  switch (options_.kind) {
    case StreamKind::kUniform:
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = rng_.Uniform(live_size);
      break;
    case StreamKind::kAppend:
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = live_size - 1;
      break;
    case StreamKind::kPrepend:
      op.kind = ListOp::Kind::kInsertBefore;
      op.rank = 0;
      break;
    case StreamKind::kHotspot: {
      // Zipf distance from a hotspot at the middle of the list.
      ZipfSampler zipf(std::max<uint64_t>(live_size / 2, 1),
                       options_.zipf_theta);
      const uint64_t offset = zipf.Sample(&rng_);
      const uint64_t center = live_size / 2;
      op.kind = ListOp::Kind::kInsertAfter;
      op.rank = rng_.Bernoulli(0.5)
                    ? std::min(center + offset, live_size - 1)
                    : center - std::min(offset, center);
      break;
    }
    case StreamKind::kMixed:
      if (live_size > 2 && rng_.Bernoulli(options_.erase_fraction)) {
        op.kind = ListOp::Kind::kErase;
        op.rank = rng_.Uniform(live_size);
      } else {
        op.kind = ListOp::Kind::kInsertAfter;
        op.rank = rng_.Uniform(live_size);
      }
      break;
  }
  return op;
}

}  // namespace workload
}  // namespace ltree
