// Rank-addressed update streams for driving order maintainers.
//
// Every scheme in listlab is driven by positions ("insert after the r-th
// live item"), which keeps op streams scheme-agnostic. Distributions:
//  * kUniform — insertion point uniform over the list (the random-update
//    model of the paper's analysis);
//  * kAppend  — document-order loading (always at the tail);
//  * kPrepend — always at the head (worst case for sequential labels);
//  * kHotspot — Zipf-distributed insertion point around a fixed region,
//    modelling the "areas with heavy insertion activity" the paper's
//    conclusion highlights;
//  * kMixed   — uniform inserts with a configurable share of deletions.

#ifndef LTREE_WORKLOAD_UPDATE_STREAM_H_
#define LTREE_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace ltree {
namespace workload {

struct ListOp {
  enum class Kind { kInsertAfter, kInsertBefore, kErase };
  Kind kind = Kind::kInsertAfter;
  /// Rank of the anchor item among live items at the time of the op.
  uint64_t rank = 0;
};

enum class StreamKind { kUniform, kAppend, kPrepend, kHotspot, kMixed };

const char* StreamKindName(StreamKind kind);

struct StreamOptions {
  StreamKind kind = StreamKind::kUniform;
  /// Zipf skew for kHotspot (0 = uniform, typical 0.9-1.2).
  double zipf_theta = 0.99;
  /// Deletion share for kMixed.
  double erase_fraction = 0.2;
  uint64_t seed = 7;
};

/// Generates ops against a list whose current size the caller reports.
class UpdateStream {
 public:
  explicit UpdateStream(const StreamOptions& options);

  /// Next operation for a list with `live_size` (>0) live items.
  ListOp Next(uint64_t live_size);

 private:
  StreamOptions options_;
  Rng rng_;
};

}  // namespace workload
}  // namespace ltree

#endif  // LTREE_WORKLOAD_UPDATE_STREAM_H_
