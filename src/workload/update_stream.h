// Rank-addressed update streams for driving order maintainers.
//
// Every scheme in listlab is driven by positions ("insert after the r-th
// live item"), which keeps op streams scheme-agnostic. Distributions:
//  * kUniform — insertion point uniform over the list (the random-update
//    model of the paper's analysis);
//  * kAppend  — document-order loading (always at the tail);
//  * kPrepend — always at the head (worst case for sequential labels);
//  * kHotspot — Zipf-distributed insertion point around a fixed region,
//    modelling the "areas with heavy insertion activity" the paper's
//    conclusion highlights;
//  * kMixed   — uniform inserts with a configurable share of deletions.

#ifndef LTREE_WORKLOAD_UPDATE_STREAM_H_
#define LTREE_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace ltree {
namespace workload {

struct ListOp {
  enum class Kind { kInsertAfter, kInsertBefore, kErase };
  Kind kind = Kind::kInsertAfter;
  /// Rank of the anchor item among live items at the time of the op.
  uint64_t rank = 0;
};

enum class StreamKind { kUniform, kAppend, kPrepend, kHotspot, kMixed };

const char* StreamKindName(StreamKind kind);

struct StreamOptions {
  StreamKind kind = StreamKind::kUniform;
  /// Zipf skew for kHotspot (0 = uniform, typical 0.9-1.2).
  double zipf_theta = 0.99;
  /// Deletion share for kMixed.
  double erase_fraction = 0.2;
  uint64_t seed = 7;
};

/// Generates ops against a list whose current size the caller reports.
class UpdateStream {
 public:
  explicit UpdateStream(const StreamOptions& options);

  /// Next operation for a list with `live_size` (>0) live items.
  ListOp Next(uint64_t live_size);

 private:
  StreamOptions options_;
  Rng rng_;
};

/// One document-addressed operation, as issued by a session.
struct DocOp {
  uint64_t doc = 0;      ///< document index in [0, num_docs)
  uint32_t session = 0;  ///< issuing session
  ListOp op;
};

struct MultiSessionOptions {
  uint64_t num_docs = 64;
  uint32_t num_sessions = 4;
  /// Zipf skew of the document pick (0 = uniform, typical 0.9-1.2). Which
  /// documents are hot is itself randomized: the Zipf ranks are laid over
  /// a seed-shuffled permutation of the document indices, so hot documents
  /// spread across shards instead of clustering at low ids.
  double doc_zipf_theta = 0.99;
  /// Per-session op mix. Each session derives its own rng seed from
  /// `session_stream.seed`, so sessions are decorrelated but the whole
  /// multi-session run stays reproducible.
  StreamOptions session_stream;
};

/// Concurrent-editing model for the sharded DocumentStore: `num_sessions`
/// independent op streams interleaved round-robin, each op targeting a
/// Zipf-skewed document. The caller reports the chosen document's live
/// size through a callback (documents grow and shrink as ops apply, so
/// only the store knows).
class MultiSessionStream {
 public:
  explicit MultiSessionStream(const MultiSessionOptions& options);

  const MultiSessionOptions& options() const { return options_; }

  /// Next operation from the next session in round-robin order.
  /// `live_size_of(doc)` must return the document's current live item
  /// count; an op against an empty document is always an insert at rank 0.
  template <typename SizeFn>
  DocOp Next(SizeFn&& live_size_of) {
    DocOp out;
    out.session = static_cast<uint32_t>(next_session_);
    out.doc = PickDoc();
    next_session_ = (next_session_ + 1) % sessions_.size();
    const uint64_t live_size = live_size_of(out.doc);
    if (live_size == 0) {
      out.op = ListOp{.kind = ListOp::Kind::kInsertAfter, .rank = 0};
    } else {
      out.op = sessions_[out.session].Next(live_size);
    }
    return out;
  }

 private:
  uint64_t PickDoc();

  MultiSessionOptions options_;
  Rng doc_rng_;
  ZipfSampler doc_zipf_;
  std::vector<uint64_t> doc_perm_;  ///< Zipf rank -> document index
  std::vector<UpdateStream> sessions_;
  uint64_t next_session_ = 0;
};

}  // namespace workload
}  // namespace ltree

#endif  // LTREE_WORKLOAD_UPDATE_STREAM_H_
