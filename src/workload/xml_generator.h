// Synthetic XML document generators (substitute for unspecified real
// corpora — see DESIGN.md §5). All generators are seed-deterministic.

#ifndef LTREE_WORKLOAD_XML_GENERATOR_H_
#define LTREE_WORKLOAD_XML_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "xml/xml_node.h"

namespace ltree {
namespace workload {

/// Shape knobs for random ordered trees.
struct RandomDocOptions {
  uint64_t num_elements = 1000;
  /// Elements deeper than this become leaves.
  uint32_t max_depth = 12;
  /// Distinct tag names (tag0..tagV-1), reused to make //-queries selective.
  uint32_t tag_vocabulary = 16;
  /// Probability that an element receives a text child.
  double text_probability = 0.3;
  uint64_t seed = 42;
};

/// Grows a random ordered tree by repeatedly attaching a new element under
/// a uniformly chosen existing element (bounded by max_depth).
xml::Document GenerateRandomDocument(const RandomDocOptions& options);

/// A "book site" catalog in the spirit of the paper's running example
/// (Figure 1): site/books/book/chapter/title|para plus an authors section,
/// giving natural targets for queries like "book//title".
/// Roughly 8 + books*(5 + chapters_per_book*3) elements.
xml::Document GenerateCatalog(uint64_t books, uint32_t chapters_per_book,
                              uint64_t seed);

/// Serialized form of GenerateCatalog (handy for parser-driven paths).
std::string GenerateCatalogXml(uint64_t books, uint32_t chapters_per_book,
                               uint64_t seed);

}  // namespace workload
}  // namespace ltree

#endif  // LTREE_WORKLOAD_XML_GENERATOR_H_
