#include "workload/xml_generator.h"

#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/serializer.h"

namespace ltree {
namespace workload {

xml::Document GenerateRandomDocument(const RandomDocOptions& options) {
  LTREE_CHECK(options.num_elements >= 1);
  Rng rng(options.seed);
  xml::Document doc;
  xml::Node* root = doc.CreateElement("root");
  LTREE_CHECK_OK(doc.SetRoot(root));

  struct Candidate {
    xml::Node* node;
    uint32_t depth;
  };
  std::vector<Candidate> attachable{{root, 0}};
  uint64_t text_counter = 0;

  for (uint64_t i = 1; i < options.num_elements; ++i) {
    // Pick a parent among nodes that may still take children.
    const size_t pick = static_cast<size_t>(rng.Uniform(attachable.size()));
    Candidate parent = attachable[pick];
    const uint32_t tag_id =
        static_cast<uint32_t>(rng.Uniform(options.tag_vocabulary));
    xml::Node* child = doc.CreateElement(StrFormat("tag%u", tag_id));
    LTREE_CHECK_OK(doc.AppendChild(parent.node, child));
    if (parent.depth + 1 < options.max_depth) {
      attachable.push_back({child, parent.depth + 1});
    }
    if (rng.Bernoulli(options.text_probability)) {
      LTREE_CHECK_OK(doc.AppendChild(
          child, doc.CreateText(StrFormat(
                     "text%llu",
                     static_cast<unsigned long long>(text_counter++)))));
    }
  }
  return doc;
}

xml::Document GenerateCatalog(uint64_t books, uint32_t chapters_per_book,
                              uint64_t seed) {
  Rng rng(seed);
  xml::Document doc;
  xml::Node* site = doc.CreateElement("site");
  LTREE_CHECK_OK(doc.SetRoot(site));
  xml::Node* books_el = doc.CreateElement("books");
  xml::Node* authors_el = doc.CreateElement("authors");
  LTREE_CHECK_OK(doc.AppendChild(site, books_el));
  LTREE_CHECK_OK(doc.AppendChild(site, authors_el));

  const uint64_t num_authors = std::max<uint64_t>(1, books / 4 + 1);
  for (uint64_t a = 0; a < num_authors; ++a) {
    xml::Node* author = doc.CreateElement("author");
    author->attrs.emplace_back(
        "id", StrFormat("a%llu", static_cast<unsigned long long>(a)));
    xml::Node* name = doc.CreateElement("name");
    LTREE_CHECK_OK(doc.AppendChild(
        name, doc.CreateText(StrFormat(
                  "Author %llu", static_cast<unsigned long long>(a)))));
    LTREE_CHECK_OK(doc.AppendChild(author, name));
    LTREE_CHECK_OK(doc.AppendChild(authors_el, author));
  }

  for (uint64_t b = 0; b < books; ++b) {
    xml::Node* book = doc.CreateElement("book");
    book->attrs.emplace_back(
        "id", StrFormat("b%llu", static_cast<unsigned long long>(b)));
    book->attrs.emplace_back(
        "author", StrFormat("a%llu", static_cast<unsigned long long>(
                                         rng.Uniform(num_authors))));
    xml::Node* title = doc.CreateElement("title");
    LTREE_CHECK_OK(doc.AppendChild(
        title, doc.CreateText(StrFormat(
                   "Book %llu", static_cast<unsigned long long>(b)))));
    LTREE_CHECK_OK(doc.AppendChild(book, title));
    for (uint32_t c = 0; c < chapters_per_book; ++c) {
      xml::Node* chapter = doc.CreateElement("chapter");
      xml::Node* ctitle = doc.CreateElement("title");
      LTREE_CHECK_OK(doc.AppendChild(
          ctitle, doc.CreateText(StrFormat("Chapter %u", c))));
      LTREE_CHECK_OK(doc.AppendChild(chapter, ctitle));
      xml::Node* para = doc.CreateElement("para");
      LTREE_CHECK_OK(doc.AppendChild(
          para,
          doc.CreateText(StrFormat(
              "Content %llu.%u",
              static_cast<unsigned long long>(b), c))));
      LTREE_CHECK_OK(doc.AppendChild(chapter, para));
      LTREE_CHECK_OK(doc.AppendChild(book, chapter));
    }
    LTREE_CHECK_OK(doc.AppendChild(books_el, book));
  }
  return doc;
}

std::string GenerateCatalogXml(uint64_t books, uint32_t chapters_per_book,
                               uint64_t seed) {
  return xml::Serialize(GenerateCatalog(books, chapters_per_book, seed));
}

}  // namespace workload
}  // namespace ltree
