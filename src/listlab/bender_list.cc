#include "listlab/bender_list.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

namespace {
constexpr uint32_t kMaxBits = 62;

/// floor(i * width / count) without 64-bit overflow.
inline uint64_t Spread(uint64_t i, uint64_t width, uint64_t count) {
  return static_cast<uint64_t>(static_cast<__uint128_t>(i) * width / count);
}
}  // namespace

BenderList::BenderList(Options options)
    : options_(options), bits_(std::max(options.initial_bits, 4u)) {
  LTREE_CHECK(options_.root_density > 0.0 && options_.root_density <= 1.0);
  LTREE_CHECK(bits_ <= kMaxBits);
}

std::string BenderList::name() const {
  return StrFormat("bender(rho=%.2f)", options_.root_density);
}

double BenderList::ThresholdFor(uint32_t k) const {
  return 1.0 - (1.0 - options_.root_density) * static_cast<double>(k) /
                   static_cast<double>(bits_);
}

Status BenderList::AssignInitialLabels(uint64_t n) {
  // Size the universe so the initial density is at most root_density.
  while (bits_ < kMaxBits &&
         static_cast<double>(n) > options_.root_density *
                                      static_cast<double>(uint64_t{1} << bits_)) {
    ++bits_;
  }
  if (static_cast<double>(n) >
      options_.root_density * static_cast<double>(uint64_t{1} << bits_)) {
    return Status::CapacityExceeded("bulk load too dense for 62-bit labels");
  }
  const uint64_t width = uint64_t{1} << bits_;
  uint64_t i = 0;
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    it->label = Spread(i++, width, n);
  }
  return Status::OK();
}

void BenderList::Redistribute(ListItem* first, uint64_t count, Label base,
                              uint64_t width, const ListItem* fresh) {
  ListItem* cur = first;
  for (uint64_t i = 0; i < count; ++i) {
    LTREE_CHECK(cur != nullptr);
    const Label target = base + Spread(i, width, count);
    SetLabel(cur, target, fresh);
    cur = cur->next;
  }
  ++stats_.rebalances;
}

Status BenderList::GrowUniverse(const ListItem* fresh) {
  if (bits_ >= kMaxBits) {
    return Status::CapacityExceeded("label universe at 62-bit limit");
  }
  ++bits_;
  Redistribute(head_, live_, 0, uint64_t{1} << bits_, fresh);
  return Status::OK();
}

Status BenderList::PlaceItem(ListItem* item) {
  const ListItem* prev = item->prev;
  const ListItem* next = item->next;
  const uint64_t universe = uint64_t{1} << bits_;
  const uint64_t lo = prev == nullptr ? 0 : prev->label + 1;  // inclusive
  const uint64_t hi = next == nullptr ? universe : next->label;  // exclusive
  if (hi > lo) {
    item->label = lo + (hi - lo) / 2;
    return Status::OK();
  }

  // Gap exhausted: find the smallest enclosing aligned window that is
  // sparse enough after the insertion, and spread its items evenly.
  const Label anchor = next != nullptr ? next->label : prev->label;
  for (uint32_t k = 1; k <= bits_; ++k) {
    const uint64_t width = uint64_t{1} << k;
    const Label base = anchor & ~(width - 1);
    // Leftmost window member.
    ListItem* first = item;
    while (first->prev != nullptr && first->prev->label >= base) {
      first = first->prev;
    }
    // Count members (the fresh item counts but carries no label yet).
    uint64_t count = 0;
    for (ListItem* cur = first; cur != nullptr; cur = cur->next) {
      if (cur != item && cur->label >= base + width) break;
      ++count;
    }
    if (static_cast<double>(count) <=
            ThresholdFor(k) * static_cast<double>(width) &&
        count <= width) {
      Redistribute(first, count, base, width, item);
      return Status::OK();
    }
  }
  return GrowUniverse(item);
}

}  // namespace listlab
}  // namespace ltree
