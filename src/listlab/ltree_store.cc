#include "listlab/ltree_store.h"

#include <numeric>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/validate.h"

namespace ltree {
namespace listlab {

namespace {

std::string SchemeName(const char* kind, const Params& params) {
  return StrFormat("%s(f=%u,s=%u%s)", kind, params.f, params.s,
                   params.purge_tombstones_on_split ? ",purge" : "");
}

}  // namespace

// ---------------------------------------------------------------------------
// Materialized store
// ---------------------------------------------------------------------------

LTreeStore::LTreeStore(std::unique_ptr<LTree> tree) : tree_(std::move(tree)) {
  tree_->set_listener(this);
  tree_->set_epoch(&epoch_);
}

LTreeStore::~LTreeStore() {
  // Drain retired leaves back to the arena while tree_ (and its arena) is
  // still alive; legal because no reader can outlive the store.
  epoch_.ReclaimAllUnsafe();
}

Result<std::unique_ptr<LTreeStore>> LTreeStore::Make(const Params& params) {
  LTREE_ASSIGN_OR_RETURN(std::unique_ptr<LTree> tree, LTree::Create(params));
  return std::unique_ptr<LTreeStore>(new LTreeStore(std::move(tree)));
}

std::string LTreeStore::name() const {
  return SchemeName("ltree", tree_->params());
}

void LTreeStore::OnRelabel(LeafCookie cookie, Label old_label,
                           Label new_label) {
  if (listener_ != nullptr) listener_->OnRelabel(cookie, old_label, new_label);
}

Result<LTree::LeafHandle> LTreeStore::LiveHandle(ItemHandle h) const {
  if (h >= slots_.size()) return Status::NotFound("unknown item handle");
  const uintptr_t bits = slots_[h].load(std::memory_order_acquire);
  if ((bits & kErasedBit) != 0) {
    return Status::NotFound("item handle already erased");
  }
  return reinterpret_cast<LTree::LeafHandle>(bits);
}

ItemHandle LTreeStore::Register(LTree::LeafHandle handle,
                                std::vector<ItemHandle>* handles) {
  slots_.PushBack().store(reinterpret_cast<uintptr_t>(handle),
                          std::memory_order_release);
  slots_.Publish();
  const ItemHandle h = slots_.writer_size() - 1;
  if (handles != nullptr) handles->push_back(h);
  return h;
}

Status LTreeStore::BulkLoadImpl(std::span<const LeafCookie> cookies,
                                std::vector<ItemHandle>* handles) {
  std::vector<LTree::LeafHandle> fresh;
  LTREE_RETURN_IF_ERROR(tree_->BulkLoad(cookies, &fresh));
  for (LTree::LeafHandle h : fresh) Register(h, handles);
  AutoValidate("BulkLoad");
  return Status::OK();
}

Result<ItemHandle> LTreeStore::InsertAfterImpl(ItemHandle pos,
                                               LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(pos));
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->InsertAfter(where, cookie));
  const ItemHandle h = Register(fresh, nullptr);
  AutoValidate("InsertAfter");
  return h;
}

Result<ItemHandle> LTreeStore::InsertBeforeImpl(ItemHandle pos,
                                                LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(pos));
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->InsertBefore(where, cookie));
  const ItemHandle h = Register(fresh, nullptr);
  AutoValidate("InsertBefore");
  return h;
}

Result<ItemHandle> LTreeStore::PushBackImpl(LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh, tree_->PushBack(cookie));
  const ItemHandle h = Register(fresh, nullptr);
  AutoValidate("PushBack");
  return h;
}

Result<ItemHandle> LTreeStore::PushFrontImpl(LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh, tree_->PushFront(cookie));
  const ItemHandle h = Register(fresh, nullptr);
  AutoValidate("PushFront");
  return h;
}

Status LTreeStore::InsertBatchAfterImpl(ItemHandle pos,
                                        std::span<const LeafCookie> cookies,
                                        std::vector<ItemHandle>* handles) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(pos));
  std::vector<LTree::LeafHandle> fresh;
  LTREE_RETURN_IF_ERROR(tree_->InsertBatchAfter(where, cookies, &fresh));
  for (LTree::LeafHandle h : fresh) Register(h, handles);
  AutoValidate("InsertBatchAfter");
  return Status::OK();
}

Status LTreeStore::InsertBatchBeforeImpl(ItemHandle pos,
                                         std::span<const LeafCookie> cookies,
                                         std::vector<ItemHandle>* handles) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(pos));
  std::vector<LTree::LeafHandle> fresh;
  LTREE_RETURN_IF_ERROR(tree_->InsertBatchBefore(where, cookies, &fresh));
  for (LTree::LeafHandle h : fresh) Register(h, handles);
  AutoValidate("InsertBatchBefore");
  return Status::OK();
}

Status LTreeStore::PushBackBatchImpl(std::span<const LeafCookie> cookies,
                                     std::vector<ItemHandle>* handles) {
  std::vector<LTree::LeafHandle> fresh;
  LTREE_RETURN_IF_ERROR(tree_->PushBackBatch(cookies, &fresh));
  for (LTree::LeafHandle h : fresh) Register(h, handles);
  AutoValidate("PushBackBatch");
  return Status::OK();
}

Status LTreeStore::EraseImpl(ItemHandle h) {
  if (h >= slots_.size()) return Status::NotFound("unknown item handle");
  const uintptr_t bits = slots_[h].load(std::memory_order_relaxed);
  if ((bits & kErasedBit) != 0) {
    return Status::FailedPrecondition("item handle already erased");
  }
  const auto leaf = reinterpret_cast<LTree::LeafHandle>(bits);
  const LeafCookie cookie = tree_->cookie(leaf);
  const Label last_label = tree_->label(leaf);
  LTREE_RETURN_IF_ERROR(tree_->MarkDeleted(leaf));
  slots_[h].store(bits | kErasedBit, std::memory_order_release);
  if (listener_ != nullptr) listener_->OnErase(cookie, last_label);
  AutoValidate("Erase");
  return Status::OK();
}

Result<Label> LTreeStore::GetLabel(ItemHandle h) const {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(h));
  return tree_->label(where);
}

Result<LeafCookie> LTreeStore::GetCookie(ItemHandle h) const {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, LiveHandle(h));
  return tree_->cookie(where);
}

void LTreeStore::SnapshotImpl(
    std::vector<std::pair<Label, LeafCookie>>* out) const {
  out->reserve(out->size() + tree_->num_live_leaves());
  for (LTree::LeafHandle leaf = tree_->FirstLiveLeaf(); leaf != nullptr;
       leaf = tree_->NextLiveLeaf(leaf)) {
    out->emplace_back(tree_->label(leaf), tree_->cookie(leaf));
  }
}

const MaintStats& LTreeStore::stats() const {
  const LTreeStats& ts = tree_->stats();
  stats_.inserts = ts.inserts + ts.batch_leaves;
  stats_.erases = ts.deletes;
  stats_.batch_inserts = ts.batch_inserts;
  stats_.items_relabeled = ts.leaves_relabeled;
  stats_.rebalances = ts.splits + ts.root_splits;
  stats_.relabel_passes = ts.relabel_passes;
  stats_.coalesced_regions = ts.coalesced_regions;
  stats_.nodes_allocated = ts.nodes_allocated;
  stats_.nodes_reused = ts.nodes_reused;
  stats_.nodes_released = ts.nodes_released;
  return stats_;
}

void LTreeStore::ResetStats() {
  tree_->ResetStats();
  stats_ = MaintStats();
}

audit::Report LTreeStore::Validate() const {
  audit::Report report;
  audit::AuditLTree(*tree_, &report);
  // Handle map vs. the tree: collect the live leaves by traversal, then
  // check the non-erased handles map onto them one-to-one. An erased
  // slot's pointer must never be dereferenced — a purge may have freed it.
  std::unordered_map<const Node*, uint64_t> live_leaf_count;
  for (LTree::LeafHandle leaf = tree_->FirstLiveLeaf(); leaf != nullptr;
       leaf = tree_->NextLiveLeaf(leaf)) {
    ++live_leaf_count[leaf];
  }
  uint64_t live_handles = 0;
  for (ItemHandle h = 0; h < slots_.size(); ++h) {
    const std::string path = "store:/" + std::to_string(h);
    const uintptr_t bits = slots_[h].load(std::memory_order_acquire);
    const auto leaf = reinterpret_cast<LTree::LeafHandle>(bits & ~kErasedBit);
    if ((bits & kErasedBit) != 0) {
      // Without purging the tombstoned leaf must still be present.
      if (!tree_->params().purge_tombstones_on_split &&
          !tree_->deleted(leaf)) {
        report.Add(path, "handle-map",
                   "erased handle points at a non-tombstoned leaf");
      }
      continue;
    }
    ++live_handles;
    auto it = live_leaf_count.find(leaf);
    if (it == live_leaf_count.end()) {
      report.Add(path, "handle-map",
                 "live handle does not resolve to a live leaf");
    } else if (it->second == 0) {
      report.Add(path, "handle-map",
                 "two live handles resolve to the same leaf");
    } else {
      --it->second;
    }
  }
  if (live_handles != tree_->num_live_leaves()) {
    report.Add("store:/", "live-count",
               StrFormat("%llu live handles vs %llu live leaves",
                         static_cast<unsigned long long>(live_handles),
                         static_cast<unsigned long long>(
                             tree_->num_live_leaves())));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Virtual store
// ---------------------------------------------------------------------------

VirtualLTreeStore::VirtualLTreeStore(std::unique_ptr<VirtualLTree> tree)
    : tree_(std::move(tree)) {
  tree_->set_listener(this);
  tree_->set_epoch(&epoch_);
}

VirtualLTreeStore::~VirtualLTreeStore() {
  // Drain retired B+-tree nodes while the tree's arena is still alive.
  epoch_.ReclaimAllUnsafe();
}

Result<std::unique_ptr<VirtualLTreeStore>> VirtualLTreeStore::Make(
    const Params& params) {
  LTREE_ASSIGN_OR_RETURN(std::unique_ptr<VirtualLTree> tree,
                         VirtualLTree::Create(params));
  return std::unique_ptr<VirtualLTreeStore>(
      new VirtualLTreeStore(std::move(tree)));
}

std::string VirtualLTreeStore::name() const {
  return SchemeName("virtual-ltree", tree_->params());
}

void VirtualLTreeStore::OnRelabel(LeafCookie cookie, Label old_label,
                                  Label new_label) {
  // The tree's leaf cookies are our item handles; the client payload lives
  // in the slot. The slot may still be unpublished (a batch in flight
  // relabeling its own fresh leaves), so bound by the writer's size.
  const ItemHandle h = cookie;
  LTREE_CHECK(h < slots_.writer_size());
  VSlot& slot = slots_[h];
  slot.label.store(new_label);
  if (listener_ != nullptr) {
    listener_->OnRelabel(slot.cookie.load(), old_label, new_label);
  }
}

Result<Label> VirtualLTreeStore::CurrentLabel(ItemHandle h) const {
  if (h >= slots_.size()) return Status::NotFound("unknown item handle");
  const VSlot& slot = slots_[h];
  if (slot.erased.load(std::memory_order_acquire)) {
    return Status::NotFound("item handle already erased");
  }
  return slot.label.load();
}

ItemHandle VirtualLTreeStore::Reserve(std::span<const LeafCookie> cookies) {
  const ItemHandle first = slots_.writer_size();
  for (const LeafCookie cookie : cookies) {
    // Slots are recycled after a rolled-back reserve, so reset every field.
    VSlot& slot = slots_.PushBack();
    slot.label.store(kInvalidLabel);
    slot.cookie.store(cookie);
    slot.erased.store(false, std::memory_order_relaxed);
  }
  return first;
}

void VirtualLTreeStore::Unreserve(uint64_t k) {
  slots_.ShrinkTo(slots_.writer_size() - k);
}

template <typename Op>
Status VirtualLTreeStore::RunBatch(std::span<const LeafCookie> cookies,
                                   std::vector<ItemHandle>* handles,
                                   Op&& op) {
  const ItemHandle first = Reserve(cookies);
  std::vector<LeafCookie> tree_cookies(cookies.size());
  std::iota(tree_cookies.begin(), tree_cookies.end(), first);
  std::vector<Label> labels;
  Status st = op(std::span<const LeafCookie>(tree_cookies), &labels);
  if (!st.ok()) {
    Unreserve(cookies.size());
    return st;
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    slots_[first + i].label.store(labels[i]);
    if (handles != nullptr) handles->push_back(first + i);
  }
  slots_.Publish();
  AutoValidate("batch mutation");
  return Status::OK();
}

template <typename Op>
Result<ItemHandle> VirtualLTreeStore::RunSingle(LeafCookie cookie, Op&& op) {
  const ItemHandle h = Reserve({&cookie, 1});
  Result<Label> fresh = op(h);
  if (!fresh.ok()) {
    Unreserve(1);
    return fresh.status();
  }
  slots_[h].label.store(*fresh);
  slots_.Publish();
  AutoValidate("insert");
  return h;
}

Status VirtualLTreeStore::BulkLoadImpl(std::span<const LeafCookie> cookies,
                                       std::vector<ItemHandle>* handles) {
  return RunBatch(cookies, handles, [&](auto tree_cookies, auto* labels) {
    return tree_->BulkLoad(tree_cookies, labels);
  });
}

Result<ItemHandle> VirtualLTreeStore::InsertAfterImpl(ItemHandle pos,
                                                      LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  return RunSingle(cookie,
                   [&](ItemHandle h) { return tree_->InsertAfter(where, h); });
}

Result<ItemHandle> VirtualLTreeStore::InsertBeforeImpl(ItemHandle pos,
                                                       LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  return RunSingle(cookie,
                   [&](ItemHandle h) { return tree_->InsertBefore(where, h); });
}

Result<ItemHandle> VirtualLTreeStore::PushBackImpl(LeafCookie cookie) {
  return RunSingle(cookie, [&](ItemHandle h) { return tree_->PushBack(h); });
}

Result<ItemHandle> VirtualLTreeStore::PushFrontImpl(LeafCookie cookie) {
  return RunSingle(cookie, [&](ItemHandle h) { return tree_->PushFront(h); });
}

Status VirtualLTreeStore::InsertBatchAfterImpl(
    ItemHandle pos, std::span<const LeafCookie> cookies,
    std::vector<ItemHandle>* handles) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  return RunBatch(cookies, handles, [&](auto tree_cookies, auto* labels) {
    return tree_->InsertBatchAfter(where, tree_cookies, labels);
  });
}

Status VirtualLTreeStore::InsertBatchBeforeImpl(
    ItemHandle pos, std::span<const LeafCookie> cookies,
    std::vector<ItemHandle>* handles) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  return RunBatch(cookies, handles, [&](auto tree_cookies, auto* labels) {
    return tree_->InsertBatchBefore(where, tree_cookies, labels);
  });
}

Status VirtualLTreeStore::PushBackBatchImpl(
    std::span<const LeafCookie> cookies, std::vector<ItemHandle>* handles) {
  return RunBatch(cookies, handles, [&](auto tree_cookies, auto* labels) {
    return tree_->PushBackBatch(tree_cookies, labels);
  });
}

Status VirtualLTreeStore::EraseImpl(ItemHandle h) {
  if (h >= slots_.size()) return Status::NotFound("unknown item handle");
  VSlot& slot = slots_[h];
  if (slot.erased.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("item handle already erased");
  }
  const Label label = slot.label.load();
  LTREE_RETURN_IF_ERROR(tree_->MarkDeleted(label));
  slot.erased.store(true, std::memory_order_release);
  if (listener_ != nullptr) listener_->OnErase(slot.cookie.load(), label);
  AutoValidate("Erase");
  return Status::OK();
}

Result<Label> VirtualLTreeStore::GetLabel(ItemHandle h) const {
  return CurrentLabel(h);
}

Result<LeafCookie> VirtualLTreeStore::GetCookie(ItemHandle h) const {
  if (h >= slots_.size()) return Status::NotFound("unknown item handle");
  const VSlot& slot = slots_[h];
  if (slot.erased.load(std::memory_order_acquire)) {
    return Status::NotFound("item handle already erased");
  }
  return slot.cookie.load();
}

void VirtualLTreeStore::SnapshotImpl(
    std::vector<std::pair<Label, LeafCookie>>* out) const {
  const std::vector<Label> labels = tree_->LiveLabels();
  out->reserve(out->size() + labels.size());
  for (const Label label : labels) {
    // The tree's cookie for a label is our handle; the client payload
    // lives in the slot.
    auto handle = tree_->GetCookie(label);
    LTREE_CHECK(handle.ok());
    out->emplace_back(label, slots_[*handle].cookie.load());
  }
}

const MaintStats& VirtualLTreeStore::stats() const {
  const VirtualLTreeStats& ts = tree_->stats();
  stats_.inserts = ts.inserts + ts.batch_leaves;
  stats_.erases = ts.deletes;
  stats_.batch_inserts = ts.batch_inserts;
  stats_.items_relabeled = ts.labels_rewritten;
  stats_.rebalances = ts.splits + ts.root_splits;
  stats_.relabel_passes = ts.relabel_passes;
  stats_.coalesced_regions = ts.coalesced_regions;
  stats_.nodes_allocated = ts.nodes_allocated;
  stats_.nodes_reused = ts.nodes_reused;
  stats_.nodes_released = ts.nodes_released;
  return stats_;
}

void VirtualLTreeStore::ResetStats() {
  tree_->ResetStats();
  stats_ = MaintStats();
}

audit::Report VirtualLTreeStore::Validate() const {
  audit::Report report;
  tree_->Audit(&report);
  // Cookie <-> label bijection: the tree's leaf cookies are our handles,
  // so every non-erased handle's label must exist in the B+-tree, carry
  // that handle as its cookie, and be live. Together with the live counts
  // agreeing this makes handle -> label a bijection onto the live labels.
  uint64_t live_handles = 0;
  for (ItemHandle h = 0; h < slots_.size(); ++h) {
    const VSlot& slot = slots_[h];
    if (slot.erased.load(std::memory_order_acquire)) continue;
    ++live_handles;
    const Label label = slot.label.load();
    const std::string path = "store:/" + std::to_string(h);
    auto cookie = tree_->GetCookie(label);
    if (!cookie.ok()) {
      report.Add(path, "cookie-label-bijection",
                 StrFormat("handle's label %llu is missing from the tree",
                           static_cast<unsigned long long>(label)));
      continue;
    }
    if (*cookie != h) {
      report.Add(path, "cookie-label-bijection",
                 StrFormat("label %llu maps back to handle %llu",
                           static_cast<unsigned long long>(label),
                           static_cast<unsigned long long>(*cookie)));
    }
    auto deleted = tree_->IsDeleted(label);
    if (deleted.ok() && *deleted) {
      report.Add(path, "cookie-label-bijection",
                 "live handle's label is tombstoned in the tree");
    }
  }
  if (live_handles != tree_->num_live_leaves()) {
    report.Add("store:/", "live-count",
               StrFormat("%llu live handles vs %llu live leaves",
                         static_cast<unsigned long long>(live_handles),
                         static_cast<unsigned long long>(
                             tree_->num_live_leaves())));
  }
  return report;
}

}  // namespace listlab
}  // namespace ltree
