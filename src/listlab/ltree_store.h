// LabelStore implementations for the paper's two L-Tree variants, so the
// docstore, benches and tests can drive every scheme with the same op
// stream and no leaked core types.

#ifndef LTREE_LISTLAB_LTREE_STORE_H_
#define LTREE_LISTLAB_LTREE_STORE_H_

#include <memory>

#include "core/ltree.h"
#include "listlab/order_maintainer.h"
#include "virtual_ltree/virtual_ltree.h"

namespace ltree {
namespace listlab {

/// Materialized L-Tree behind the LabelStore interface. Handles map to leaf
/// nodes internally; erase tombstones (Section 2.3), optionally purged at
/// the next covering split when Params::purge_tombstones_on_split is set.
class LTreeStore : public LabelStore, private RelabelListener {
 public:
  static Result<std::unique_ptr<LTreeStore>> Make(const Params& params);

  std::string name() const override;
  EraseSemantics erase_semantics() const override {
    return tree_->params().purge_tombstones_on_split
               ? EraseSemantics::kTombstonePurge
               : EraseSemantics::kTombstone;
  }
  using LabelStore::BulkLoad;
  Status BulkLoad(std::span<const LeafCookie> cookies,
                  std::vector<ItemHandle>* handles) override;
  Result<ItemHandle> InsertAfter(ItemHandle pos, LeafCookie cookie) override;
  Result<ItemHandle> InsertBefore(ItemHandle pos, LeafCookie cookie) override;
  Result<ItemHandle> PushBack(LeafCookie cookie) override;
  Result<ItemHandle> PushFront(LeafCookie cookie) override;
  Status InsertBatchAfter(ItemHandle pos, std::span<const LeafCookie> cookies,
                          std::vector<ItemHandle>* handles) override;
  Status InsertBatchBefore(ItemHandle pos, std::span<const LeafCookie> cookies,
                           std::vector<ItemHandle>* handles) override;
  Status PushBackBatch(std::span<const LeafCookie> cookies,
                       std::vector<ItemHandle>* handles) override;
  Status Erase(ItemHandle h) override;
  Result<Label> GetLabel(ItemHandle h) const override;
  Result<LeafCookie> GetCookie(ItemHandle h) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  uint64_t ApproxHeapBytes() const override {
    return tree_->ApproxHeapBytes() +
           leaves_.capacity() * sizeof(LTree::LeafHandle) +
           erased_.capacity() / 8;
  }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;

  /// Deep validator: audits the wrapped L-Tree (audit::AuditLTree), then
  /// the handle map — every non-erased handle must resolve to a distinct
  /// live leaf and every live leaf must be reachable through exactly one
  /// handle; without purging, erased handles must point at tombstones.
  audit::Report Validate() const override;

  /// The wrapped tree (read-only; for L-Tree-specific stats in benches).
  const LTree& tree() const { return *tree_; }

 private:
  explicit LTreeStore(std::unique_ptr<LTree> tree);
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;
  Result<LTree::LeafHandle> LiveHandle(ItemHandle h) const;
  ItemHandle Register(LTree::LeafHandle handle,
                      std::vector<ItemHandle>* handles);

  std::unique_ptr<LTree> tree_;
  std::vector<LTree::LeafHandle> leaves_;  // handle -> leaf node
  /// Erased flags, tracked here because a purge may free the leaf node a
  /// stale handle points at — leaves_[h] must never be dereferenced once
  /// erased_[h] is set.
  std::vector<bool> erased_;
  mutable MaintStats stats_;
};

/// Virtual L-Tree behind the LabelStore interface: no stable positions
/// exist inside the tree (only labels), so the store keeps the
/// handle <-> current-label map over the counted B+-tree, maintained
/// through the tree's RelabelListener.
class VirtualLTreeStore : public LabelStore, private RelabelListener {
 public:
  static Result<std::unique_ptr<VirtualLTreeStore>> Make(const Params& params);

  std::string name() const override;
  EraseSemantics erase_semantics() const override {
    return tree_->params().purge_tombstones_on_split
               ? EraseSemantics::kTombstonePurge
               : EraseSemantics::kTombstone;
  }
  using LabelStore::BulkLoad;
  Status BulkLoad(std::span<const LeafCookie> cookies,
                  std::vector<ItemHandle>* handles) override;
  Result<ItemHandle> InsertAfter(ItemHandle pos, LeafCookie cookie) override;
  Result<ItemHandle> InsertBefore(ItemHandle pos, LeafCookie cookie) override;
  Result<ItemHandle> PushBack(LeafCookie cookie) override;
  Result<ItemHandle> PushFront(LeafCookie cookie) override;
  Status InsertBatchAfter(ItemHandle pos, std::span<const LeafCookie> cookies,
                          std::vector<ItemHandle>* handles) override;
  Status InsertBatchBefore(ItemHandle pos, std::span<const LeafCookie> cookies,
                           std::vector<ItemHandle>* handles) override;
  Status PushBackBatch(std::span<const LeafCookie> cookies,
                       std::vector<ItemHandle>* handles) override;
  Status Erase(ItemHandle h) override;
  Result<Label> GetLabel(ItemHandle h) const override;
  Result<LeafCookie> GetCookie(ItemHandle h) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  uint64_t ApproxHeapBytes() const override {
    return tree_->ApproxMemoryBytes() + label_of_.capacity() * sizeof(Label) +
           cookie_of_.capacity() * sizeof(LeafCookie) + erased_.capacity() / 8;
  }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;

  /// Deep validator: audits the wrapped virtual tree (and its backing
  /// counted B+-tree), then the cookie <-> label bijection — every
  /// non-erased handle's label must exist in the B+-tree, map back to that
  /// handle, and be live; handle and tree live counts must agree.
  audit::Report Validate() const override;

  const VirtualLTree& tree() const { return *tree_; }

 private:
  explicit VirtualLTreeStore(std::unique_ptr<VirtualLTree> tree);
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;
  Result<Label> CurrentLabel(ItemHandle h) const;
  /// Reserves slots for k fresh items; returns the first new handle.
  ItemHandle Reserve(std::span<const LeafCookie> cookies);
  void Unreserve(uint64_t k);
  /// Shared reserve -> run tree op (fed the reserved handles as tree
  /// cookies) -> record labels / roll back plumbing behind every insert.
  template <typename Op>
  Status RunBatch(std::span<const LeafCookie> cookies,
                  std::vector<ItemHandle>* handles, Op&& op);
  template <typename Op>
  Result<ItemHandle> RunSingle(LeafCookie cookie, Op&& op);

  std::unique_ptr<VirtualLTree> tree_;
  std::vector<Label> label_of_;       // handle -> current label
  std::vector<LeafCookie> cookie_of_; // handle -> client payload
  std::vector<bool> erased_;
  mutable MaintStats stats_;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_LTREE_STORE_H_
