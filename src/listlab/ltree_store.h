// LabelStore implementations for the paper's two L-Tree variants, so the
// docstore, benches and tests can drive every scheme with the same op
// stream and no leaked core types.
//
// Both stores implement the lock-free side of the LabelStore concurrency
// contract (concurrency_mode() == kLockFreeReads): per-handle state lives
// in a ConcurrentSlotTable whose slots are plain atomics, leaf labels and
// cookies are AtomicCells inside epoch-protected nodes, and each store owns
// the epoch::EpochManager its tree retires freed nodes through. Readers
// holding a ReadGuard therefore never block, and never observe a recycled
// node mid-read.

#ifndef LTREE_LISTLAB_LTREE_STORE_H_
#define LTREE_LISTLAB_LTREE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/atomic_cell.h"
#include "core/epoch.h"
#include "core/ltree.h"
#include "core/slot_table.h"
#include "listlab/order_maintainer.h"
#include "virtual_ltree/virtual_ltree.h"

namespace ltree {
namespace listlab {

/// Materialized L-Tree behind the LabelStore interface. Handles map to leaf
/// nodes internally; erase tombstones (Section 2.3), optionally purged at
/// the next covering split when Params::purge_tombstones_on_split is set.
class LTreeStore : public LabelStore, private RelabelListener {
 public:
  static Result<std::unique_ptr<LTreeStore>> Make(const Params& params);
  ~LTreeStore() override;

  std::string name() const override;
  EraseSemantics erase_semantics() const override {
    return tree_->params().purge_tombstones_on_split
               ? EraseSemantics::kTombstonePurge
               : EraseSemantics::kTombstone;
  }
  ConcurrencyMode concurrency_mode() const override {
    return ConcurrencyMode::kLockFreeReads;
  }
  Result<Label> GetLabel(ItemHandle h) const override;
  Result<LeafCookie> GetCookie(ItemHandle h) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  uint64_t ApproxHeapBytes() const override {
    return tree_->ApproxHeapBytes() + slots_.ApproxHeapBytes();
  }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;

  /// Deep validator: audits the wrapped L-Tree (audit::AuditLTree) with its
  /// epoch manager (arena conservation counts epoch-pending nodes; the
  /// `epoch-reclamation` rule proves no retired leaf is still reachable),
  /// then the handle map — every non-erased handle must resolve to a
  /// distinct live leaf and every live leaf must be reachable through
  /// exactly one handle; without purging, erased handles must point at
  /// tombstones.
  audit::Report Validate() const override;

  /// The wrapped tree (read-only; for L-Tree-specific stats in benches).
  const LTree& tree() const { return *tree_; }

 protected:
  Status BulkLoadImpl(std::span<const LeafCookie> cookies,
                      std::vector<ItemHandle>* handles) override;
  Result<ItemHandle> InsertAfterImpl(ItemHandle pos,
                                     LeafCookie cookie) override;
  Result<ItemHandle> InsertBeforeImpl(ItemHandle pos,
                                      LeafCookie cookie) override;
  Result<ItemHandle> PushBackImpl(LeafCookie cookie) override;
  Result<ItemHandle> PushFrontImpl(LeafCookie cookie) override;
  Status InsertBatchAfterImpl(ItemHandle pos,
                              std::span<const LeafCookie> cookies,
                              std::vector<ItemHandle>* handles) override;
  Status InsertBatchBeforeImpl(ItemHandle pos,
                               std::span<const LeafCookie> cookies,
                               std::vector<ItemHandle>* handles) override;
  Status PushBackBatchImpl(std::span<const LeafCookie> cookies,
                           std::vector<ItemHandle>* handles) override;
  Status EraseImpl(ItemHandle h) override;
  // GetLabel/GetCookie read only the atomic slot table and atomic leaf
  // fields, so the LabelOfRead/CookieOfRead defaults are already lock-free
  // safe for this store.
  void SnapshotImpl(
      std::vector<std::pair<Label, LeafCookie>>* out) const override;
  epoch::EpochManager* epoch_manager() const override { return &epoch_; }

 private:
  explicit LTreeStore(std::unique_ptr<LTree> tree);
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;
  Result<LTree::LeafHandle> LiveHandle(ItemHandle h) const;
  ItemHandle Register(LTree::LeafHandle handle,
                      std::vector<ItemHandle>* handles);

  /// Low bit of a slot word. Leaf nodes are PoolArena::kSlotAlign (64)
  /// byte aligned, so the pointer's low bit is free for the erased flag;
  /// one atomic word keeps pointer and flag consistent for readers. An
  /// erased slot's pointer must never be dereferenced — a purge may have
  /// freed the leaf it names.
  static constexpr uintptr_t kErasedBit = 1;

  std::unique_ptr<LTree> tree_;
  /// handle -> tagged leaf pointer (see kErasedBit).
  ConcurrentSlotTable<std::atomic<uintptr_t>> slots_;
  /// Reclamation domain for leaves purged by tree_ (mutable: handed out
  /// from the const epoch_manager() accessor; Pin/Unpin are thread-safe).
  mutable epoch::EpochManager epoch_;
  mutable MaintStats stats_;
};

/// Virtual L-Tree behind the LabelStore interface: no stable positions
/// exist inside the tree (only labels), so the store keeps the
/// handle <-> current-label map over the counted B+-tree, maintained
/// through the tree's RelabelListener.
class VirtualLTreeStore : public LabelStore, private RelabelListener {
 public:
  static Result<std::unique_ptr<VirtualLTreeStore>> Make(const Params& params);
  ~VirtualLTreeStore() override;

  std::string name() const override;
  EraseSemantics erase_semantics() const override {
    return tree_->params().purge_tombstones_on_split
               ? EraseSemantics::kTombstonePurge
               : EraseSemantics::kTombstone;
  }
  ConcurrencyMode concurrency_mode() const override {
    return ConcurrencyMode::kLockFreeReads;
  }
  Result<Label> GetLabel(ItemHandle h) const override;
  Result<LeafCookie> GetCookie(ItemHandle h) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  uint64_t ApproxHeapBytes() const override {
    return tree_->ApproxMemoryBytes() + slots_.ApproxHeapBytes();
  }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;

  /// Deep validator: audits the wrapped virtual tree (and its backing
  /// counted B+-tree, whose arena conservation and `epoch-reclamation`
  /// rules account for epoch-pending nodes), then the cookie <-> label
  /// bijection — every non-erased handle's label must exist in the
  /// B+-tree, map back to that handle, and be live; handle and tree live
  /// counts must agree.
  audit::Report Validate() const override;

  const VirtualLTree& tree() const { return *tree_; }

 protected:
  Status BulkLoadImpl(std::span<const LeafCookie> cookies,
                      std::vector<ItemHandle>* handles) override;
  Result<ItemHandle> InsertAfterImpl(ItemHandle pos,
                                     LeafCookie cookie) override;
  Result<ItemHandle> InsertBeforeImpl(ItemHandle pos,
                                      LeafCookie cookie) override;
  Result<ItemHandle> PushBackImpl(LeafCookie cookie) override;
  Result<ItemHandle> PushFrontImpl(LeafCookie cookie) override;
  Status InsertBatchAfterImpl(ItemHandle pos,
                              std::span<const LeafCookie> cookies,
                              std::vector<ItemHandle>* handles) override;
  Status InsertBatchBeforeImpl(ItemHandle pos,
                               std::span<const LeafCookie> cookies,
                               std::vector<ItemHandle>* handles) override;
  Status PushBackBatchImpl(std::span<const LeafCookie> cookies,
                           std::vector<ItemHandle>* handles) override;
  Status EraseImpl(ItemHandle h) override;
  void SnapshotImpl(
      std::vector<std::pair<Label, LeafCookie>>* out) const override;
  epoch::EpochManager* epoch_manager() const override { return &epoch_; }

 private:
  /// Per-handle state, one published slot per handle ever issued. All
  /// fields are atomic so guarded readers can load them lock-free; the
  /// writer keeps label current through OnRelabel.
  struct VSlot {
    AtomicCell<Label> label;
    AtomicCell<LeafCookie> cookie;
    std::atomic<bool> erased{false};
  };

  explicit VirtualLTreeStore(std::unique_ptr<VirtualLTree> tree);
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;
  Result<Label> CurrentLabel(ItemHandle h) const;
  /// Reserves unpublished slots for k fresh items; returns the first new
  /// handle. Published by the Run* helpers only after the labels landed.
  ItemHandle Reserve(std::span<const LeafCookie> cookies);
  void Unreserve(uint64_t k);
  /// Shared reserve -> run tree op (fed the reserved handles as tree
  /// cookies) -> record labels / roll back plumbing behind every insert.
  template <typename Op>
  Status RunBatch(std::span<const LeafCookie> cookies,
                  std::vector<ItemHandle>* handles, Op&& op);
  template <typename Op>
  Result<ItemHandle> RunSingle(LeafCookie cookie, Op&& op);

  std::unique_ptr<VirtualLTree> tree_;
  ConcurrentSlotTable<VSlot> slots_;  // handle -> (label, cookie, erased)
  /// Reclamation domain for the backing B+-tree's freed nodes (mutable:
  /// handed out from the const epoch_manager() accessor).
  mutable epoch::EpochManager epoch_;
  mutable MaintStats stats_;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_LTREE_STORE_H_
