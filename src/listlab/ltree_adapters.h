// OrderMaintainer adapters for the paper's two L-Tree variants, so the
// bench harness can drive every scheme with the same op stream.

#ifndef LTREE_LISTLAB_LTREE_ADAPTERS_H_
#define LTREE_LISTLAB_LTREE_ADAPTERS_H_

#include <memory>

#include "core/ltree.h"
#include "listlab/order_maintainer.h"
#include "virtual_ltree/virtual_ltree.h"

namespace ltree {
namespace listlab {

/// Materialized L-Tree behind the OrderMaintainer interface. ItemIds map to
/// leaf handles; relabels are counted via the tree's own statistics.
class LTreeMaintainer : public OrderMaintainer {
 public:
  static Result<std::unique_ptr<LTreeMaintainer>> Make(const Params& params);

  std::string name() const override;
  Status BulkLoad(uint64_t n, std::vector<ItemId>* ids) override;
  Result<ItemId> InsertAfter(ItemId pos) override;
  Result<ItemId> InsertBefore(ItemId pos) override;
  Result<ItemId> PushBack() override;
  Result<ItemId> PushFront() override;
  Status Erase(ItemId id) override;
  Result<Label> GetLabel(ItemId id) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;
  Status CheckInvariants() const override { return tree_->CheckInvariants(); }

  /// The wrapped tree (for L-Tree-specific stats in benches).
  LTree* tree() { return tree_.get(); }

 private:
  explicit LTreeMaintainer(std::unique_ptr<LTree> tree);
  Result<LTree::LeafHandle> Handle(ItemId id) const;
  ItemId Register(LTree::LeafHandle handle);

  std::unique_ptr<LTree> tree_;
  std::vector<LTree::LeafHandle> handles_;  // id -> handle
  mutable MaintStats stats_;
};

/// Virtual L-Tree behind the OrderMaintainer interface. Labels move, so the
/// adapter tracks id -> label through the tree's RelabelListener.
class VirtualLTreeMaintainer : public OrderMaintainer, private RelabelListener {
 public:
  static Result<std::unique_ptr<VirtualLTreeMaintainer>> Make(
      const Params& params);

  std::string name() const override;
  Status BulkLoad(uint64_t n, std::vector<ItemId>* ids) override;
  Result<ItemId> InsertAfter(ItemId pos) override;
  Result<ItemId> InsertBefore(ItemId pos) override;
  Result<ItemId> PushBack() override;
  Result<ItemId> PushFront() override;
  Status Erase(ItemId id) override;
  Result<Label> GetLabel(ItemId id) const override;
  uint64_t size() const override { return tree_->num_live_leaves(); }
  uint32_t label_bits() const override { return tree_->label_bits(); }
  std::vector<Label> Labels() const override { return tree_->LiveLabels(); }
  const MaintStats& stats() const override;
  void ResetStats() override;
  Status CheckInvariants() const override { return tree_->CheckInvariants(); }

  VirtualLTree* tree() { return tree_.get(); }

 private:
  explicit VirtualLTreeMaintainer(std::unique_ptr<VirtualLTree> tree);
  void OnRelabel(LeafCookie cookie, Label old_label, Label new_label) override;
  Result<Label> CurrentLabel(ItemId id) const;

  std::unique_ptr<VirtualLTree> tree_;
  std::vector<Label> label_of_id_;   // id -> current label
  std::vector<bool> erased_;
  mutable MaintStats stats_;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_LTREE_ADAPTERS_H_
