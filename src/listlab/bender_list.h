// BenderList: density-scaled order maintenance in the spirit of the
// ordered-list labeling literature the paper builds on ([8] Dietz, [9]
// Dietz & Sleator, [16] Tsakalidis; the aligned-window formulation follows
// Bender et al.'s simplified tag-range relabeling).
//
// Labels live in [0, 2^u). An insertion takes the midpoint of its gap; when
// the gap is empty, the smallest enclosing *aligned* label window whose
// density is below a depth-scaled threshold is evenly redistributed. The
// threshold interpolates from ~1 at single labels to `root_density` at the
// whole universe, giving O(log^2 n) amortized relabels with O(log n)-bit
// labels — the strongest classical baseline for the paper's E5 comparison.

#ifndef LTREE_LISTLAB_BENDER_LIST_H_
#define LTREE_LISTLAB_BENDER_LIST_H_

#include "listlab/linked_list_base.h"

namespace ltree {
namespace listlab {

/// Tuning knobs for BenderList.
struct BenderOptions {
  /// Initial universe bits; the universe doubles when it gets too dense.
  uint32_t initial_bits = 16;
  /// Density allowed at the root window; leaves allow ~1.0.
  double root_density = 0.5;
};

class BenderList : public LinkedListScheme {
 public:
  using Options = BenderOptions;

  explicit BenderList(Options options = Options());

  std::string name() const override;

  uint32_t universe_bits() const { return bits_; }

 protected:
  Status AssignInitialLabels(uint64_t n) override;
  Status PlaceItem(ListItem* item) override;
  uint64_t LabelUniverse() const override { return uint64_t{1} << bits_; }

 private:
  /// Density threshold for a window of 2^k labels.
  double ThresholdFor(uint32_t k) const;

  /// Spreads `count` items starting at `first` evenly over
  /// [base, base + width); counts label changes (excluding `fresh`).
  void Redistribute(ListItem* first, uint64_t count, Label base,
                    uint64_t width, const ListItem* fresh);

  /// Grows the universe and renumbers everything evenly.
  Status GrowUniverse(const ListItem* fresh);

  Options options_;
  uint32_t bits_;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_BENDER_LIST_H_
