#include "listlab/gap_list.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

GapList::GapList(uint64_t gap) : gap_(gap) { LTREE_CHECK(gap_ >= 2); }

std::string GapList::name() const {
  return StrFormat("gap(G=%llu)", static_cast<unsigned long long>(gap_));
}

Status GapList::AssignInitialLabels(uint64_t n) {
  auto max_label = CheckedMul(n - 1, gap_);
  if (!max_label) {
    return Status::CapacityExceeded("gap labels overflow 64 bits");
  }
  uint64_t next = 0;
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    it->label = next;
    next += gap_;
  }
  universe_ = std::max<uint64_t>(universe_, *max_label + 1);
  return Status::OK();
}

Status GapList::RenumberAll(const ListItem* exclude) {
  if (live_ > 0) {
    auto max_label = CheckedMul(live_ - 1, gap_);
    if (!max_label) {
      return Status::CapacityExceeded("gap renumbering overflows 64 bits");
    }
    universe_ = std::max<uint64_t>(universe_, *max_label + 1);
  }
  uint64_t next = 0;
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    SetLabel(it, next, exclude);
    next += gap_;
  }
  ++stats_.rebalances;
  return Status::OK();
}

Status GapList::PlaceItem(ListItem* item) {
  const ListItem* prev = item->prev;
  const ListItem* next = item->next;
  if (next == nullptr) {
    // Append: extend with a fresh gap.
    const uint64_t base = prev == nullptr ? 0 : prev->label;
    auto label = prev == nullptr ? std::optional<uint64_t>(0)
                                 : CheckedAdd(base, gap_);
    if (!label) return Status::CapacityExceeded("append overflows 64 bits");
    item->label = *label;
    universe_ = std::max<uint64_t>(universe_, item->label + 1);
    return Status::OK();
  }
  if (prev == nullptr) {
    // Prepend into [0, next.label).
    if (next->label >= 1) {
      item->label = next->label / 2;
      return Status::OK();
    }
  } else if (next->label - prev->label >= 2) {
    item->label = prev->label + (next->label - prev->label) / 2;
    return Status::OK();
  }
  // Gap exhausted: renumber everything; the fresh item gets its slot as
  // part of the sweep and is excluded from the relabel count.
  return RenumberAll(item);
}

}  // namespace listlab
}  // namespace ltree
