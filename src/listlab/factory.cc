#include "listlab/factory.h"

#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"
#include "listlab/bender_list.h"
#include "listlab/gap_list.h"
#include "listlab/ltree_store.h"
#include "listlab/sequential_list.h"

namespace ltree {
namespace listlab {

Result<std::unique_ptr<LabelStore>> MakeLabelStore(const std::string& spec) {
  const auto parts = SplitString(spec, ':');
  const std::string_view kind = parts[0];
  if (kind == "sequential") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("usage: sequential");
    }
    return std::unique_ptr<LabelStore>(new SequentialList);
  }
  if (kind == "gap") {
    if (parts.size() != 2) {
      return Status::InvalidArgument("usage: gap:<G>");
    }
    const uint64_t g = std::strtoull(std::string(parts[1]).c_str(), nullptr, 10);
    if (g < 2) return Status::InvalidArgument("gap must be >= 2");
    return std::unique_ptr<LabelStore>(new GapList(g));
  }
  if (kind == "bender") {
    BenderList::Options opts;
    if (parts.size() == 2) {
      opts.root_density = std::strtod(std::string(parts[1]).c_str(), nullptr);
      if (opts.root_density <= 0.0 || opts.root_density > 1.0) {
        return Status::InvalidArgument("bender density must be in (0, 1]");
      }
    } else if (parts.size() > 2) {
      return Status::InvalidArgument("usage: bender[:<rho>]");
    }
    return std::unique_ptr<LabelStore>(new BenderList(opts));
  }
  if (kind == "ltree" || kind == "virtual") {
    if (parts.size() != 3 && parts.size() != 4) {
      return Status::InvalidArgument("usage: (ltree|virtual):<f>:<s>[:purge]");
    }
    Params params;
    params.f = static_cast<uint32_t>(
        std::strtoul(std::string(parts[1]).c_str(), nullptr, 10));
    params.s = static_cast<uint32_t>(
        std::strtoul(std::string(parts[2]).c_str(), nullptr, 10));
    if (parts.size() == 4) {
      if (parts[3] != "purge") {
        return Status::InvalidArgument(
            "usage: (ltree|virtual):<f>:<s>[:purge]");
      }
      params.purge_tombstones_on_split = true;
    }
    if (kind == "ltree") {
      LTREE_ASSIGN_OR_RETURN(auto m, LTreeStore::Make(params));
      return std::unique_ptr<LabelStore>(std::move(m));
    }
    LTREE_ASSIGN_OR_RETURN(auto m, VirtualLTreeStore::Make(params));
    return std::unique_ptr<LabelStore>(std::move(m));
  }
  return Status::InvalidArgument("unknown labeling scheme spec: " + spec);
}

Result<std::vector<std::unique_ptr<LabelStore>>> MakeLabelStores(
    const std::string& spec, size_t count) {
  if (count == 0) {
    return Status::InvalidArgument("sharded store needs at least one shard");
  }
  std::vector<std::unique_ptr<LabelStore>> stores;
  stores.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LTREE_ASSIGN_OR_RETURN(auto store, MakeLabelStore(spec));
    stores.push_back(std::move(store));
  }
  return stores;
}

}  // namespace listlab
}  // namespace ltree
