#include "listlab/ltree_adapters.h"

#include <numeric>

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

// ---------------------------------------------------------------------------
// Materialized adapter
// ---------------------------------------------------------------------------

LTreeMaintainer::LTreeMaintainer(std::unique_ptr<LTree> tree)
    : tree_(std::move(tree)) {}

Result<std::unique_ptr<LTreeMaintainer>> LTreeMaintainer::Make(
    const Params& params) {
  LTREE_ASSIGN_OR_RETURN(std::unique_ptr<LTree> tree, LTree::Create(params));
  return std::unique_ptr<LTreeMaintainer>(
      new LTreeMaintainer(std::move(tree)));
}

std::string LTreeMaintainer::name() const {
  return StrFormat("ltree(f=%u,s=%u)", tree_->params().f, tree_->params().s);
}

Result<LTree::LeafHandle> LTreeMaintainer::Handle(ItemId id) const {
  if (id >= handles_.size() || handles_[id] == nullptr ||
      tree_->deleted(handles_[id])) {
    return Status::NotFound("unknown or erased item id");
  }
  return handles_[id];
}

ItemId LTreeMaintainer::Register(LTree::LeafHandle handle) {
  handles_.push_back(handle);
  return handles_.size() - 1;
}

Status LTreeMaintainer::BulkLoad(uint64_t n, std::vector<ItemId>* ids) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), handles_.size());
  std::vector<LTree::LeafHandle> fresh;
  LTREE_RETURN_IF_ERROR(tree_->BulkLoad(cookies, &fresh));
  for (auto h : fresh) {
    const ItemId id = Register(h);
    if (ids != nullptr) ids->push_back(id);
  }
  return Status::OK();
}

Result<ItemId> LTreeMaintainer::InsertAfter(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, Handle(pos));
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->InsertAfter(where, handles_.size()));
  return Register(fresh);
}

Result<ItemId> LTreeMaintainer::InsertBefore(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, Handle(pos));
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->InsertBefore(where, handles_.size()));
  return Register(fresh);
}

Result<ItemId> LTreeMaintainer::PushBack() {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->PushBack(handles_.size()));
  return Register(fresh);
}

Result<ItemId> LTreeMaintainer::PushFront() {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle fresh,
                         tree_->PushFront(handles_.size()));
  return Register(fresh);
}

Status LTreeMaintainer::Erase(ItemId id) {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, Handle(id));
  return tree_->MarkDeleted(where);
}

Result<Label> LTreeMaintainer::GetLabel(ItemId id) const {
  LTREE_ASSIGN_OR_RETURN(LTree::LeafHandle where, Handle(id));
  return tree_->label(where);
}

const MaintStats& LTreeMaintainer::stats() const {
  const LTreeStats& ts = tree_->stats();
  stats_.inserts = ts.inserts + ts.batch_leaves;
  stats_.erases = ts.deletes;
  stats_.items_relabeled = ts.leaves_relabeled;
  stats_.rebalances = ts.splits + ts.root_splits;
  return stats_;
}

void LTreeMaintainer::ResetStats() {
  tree_->ResetStats();
  stats_ = MaintStats();
}

// ---------------------------------------------------------------------------
// Virtual adapter
// ---------------------------------------------------------------------------

VirtualLTreeMaintainer::VirtualLTreeMaintainer(
    std::unique_ptr<VirtualLTree> tree)
    : tree_(std::move(tree)) {
  tree_->set_listener(this);
}

Result<std::unique_ptr<VirtualLTreeMaintainer>> VirtualLTreeMaintainer::Make(
    const Params& params) {
  LTREE_ASSIGN_OR_RETURN(std::unique_ptr<VirtualLTree> tree,
                         VirtualLTree::Create(params));
  return std::unique_ptr<VirtualLTreeMaintainer>(
      new VirtualLTreeMaintainer(std::move(tree)));
}

std::string VirtualLTreeMaintainer::name() const {
  return StrFormat("virtual-ltree(f=%u,s=%u)", tree_->params().f,
                   tree_->params().s);
}

void VirtualLTreeMaintainer::OnRelabel(LeafCookie cookie, Label old_label,
                                       Label new_label) {
  (void)old_label;
  LTREE_CHECK(cookie < label_of_id_.size());
  label_of_id_[cookie] = new_label;
}

Result<Label> VirtualLTreeMaintainer::CurrentLabel(ItemId id) const {
  if (id >= label_of_id_.size() || erased_[id]) {
    return Status::NotFound("unknown or erased item id");
  }
  return label_of_id_[id];
}

Status VirtualLTreeMaintainer::BulkLoad(uint64_t n, std::vector<ItemId>* ids) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), label_of_id_.size());
  std::vector<Label> labels;
  LTREE_RETURN_IF_ERROR(tree_->BulkLoad(cookies, &labels));
  for (Label l : labels) {
    label_of_id_.push_back(l);
    erased_.push_back(false);
    if (ids != nullptr) ids->push_back(label_of_id_.size() - 1);
  }
  return Status::OK();
}

Result<ItemId> VirtualLTreeMaintainer::InsertAfter(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  const ItemId id = label_of_id_.size();
  label_of_id_.push_back(0);
  erased_.push_back(false);
  auto fresh = tree_->InsertAfter(where, id);
  if (!fresh.ok()) {
    label_of_id_.pop_back();
    erased_.pop_back();
    return fresh.status();
  }
  label_of_id_[id] = *fresh;
  return id;
}

Result<ItemId> VirtualLTreeMaintainer::InsertBefore(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(pos));
  const ItemId id = label_of_id_.size();
  label_of_id_.push_back(0);
  erased_.push_back(false);
  auto fresh = tree_->InsertBefore(where, id);
  if (!fresh.ok()) {
    label_of_id_.pop_back();
    erased_.pop_back();
    return fresh.status();
  }
  label_of_id_[id] = *fresh;
  return id;
}

Result<ItemId> VirtualLTreeMaintainer::PushBack() {
  const ItemId id = label_of_id_.size();
  label_of_id_.push_back(0);
  erased_.push_back(false);
  auto fresh = tree_->PushBack(id);
  if (!fresh.ok()) {
    label_of_id_.pop_back();
    erased_.pop_back();
    return fresh.status();
  }
  label_of_id_[id] = *fresh;
  return id;
}

Result<ItemId> VirtualLTreeMaintainer::PushFront() {
  const ItemId id = label_of_id_.size();
  label_of_id_.push_back(0);
  erased_.push_back(false);
  auto fresh = tree_->PushFront(id);
  if (!fresh.ok()) {
    label_of_id_.pop_back();
    erased_.pop_back();
    return fresh.status();
  }
  label_of_id_[id] = *fresh;
  return id;
}

Status VirtualLTreeMaintainer::Erase(ItemId id) {
  LTREE_ASSIGN_OR_RETURN(Label where, CurrentLabel(id));
  LTREE_RETURN_IF_ERROR(tree_->MarkDeleted(where));
  erased_[id] = true;
  return Status::OK();
}

Result<Label> VirtualLTreeMaintainer::GetLabel(ItemId id) const {
  return CurrentLabel(id);
}

const MaintStats& VirtualLTreeMaintainer::stats() const {
  const VirtualLTreeStats& ts = tree_->stats();
  stats_.inserts = ts.inserts + ts.batch_leaves;
  stats_.erases = ts.deletes;
  stats_.items_relabeled = ts.labels_rewritten;
  stats_.rebalances = ts.splits + ts.root_splits;
  return stats_;
}

void VirtualLTreeMaintainer::ResetStats() {
  tree_->ResetStats();
  stats_ = MaintStats();
}

}  // namespace listlab
}  // namespace ltree
