// GapList: fixed-gap labeling ("leave gaps in between successive labels to
// reduce the number of relabelings upon updates", Section 1).
//
// Items are loaded with labels 0, G, 2G, ...; an insertion takes the
// midpoint of the surrounding gap. When a gap is exhausted the entire list
// is renumbered with gap G again (n relabels) — the classic trade-off the
// paper criticizes: either G is large (many bits per label) or renumbering
// is frequent.

#ifndef LTREE_LISTLAB_GAP_LIST_H_
#define LTREE_LISTLAB_GAP_LIST_H_

#include "listlab/linked_list_base.h"

namespace ltree {
namespace listlab {

class GapList : public LinkedListScheme {
 public:
  /// `gap` must be >= 2.
  explicit GapList(uint64_t gap);

  std::string name() const override;

 protected:
  Status AssignInitialLabels(uint64_t n) override;
  Status PlaceItem(ListItem* item) override;
  uint64_t LabelUniverse() const override { return universe_; }

 private:
  /// Renumbers all live items with gap `gap_`; fails on 64-bit overflow.
  /// `exclude` (may be null) is not counted as a relabel (fresh item).
  Status RenumberAll(const ListItem* exclude);

  uint64_t gap_;
  uint64_t universe_ = 1;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_GAP_LIST_H_
