// Construction of labeling schemes (LabelStores) by spec string, for the
// docstore, benches and parameterized tests.

#ifndef LTREE_LISTLAB_FACTORY_H_
#define LTREE_LISTLAB_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "listlab/order_maintainer.h"

namespace ltree {
namespace listlab {

/// Spec grammar:
///   "sequential"               Section 1 strawman (consecutive integers)
///   "gap:<G>"                  fixed gaps of G, e.g. "gap:64"
///   "bender"                   density-scaled baseline (root density 0.5)
///   "bender:<rho>"             e.g. "bender:0.75", rho in (0, 1]
///   "ltree:<f>:<s>"            materialized L-Tree, e.g. "ltree:16:4"
///   "ltree:<f>:<s>:purge"      ... purging tombstones at covering splits
///   "virtual:<f>:<s>"          virtual L-Tree over the counted B+-tree
///   "virtual:<f>:<s>:purge"    ... with tombstone purging
/// Constraints: s >= 2, s | f, f/s >= 2 (core/params.h).
Result<std::unique_ptr<LabelStore>> MakeLabelStore(const std::string& spec);

/// Builds `count` independent stores of the same spec — one per shard of a
/// sharded store (each with its own arena and MaintStats). The spec is
/// validated once; count must be >= 1.
Result<std::vector<std::unique_ptr<LabelStore>>> MakeLabelStores(
    const std::string& spec, size_t count);

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_FACTORY_H_
