// Construction of order-maintenance schemes by name, for benches and
// parameterized tests.

#ifndef LTREE_LISTLAB_FACTORY_H_
#define LTREE_LISTLAB_FACTORY_H_

#include <memory>
#include <string>

#include "listlab/order_maintainer.h"

namespace ltree {
namespace listlab {

/// Spec grammar:
///   "sequential"
///   "gap:<G>"              e.g. "gap:64"
///   "bender"               (root density 0.5)
///   "bender:<rho>"         e.g. "bender:0.75"
///   "ltree:<f>:<s>"        e.g. "ltree:16:4"
///   "virtual:<f>:<s>"      e.g. "virtual:16:4"
Result<std::unique_ptr<OrderMaintainer>> MakeMaintainer(
    const std::string& spec);

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_FACTORY_H_
