#include "listlab/linked_list_base.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

std::string MaintStats::ToString() const {
  return StrFormat(
      "MaintStats{inserts=%llu erases=%llu relabeled=%llu rebalances=%llu "
      "relabels/insert=%.3f}",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(erases),
      static_cast<unsigned long long>(items_relabeled),
      static_cast<unsigned long long>(rebalances), RelabelsPerInsert());
}

LinkedListScheme::~LinkedListScheme() {
  for (ListItem* item : items_) delete item;
}

Result<ListItem*> LinkedListScheme::FindLive(ItemId id) const {
  if (id >= items_.size() || items_[id] == nullptr || items_[id]->erased) {
    return Status::NotFound("unknown or erased item id");
  }
  return items_[id];
}

ListItem* LinkedListScheme::AllocItem() {
  ListItem* item = new ListItem;
  item->id = items_.size();
  items_.push_back(item);
  return item;
}

void LinkedListScheme::LinkAfter(ListItem* where, ListItem* item) {
  if (where == nullptr) {
    item->prev = nullptr;
    item->next = head_;
    if (head_ != nullptr) head_->prev = item;
    head_ = item;
    if (tail_ == nullptr) tail_ = item;
  } else {
    item->prev = where;
    item->next = where->next;
    if (where->next != nullptr) where->next->prev = item;
    where->next = item;
    if (tail_ == where) tail_ = item;
  }
  ++live_;
}

void LinkedListScheme::Unlink(ListItem* item) {
  if (item->prev != nullptr) item->prev->next = item->next;
  if (item->next != nullptr) item->next->prev = item->prev;
  if (head_ == item) head_ = item->next;
  if (tail_ == item) tail_ = item->prev;
  item->prev = item->next = nullptr;
  --live_;
}

Status LinkedListScheme::BulkLoad(uint64_t n, std::vector<ItemId>* ids) {
  if (live_ != 0 || !items_.empty()) {
    return Status::FailedPrecondition("BulkLoad requires an empty list");
  }
  ListItem* prev = nullptr;
  for (uint64_t i = 0; i < n; ++i) {
    ListItem* item = AllocItem();
    LinkAfter(prev, item);
    prev = item;
    if (ids != nullptr) ids->push_back(item->id);
  }
  if (n > 0) {
    LTREE_RETURN_IF_ERROR(AssignInitialLabels(n));
  }
  return Status::OK();
}

Result<ItemId> LinkedListScheme::InsertAfter(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(ListItem * where, FindLive(pos));
  ListItem* item = AllocItem();
  LinkAfter(where, item);
  Status st = PlaceItem(item);
  if (!st.ok()) {
    Unlink(item);
    items_[item->id] = nullptr;
    delete item;
    return st;
  }
  ++stats_.inserts;
  return item->id;
}

Result<ItemId> LinkedListScheme::InsertBefore(ItemId pos) {
  LTREE_ASSIGN_OR_RETURN(ListItem * where, FindLive(pos));
  ListItem* item = AllocItem();
  LinkAfter(where->prev, item);
  Status st = PlaceItem(item);
  if (!st.ok()) {
    Unlink(item);
    items_[item->id] = nullptr;
    delete item;
    return st;
  }
  ++stats_.inserts;
  return item->id;
}

Result<ItemId> LinkedListScheme::PushBack() {
  ListItem* item = AllocItem();
  LinkAfter(tail_, item);
  Status st = PlaceItem(item);
  if (!st.ok()) {
    Unlink(item);
    items_[item->id] = nullptr;
    delete item;
    return st;
  }
  ++stats_.inserts;
  return item->id;
}

Result<ItemId> LinkedListScheme::PushFront() {
  ListItem* item = AllocItem();
  LinkAfter(nullptr, item);
  Status st = PlaceItem(item);
  if (!st.ok()) {
    Unlink(item);
    items_[item->id] = nullptr;
    delete item;
    return st;
  }
  ++stats_.inserts;
  return item->id;
}

Status LinkedListScheme::Erase(ItemId id) {
  LTREE_ASSIGN_OR_RETURN(ListItem * item, FindLive(id));
  Unlink(item);
  item->erased = true;
  ++stats_.erases;
  return Status::OK();
}

Result<Label> LinkedListScheme::GetLabel(ItemId id) const {
  LTREE_ASSIGN_OR_RETURN(ListItem * item, FindLive(id));
  return item->label;
}

uint32_t LinkedListScheme::label_bits() const {
  const uint64_t universe = LabelUniverse();
  return universe <= 1 ? 1 : BitWidth(universe - 1);
}

std::vector<Label> LinkedListScheme::Labels() const {
  std::vector<Label> out;
  out.reserve(live_);
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    out.push_back(it->label);
  }
  return out;
}

Status LinkedListScheme::CheckInvariants() const {
  uint64_t count = 0;
  const ListItem* prev = nullptr;
  for (const ListItem* it = head_; it != nullptr; it = it->next) {
    if (it->erased) return Status::Corruption("erased item still linked");
    if (it->prev != prev) return Status::Corruption("broken prev link");
    if (prev != nullptr && prev->label >= it->label) {
      return Status::Corruption(StrFormat(
          "labels not strictly increasing: %llu then %llu",
          static_cast<unsigned long long>(prev->label),
          static_cast<unsigned long long>(it->label)));
    }
    if (it->label >= LabelUniverse()) {
      return Status::Corruption("label outside universe");
    }
    prev = it;
    ++count;
  }
  if (prev != tail_) return Status::Corruption("tail mismatch");
  if (count != live_) return Status::Corruption("live count mismatch");
  return Status::OK();
}

}  // namespace listlab
}  // namespace ltree
