#include "listlab/linked_list_base.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

LinkedListScheme::~LinkedListScheme() {
  for (ListItem* item : items_) delete item;
}

Result<ListItem*> LinkedListScheme::FindLive(ItemHandle h) const {
  if (h >= items_.size() || items_[h] == nullptr) {
    return Status::NotFound("unknown item handle");
  }
  if (items_[h]->erased) {
    return Status::NotFound("item handle already erased");
  }
  return items_[h];
}

ListItem* LinkedListScheme::AllocItem(LeafCookie cookie) {
  ListItem* item = new ListItem;
  item->handle = items_.size();
  item->cookie = cookie;
  items_.push_back(item);
  return item;
}

void LinkedListScheme::LinkAfter(ListItem* where, ListItem* item) {
  if (where == nullptr) {
    item->prev = nullptr;
    item->next = head_;
    if (head_ != nullptr) head_->prev = item;
    head_ = item;
    if (tail_ == nullptr) tail_ = item;
  } else {
    item->prev = where;
    item->next = where->next;
    if (where->next != nullptr) where->next->prev = item;
    where->next = item;
    if (tail_ == where) tail_ = item;
  }
  ++live_;
}

void LinkedListScheme::Unlink(ListItem* item) {
  if (item->prev != nullptr) item->prev->next = item->next;
  if (item->next != nullptr) item->next->prev = item->prev;
  if (head_ == item) head_ = item->next;
  if (tail_ == item) tail_ = item->prev;
  item->prev = item->next = nullptr;
  --live_;
}

void LinkedListScheme::SetLabel(ListItem* item, Label label,
                                const ListItem* fresh) {
  if (item->label == label) return;
  const Label old = item->label;
  item->label = label;
  if (item == fresh) return;
  ++stats_.items_relabeled;
  if (listener_ != nullptr) listener_->OnRelabel(item->cookie, old, label);
}

Status LinkedListScheme::BulkLoadImpl(std::span<const LeafCookie> cookies,
                                  std::vector<ItemHandle>* handles) {
  if (live_ != 0 || !items_.empty()) {
    return Status::FailedPrecondition("BulkLoad requires an empty list");
  }
  ListItem* prev = nullptr;
  for (const LeafCookie cookie : cookies) {
    ListItem* item = AllocItem(cookie);
    LinkAfter(prev, item);
    prev = item;
    if (handles != nullptr) handles->push_back(item->handle);
  }
  if (!cookies.empty()) {
    LTREE_RETURN_IF_ERROR(AssignInitialLabels(cookies.size()));
  }
  AutoValidate("BulkLoad");
  return Status::OK();
}

Result<ItemHandle> LinkedListScheme::InsertLinked(ListItem* where,
                                                  LeafCookie cookie) {
  ListItem* item = AllocItem(cookie);
  LinkAfter(where, item);
  Status st = PlaceItem(item);
  if (!st.ok()) {
    Unlink(item);
    items_[item->handle] = nullptr;
    delete item;
    return st;
  }
  ++stats_.inserts;
  AutoValidate("Insert");
  return item->handle;
}

Result<ItemHandle> LinkedListScheme::InsertAfterImpl(ItemHandle pos,
                                                 LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(ListItem * where, FindLive(pos));
  return InsertLinked(where, cookie);
}

Result<ItemHandle> LinkedListScheme::InsertBeforeImpl(ItemHandle pos,
                                                  LeafCookie cookie) {
  LTREE_ASSIGN_OR_RETURN(ListItem * where, FindLive(pos));
  return InsertLinked(where->prev, cookie);
}

Result<ItemHandle> LinkedListScheme::PushBackImpl(LeafCookie cookie) {
  return InsertLinked(tail_, cookie);
}

Result<ItemHandle> LinkedListScheme::PushFrontImpl(LeafCookie cookie) {
  return InsertLinked(nullptr, cookie);
}

Status LinkedListScheme::EraseImpl(ItemHandle h) {
  if (h >= items_.size() || items_[h] == nullptr) {
    return Status::NotFound("unknown item handle");
  }
  ListItem* item = items_[h];
  if (item->erased) {
    return Status::FailedPrecondition("item handle already erased");
  }
  Unlink(item);
  item->erased = true;
  ++stats_.erases;
  if (listener_ != nullptr) listener_->OnErase(item->cookie, item->label);
  AutoValidate("Erase");
  return Status::OK();
}

Result<Label> LinkedListScheme::GetLabel(ItemHandle h) const {
  LTREE_ASSIGN_OR_RETURN(ListItem * item, FindLive(h));
  return item->label;
}

Result<LeafCookie> LinkedListScheme::GetCookie(ItemHandle h) const {
  LTREE_ASSIGN_OR_RETURN(ListItem * item, FindLive(h));
  return item->cookie;
}

void LinkedListScheme::SnapshotImpl(
    std::vector<std::pair<Label, LeafCookie>>* out) const {
  out->reserve(out->size() + live_);
  for (const ListItem* it = head_; it != nullptr; it = it->next) {
    out->emplace_back(it->label, it->cookie);
  }
}

uint32_t LinkedListScheme::label_bits() const {
  const uint64_t universe = LabelUniverse();
  return universe <= 1 ? 1 : BitWidth(universe - 1);
}

std::vector<Label> LinkedListScheme::Labels() const {
  std::vector<Label> out;
  out.reserve(live_);
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    out.push_back(it->label);
  }
  return out;
}

audit::Report LinkedListScheme::Validate() const {
  audit::Report report;
  uint64_t count = 0;
  const ListItem* prev = nullptr;
  for (const ListItem* it = head_; it != nullptr; it = it->next) {
    const std::string path = "list:/" + std::to_string(count);
    if (it->erased) {
      report.Add(path, "erased-linked", "erased item still linked");
    }
    if (it->prev != prev) {
      report.Add(path, "link-symmetry",
                 "prev does not point at the previous linked item");
    }
    if (prev != nullptr && prev->label >= it->label) {
      report.Add(path, "label-order",
                 StrFormat("label %llu not above predecessor %llu",
                           static_cast<unsigned long long>(it->label),
                           static_cast<unsigned long long>(prev->label)));
    }
    if (it->label >= LabelUniverse()) {
      report.Add(path, "label-universe",
                 StrFormat("label %llu outside universe %llu",
                           static_cast<unsigned long long>(it->label),
                           static_cast<unsigned long long>(
                               LabelUniverse())));
    }
    // Handle-table consistency: a linked item must be registered in the
    // handle table under its own handle.
    if (it->handle >= items_.size() || items_[it->handle] != it) {
      report.Add(path, "handle-map",
                 StrFormat("linked item's handle %llu does not resolve "
                           "back to it",
                           static_cast<unsigned long long>(it->handle)));
    }
    prev = it;
    ++count;
    if (count > items_.size()) {
      report.Add(path, "link-symmetry", "next links form a cycle");
      break;
    }
  }
  if (prev != tail_) {
    report.Add("list:/", "link-symmetry",
               "tail does not point at the final linked item");
  }
  if (count != live_) {
    report.Add("list:/", "live-count",
               StrFormat("live counter %llu != %llu linked items",
                         static_cast<unsigned long long>(live_),
                         static_cast<unsigned long long>(count)));
  }
  return report;
}

}  // namespace listlab
}  // namespace ltree
