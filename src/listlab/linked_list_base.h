// Shared doubly-linked-list plumbing for the label-on-node baseline schemes
// (sequential, gap, Bender). Keeps item allocation, handle lookup and the
// generic parts of LabelStore so each scheme only implements its label
// policy. Erase physically unlinks (EraseSemantics::kPhysical): the label
// value is vacated and may be reused by later insertions.

#ifndef LTREE_LISTLAB_LINKED_LIST_BASE_H_
#define LTREE_LISTLAB_LINKED_LIST_BASE_H_

#include <cstdint>
#include <vector>

#include "listlab/order_maintainer.h"

namespace ltree {
namespace listlab {

/// A list item with an explicit stored label and a client payload.
struct ListItem {
  ListItem* prev = nullptr;
  ListItem* next = nullptr;
  Label label = 0;
  ItemHandle handle = 0;
  LeafCookie cookie = 0;
  bool erased = false;
};

/// Base class: owns the items, the handle table and the list links.
class LinkedListScheme : public LabelStore {
 public:
  ~LinkedListScheme() override;

  EraseSemantics erase_semantics() const final {
    return EraseSemantics::kPhysical;
  }

  Result<Label> GetLabel(ItemHandle h) const final;
  Result<LeafCookie> GetCookie(ItemHandle h) const final;
  uint64_t size() const final { return live_; }
  uint32_t label_bits() const final;
  uint64_t ApproxHeapBytes() const final {
    // Estimated: one heap ListItem per handle ever issued (erased items
    // are kept for FailedPrecondition detection) plus the handle table.
    return items_.size() * sizeof(ListItem) +
           items_.capacity() * sizeof(ListItem*);
  }
  std::vector<Label> Labels() const final;
  const MaintStats& stats() const final { return stats_; }
  void ResetStats() final { stats_ = MaintStats(); }

  /// Deep validator shared by the three linked-list schemes: link symmetry
  /// (prev/next/tail), strict label monotonicity, label-universe bounds,
  /// live-count accounting, and handle-table consistency (each linked item
  /// registered under its own handle, erased items unlinked).
  audit::Report Validate() const override;

 protected:
  // Mutation bodies (serialized by LabelStore's public wrappers).
  Status BulkLoadImpl(std::span<const LeafCookie> cookies,
                      std::vector<ItemHandle>* handles) final;
  Result<ItemHandle> InsertAfterImpl(ItemHandle pos, LeafCookie cookie) final;
  Result<ItemHandle> InsertBeforeImpl(ItemHandle pos, LeafCookie cookie) final;
  Result<ItemHandle> PushBackImpl(LeafCookie cookie) final;
  Result<ItemHandle> PushFrontImpl(LeafCookie cookie) final;
  Status EraseImpl(ItemHandle h) final;
  void SnapshotImpl(
      std::vector<std::pair<Label, LeafCookie>>* out) const final;

  /// Assigns initial labels for the n freshly linked items (head_ onward).
  /// Called once from BulkLoad; must not fire the listener.
  virtual Status AssignInitialLabels(uint64_t n) = 0;

  /// Assigns `item`'s label given its linked neighbours (item is already
  /// linked in). Relabels neighbours through SetLabel so stats and the
  /// listener stay in sync.
  virtual Status PlaceItem(ListItem* item) = 0;

  /// Lowest label value a scheme may assign (0) and the exclusive upper
  /// bound of its current label universe (for bits accounting).
  virtual uint64_t LabelUniverse() const = 0;

  /// Writes `label` into `item`; if the value changed and `item` is not the
  /// freshly inserted `fresh`, counts one relabel and fires the listener.
  void SetLabel(ListItem* item, Label label, const ListItem* fresh);

  Result<ListItem*> FindLive(ItemHandle h) const;
  ListItem* AllocItem(LeafCookie cookie);
  void LinkAfter(ListItem* where, ListItem* item);   // where may be null: front
  void Unlink(ListItem* item);

  ListItem* head_ = nullptr;
  ListItem* tail_ = nullptr;
  std::vector<ListItem*> items_;  // handle -> item
  uint64_t live_ = 0;
  MaintStats stats_;

 private:
  Result<ItemHandle> InsertLinked(ListItem* where, LeafCookie cookie);
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_LINKED_LIST_BASE_H_
