// Shared doubly-linked-list plumbing for the label-on-node baseline schemes
// (sequential, gap, Bender). Keeps item allocation, id lookup and the
// generic parts of OrderMaintainer so each scheme only implements its label
// policy.

#ifndef LTREE_LISTLAB_LINKED_LIST_BASE_H_
#define LTREE_LISTLAB_LINKED_LIST_BASE_H_

#include <cstdint>
#include <vector>

#include "listlab/order_maintainer.h"

namespace ltree {
namespace listlab {

/// A list item with an explicit stored label.
struct ListItem {
  ListItem* prev = nullptr;
  ListItem* next = nullptr;
  Label label = 0;
  ItemId id = 0;
  bool erased = false;
};

/// Base class: owns the items, the id table and the list links.
class LinkedListScheme : public OrderMaintainer {
 public:
  ~LinkedListScheme() override;

  Status BulkLoad(uint64_t n, std::vector<ItemId>* ids) final;
  Result<ItemId> InsertAfter(ItemId pos) final;
  Result<ItemId> InsertBefore(ItemId pos) final;
  Result<ItemId> PushBack() final;
  Result<ItemId> PushFront() final;
  Status Erase(ItemId id) final;
  Result<Label> GetLabel(ItemId id) const final;
  uint64_t size() const final { return live_; }
  uint32_t label_bits() const final;
  std::vector<Label> Labels() const final;
  const MaintStats& stats() const final { return stats_; }
  void ResetStats() final { stats_ = MaintStats(); }
  Status CheckInvariants() const override;

 protected:
  /// Assigns initial labels for the n freshly linked items (head_ onward).
  /// Called once from BulkLoad.
  virtual Status AssignInitialLabels(uint64_t n) = 0;

  /// Assigns `item`'s label given its linked neighbours (item is already
  /// linked in). May relabel neighbours; must bump stats_ accordingly.
  virtual Status PlaceItem(ListItem* item) = 0;

  /// Lowest label value a scheme may assign (0) and the exclusive upper
  /// bound of its current label universe (for bits accounting).
  virtual uint64_t LabelUniverse() const = 0;

  Result<ListItem*> FindLive(ItemId id) const;
  ListItem* AllocItem();
  void LinkAfter(ListItem* where, ListItem* item);   // where may be null: front
  void Unlink(ListItem* item);

  ListItem* head_ = nullptr;
  ListItem* tail_ = nullptr;
  std::vector<ListItem*> items_;  // id -> item
  uint64_t live_ = 0;
  MaintStats stats_;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_LINKED_LIST_BASE_H_
