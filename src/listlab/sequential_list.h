// SequentialList: the Section 1 strawman labeling scheme.
//
// "Consider the labeling scheme ... which assigns labels from the integer
// domain, in sequential order. This leads to relabeling of half the nodes on
// average, even for a single node insertion."
//
// Items get consecutive integers at load time. An insertion between two
// adjacent labels shifts every label to the right of the insertion point up
// by one (O(n - r) relabels). Erasures leave gaps, which later insertions at
// that exact spot may reuse — matching how a naive ordinal column in an
// RDBMS would behave.

#ifndef LTREE_LISTLAB_SEQUENTIAL_LIST_H_
#define LTREE_LISTLAB_SEQUENTIAL_LIST_H_

#include "listlab/linked_list_base.h"

namespace ltree {
namespace listlab {

class SequentialList : public LinkedListScheme {
 public:
  SequentialList() = default;

  std::string name() const override { return "sequential"; }

 protected:
  Status AssignInitialLabels(uint64_t n) override;
  Status PlaceItem(ListItem* item) override;
  uint64_t LabelUniverse() const override { return max_label_ + 1; }

 private:
  uint64_t max_label_ = 0;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_SEQUENTIAL_LIST_H_
