#include "listlab/sequential_list.h"

#include <algorithm>

namespace ltree {
namespace listlab {

Status SequentialList::AssignInitialLabels(uint64_t n) {
  uint64_t next = 0;
  for (ListItem* it = head_; it != nullptr; it = it->next) {
    it->label = next++;
  }
  max_label_ = n - 1;
  return Status::OK();
}

Status SequentialList::PlaceItem(ListItem* item) {
  const uint64_t lo = item->prev == nullptr ? 0 : item->prev->label + 1;
  item->label = lo;
  max_label_ = std::max(max_label_, item->label);
  // Shift the suffix up until the first gap absorbs the displacement.
  uint64_t expected = lo + 1;
  bool shifted = false;
  for (ListItem* cur = item->next; cur != nullptr && cur->label < expected;
       cur = cur->next) {
    SetLabel(cur, expected++, item);
    shifted = true;
    max_label_ = std::max(max_label_, cur->label);
  }
  if (shifted) ++stats_.rebalances;
  return Status::OK();
}

}  // namespace listlab
}  // namespace ltree
