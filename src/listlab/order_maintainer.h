// Order-maintenance framework.
//
// The paper frames XML label maintenance as "maintenance of an ordered
// list" (Section 2): assign integer labels to list items so that list order
// equals label order, and bound how many labels change per insertion. This
// header defines the uniform interface implemented by:
//
//   * the L-Tree (materialized and virtual) — the paper's contribution;
//   * SequentialList — the Section 1 strawman (consecutive integers, suffix
//     shifts on insert, ~n/2 relabels on average);
//   * GapList — fixed gaps of size G, full renumbering when a gap fills;
//   * BenderList — density-scaled aligned-range relabeling in the spirit of
//     the order-maintenance literature the paper cites ([8, 9, 16]).
//
// Items are addressed by stable ItemIds assigned by the maintainer, so
// benches and tests can drive every scheme with identical op streams.

#ifndef LTREE_LISTLAB_ORDER_MAINTAINER_H_
#define LTREE_LISTLAB_ORDER_MAINTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/params.h"

namespace ltree {
namespace listlab {

/// Stable item identifier (survives relabeling).
using ItemId = uint64_t;

/// Uniform cost accounting across schemes. "Relabels" is the paper's
/// currency: the number of stored labels that changed.
struct MaintStats {
  uint64_t inserts = 0;
  uint64_t erases = 0;
  /// Existing items whose label changed (excludes the inserted item itself).
  uint64_t items_relabeled = 0;
  /// Rebalance/renumber events (splits for the L-Tree, window
  /// redistributions for Bender, full renumberings for Gap/Sequential).
  uint64_t rebalances = 0;

  double RelabelsPerInsert() const {
    return inserts == 0 ? 0.0
                        : static_cast<double>(items_relabeled) /
                              static_cast<double>(inserts);
  }

  std::string ToString() const;
};

class OrderMaintainer {
 public:
  virtual ~OrderMaintainer() = default;

  /// Scheme name for bench tables (e.g. "ltree(f=16,s=4)").
  virtual std::string name() const = 0;

  /// Loads n items into an empty list; returns their ids in list order.
  virtual Status BulkLoad(uint64_t n, std::vector<ItemId>* ids) = 0;

  virtual Result<ItemId> InsertAfter(ItemId pos) = 0;
  virtual Result<ItemId> InsertBefore(ItemId pos) = 0;
  /// Works on an empty list.
  virtual Result<ItemId> PushBack() = 0;
  virtual Result<ItemId> PushFront() = 0;

  /// Removes an item from the order (tombstone or physical, scheme's
  /// choice; the id becomes invalid either way).
  virtual Status Erase(ItemId id) = 0;

  /// Current label of a live item. Order of labels == list order.
  virtual Result<Label> GetLabel(ItemId id) const = 0;

  /// Live item count.
  virtual uint64_t size() const = 0;

  /// Bits needed to encode the largest label the scheme currently uses.
  virtual uint32_t label_bits() const = 0;

  /// Live labels in list order (for order-preservation checks).
  virtual std::vector<Label> Labels() const = 0;

  virtual const MaintStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Structural self-check for tests.
  virtual Status CheckInvariants() const = 0;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_ORDER_MAINTAINER_H_
