// LabelStore: the unified order-maintenance / labeling interface.
//
// The paper frames XML label maintenance as "maintenance of an ordered
// list" (Section 2): assign integer labels to list items so that list order
// equals label order, and bound how many labels change per insertion. This
// header defines the single abstract interface every labeling scheme in
// this library implements:
//
//   * the L-Tree, materialized (LTreeStore) and virtual (VirtualLTreeStore)
//     — the paper's contribution (Sections 2-4);
//   * SequentialList — the Section 1 strawman (consecutive integers, suffix
//     shifts on insert, ~n/2 relabels on average);
//   * GapList — fixed gaps of size G, full renumbering when a gap fills;
//   * BenderList — density-scaled aligned-range relabeling in the spirit of
//     the order-maintenance literature the paper cites ([8, 9, 16]).
//
// Items are addressed by opaque, stable ItemHandles assigned by the store
// (no scheme-internal pointers leak), carry a client LeafCookie payload
// (e.g. an XML tag id), and report label changes through a RelabelListener,
// so the whole XML pipeline — parse, node table, label joins, fragment
// edits — can run unchanged over any scheme. Construct stores by spec
// string via listlab::MakeLabelStore (factory.h).
//
// ## Erase semantics
//
// Erase(h) removes the item from the order; the handle becomes invalid and
// every further operation on it fails (double-erase is FailedPrecondition
// in every scheme). What happens to the *label slot* is scheme-specific,
// and deliberately so — it is exactly the trade-off the paper discusses in
// Section 2.3:
//
//   * LTreeStore / VirtualLTreeStore — tombstone: the slot stays occupied
//     and keeps consuming leaf budget, no relabeling happens
//     (EraseSemantics::kTombstone). With Params::purge_tombstones_on_split
//     (spec suffix ":purge") tombstones are physically dropped whenever a
//     split rebuilds the subtree containing them
//     (EraseSemantics::kTombstonePurge).
//   * SequentialList / GapList / BenderList — physical unlink: the item
//     leaves the list immediately and its label value is vacated for reuse
//     by later insertions (EraseSemantics::kPhysical).
//
// Callers that care (benches measuring slot occupancy, the docstore's
// consistency checks) can query erase_semantics(); callers that only need
// "the handle is gone either way" need not.

#ifndef LTREE_LISTLAB_ORDER_MAINTAINER_H_
#define LTREE_LISTLAB_ORDER_MAINTAINER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/params.h"
#include "core/relabel_listener.h"
#include "core/validate.h"

namespace ltree {
namespace listlab {

/// Opaque stable item handle (survives relabeling and rebalancing; only
/// Erase and store destruction invalidate it).
using ItemHandle = uint64_t;

/// Never a valid handle.
inline constexpr ItemHandle kInvalidItemHandle = ~ItemHandle{0};

/// How Erase treats the label slot (see the header comment).
enum class EraseSemantics {
  kTombstone,       ///< slot stays occupied forever (L-Tree default)
  kTombstonePurge,  ///< tombstoned, dropped at the next covering rebuild
  kPhysical,        ///< unlinked immediately, label value reusable
};

const char* EraseSemanticsName(EraseSemantics semantics);

/// Uniform cost accounting across schemes. "Relabels" is the paper's
/// currency: the number of stored labels that changed.
struct MaintStats {
  uint64_t inserts = 0;  ///< items inserted (batch items count individually)
  uint64_t erases = 0;
  /// Batch insertions performed (one per InsertBatch*/PushBackBatch call
  /// that went down a native batch path; fallback per-item loops count 0).
  uint64_t batch_inserts = 0;
  /// Existing items whose label changed (excludes the inserted item itself).
  uint64_t items_relabeled = 0;
  /// Rebalance/renumber events (splits for the L-Tree, window
  /// redistributions for Bender, full renumberings for Gap/Sequential).
  uint64_t rebalances = 0;

  // ---- plan/apply pipeline (L-Tree schemes; zero elsewhere) ----
  /// Label-rewrite passes run by the mutation path: the L-Tree variants
  /// guarantee exactly one pass per insert/batch — the no-split sibling
  /// relabel or the single pass over the coalesced rebuilt region.
  uint64_t relabel_passes = 0;
  /// Rebuilt regions that absorbed at least one fanout-overflow escalation
  /// (batch insertions only; the planner folds the whole chain into one
  /// region instead of rebuilding level by level).
  uint64_t coalesced_regions = 0;

  // ---- allocator traffic ----
  // Filled by schemes with pooled node storage (the materialized L-Tree's
  // NodeArena); zero for schemes without one. Windowed by ResetStats like
  // every other counter.
  uint64_t nodes_allocated = 0;  ///< fresh pool allocations (heap growth)
  uint64_t nodes_reused = 0;     ///< allocations served by recycling
  uint64_t nodes_released = 0;   ///< nodes returned for recycling

  double RelabelsPerInsert() const {
    return inserts == 0 ? 0.0
                        : static_cast<double>(items_relabeled) /
                              static_cast<double>(inserts);
  }

  std::string ToString() const;
};

/// The unified labeling interface. Thread-compatibility: externally
/// synchronized (like an STL container).
class LabelStore {
 public:
  virtual ~LabelStore() = default;

  /// Scheme name for bench tables (e.g. "ltree(f=16,s=4)").
  virtual std::string name() const = 0;

  /// What Erase does to the label slot (see the header comment).
  virtual EraseSemantics erase_semantics() const = 0;

  // ---------------------------------------------------------------- loading

  /// Loads `cookies.size()` items into an empty store in list order
  /// (Section 2.2 bulk load). If `handles` is non-null it receives one
  /// handle per cookie, in order. Does not fire the RelabelListener and
  /// does not count toward the incremental-maintenance statistics.
  virtual Status BulkLoad(std::span<const LeafCookie> cookies,
                          std::vector<ItemHandle>* handles = nullptr) = 0;

  /// Convenience: bulk loads n items with cookies 0..n-1.
  Status BulkLoad(uint64_t n, std::vector<ItemHandle>* handles = nullptr);

  // ---------------------------------------------------------------- updates

  virtual Result<ItemHandle> InsertAfter(ItemHandle pos,
                                         LeafCookie cookie) = 0;
  virtual Result<ItemHandle> InsertBefore(ItemHandle pos,
                                          LeafCookie cookie) = 0;
  /// Works on an empty store.
  virtual Result<ItemHandle> PushBack(LeafCookie cookie) = 0;
  virtual Result<ItemHandle> PushFront(LeafCookie cookie) = 0;

  /// Inserts `cookies.size()` consecutive items right after `pos` (the
  /// paper's Section 4.1 bulk insertion). Appends the new handles to
  /// `handles` if non-null. Schemes with a native batch path (the two
  /// L-Tree variants) pay a single rebalance; the base-class default falls
  /// back to per-item insertion with identical final order. Batches are
  /// all-or-nothing: a mid-batch failure erases the partial prefix before
  /// returning the error.
  virtual Status InsertBatchAfter(ItemHandle pos,
                                  std::span<const LeafCookie> cookies,
                                  std::vector<ItemHandle>* handles = nullptr);

  /// Batch insertion immediately before `pos`.
  virtual Status InsertBatchBefore(ItemHandle pos,
                                   std::span<const LeafCookie> cookies,
                                   std::vector<ItemHandle>* handles = nullptr);

  /// Appends a batch at the end (works on an empty store).
  virtual Status PushBackBatch(std::span<const LeafCookie> cookies,
                               std::vector<ItemHandle>* handles = nullptr);

  /// Removes an item from the order (see "Erase semantics" above). Fails
  /// with NotFound for a handle the store never issued and with
  /// FailedPrecondition for an already erased handle — in every scheme.
  virtual Status Erase(ItemHandle h) = 0;

  // ---------------------------------------------------------------- queries

  /// Current label of a live item. Order of labels == list order.
  virtual Result<Label> GetLabel(ItemHandle h) const = 0;

  /// The client payload attached at insertion time.
  virtual Result<LeafCookie> GetCookie(ItemHandle h) const = 0;

  /// Live item count.
  virtual uint64_t size() const = 0;

  /// Bits needed to encode the largest label the scheme currently uses.
  virtual uint32_t label_bits() const = 0;

  /// Measured (L-Tree variants: arena chunks + node buffers, one policy
  /// with CountedBTree::ApproxHeapBytes) or estimated (linked-list
  /// schemes: item nodes + handle table) heap footprint in bytes. The
  /// sharded DocumentStore reports this per shard.
  virtual uint64_t ApproxHeapBytes() const = 0;

  /// Live labels in list order (for order-preservation checks).
  virtual std::vector<Label> Labels() const = 0;

  /// Receives label-change notifications; may be nullptr.
  void set_listener(RelabelListener* listener) { listener_ = listener; }
  RelabelListener* listener() const { return listener_; }

  virtual const MaintStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Scheme-generic deep validator: audits the backing structure (L-Tree
  /// shape and labels, counted B+-tree, linked-list links) plus the
  /// store's own handle bookkeeping, reporting every violation instead of
  /// stopping at the first. Clean after every public call on every scheme.
  virtual audit::Report Validate() const = 0;

  /// Legacy first-violation form: OK, or Corruption carrying the first
  /// Validate() finding.
  Status CheckInvariants() const { return Validate().ToStatus(); }

 protected:
#ifdef LISTLAB_VALIDATE
  /// Runs Validate() and aborts with the full report when it is not clean.
  /// Every scheme calls this after each mutating call; the call compiles
  /// to nothing unless the LISTLAB_VALIDATE CMake option is ON.
  void AutoValidate(const char* op) const;
#else
  void AutoValidate(const char* /*op*/) const {}
#endif

  RelabelListener* listener_ = nullptr;
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_ORDER_MAINTAINER_H_
