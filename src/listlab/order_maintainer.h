// LabelStore: the unified order-maintenance / labeling interface.
//
// The paper frames XML label maintenance as "maintenance of an ordered
// list" (Section 2): assign integer labels to list items so that list order
// equals label order, and bound how many labels change per insertion. This
// header defines the single abstract interface every labeling scheme in
// this library implements:
//
//   * the L-Tree, materialized (LTreeStore) and virtual (VirtualLTreeStore)
//     — the paper's contribution (Sections 2-4);
//   * SequentialList — the Section 1 strawman (consecutive integers, suffix
//     shifts on insert, ~n/2 relabels on average);
//   * GapList — fixed gaps of size G, full renumbering when a gap fills;
//   * BenderList — density-scaled aligned-range relabeling in the spirit of
//     the order-maintenance literature the paper cites ([8, 9, 16]).
//
// Items are addressed by opaque, stable ItemHandles assigned by the store
// (no scheme-internal pointers leak), carry a client LeafCookie payload
// (e.g. an XML tag id), and report label changes through a RelabelListener,
// so the whole XML pipeline — parse, node table, label joins, fragment
// edits — can run unchanged over any scheme. Construct stores by spec
// string via listlab::MakeLabelStore (factory.h).
//
// ## Erase semantics
//
// Erase(h) removes the item from the order; the handle becomes invalid and
// every further operation on it fails (double-erase is FailedPrecondition
// in every scheme). What happens to the *label slot* is scheme-specific,
// and deliberately so — it is exactly the trade-off the paper discusses in
// Section 2.3:
//
//   * LTreeStore / VirtualLTreeStore — tombstone: the slot stays occupied
//     and keeps consuming leaf budget, no relabeling happens
//     (EraseSemantics::kTombstone). With Params::purge_tombstones_on_split
//     (spec suffix ":purge") tombstones are physically dropped whenever a
//     split rebuilds the subtree containing them
//     (EraseSemantics::kTombstonePurge).
//   * SequentialList / GapList / BenderList — physical unlink: the item
//     leaves the list immediately and its label value is vacated for reuse
//     by later insertions (EraseSemantics::kPhysical).
//
// Callers that care (benches measuring slot occupancy, the docstore's
// consistency checks) can query erase_semantics(); callers that only need
// "the handle is gone either way" need not.
//
// ## Concurrent reads
//
// Mutations are serialized by the store itself (each public mutation runs
// under an exclusive writer section), and a separate guard-based read API
// lets any number of reader threads run *during* a mutation:
//
//   auto guard = store->AcquireRead();
//   auto label = store->LabelOf(guard, h);
//   auto cmp   = store->CompareOrder(guard, a, b);
//
// How much the guard costs depends on the scheme, reported by
// concurrency_mode():
//
//   * kLockFreeReads (ltree, virtual) — AcquireRead pins an epoch (one CAS;
//     no lock), and LabelOf/CookieOf/CompareOrder never block: they read
//     only atomically published slots and leaf fields, and the epoch keeps
//     any node a reader can still see from being recycled by a concurrent
//     rebuild. CompareOrder reads two labels; a store-wide seqlock makes
//     the pair consistent (readers retry over a relabel instead of
//     blocking).
//   * kSerializedReads (sequential, gap, bender) — AcquireRead takes a
//     shared lock on the writer mutex; reads are correct but exclude
//     writers for the guard's lifetime. Same API, documented fallback.
//
// ScanAll walks the structure, so it briefly takes the shared lock in both
// modes. The plain query methods (GetLabel/GetCookie/Labels/...) keep the
// historical thread-compatible contract: safe concurrently only while no
// thread mutates. stats() and ResetStats() remain writer-side.

#ifndef LTREE_LISTLAB_ORDER_MAINTAINER_H_
#define LTREE_LISTLAB_ORDER_MAINTAINER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/epoch.h"
#include "core/params.h"
#include "core/relabel_listener.h"
#include "core/validate.h"

namespace ltree {
namespace listlab {

/// Opaque stable item handle (survives relabeling and rebalancing; only
/// Erase and store destruction invalidate it).
using ItemHandle = uint64_t;

/// Never a valid handle.
inline constexpr ItemHandle kInvalidItemHandle = ~ItemHandle{0};

/// How Erase treats the label slot (see the header comment).
enum class EraseSemantics {
  kTombstone,       ///< slot stays occupied forever (L-Tree default)
  kTombstonePurge,  ///< tombstoned, dropped at the next covering rebuild
  kPhysical,        ///< unlinked immediately, label value reusable
};

const char* EraseSemanticsName(EraseSemantics semantics);

/// Uniform cost accounting across schemes. "Relabels" is the paper's
/// currency: the number of stored labels that changed.
struct MaintStats {
  uint64_t inserts = 0;  ///< items inserted (batch items count individually)
  uint64_t erases = 0;
  /// Batch insertions performed (one per InsertBatch*/PushBackBatch call
  /// that went down a native batch path; fallback per-item loops count 0).
  uint64_t batch_inserts = 0;
  /// Existing items whose label changed (excludes the inserted item itself).
  uint64_t items_relabeled = 0;
  /// Rebalance/renumber events (splits for the L-Tree, window
  /// redistributions for Bender, full renumberings for Gap/Sequential).
  uint64_t rebalances = 0;

  // ---- plan/apply pipeline (L-Tree schemes; zero elsewhere) ----
  /// Label-rewrite passes run by the mutation path: the L-Tree variants
  /// guarantee exactly one pass per insert/batch — the no-split sibling
  /// relabel or the single pass over the coalesced rebuilt region.
  uint64_t relabel_passes = 0;
  /// Rebuilt regions that absorbed at least one fanout-overflow escalation
  /// (batch insertions only; the planner folds the whole chain into one
  /// region instead of rebuilding level by level).
  uint64_t coalesced_regions = 0;

  // ---- allocator traffic ----
  // Filled by schemes with pooled node storage (the materialized L-Tree's
  // NodeArena); zero for schemes without one. Windowed by ResetStats like
  // every other counter.
  uint64_t nodes_allocated = 0;  ///< fresh pool allocations (heap growth)
  uint64_t nodes_reused = 0;     ///< allocations served by recycling
  uint64_t nodes_released = 0;   ///< nodes returned for recycling

  double RelabelsPerInsert() const {
    return inserts == 0 ? 0.0
                        : static_cast<double>(items_relabeled) /
                              static_cast<double>(inserts);
  }

  std::string ToString() const;
};

/// The unified labeling interface. Mutations are serialized internally
/// (single exclusive writer at a time); reads either use the guard-based
/// concurrent API below or require external quiescence (see the header
/// comment).
class LabelStore {
 public:
  virtual ~LabelStore() = default;

  /// Scheme name for bench tables (e.g. "ltree(f=16,s=4)").
  virtual std::string name() const = 0;

  /// What Erase does to the label slot (see the header comment).
  virtual EraseSemantics erase_semantics() const = 0;

  // ---------------------------------------------------------------- loading

  /// Loads `cookies.size()` items into an empty store in list order
  /// (Section 2.2 bulk load). If `handles` is non-null it receives one
  /// handle per cookie, in order. Does not fire the RelabelListener and
  /// does not count toward the incremental-maintenance statistics.
  Status BulkLoad(std::span<const LeafCookie> cookies,
                  std::vector<ItemHandle>* handles = nullptr);

  /// Convenience: bulk loads n items with cookies 0..n-1.
  Status BulkLoad(uint64_t n, std::vector<ItemHandle>* handles = nullptr);

  // ---------------------------------------------------------------- updates
  //
  // Every mutation below runs under the store's exclusive writer section:
  // it waits out guard-holding readers of serialized schemes, bumps the
  // seqlock so lock-free CompareOrder retries, and ticks the epoch so
  // retired nodes reclaim at quiescence. Callers need no external lock for
  // readers — but concurrent *mutations* still race each other's
  // planning; keep one writer per store (e.g. one writer thread, or the
  // DocumentStore's per-shard writer lock).

  Result<ItemHandle> InsertAfter(ItemHandle pos, LeafCookie cookie);
  Result<ItemHandle> InsertBefore(ItemHandle pos, LeafCookie cookie);
  /// Works on an empty store.
  Result<ItemHandle> PushBack(LeafCookie cookie);
  Result<ItemHandle> PushFront(LeafCookie cookie);

  /// Inserts `cookies.size()` consecutive items right after `pos` (the
  /// paper's Section 4.1 bulk insertion). Appends the new handles to
  /// `handles` if non-null. Schemes with a native batch path (the two
  /// L-Tree variants) pay a single rebalance; the base-class default falls
  /// back to per-item insertion with identical final order. Batches are
  /// all-or-nothing: a mid-batch failure erases the partial prefix before
  /// returning the error.
  Status InsertBatchAfter(ItemHandle pos, std::span<const LeafCookie> cookies,
                          std::vector<ItemHandle>* handles = nullptr);

  /// Batch insertion immediately before `pos`.
  Status InsertBatchBefore(ItemHandle pos, std::span<const LeafCookie> cookies,
                           std::vector<ItemHandle>* handles = nullptr);

  /// Appends a batch at the end (works on an empty store).
  Status PushBackBatch(std::span<const LeafCookie> cookies,
                       std::vector<ItemHandle>* handles = nullptr);

  /// Removes an item from the order (see "Erase semantics" above). Fails
  /// with NotFound for a handle the store never issued and with
  /// FailedPrecondition for an already erased handle — in every scheme.
  Status Erase(ItemHandle h);

  // ------------------------------------------------------ concurrent reads

  /// How cheap AcquireRead and the guard-based reads are for this scheme.
  enum class ConcurrencyMode {
    kLockFreeReads,    ///< epoch pin; reads never block a writer
    kSerializedReads,  ///< shared lock; reads exclude writers while held
  };

  virtual ConcurrencyMode concurrency_mode() const {
    return ConcurrencyMode::kSerializedReads;
  }

  /// Proof-of-protection token for the guard-based reads. Movable; drop it
  /// to release the pin/lock. Guards are cheap but not free — hold one
  /// across a sequence of reads, not per call.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(ReadGuard&&) = default;
    ReadGuard& operator=(ReadGuard&&) = default;

   private:
    friend class LabelStore;
    epoch::ReadGuard pin_;                      // lock-free schemes
    std::shared_lock<std::shared_mutex> lock_;  // serialized fallback
  };

  /// Acquires read protection appropriate for the scheme: an epoch pin
  /// (kLockFreeReads) or a shared lock (kSerializedReads). Thread-safe.
  ReadGuard AcquireRead() const;

  /// Label of a live item, safe against a concurrent writer while `guard`
  /// is held. Same results and errors as GetLabel.
  Result<Label> LabelOf(const ReadGuard& guard, ItemHandle h) const;

  /// Cookie of a live item under a guard. Same results as GetCookie.
  Result<LeafCookie> CookieOf(const ReadGuard& guard, ItemHandle h) const;

  /// List-order comparison of two live items under a guard: -1, 0 or +1 as
  /// `a` precedes, equals or follows `b`. The label pair is read
  /// consistently: lock-free schemes retry over a concurrent relabel via
  /// the store seqlock (falling back to a brief shared lock if a writer
  /// keeps the seqlock hot), serialized schemes already hold the lock.
  Result<int> CompareOrder(const ReadGuard& guard, ItemHandle a,
                           ItemHandle b) const;

  /// (label, cookie) of every live item in list order. Walks the backing
  /// structure, so it briefly takes the shared lock in both modes (the
  /// one guard-based read that can wait on a writer).
  std::vector<std::pair<Label, LeafCookie>> ScanAll(
      const ReadGuard& guard) const;

  // ---------------------------------------------------------------- queries

  /// Current label of a live item. Order of labels == list order.
  virtual Result<Label> GetLabel(ItemHandle h) const = 0;

  /// The client payload attached at insertion time.
  virtual Result<LeafCookie> GetCookie(ItemHandle h) const = 0;

  /// Live item count.
  virtual uint64_t size() const = 0;

  /// Bits needed to encode the largest label the scheme currently uses.
  virtual uint32_t label_bits() const = 0;

  /// Measured (L-Tree variants: arena chunks + node buffers, one policy
  /// with CountedBTree::ApproxHeapBytes) or estimated (linked-list
  /// schemes: item nodes + handle table) heap footprint in bytes. The
  /// sharded DocumentStore reports this per shard.
  virtual uint64_t ApproxHeapBytes() const = 0;

  /// Live labels in list order (for order-preservation checks).
  virtual std::vector<Label> Labels() const = 0;

  /// Receives label-change notifications; may be nullptr.
  void set_listener(RelabelListener* listener) { listener_ = listener; }
  RelabelListener* listener() const { return listener_; }

  virtual const MaintStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Scheme-generic deep validator: audits the backing structure (L-Tree
  /// shape and labels, counted B+-tree, linked-list links) plus the
  /// store's own handle bookkeeping, reporting every violation instead of
  /// stopping at the first. Clean after every public call on every scheme.
  virtual audit::Report Validate() const = 0;

  /// Legacy first-violation form: OK, or Corruption carrying the first
  /// Validate() finding.
  Status CheckInvariants() const { return Validate().ToStatus(); }

 protected:
#ifdef LISTLAB_VALIDATE
  /// Runs Validate() and aborts with the full report when it is not clean.
  /// Every scheme calls this after each mutating call; the call compiles
  /// to nothing unless the LISTLAB_VALIDATE CMake option is ON.
  void AutoValidate(const char* op) const;
#else
  void AutoValidate(const char* /*op*/) const {}
#endif

  // ------------------------------------------------- scheme implementation
  //
  // The public mutations are non-virtual wrappers: they enter the writer
  // section (exclusive lock + seqlock bump + epoch tick on exit) and
  // delegate to these. Implementations never lock — they already hold the
  // section — and call each other's *Impl forms, never the public API.

  virtual Status BulkLoadImpl(std::span<const LeafCookie> cookies,
                              std::vector<ItemHandle>* handles) = 0;
  virtual Result<ItemHandle> InsertAfterImpl(ItemHandle pos,
                                             LeafCookie cookie) = 0;
  virtual Result<ItemHandle> InsertBeforeImpl(ItemHandle pos,
                                              LeafCookie cookie) = 0;
  virtual Result<ItemHandle> PushBackImpl(LeafCookie cookie) = 0;
  virtual Result<ItemHandle> PushFrontImpl(LeafCookie cookie) = 0;
  /// Default: per-item loop over InsertAfterImpl (+ rollback on failure).
  virtual Status InsertBatchAfterImpl(ItemHandle pos,
                                      std::span<const LeafCookie> cookies,
                                      std::vector<ItemHandle>* handles);
  virtual Status InsertBatchBeforeImpl(ItemHandle pos,
                                       std::span<const LeafCookie> cookies,
                                       std::vector<ItemHandle>* handles);
  virtual Status PushBackBatchImpl(std::span<const LeafCookie> cookies,
                                   std::vector<ItemHandle>* handles);
  virtual Status EraseImpl(ItemHandle h) = 0;

  /// Guard-protected single reads. Lock-free schemes override with
  /// atomics-only implementations; the default forwards to the plain
  /// queries, correct under the serialized guard's shared lock.
  virtual Result<Label> LabelOfRead(ItemHandle h) const { return GetLabel(h); }
  virtual Result<LeafCookie> CookieOfRead(ItemHandle h) const {
    return GetCookie(h);
  }

  /// (label, cookie) of every live item in list order; called with the
  /// shared lock held (writers excluded).
  virtual void SnapshotImpl(
      std::vector<std::pair<Label, LeafCookie>>* out) const = 0;

  /// Epoch manager backing the scheme's lock-free reads; nullptr for
  /// serialized schemes. The writer section ticks it after each mutation.
  virtual epoch::EpochManager* epoch_manager() const { return nullptr; }

  /// RAII writer section used by the public mutation wrappers: exclusive
  /// lock (waits out serialized-scheme readers), seqlock held odd for the
  /// duration, epoch advanced at exit.
  class WriteSection {
   public:
    explicit WriteSection(LabelStore* store)
        : store_(store), lock_(store->rw_mutex_) {
      store_->write_seq_.fetch_add(1, std::memory_order_seq_cst);
    }
    ~WriteSection() {
      store_->write_seq_.fetch_add(1, std::memory_order_seq_cst);
      if (epoch::EpochManager* epoch = store_->epoch_manager()) {
        // Up to three advances (one per bucket) drain everything when no
        // reader is pinned, so quiescent arena accounting matches the
        // epoch-less behavior; a pinned reader stalls the advance and the
        // nodes stay pending, which is the point.
        for (int i = 0; i < 3 && epoch->TryAdvance(); ++i) {
        }
      }
    }
    WriteSection(const WriteSection&) = delete;
    WriteSection& operator=(const WriteSection&) = delete;

   private:
    LabelStore* store_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  RelabelListener* listener_ = nullptr;

  /// Writers exclusive; serialized-scheme guards and ScanAll shared.
  mutable std::shared_mutex rw_mutex_;
  /// Store-wide seqlock: odd while a writer section is open. Lock-free
  /// CompareOrder uses it to detect a concurrent relabel between its two
  /// label loads.
  std::atomic<uint64_t> write_seq_{0};
};

}  // namespace listlab
}  // namespace ltree

#endif  // LTREE_LISTLAB_ORDER_MAINTAINER_H_
