#include "listlab/order_maintainer.h"

#include <functional>
#include <numeric>
#include <shared_mutex>

#ifdef LISTLAB_VALIDATE
#include <cstdlib>
#include <iostream>
#endif

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

const char* EraseSemanticsName(EraseSemantics semantics) {
  switch (semantics) {
    case EraseSemantics::kTombstone:
      return "tombstone";
    case EraseSemantics::kTombstonePurge:
      return "tombstone+purge";
    case EraseSemantics::kPhysical:
      return "physical";
  }
  return "unknown";
}

std::string MaintStats::ToString() const {
  return StrFormat(
      "MaintStats{inserts=%llu erases=%llu batches=%llu relabeled=%llu "
      "rebalances=%llu relabel_passes=%llu coalesced_regions=%llu "
      "nodes_allocated=%llu nodes_reused=%llu "
      "nodes_released=%llu relabels/insert=%.3f}",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(erases),
      static_cast<unsigned long long>(batch_inserts),
      static_cast<unsigned long long>(items_relabeled),
      static_cast<unsigned long long>(rebalances),
      static_cast<unsigned long long>(relabel_passes),
      static_cast<unsigned long long>(coalesced_regions),
      static_cast<unsigned long long>(nodes_allocated),
      static_cast<unsigned long long>(nodes_reused),
      static_cast<unsigned long long>(nodes_released), RelabelsPerInsert());
}

#ifdef LISTLAB_VALIDATE
void LabelStore::AutoValidate(const char* op) const {
  const audit::Report report = Validate();
  if (report.ok()) return;
  std::cerr << "LISTLAB_VALIDATE: " << name() << " corrupted after " << op
            << ":\n"
            << report.ToString() << "\n";
  std::abort();
}
#endif

Status LabelStore::BulkLoad(uint64_t n, std::vector<ItemHandle>* handles) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), LeafCookie{0});
  return BulkLoad(cookies, handles);
}

// --------------------------------------------------------------------------
// Public mutation wrappers: one writer section per call.
// --------------------------------------------------------------------------

Status LabelStore::BulkLoad(std::span<const LeafCookie> cookies,
                            std::vector<ItemHandle>* handles) {
  WriteSection section(this);
  return BulkLoadImpl(cookies, handles);
}

Result<ItemHandle> LabelStore::InsertAfter(ItemHandle pos, LeafCookie cookie) {
  WriteSection section(this);
  return InsertAfterImpl(pos, cookie);
}

Result<ItemHandle> LabelStore::InsertBefore(ItemHandle pos,
                                            LeafCookie cookie) {
  WriteSection section(this);
  return InsertBeforeImpl(pos, cookie);
}

Result<ItemHandle> LabelStore::PushBack(LeafCookie cookie) {
  WriteSection section(this);
  return PushBackImpl(cookie);
}

Result<ItemHandle> LabelStore::PushFront(LeafCookie cookie) {
  WriteSection section(this);
  return PushFrontImpl(cookie);
}

Status LabelStore::InsertBatchAfter(ItemHandle pos,
                                    std::span<const LeafCookie> cookies,
                                    std::vector<ItemHandle>* handles) {
  WriteSection section(this);
  return InsertBatchAfterImpl(pos, cookies, handles);
}

Status LabelStore::InsertBatchBefore(ItemHandle pos,
                                     std::span<const LeafCookie> cookies,
                                     std::vector<ItemHandle>* handles) {
  WriteSection section(this);
  return InsertBatchBeforeImpl(pos, cookies, handles);
}

Status LabelStore::PushBackBatch(std::span<const LeafCookie> cookies,
                                 std::vector<ItemHandle>* handles) {
  WriteSection section(this);
  return PushBackBatchImpl(cookies, handles);
}

Status LabelStore::Erase(ItemHandle h) {
  WriteSection section(this);
  return EraseImpl(h);
}

// --------------------------------------------------------------------------
// Guard-based concurrent reads.
// --------------------------------------------------------------------------

LabelStore::ReadGuard LabelStore::AcquireRead() const {
  ReadGuard guard;
  if (concurrency_mode() == ConcurrencyMode::kLockFreeReads) {
    guard.pin_ = epoch::ReadGuard(epoch_manager());
  } else {
    guard.lock_ = std::shared_lock<std::shared_mutex>(rw_mutex_);
  }
  return guard;
}

Result<Label> LabelStore::LabelOf(const ReadGuard& /*guard*/,
                                  ItemHandle h) const {
  return LabelOfRead(h);
}

Result<LeafCookie> LabelStore::CookieOf(const ReadGuard& /*guard*/,
                                        ItemHandle h) const {
  return CookieOfRead(h);
}

Result<int> LabelStore::CompareOrder(const ReadGuard& /*guard*/, ItemHandle a,
                                     ItemHandle b) const {
  const auto compare = [](Label la, Label lb) {
    return la < lb ? -1 : (la > lb ? 1 : 0);
  };
  if (concurrency_mode() == ConcurrencyMode::kSerializedReads) {
    // The guard's shared lock already excludes writers.
    LTREE_ASSIGN_OR_RETURN(Label la, LabelOfRead(a));
    LTREE_ASSIGN_OR_RETURN(Label lb, LabelOfRead(b));
    return compare(la, lb);
  }
  // Lock-free: both loads are individually safe; the seqlock detects a
  // relabel between them so the *pair* is consistent.
  constexpr int kSeqlockRetries = 64;
  for (int attempt = 0; attempt < kSeqlockRetries; ++attempt) {
    const uint64_t s1 = write_seq_.load(std::memory_order_seq_cst);
    if ((s1 & 1) != 0) continue;  // writer section open; spin
    auto la = LabelOfRead(a);
    auto lb = LabelOfRead(b);
    const uint64_t s2 = write_seq_.load(std::memory_order_seq_cst);
    if (s1 != s2) continue;  // a writer intervened; retry the pair
    if (!la.ok()) return la.status();
    if (!lb.ok()) return lb.status();
    return compare(*la, *lb);
  }
  // A writer kept the seqlock hot (e.g. a long rebuild burst): fall back
  // to a brief shared lock for one consistent pair.
  std::shared_lock<std::shared_mutex> lock(rw_mutex_);
  LTREE_ASSIGN_OR_RETURN(Label la, LabelOfRead(a));
  LTREE_ASSIGN_OR_RETURN(Label lb, LabelOfRead(b));
  return compare(la, lb);
}

std::vector<std::pair<Label, LeafCookie>> LabelStore::ScanAll(
    const ReadGuard& /*guard*/) const {
  std::vector<std::pair<Label, LeafCookie>> out;
  if (concurrency_mode() == ConcurrencyMode::kLockFreeReads) {
    // The guard only pins the epoch; structure walks need the writer
    // excluded for real.
    std::shared_lock<std::shared_mutex> lock(rw_mutex_);
    SnapshotImpl(&out);
  } else {
    // The guard's shared lock is already held (never double-lock a
    // shared_mutex on one thread).
    SnapshotImpl(&out);
  }
  return out;
}

// --------------------------------------------------------------------------
// Default batch paths: per-item insertion, preserving batch order. Schemes
// with a native single-rebalance batch (the L-Tree variants) override.
// A batch is all-or-nothing: on a mid-batch failure the already inserted
// items are erased again, so callers never see a half-applied batch.
// --------------------------------------------------------------------------

namespace {

Status FinishBatch(Status st, std::vector<ItemHandle>&& fresh,
                   std::vector<ItemHandle>* handles,
                   const std::function<Status(ItemHandle)>& erase) {
  if (!st.ok()) {
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      (void)erase(*it);
    }
    return st;
  }
  if (handles != nullptr) {
    handles->insert(handles->end(), fresh.begin(), fresh.end());
  }
  return Status::OK();
}

}  // namespace

Status LabelStore::InsertBatchAfterImpl(ItemHandle pos,
                                        std::span<const LeafCookie> cookies,
                                        std::vector<ItemHandle>* handles) {
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  ItemHandle anchor = pos;
  for (const LeafCookie cookie : cookies) {
    auto h = InsertAfterImpl(anchor, cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    anchor = *h;
    fresh.push_back(anchor);
  }
  return FinishBatch(std::move(st), std::move(fresh), handles,
                     [this](ItemHandle h) { return EraseImpl(h); });
}

Status LabelStore::InsertBatchBeforeImpl(ItemHandle pos,
                                         std::span<const LeafCookie> cookies,
                                         std::vector<ItemHandle>* handles) {
  if (cookies.empty()) return Status::OK();
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  auto first = InsertBeforeImpl(pos, cookies[0]);
  if (!first.ok()) return first.status();
  ItemHandle anchor = *first;
  fresh.push_back(anchor);
  for (const LeafCookie cookie : cookies.subspan(1)) {
    auto h = InsertAfterImpl(anchor, cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    anchor = *h;
    fresh.push_back(anchor);
  }
  return FinishBatch(std::move(st), std::move(fresh), handles,
                     [this](ItemHandle h) { return EraseImpl(h); });
}

Status LabelStore::PushBackBatchImpl(std::span<const LeafCookie> cookies,
                                     std::vector<ItemHandle>* handles) {
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  for (const LeafCookie cookie : cookies) {
    auto h = PushBackImpl(cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    fresh.push_back(*h);
  }
  return FinishBatch(std::move(st), std::move(fresh), handles,
                     [this](ItemHandle h) { return EraseImpl(h); });
}

}  // namespace listlab
}  // namespace ltree
