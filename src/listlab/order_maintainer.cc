#include "listlab/order_maintainer.h"

#include <numeric>

#ifdef LISTLAB_VALIDATE
#include <cstdlib>
#include <iostream>
#endif

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace listlab {

const char* EraseSemanticsName(EraseSemantics semantics) {
  switch (semantics) {
    case EraseSemantics::kTombstone:
      return "tombstone";
    case EraseSemantics::kTombstonePurge:
      return "tombstone+purge";
    case EraseSemantics::kPhysical:
      return "physical";
  }
  return "unknown";
}

std::string MaintStats::ToString() const {
  return StrFormat(
      "MaintStats{inserts=%llu erases=%llu batches=%llu relabeled=%llu "
      "rebalances=%llu relabel_passes=%llu coalesced_regions=%llu "
      "nodes_allocated=%llu nodes_reused=%llu "
      "nodes_released=%llu relabels/insert=%.3f}",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(erases),
      static_cast<unsigned long long>(batch_inserts),
      static_cast<unsigned long long>(items_relabeled),
      static_cast<unsigned long long>(rebalances),
      static_cast<unsigned long long>(relabel_passes),
      static_cast<unsigned long long>(coalesced_regions),
      static_cast<unsigned long long>(nodes_allocated),
      static_cast<unsigned long long>(nodes_reused),
      static_cast<unsigned long long>(nodes_released), RelabelsPerInsert());
}

#ifdef LISTLAB_VALIDATE
void LabelStore::AutoValidate(const char* op) const {
  const audit::Report report = Validate();
  if (report.ok()) return;
  std::cerr << "LISTLAB_VALIDATE: " << name() << " corrupted after " << op
            << ":\n"
            << report.ToString() << "\n";
  std::abort();
}
#endif

Status LabelStore::BulkLoad(uint64_t n, std::vector<ItemHandle>* handles) {
  std::vector<LeafCookie> cookies(n);
  std::iota(cookies.begin(), cookies.end(), LeafCookie{0});
  return BulkLoad(cookies, handles);
}

// Default batch paths: per-item insertion, preserving batch order. Schemes
// with a native single-rebalance batch (the L-Tree variants) override.
// A batch is all-or-nothing: on a mid-batch failure the already inserted
// items are erased again, so callers never see a half-applied batch.

namespace {

Status FinishBatch(LabelStore* store, Status st,
                   std::vector<ItemHandle>&& fresh,
                   std::vector<ItemHandle>* handles) {
  if (!st.ok()) {
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      (void)store->Erase(*it);
    }
    return st;
  }
  if (handles != nullptr) {
    handles->insert(handles->end(), fresh.begin(), fresh.end());
  }
  return Status::OK();
}

}  // namespace

Status LabelStore::InsertBatchAfter(ItemHandle pos,
                                    std::span<const LeafCookie> cookies,
                                    std::vector<ItemHandle>* handles) {
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  ItemHandle anchor = pos;
  for (const LeafCookie cookie : cookies) {
    auto h = InsertAfter(anchor, cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    anchor = *h;
    fresh.push_back(anchor);
  }
  return FinishBatch(this, std::move(st), std::move(fresh), handles);
}

Status LabelStore::InsertBatchBefore(ItemHandle pos,
                                     std::span<const LeafCookie> cookies,
                                     std::vector<ItemHandle>* handles) {
  if (cookies.empty()) return Status::OK();
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  auto first = InsertBefore(pos, cookies[0]);
  if (!first.ok()) return first.status();
  ItemHandle anchor = *first;
  fresh.push_back(anchor);
  for (const LeafCookie cookie : cookies.subspan(1)) {
    auto h = InsertAfter(anchor, cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    anchor = *h;
    fresh.push_back(anchor);
  }
  return FinishBatch(this, std::move(st), std::move(fresh), handles);
}

Status LabelStore::PushBackBatch(std::span<const LeafCookie> cookies,
                                 std::vector<ItemHandle>* handles) {
  std::vector<ItemHandle> fresh;
  Status st = Status::OK();
  for (const LeafCookie cookie : cookies) {
    auto h = PushBack(cookie);
    if (!h.ok()) {
      st = h.status();
      break;
    }
    fresh.push_back(*h);
  }
  return FinishBatch(this, std::move(st), std::move(fresh), handles);
}

}  // namespace listlab
}  // namespace ltree
