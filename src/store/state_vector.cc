#include "store/state_vector.h"

#include "common/macros.h"

namespace ltree {
namespace store {

bool StateVector::DominatedBy(const StateVector& other) const {
  LTREE_CHECK(seqs_.size() == other.seqs_.size());
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (seqs_[i] > other.seqs_[i]) return false;
  }
  return true;
}

uint64_t StateVector::LagBehind(const StateVector& newer) const {
  LTREE_CHECK(seqs_.size() == newer.seqs_.size());
  uint64_t lag = 0;
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (newer.seqs_[i] > seqs_[i]) lag += newer.seqs_[i] - seqs_[i];
  }
  return lag;
}

std::string StateVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(seqs_[i]);
  }
  out += ']';
  return out;
}

}  // namespace store
}  // namespace ltree
