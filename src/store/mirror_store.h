// MirrorStore: the reference change-feed subscriber.
//
// A mirror holds, per shard, only the live (cookie -> label) map — no
// scheme, no tree, no arena — plus a StateVector of the last applied
// sequence numbers. Sync(primary) runs one catch-up round: for every shard
// whose feed has advanced past the mirror's position it requests
// CatchUp(shard, seq) and applies either the delta events in order or, when
// the primary trimmed the log past the mirror, the snapshot wholesale.
//
// The convergence guarantee (exercised by tests/docstore/mirror_store_test):
// from ANY stale state vector, one Sync round with no concurrent writes
// makes CheckEquivalent(primary) pass — per-shard label order and cookie
// sequences match the primary exactly.
//
// Apply-time protocol checks are strict: a delta that does not start right
// after the mirror's position, a relabel/erase for an unknown cookie, or an
// insert for a cookie already present all fail with Corruption-class errors
// instead of being papered over — the mirror doubles as an end-to-end
// auditor of the feed contents.

#ifndef LTREE_STORE_MIRROR_STORE_H_
#define LTREE_STORE_MIRROR_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/relabel_listener.h"
#include "store/change_feed.h"
#include "store/document_store.h"
#include "store/state_vector.h"

namespace ltree {
namespace store {

class MirrorStore {
 public:
  explicit MirrorStore(uint32_t num_shards)
      : shards_(num_shards), state_(num_shards) {}

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const StateVector& state_vector() const { return state_; }

  /// Overrides the mirror's position for `shard` without touching its
  /// contents — tests use it to simulate an arbitrarily stale subscriber.
  void ForcePosition(uint32_t shard, uint64_t seq) { state_.Set(shard, seq); }

  /// One catch-up round against the primary: per shard, request the delta
  /// or snapshot and apply it. With no concurrent writes the mirror is
  /// equivalent to the primary afterwards.
  Status Sync(const DocumentStore& primary);

  /// Applies one shard's CatchUpResult (as returned for this mirror's
  /// position). Split out so tests can replay captured results.
  Status ApplyCatchUp(uint32_t shard, const CatchUpResult& result);

  /// The mirror's live (label, cookie) pairs for `shard`, label-ordered —
  /// directly comparable with DocumentStore::ShardState.
  std::vector<std::pair<Label, LeafCookie>> ShardState(uint32_t shard) const;

  uint64_t ShardItems(uint32_t shard) const { return shards_[shard].size(); }

  /// Full equivalence against the primary: same shard count and, per
  /// shard, identical label-ordered (label, cookie) sequences. The error
  /// message pinpoints the first divergence.
  Status CheckEquivalent(const DocumentStore& primary) const;

  // Sync-path observability (bench_docstore reports these).
  uint64_t delta_syncs() const { return delta_syncs_; }
  uint64_t snapshot_syncs() const { return snapshot_syncs_; }
  uint64_t events_applied() const { return events_applied_; }

 private:
  Status ApplyEvent(uint32_t shard, const FeedEvent& event);

  std::vector<std::unordered_map<LeafCookie, Label>> shards_;
  StateVector state_;
  uint64_t delta_syncs_ = 0;
  uint64_t snapshot_syncs_ = 0;
  uint64_t events_applied_ = 0;
};

}  // namespace store
}  // namespace ltree

#endif  // LTREE_STORE_MIRROR_STORE_H_
