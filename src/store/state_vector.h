// StateVector: a subscriber's compact per-shard sync position.
//
// The sharded DocumentStore versions every label event with a per-shard
// monotonically increasing sequence number (see change_feed.h). A
// subscriber summarizes everything it has applied as one vector
// shard -> last-applied sequence number — the state-vector-sync pattern:
// instead of replaying every event since the beginning of time, a lagging
// subscriber presents this one compact vector and receives exactly the
// missing suffix (or a snapshot once the log has been trimmed past its
// position).

#ifndef LTREE_STORE_STATE_VECTOR_H_
#define LTREE_STORE_STATE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ltree {
namespace store {

class StateVector {
 public:
  StateVector() = default;
  explicit StateVector(uint32_t num_shards) : seqs_(num_shards, 0) {}

  uint32_t num_shards() const { return static_cast<uint32_t>(seqs_.size()); }

  /// Last applied sequence number for `shard`; 0 means "nothing applied"
  /// (feed sequence numbers start at 1).
  uint64_t seq(uint32_t shard) const { return seqs_[shard]; }

  /// Moves `shard`'s position forward. Positions never move backward: a
  /// regressing advance is ignored, keeping Sync idempotent.
  void Advance(uint32_t shard, uint64_t seq) {
    if (seq > seqs_[shard]) seqs_[shard] = seq;
  }

  /// Overwrites `shard`'s position, regressions included — only for
  /// simulating stale subscribers (MirrorStore::ForcePosition); the normal
  /// sync path goes through Advance.
  void Set(uint32_t shard, uint64_t seq) { seqs_[shard] = seq; }

  /// True iff this vector is pointwise <= `other` (this subscriber knows
  /// nothing `other` doesn't).
  bool DominatedBy(const StateVector& other) const;

  /// Total events this vector is behind `newer` (pointwise sum of
  /// positive differences) — the feed-lag metric.
  uint64_t LagBehind(const StateVector& newer) const;

  bool operator==(const StateVector& other) const {
    return seqs_ == other.seqs_;
  }

  /// Compact rendering, e.g. "[17 0 4 9]".
  std::string ToString() const;

 private:
  std::vector<uint64_t> seqs_;
};

}  // namespace store
}  // namespace ltree

#endif  // LTREE_STORE_STATE_VECTOR_H_
