#include "store/document_store.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "common/macros.h"
#include "common/random.h"
#include "core/failpoint.h"
#include "listlab/factory.h"

namespace ltree {
namespace store {

// One shard: the labeling scheme, its versioned feed, and the live-item
// registry (cookie -> handle/doc). The ctx is itself the scheme's
// RelabelListener — the "feed tap" that turns listener callbacks into
// versioned feed events. Relabels of tombstoned slots (cookies no longer
// in `live`) are filtered out so the feed tracks live state only.
struct DocumentStore::ShardCtx : RelabelListener {
  struct LiveItem {
    listlab::ItemHandle handle = listlab::kInvalidItemHandle;
    DocId doc = 0;
  };

  ShardCtx(std::unique_ptr<listlab::LabelStore> s, uint64_t feed_capacity)
      : store(std::move(s)), feed(feed_capacity) {
    store->set_listener(this);
  }

  void OnRelabel(LeafCookie cookie, Label old_label,
                 Label new_label) override {
    if (live.find(cookie) == live.end()) return;  // tombstone shuffle
    feed.Append({.kind = FeedEvent::Kind::kRelabel,
                 .cookie = cookie,
                 .old_label = old_label,
                 .new_label = new_label});
    ++relabels_published;
  }

  void OnErase(LeafCookie cookie, Label last_label) override {
    if (live.find(cookie) == live.end()) return;  // rolled-back batch item
    feed.Append({.kind = FeedEvent::Kind::kErase,
                 .cookie = cookie,
                 .old_label = last_label,
                 .new_label = kInvalidLabel});
    ++erases_published;
  }

  std::unique_ptr<listlab::LabelStore> store;
  ChangeFeed feed;
  std::unordered_map<LeafCookie, LiveItem> live;
  uint64_t inserts_published = 0;
  uint64_t erases_published = 0;
  uint64_t relabels_published = 0;
};

DocumentStore::DocumentStore(DocStoreOptions options)
    : options_(std::move(options)) {}

DocumentStore::~DocumentStore() = default;

Result<std::unique_ptr<DocumentStore>> DocumentStore::Make(
    const DocStoreOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.feed_capacity == 0) {
    return Status::InvalidArgument("feed_capacity must be >= 1");
  }
  LTREE_ASSIGN_OR_RETURN(
      auto schemes,
      listlab::MakeLabelStores(options.scheme_spec, options.num_shards));
  std::unique_ptr<DocumentStore> out(new DocumentStore(options));
  out->shards_.reserve(options.num_shards);
  for (auto& scheme : schemes) {
    out->shards_.push_back(
        std::make_unique<ShardCtx>(std::move(scheme), options.feed_capacity));
  }
  return out;
}

uint32_t DocumentStore::ShardOf(DocId doc) const {
  // SplitMix64 scrambles sequential ids so routing stays uniform no matter
  // how callers mint DocIds.
  return static_cast<uint32_t>(SplitMix64(doc).Next() %
                               shards_.size());
}

// ---------------------------------------------------------------- documents

Status DocumentStore::CreateDocument(DocId doc) {
  if (docs_.count(doc) != 0) {
    return Status::AlreadyExists("document " + std::to_string(doc) +
                                 " already exists");
  }
  docs_.emplace(doc, DocState{.shard = ShardOf(doc), .items = {}});
  AutoValidate("CreateDocument");
  return Status::OK();
}

Status DocumentStore::DropDocument(DocId doc) {
  LTREE_FAILPOINT("store.erase");
  LTREE_ASSIGN_OR_RETURN(DocState * state, FindDoc(doc));
  ShardCtx& ctx = *shards_[state->shard];
  for (const listlab::ItemHandle handle : state->items) {
    LTREE_ASSIGN_OR_RETURN(const LeafCookie cookie,
                           ctx.store->GetCookie(handle));
    LTREE_RETURN_IF_ERROR(ctx.store->Erase(handle));  // tap publishes kErase
    ctx.live.erase(cookie);
    ++ledger_.erases;
  }
  docs_.erase(doc);
  AutoValidate("DropDocument");
  return Status::OK();
}

Result<uint64_t> DocumentStore::DocSize(DocId doc) const {
  LTREE_ASSIGN_OR_RETURN(const DocState* state, FindDoc(doc));
  return static_cast<uint64_t>(state->items.size());
}

// --------------------------------------------------------------- item edits

Result<DocumentStore::DocState*> DocumentStore::FindDoc(DocId doc) {
  auto it = docs_.find(doc);
  if (it == docs_.end()) {
    return Status::NotFound("unknown document " + std::to_string(doc));
  }
  return &it->second;
}

Result<const DocumentStore::DocState*> DocumentStore::FindDoc(
    DocId doc) const {
  auto it = docs_.find(doc);
  if (it == docs_.end()) {
    return Status::NotFound("unknown document " + std::to_string(doc));
  }
  return &it->second;
}

void DocumentStore::PublishInsert(ShardCtx& ctx, DocId doc, LeafCookie cookie,
                                  listlab::ItemHandle handle) {
  ctx.feed.Append({.kind = FeedEvent::Kind::kInsert,
                   .cookie = cookie,
                   .old_label = kInvalidLabel,
                   .new_label = ctx.store->GetLabel(handle).ValueOrDie()});
  ++ctx.inserts_published;
  ctx.live[cookie] = {.handle = handle, .doc = doc};
  ++ledger_.inserts;
}

Result<LeafCookie> DocumentStore::InsertOne(DocId doc, uint64_t rank,
                                            bool before, bool append) {
  LTREE_FAILPOINT("store.insert");
  LTREE_ASSIGN_OR_RETURN(DocState * state, FindDoc(doc));
  ShardCtx& ctx = *shards_[state->shard];
  const LeafCookie cookie = next_cookie_;
  Result<listlab::ItemHandle> inserted = [&]() -> Result<listlab::ItemHandle> {
    if (state->items.empty()) {
      // First item: append to the shard list's tail — documents sharing a
      // shard interleave there, which is fine, document order lives in the
      // registry.
      return ctx.store->PushBack(cookie);
    }
    if (append) return ctx.store->InsertAfter(state->items.back(), cookie);
    if (rank >= state->items.size()) {
      return Status::OutOfRange("rank " + std::to_string(rank) +
                                " out of range for document of size " +
                                std::to_string(state->items.size()));
    }
    return before ? ctx.store->InsertBefore(state->items[rank], cookie)
                  : ctx.store->InsertAfter(state->items[rank], cookie);
  }();
  LTREE_RETURN_IF_ERROR(inserted.status());
  ++next_cookie_;
  const size_t at = state->items.empty() ? 0
                    : append              ? state->items.size()
                    : before              ? rank
                                          : rank + 1;
  state->items.insert(state->items.begin() + static_cast<ptrdiff_t>(at),
                      *inserted);
  PublishInsert(ctx, doc, cookie, *inserted);
  AutoValidate("Insert");
  return cookie;
}

Result<LeafCookie> DocumentStore::Append(DocId doc) {
  return InsertOne(doc, 0, /*before=*/false, /*append=*/true);
}

Result<LeafCookie> DocumentStore::InsertAfterRank(DocId doc, uint64_t rank) {
  return InsertOne(doc, rank, /*before=*/false, /*append=*/false);
}

Result<LeafCookie> DocumentStore::InsertBeforeRank(DocId doc, uint64_t rank) {
  return InsertOne(doc, rank, /*before=*/true, /*append=*/false);
}

Status DocumentStore::InsertBatchAfterRank(DocId doc, uint64_t rank,
                                           uint64_t count,
                                           std::vector<LeafCookie>* cookies) {
  if (count == 0) return Status::OK();
  LTREE_FAILPOINT("store.insert");
  LTREE_ASSIGN_OR_RETURN(DocState * state, FindDoc(doc));
  ShardCtx& ctx = *shards_[state->shard];
  if (!state->items.empty() && rank >= state->items.size()) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " out of range for document of size " +
                              std::to_string(state->items.size()));
  }
  std::vector<LeafCookie> fresh(count);
  std::iota(fresh.begin(), fresh.end(), next_cookie_);
  std::vector<listlab::ItemHandle> handles;
  // A mid-batch failure makes the scheme roll back by erasing the partial
  // prefix, which shows up in its MaintStats; snapshot the counters so the
  // stats-rollup conservation rule can account for items that never became
  // live.
  const uint64_t pre_inserts = ctx.store->stats().inserts;
  const uint64_t pre_erases = ctx.store->stats().erases;
  const Status st =
      state->items.empty()
          ? ctx.store->PushBackBatch(fresh, &handles)
          : ctx.store->InsertBatchAfter(state->items[rank], fresh, &handles);
  if (!st.ok()) {
    ledger_.rolled_back_inserts += ctx.store->stats().inserts - pre_inserts;
    ledger_.rolled_back_erases += ctx.store->stats().erases - pre_erases;
    return st;
  }
  LTREE_CHECK(handles.size() == count);
  next_cookie_ += count;
  const size_t at = state->items.empty() ? 0 : static_cast<size_t>(rank) + 1;
  state->items.insert(state->items.begin() + static_cast<ptrdiff_t>(at),
                      handles.begin(), handles.end());
  for (uint64_t i = 0; i < count; ++i) {
    PublishInsert(ctx, doc, fresh[i], handles[i]);
  }
  if (cookies != nullptr) {
    cookies->insert(cookies->end(), fresh.begin(), fresh.end());
  }
  AutoValidate("InsertBatchAfterRank");
  return Status::OK();
}

Status DocumentStore::EraseAt(DocId doc, uint64_t rank) {
  LTREE_FAILPOINT("store.erase");
  LTREE_ASSIGN_OR_RETURN(DocState * state, FindDoc(doc));
  if (rank >= state->items.size()) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " out of range for document of size " +
                              std::to_string(state->items.size()));
  }
  ShardCtx& ctx = *shards_[state->shard];
  const listlab::ItemHandle handle = state->items[rank];
  LTREE_ASSIGN_OR_RETURN(const LeafCookie cookie, ctx.store->GetCookie(handle));
  LTREE_RETURN_IF_ERROR(ctx.store->Erase(handle));  // tap publishes kErase
  ctx.live.erase(cookie);
  state->items.erase(state->items.begin() + static_cast<ptrdiff_t>(rank));
  ++ledger_.erases;
  AutoValidate("EraseAt");
  return Status::OK();
}

Status DocumentStore::Apply(DocId doc, const workload::ListOp& op) {
  LTREE_ASSIGN_OR_RETURN(const DocState* state, FindDoc(doc));
  const uint64_t size = state->items.size();
  const uint64_t rank = size == 0 ? 0 : std::min(op.rank, size - 1);
  switch (op.kind) {
    case workload::ListOp::Kind::kInsertAfter:
      return (size == 0 ? Append(doc) : InsertAfterRank(doc, rank)).status();
    case workload::ListOp::Kind::kInsertBefore:
      return (size == 0 ? Append(doc) : InsertBeforeRank(doc, rank)).status();
    case workload::ListOp::Kind::kErase:
      if (size == 0) {
        return Status::FailedPrecondition("erase on empty document");
      }
      return EraseAt(doc, rank);
  }
  return Status::InvalidArgument("unknown op kind");
}

// ------------------------------------------------------------------ queries

Result<Label> DocumentStore::LabelAt(DocId doc, uint64_t rank) const {
  LTREE_ASSIGN_OR_RETURN(const DocState* state, FindDoc(doc));
  if (rank >= state->items.size()) {
    return Status::OutOfRange("rank out of range");
  }
  return shards_[state->shard]->store->GetLabel(state->items[rank]);
}

Result<std::vector<LeafCookie>> DocumentStore::DocCookies(DocId doc) const {
  LTREE_ASSIGN_OR_RETURN(const DocState* state, FindDoc(doc));
  const ShardCtx& ctx = *shards_[state->shard];
  std::vector<LeafCookie> out;
  out.reserve(state->items.size());
  for (const listlab::ItemHandle handle : state->items) {
    LTREE_ASSIGN_OR_RETURN(const LeafCookie cookie,
                           ctx.store->GetCookie(handle));
    out.push_back(cookie);
  }
  return out;
}

const listlab::LabelStore& DocumentStore::shard_store(uint32_t shard) const {
  return *shards_[shard]->store;
}

const ChangeFeed& DocumentStore::feed(uint32_t shard) const {
  return shards_[shard]->feed;
}

listlab::LabelStore::ReadGuard DocumentStore::AcquireShardRead(
    uint32_t shard) const {
  return shards_[shard]->store->AcquireRead();
}

std::vector<std::pair<Label, LeafCookie>> DocumentStore::ShardState(
    uint32_t shard) const {
  const ShardCtx& ctx = *shards_[shard];
  // One guard over all the label reads: the snapshot stays consistent even
  // if another thread is mutating a *different* shard, and label loads are
  // safe against this shard's writer (ctx.live itself is store-level state
  // and still relies on the store's thread-compatible contract).
  const listlab::LabelStore::ReadGuard guard = ctx.store->AcquireRead();
  std::vector<std::pair<Label, LeafCookie>> out;
  out.reserve(ctx.live.size());
  for (const auto& [cookie, item] : ctx.live) {
    out.emplace_back(ctx.store->LabelOf(guard, item.handle).ValueOrDie(),
                     cookie);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ----------------------------------------------------------- change-feed sync

StateVector DocumentStore::CurrentStateVector() const {
  StateVector sv(num_shards());
  for (uint32_t i = 0; i < num_shards(); ++i) {
    sv.Advance(i, shards_[i]->feed.last_seq());
  }
  return sv;
}

Result<CatchUpResult> DocumentStore::CatchUp(uint32_t shard,
                                             uint64_t from_seq) const {
  LTREE_FAILPOINT("store.catchup");
  if (shard >= num_shards()) {
    return Status::InvalidArgument("unknown shard " + std::to_string(shard));
  }
  const ShardCtx& ctx = *shards_[shard];
  const uint64_t last = ctx.feed.last_seq();
  if (from_seq > last) {
    return Status::InvalidArgument(
        "subscriber position " + std::to_string(from_seq) +
        " is beyond shard feed head " + std::to_string(last));
  }
  CatchUpResult out;
  out.from_seq = from_seq;
  out.to_seq = last;
  if (ctx.feed.CanServeFrom(from_seq)) {
    LTREE_ASSIGN_OR_RETURN(out.events, ctx.feed.EventsSince(from_seq));
    return out;
  }
  // The log has been trimmed past the subscriber: one compact label
  // snapshot replaces replaying the missing prefix.
  out.snapshot = true;
  out.state = ShardState(shard);
  return out;
}

void DocumentStore::TrimFeeds(uint64_t keep) {
  for (auto& ctx : shards_) ctx->feed.TrimTo(keep);
}

// ------------------------------------------------------ subscriber registry

Status DocumentStore::RegisterSubscriber(uint64_t subscriber,
                                         const StateVector& position) {
  if (position.num_shards() != num_shards()) {
    return Status::InvalidArgument(
        "subscriber state vector has " + std::to_string(position.num_shards()) +
        " shards, store has " + std::to_string(num_shards()));
  }
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const uint64_t head = shards_[i]->feed.last_seq();
    if (position.seq(i) > head) {
      return Status::InvalidArgument(
          "subscriber position " + std::to_string(position.seq(i)) +
          " for shard " + std::to_string(i) + " is beyond feed head " +
          std::to_string(head));
    }
  }
  subscribers_[subscriber] = position;
  AutoValidate("RegisterSubscriber");
  return Status::OK();
}

Status DocumentStore::UnregisterSubscriber(uint64_t subscriber) {
  if (subscribers_.erase(subscriber) == 0) {
    return Status::NotFound("subscriber " + std::to_string(subscriber) +
                            " is not registered");
  }
  return Status::OK();
}

uint64_t DocumentStore::SlowestSubscriberSeq(uint32_t shard) const {
  uint64_t slowest = shards_[shard]->feed.last_seq();
  for (const auto& [id, position] : subscribers_) {
    slowest = std::min(slowest, position.seq(shard));
  }
  return slowest;
}

uint64_t DocumentStore::TrimToSlowestSubscriber(uint64_t max_retained) {
  uint64_t trimmed = 0;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    ChangeFeed& feed = shards_[i]->feed;
    // Events in (slowest, last_seq] are still owed to some subscriber;
    // everything at or below the slowest position has been applied
    // everywhere. The budget wins over the laggard: past it the laggard
    // re-syncs via snapshot instead of pinning memory.
    const uint64_t needed = feed.last_seq() - SlowestSubscriberSeq(i);
    const uint64_t before = feed.trimmed();
    feed.TrimTo(std::min(needed, max_retained));
    trimmed += feed.trimmed() - before;
  }
  AutoValidate("TrimToSlowestSubscriber");
  return trimmed;
}

// -------------------------------------------------------------------- stats

namespace {

void AccumulateMaintStats(const listlab::MaintStats& in,
                          listlab::MaintStats* out) {
  out->inserts += in.inserts;
  out->erases += in.erases;
  out->batch_inserts += in.batch_inserts;
  out->items_relabeled += in.items_relabeled;
  out->rebalances += in.rebalances;
  out->relabel_passes += in.relabel_passes;
  out->coalesced_regions += in.coalesced_regions;
  out->nodes_allocated += in.nodes_allocated;
  out->nodes_reused += in.nodes_reused;
  out->nodes_released += in.nodes_released;
}

}  // namespace

StoreStats DocumentStore::stats() const {
  StoreStats out;
  out.documents = docs_.size();
  out.per_shard_items.reserve(shards_.size());
  out.per_shard_heap_bytes.reserve(shards_.size());
  for (const auto& ctx : shards_) {
    AccumulateMaintStats(ctx->store->stats(), &out.rollup);
    const uint64_t items = ctx->store->size();
    const uint64_t bytes = ctx->store->ApproxHeapBytes();
    out.live_items += items;
    out.heap_bytes += bytes;
    out.feed_events += ctx->feed.last_seq();
    out.feed_retained += ctx->feed.retained();
    out.feed_trimmed += ctx->feed.trimmed();
    out.per_shard_items.push_back(items);
    out.per_shard_heap_bytes.push_back(bytes);
  }
  return out;
}

audit::Report DocumentStore::Validate() const {
  audit::Report report;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    report.Absorb(shards_[i]->store->Validate(),
                  "docstore:/shard" + std::to_string(i));
  }
  ValidateStoreLevel(&report);
  return report;
}

void DocumentStore::ValidateStoreLevel(audit::Report* out) const {
  audit::Report& report = *out;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    shards_[i]->feed.Audit(&report,
                           "docstore:/shard" + std::to_string(i) + "/feed");
  }

  // shard-routing: registry <-> shards form a bijection.
  std::vector<uint64_t> items_per_shard(shards_.size(), 0);
  for (const auto& [doc, state] : docs_) {
    const std::string doc_path = "docstore:/doc" + std::to_string(doc);
    if (state.shard >= shards_.size()) {
      report.Add(doc_path, "shard-routing",
                 "registered shard " + std::to_string(state.shard) +
                     " out of range");
      continue;
    }
    if (ShardOf(doc) != state.shard) {
      report.Add(doc_path, "shard-routing",
                 "router resolves to shard " + std::to_string(ShardOf(doc)) +
                     " but registry holds shard " +
                     std::to_string(state.shard));
    }
    const ShardCtx& ctx = *shards_[state.shard];
    items_per_shard[state.shard] += state.items.size();
    for (const listlab::ItemHandle handle : state.items) {
      const auto cookie = ctx.store->GetCookie(handle);
      if (!cookie.ok()) {
        report.Add(doc_path, "shard-routing",
                   "item handle " + std::to_string(handle) +
                       " does not resolve in its shard store: " +
                       cookie.status().ToString());
        continue;
      }
      const auto live = ctx.live.find(*cookie);
      if (live == ctx.live.end() || live->second.handle != handle ||
          live->second.doc != doc) {
        report.Add(doc_path, "shard-routing",
                   "cookie " + std::to_string(*cookie) +
                       " not registered to this document/handle in the "
                       "shard live table");
      }
    }
  }
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const ShardCtx& ctx = *shards_[i];
    const std::string path = "docstore:/shard" + std::to_string(i);
    if (items_per_shard[i] != ctx.live.size()) {
      report.Add(path, "shard-routing",
                 "documents register " + std::to_string(items_per_shard[i]) +
                     " items but the live table holds " +
                     std::to_string(ctx.live.size()));
    }
    if (ctx.live.size() != ctx.store->size()) {
      report.Add(path, "shard-routing",
                 "live table holds " + std::to_string(ctx.live.size()) +
                     " cookies but the scheme reports " +
                     std::to_string(ctx.store->size()) + " live items");
    }
    // feed publication counters vs the feed's own sequence clock.
    const uint64_t published = ctx.inserts_published + ctx.erases_published +
                               ctx.relabels_published;
    if (published != ctx.feed.last_seq()) {
      report.Add(path + "/feed", "feed-continuity",
                 "published counters sum to " + std::to_string(published) +
                     " but last_seq is " +
                     std::to_string(ctx.feed.last_seq()));
    }
  }

  // subscriber-registry: registered positions must describe this store —
  // right shard count, never ahead of what the feeds actually published.
  for (const auto& [id, position] : subscribers_) {
    const std::string sub_path = "docstore:/subscriber" + std::to_string(id);
    if (position.num_shards() != num_shards()) {
      report.Add(sub_path, "subscriber-registry",
                 "state vector has " + std::to_string(position.num_shards()) +
                     " shards, store has " + std::to_string(num_shards()));
      continue;
    }
    for (uint32_t i = 0; i < num_shards(); ++i) {
      if (position.seq(i) > shards_[i]->feed.last_seq()) {
        report.Add(sub_path, "subscriber-registry",
                   "shard " + std::to_string(i) + " position " +
                       std::to_string(position.seq(i)) +
                       " is beyond feed head " +
                       std::to_string(shards_[i]->feed.last_seq()));
      }
    }
  }

  // stats-rollup: scheme counters, the store ledger and the feed
  // publication counters are three independent bookkeepers of the same
  // event stream.
  uint64_t scheme_inserts = 0;
  uint64_t scheme_erases = 0;
  uint64_t published_inserts = 0;
  uint64_t published_erases = 0;
  for (const auto& ctx : shards_) {
    scheme_inserts += ctx->store->stats().inserts;
    scheme_erases += ctx->store->stats().erases;
    published_inserts += ctx->inserts_published;
    published_erases += ctx->erases_published;
  }
  const auto check = [&report](uint64_t got, uint64_t want,
                               const std::string& what) {
    if (got != want) {
      report.Add("docstore:", "stats-rollup",
                 what + ": " + std::to_string(got) + " != " +
                     std::to_string(want));
    }
  };
  check(scheme_inserts, ledger_.inserts + ledger_.rolled_back_inserts,
        "scheme insert counters vs store ledger");
  check(scheme_erases, ledger_.erases + ledger_.rolled_back_erases,
        "scheme erase counters vs store ledger");
  check(published_inserts, ledger_.inserts,
        "published insert events vs store ledger");
  check(published_erases, ledger_.erases,
        "published erase events vs store ledger");
  uint64_t live_total = 0;
  for (const auto& ctx : shards_) live_total += ctx->store->size();
  check(live_total, ledger_.inserts - ledger_.erases,
        "live items vs ledger insert/erase balance");
}

void DocumentStore::AutoValidate(const char* op) const {
#ifdef LISTLAB_VALIDATE
  // Only the store-layer rules re-run here: under LISTLAB_VALIDATE each
  // shard's scheme already deep-audits itself after every mutation, so
  // repeating those walks per store mutation would square the cost.
  audit::Report report;
  ValidateStoreLevel(&report);
  if (report.ok()) return;
  std::cerr << "LISTLAB_VALIDATE: DocumentStore corrupted after " << op
            << ":\n"
            << report.ToString() << "\n";
  std::abort();
#else
  (void)op;
#endif
}

}  // namespace store
}  // namespace ltree
