// DocumentStore: many documents hash-sharded over independent LabelStores,
// each shard exporting a versioned label change-feed.
//
// The paper's scenario is one LabeledDocument; production is millions of
// documents with hot/cold skew. This store routes document ids to
// `num_shards` shards (hash routing, stable across runs), each shard
// owning one labeling scheme instance built from the same spec string
// (factory.h grammar) — so every shard has its own arena, its own
// MaintStats window, and its own label space, and shards never contend.
//
// Outward-facing state: every mutation is published to the owning shard's
// ChangeFeed (change_feed.h) with a per-shard sequence number —
//
//   * kInsert / kErase events are appended by this store around the
//     LabelStore call (erase via the RelabelListener::OnErase hook);
//   * kRelabel events flow from the scheme's RelabelListener; relabels of
//     tombstoned (already erased) slots are filtered out, so the feed
//     describes exactly the evolution of the live label state;
//
// and a subscriber holding a StateVector (shard -> last applied seq) calls
// CatchUp(shard, seq) to receive either the missing event suffix or — when
// the bounded log has been trimmed past its position — a compact label
// snapshot of the whole shard. Either way one round reconverges the
// subscriber (see mirror_store.h for the reference subscriber).
//
// Documents address their items by rank (matching workload::ListOp), and a
// shard's LabelStore holds the items of every document routed to it; item
// cookies are assigned by this store and are unique store-wide, so feed
// events are unambiguous across documents.

#ifndef LTREE_STORE_DOCUMENT_STORE_H_
#define LTREE_STORE_DOCUMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/validate.h"
#include "listlab/order_maintainer.h"
#include "store/change_feed.h"
#include "store/state_vector.h"
#include "workload/update_stream.h"

namespace ltree {
namespace store {

/// Stable client-chosen document identifier.
using DocId = uint64_t;

struct DocStoreOptions {
  /// Shard count (>= 1). Documents are hash-routed, so the distribution is
  /// uniform over documents regardless of id patterns.
  uint32_t num_shards = 8;
  /// Labeling scheme per shard (listlab::MakeLabelStore grammar).
  std::string scheme_spec = "ltree:16:4";
  /// Retained events per shard feed before the oldest are trimmed.
  uint64_t feed_capacity = 4096;
};

/// Store-wide statistics: the pointwise rollup of every shard's MaintStats
/// plus per-shard breakdowns (the stats-rollup audit rule checks the
/// rollup conserves against the store's own operation ledger).
struct StoreStats {
  listlab::MaintStats rollup;
  uint64_t documents = 0;
  uint64_t live_items = 0;
  uint64_t feed_events = 0;    ///< sum of per-shard last_seq
  uint64_t feed_retained = 0;  ///< events currently held across feeds
  uint64_t feed_trimmed = 0;   ///< events evicted across feeds
  uint64_t heap_bytes = 0;     ///< sum of per-shard ApproxHeapBytes
  std::vector<uint64_t> per_shard_items;
  std::vector<uint64_t> per_shard_heap_bytes;
};

/// One shard's answer to "I have applied everything up to from_seq".
struct CatchUpResult {
  /// False: `events` carries the exact suffix (from_seq, to_seq], oldest
  /// first. True: the log was trimmed past from_seq; `state` carries the
  /// full live (label, cookie) snapshot of the shard, label-ordered, which
  /// replaces the subscriber's shard state wholesale.
  bool snapshot = false;
  uint64_t from_seq = 0;
  uint64_t to_seq = 0;  ///< subscriber's new position after applying
  std::vector<FeedEvent> events;
  std::vector<std::pair<Label, LeafCookie>> state;
};

class DocumentStore {
 public:
  static Result<std::unique_ptr<DocumentStore>> Make(
      const DocStoreOptions& options);
  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  const DocStoreOptions& options() const { return options_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The shard `doc` routes to: hash-based, deterministic, stable for the
  /// lifetime of the store (the routing-bijection audit re-derives it).
  uint32_t ShardOf(DocId doc) const;

  // ------------------------------------------------------------- documents

  Status CreateDocument(DocId doc);
  /// Erases every item of `doc` (publishing erase events) and forgets it.
  Status DropDocument(DocId doc);
  bool HasDocument(DocId doc) const { return docs_.count(doc) != 0; }
  uint64_t num_documents() const { return docs_.size(); }
  Result<uint64_t> DocSize(DocId doc) const;

  // ----------------------------------------------------------- item edits
  //
  // Items are addressed by rank among the document's live items, matching
  // workload::ListOp. Every successful edit publishes to the owning
  // shard's feed. Returned cookies identify items in feed events.

  /// Appends one item at the document's tail (works on an empty document).
  Result<LeafCookie> Append(DocId doc);
  Result<LeafCookie> InsertAfterRank(DocId doc, uint64_t rank);
  Result<LeafCookie> InsertBeforeRank(DocId doc, uint64_t rank);
  /// Batch insertion right after `rank` (Section 4.1 path on L-Tree
  /// schemes: one coalesced rebuild region for the whole run). On an empty
  /// document inserts at the head.
  Status InsertBatchAfterRank(DocId doc, uint64_t rank, uint64_t count,
                              std::vector<LeafCookie>* cookies = nullptr);
  Status EraseAt(DocId doc, uint64_t rank);

  /// Applies one rank-addressed workload op; ranks are clamped to the live
  /// range and inserts into an empty document append.
  Status Apply(DocId doc, const workload::ListOp& op);

  // -------------------------------------------------------------- queries

  Result<Label> LabelAt(DocId doc, uint64_t rank) const;
  /// The document's item cookies in document order.
  Result<std::vector<LeafCookie>> DocCookies(DocId doc) const;

  /// The shard's labeling scheme, read-only (mutating it directly would
  /// desync the registry and the feed, so no mutable accessor exists).
  const listlab::LabelStore& shard_store(uint32_t shard) const;
  const ChangeFeed& feed(uint32_t shard) const;

  /// Acquires the shard scheme's read guard (a lock-free epoch pin for the
  /// L-Tree schemes, a shared lock otherwise), so label reads through
  /// shard_store() — LabelOf/CookieOf/CompareOrder/ScanAll — can run while
  /// a writer mutates that shard. The guard protects label state only; the
  /// store-level registries (documents, feeds, subscribers) keep their
  /// thread-compatible contract and still need external quiescence.
  listlab::LabelStore::ReadGuard AcquireShardRead(uint32_t shard) const;

  /// The shard's live (label, cookie) pairs, label-ordered — the snapshot
  /// payload of CatchUp and the equivalence baseline for mirrors.
  std::vector<std::pair<Label, LeafCookie>> ShardState(uint32_t shard) const;

  // ----------------------------------------------------- change-feed sync

  /// The producer-side state vector (shard -> last published seq).
  StateVector CurrentStateVector() const;

  /// One shard's catch-up decision for a subscriber at `from_seq`: delta
  /// events while the log still covers the position, snapshot once it has
  /// been trimmed past it. `from_seq` beyond the feed is InvalidArgument
  /// (the subscriber claims a future this store never published).
  Result<CatchUpResult> CatchUp(uint32_t shard, uint64_t from_seq) const;

  /// Manual trim-policy knob: retains at most `keep` events per shard
  /// feed, forcing laggards onto the snapshot path.
  void TrimFeeds(uint64_t keep);

  // ------------------------------------------------- subscriber registry
  //
  // Mirrors register the StateVector they have durably applied so trim
  // policy can retain exactly the events the slowest of them still needs
  // (ROADMAP item c). Registration is advisory: an unregistered or
  // overtaken mirror falls back to the snapshot path, it is never wedged.

  /// Registers (or re-registers, replacing the previous position)
  /// subscriber `subscriber` at `position`. InvalidArgument if the vector's
  /// shard count mismatches or any component is beyond the shard feed head
  /// (a future-dated position this store never published).
  Status RegisterSubscriber(uint64_t subscriber, const StateVector& position);

  /// Forgets `subscriber`; NotFound if it was never registered.
  Status UnregisterSubscriber(uint64_t subscriber);

  uint64_t num_subscribers() const { return subscribers_.size(); }

  /// The lowest registered position for `shard` — the trim horizon.
  /// Returns the feed head when no subscriber is registered.
  uint64_t SlowestSubscriberSeq(uint32_t shard) const;

  /// Trims every shard feed down to what registered subscribers still
  /// need: events at or below the slowest registered position are dropped.
  /// `max_retained` is the per-shard memory budget — when the slowest
  /// subscriber lags further than that, retention is capped anyway and the
  /// laggard degrades to the snapshot path on its next catch-up. Returns
  /// the number of events trimmed across all shards.
  uint64_t TrimToSlowestSubscriber(uint64_t max_retained = UINT64_MAX);

  // ---------------------------------------------------------------- stats

  StoreStats stats() const;

  /// Store-level deep audit. Absorbs each shard scheme's Validate() and
  /// feed continuity audit, then checks the subsystem rules:
  ///   * "shard-routing"  — every document resolves to exactly the shard
  ///     that holds its items; handles, cookies and the per-shard live
  ///     registry form a bijection; live counts conserve;
  ///   * "feed-continuity" — per-shard sequence numbers are contiguous in
  ///     the retained window and conserve against the trim counter;
  ///   * "stats-rollup"   — per-shard MaintStats sums, the store's own
  ///     operation ledger, and the feed publication counters all agree;
  ///   * "subscriber-registry" — every registered subscriber StateVector
  ///     has this store's shard count and never claims a position beyond
  ///     a shard feed head.
  /// Under -DLISTLAB_VALIDATE=ON the store-layer rules above re-run after
  /// every mutating call (each shard's scheme already deep-audits itself
  /// per mutation under the same flag) and abort with the full report on
  /// the first violation.
  audit::Report Validate() const;

  Status CheckInvariants() const { return Validate().ToStatus(); }

 private:
  friend class DocumentStoreTestPeer;  // seeds corruptions in negative tests

  struct ShardCtx;
  struct DocState {
    uint32_t shard = 0;
    std::vector<listlab::ItemHandle> items;  ///< document order
  };
  /// Store-layer operation ledger, kept independently of the schemes' own
  /// MaintStats so the stats-rollup rule cross-checks two bookkeepers.
  struct Ledger {
    uint64_t inserts = 0;
    uint64_t erases = 0;
    /// Items a failed batch inserted and rolled back — they appear in
    /// scheme counters but never became live (see InsertBatchAfterRank).
    uint64_t rolled_back_inserts = 0;
    uint64_t rolled_back_erases = 0;
  };

  explicit DocumentStore(DocStoreOptions options);

  Result<DocState*> FindDoc(DocId doc);
  Result<const DocState*> FindDoc(DocId doc) const;
  /// Shared single-insert plumbing: position resolution, cookie
  /// assignment, registry update, feed publication.
  Result<LeafCookie> InsertOne(DocId doc, uint64_t rank, bool before,
                               bool append);
  void PublishInsert(ShardCtx& ctx, DocId doc, LeafCookie cookie,
                     listlab::ItemHandle handle);
  // Feed continuity + shard-routing + stats-rollup, without the per-shard
  // scheme deep audits; this is what AutoValidate re-runs per mutation.
  void ValidateStoreLevel(audit::Report* out) const;
  void AutoValidate(const char* op) const;

  DocStoreOptions options_;
  std::vector<std::unique_ptr<ShardCtx>> shards_;
  std::unordered_map<DocId, DocState> docs_;
  std::unordered_map<uint64_t, StateVector> subscribers_;
  LeafCookie next_cookie_ = 1;
  Ledger ledger_;
};

}  // namespace store
}  // namespace ltree

#endif  // LTREE_STORE_DOCUMENT_STORE_H_
