// ChangeFeed: the versioned per-shard label event log.
//
// Every mutation a shard's LabelStore performs is recorded as a FeedEvent
// with a monotonically increasing per-shard sequence number:
//
//   * kInsert  — a new item entered the order at `new_label`;
//   * kRelabel — an existing live item moved `old_label` -> `new_label`
//     (tombstone shuffles are filtered out by the DocumentStore's feed tap
//     — the feed describes the evolution of the *live* label state);
//   * kErase   — an item left the order, last holding `old_label`.
//
// The log is bounded: past `capacity` retained events the oldest are
// trimmed (the trim floor only ever rises). A subscriber that presents a
// position at or above the floor gets the exact delta suffix; one that has
// fallen behind the floor must take a snapshot instead — the
// DocumentStore::CatchUp protocol (document_store.h) makes that decision
// per shard from the subscriber's StateVector.

#ifndef LTREE_STORE_CHANGE_FEED_H_
#define LTREE_STORE_CHANGE_FEED_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/relabel_listener.h"
#include "core/validate.h"

namespace ltree {
namespace store {

struct FeedEvent {
  enum class Kind : uint8_t { kInsert, kRelabel, kErase };

  uint64_t seq = 0;  ///< per-shard, contiguous, starting at 1
  Kind kind = Kind::kInsert;
  LeafCookie cookie = 0;
  Label old_label = kInvalidLabel;  ///< kRelabel/kErase; invalid for kInsert
  Label new_label = kInvalidLabel;  ///< kInsert/kRelabel; invalid for kErase

  std::string ToString() const;
};

const char* FeedEventKindName(FeedEvent::Kind kind);

/// Bounded, versioned, in-memory event log for one shard. Thread
/// compatibility matches the rest of the library: const reads may run
/// concurrently; Append/TrimTo require external synchronization.
class ChangeFeed {
 public:
  /// `capacity` is the max number of retained events (>= 1).
  explicit ChangeFeed(uint64_t capacity);

  ChangeFeed(const ChangeFeed&) = delete;
  ChangeFeed& operator=(const ChangeFeed&) = delete;

  /// Stamps `event` with the next sequence number, appends it, trims the
  /// oldest event if the log is over capacity, and returns the assigned
  /// sequence number.
  uint64_t Append(FeedEvent event);

  /// Highest sequence number ever assigned (0 before the first Append).
  uint64_t last_seq() const { return last_seq_; }

  /// Sequence number of the oldest retained event; last_seq() + 1 when the
  /// log is empty. Below this floor only snapshots can catch a subscriber
  /// up.
  uint64_t first_retained_seq() const {
    return events_.empty() ? last_seq_ + 1 : events_.front().seq;
  }

  uint64_t retained() const { return events_.size(); }

  /// Events dropped by capacity eviction or TrimTo so far.
  uint64_t trimmed() const { return trimmed_; }

  uint64_t capacity() const { return capacity_; }

  /// True iff the retained window still contains every event after
  /// `from_seq` — i.e. a subscriber at `from_seq` can be served a delta.
  /// A `from_seq` beyond last_seq() claims a future this feed never
  /// published (a corrupt or future-dated peer request) and is never
  /// servable.
  bool CanServeFrom(uint64_t from_seq) const {
    return from_seq <= last_seq_ && from_seq + 1 >= first_retained_seq();
  }

  /// The events with sequence numbers in (from_seq, last_seq()], oldest
  /// first. InvalidArgument when !CanServeFrom(from_seq): a position
  /// beyond last_seq() is a protocol violation by the requesting peer, one
  /// below the trim floor needs the snapshot path instead.
  Result<std::vector<FeedEvent>> EventsSince(uint64_t from_seq) const;

  /// Drops the oldest retained events until at most `keep` remain — the
  /// manual trim-policy knob (tests use it to force the snapshot path; a
  /// production policy would call it on a memory budget).
  void TrimTo(uint64_t keep);

  /// Appends feed-continuity violations to `report` under `path`: retained
  /// sequence numbers must be contiguous, end at last_seq(), and respect
  /// both the capacity bound and trimmed-count conservation
  /// (trimmed + retained == last_seq).
  void Audit(audit::Report* report, const std::string& path) const;

 private:
  friend class ChangeFeedTestPeer;  // seeds corruptions in negative tests

  uint64_t capacity_;
  uint64_t last_seq_ = 0;
  uint64_t trimmed_ = 0;
  std::deque<FeedEvent> events_;
};

}  // namespace store
}  // namespace ltree

#endif  // LTREE_STORE_CHANGE_FEED_H_
