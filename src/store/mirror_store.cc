#include "store/mirror_store.h"

#include <algorithm>

#include "common/macros.h"

namespace ltree {
namespace store {

Status MirrorStore::ApplyEvent(uint32_t shard, const FeedEvent& event) {
  auto& live = shards_[shard];
  switch (event.kind) {
    case FeedEvent::Kind::kInsert: {
      const auto [it, inserted] = live.emplace(event.cookie, event.new_label);
      (void)it;
      if (!inserted) {
        return Status::Corruption("shard " + std::to_string(shard) +
                                  ": insert for cookie already mirrored: " +
                                event.ToString());
      }
      return Status::OK();
    }
    case FeedEvent::Kind::kRelabel: {
      auto it = live.find(event.cookie);
      if (it == live.end()) {
        return Status::Corruption("shard " + std::to_string(shard) +
                                  ": relabel for unknown cookie: " +
                                event.ToString());
      }
      it->second = event.new_label;
      return Status::OK();
    }
    case FeedEvent::Kind::kErase: {
      if (live.erase(event.cookie) == 0) {
        return Status::Corruption("shard " + std::to_string(shard) +
                                  ": erase for unknown cookie: " +
                                event.ToString());
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown feed event kind");
}

Status MirrorStore::ApplyCatchUp(uint32_t shard, const CatchUpResult& result) {
  if (shard >= num_shards()) {
    return Status::InvalidArgument("unknown shard " + std::to_string(shard));
  }
  if (result.snapshot) {
    // Snapshot replaces the shard wholesale — correct from any position.
    auto& live = shards_[shard];
    live.clear();
    live.reserve(result.state.size());
    for (const auto& [label, cookie] : result.state) live[cookie] = label;
    state_.Set(shard, result.to_seq);
    ++snapshot_syncs_;
    return Status::OK();
  }
  if (result.from_seq != state_.seq(shard)) {
    return Status::Corruption(
        "shard " + std::to_string(shard) + ": delta starts at seq " +
        std::to_string(result.from_seq) + " but mirror position is " +
        std::to_string(state_.seq(shard)));
  }
  uint64_t expected = result.from_seq + 1;
  for (const FeedEvent& event : result.events) {
    if (event.seq != expected) {
      return Status::Corruption("shard " + std::to_string(shard) +
                                ": sequence gap, expected #" +
                              std::to_string(expected) + ", got " +
                              event.ToString());
    }
    LTREE_RETURN_IF_ERROR(ApplyEvent(shard, event));
    state_.Advance(shard, event.seq);
    ++expected;
    ++events_applied_;
  }
  // An empty delta still advances to to_seq (from_seq == to_seq there).
  state_.Advance(shard, result.to_seq);
  if (!result.events.empty()) ++delta_syncs_;
  return Status::OK();
}

Status MirrorStore::Sync(const DocumentStore& primary) {
  if (primary.num_shards() != num_shards()) {
    return Status::InvalidArgument(
        "mirror has " + std::to_string(num_shards()) +
        " shards but primary has " + std::to_string(primary.num_shards()));
  }
  for (uint32_t shard = 0; shard < num_shards(); ++shard) {
    if (primary.feed(shard).last_seq() == state_.seq(shard)) continue;
    LTREE_ASSIGN_OR_RETURN(const CatchUpResult result,
                           primary.CatchUp(shard, state_.seq(shard)));
    LTREE_RETURN_IF_ERROR(ApplyCatchUp(shard, result));
  }
  return Status::OK();
}

std::vector<std::pair<Label, LeafCookie>> MirrorStore::ShardState(
    uint32_t shard) const {
  std::vector<std::pair<Label, LeafCookie>> out;
  out.reserve(shards_[shard].size());
  for (const auto& [cookie, label] : shards_[shard]) {
    out.emplace_back(label, cookie);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status MirrorStore::CheckEquivalent(const DocumentStore& primary) const {
  if (primary.num_shards() != num_shards()) {
    return Status::Internal("shard count mismatch: mirror " +
                            std::to_string(num_shards()) + ", primary " +
                            std::to_string(primary.num_shards()));
  }
  for (uint32_t shard = 0; shard < num_shards(); ++shard) {
    const auto want = primary.ShardState(shard);
    const auto got = ShardState(shard);
    if (want.size() != got.size()) {
      return Status::Internal(
          "shard " + std::to_string(shard) + ": primary holds " +
          std::to_string(want.size()) + " live items, mirror holds " +
          std::to_string(got.size()));
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (want[i] != got[i]) {
        return Status::Internal(
            "shard " + std::to_string(shard) + " diverges at position " +
            std::to_string(i) + ": primary (label=" +
            std::to_string(want[i].first) + ", cookie=" +
            std::to_string(want[i].second) + "), mirror (label=" +
            std::to_string(got[i].first) + ", cookie=" +
            std::to_string(got[i].second) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace store
}  // namespace ltree
