#include "store/change_feed.h"

#include <algorithm>

#include "common/macros.h"

namespace ltree {
namespace store {

const char* FeedEventKindName(FeedEvent::Kind kind) {
  switch (kind) {
    case FeedEvent::Kind::kInsert:
      return "insert";
    case FeedEvent::Kind::kRelabel:
      return "relabel";
    case FeedEvent::Kind::kErase:
      return "erase";
  }
  return "unknown";
}

std::string FeedEvent::ToString() const {
  std::string out = "#" + std::to_string(seq) + " " + FeedEventKindName(kind) +
                    " cookie=" + std::to_string(cookie);
  if (old_label != kInvalidLabel) out += " old=" + std::to_string(old_label);
  if (new_label != kInvalidLabel) out += " new=" + std::to_string(new_label);
  return out;
}

ChangeFeed::ChangeFeed(uint64_t capacity) : capacity_(capacity) {
  LTREE_CHECK(capacity >= 1);
}

uint64_t ChangeFeed::Append(FeedEvent event) {
  event.seq = ++last_seq_;
  events_.push_back(event);
  if (events_.size() > capacity_) {
    events_.pop_front();
    ++trimmed_;
  }
  return last_seq_;
}

Result<std::vector<FeedEvent>> ChangeFeed::EventsSince(
    uint64_t from_seq) const {
  if (from_seq > last_seq_) {
    return Status::InvalidArgument(
        "position " + std::to_string(from_seq) + " is beyond feed head " +
        std::to_string(last_seq_));
  }
  if (!CanServeFrom(from_seq)) {
    return Status::InvalidArgument(
        "position " + std::to_string(from_seq) + " is below trim floor " +
        std::to_string(first_retained_seq()) + "; take a snapshot");
  }
  std::vector<FeedEvent> out;
  if (events_.empty() || from_seq >= last_seq_) return out;
  // Retained seqs are contiguous, so the suffix starts at a computed
  // offset instead of a scan.
  const uint64_t first = events_.front().seq;
  const size_t skip =
      from_seq + 1 > first ? static_cast<size_t>(from_seq + 1 - first) : 0;
  out.assign(events_.begin() + static_cast<ptrdiff_t>(skip), events_.end());
  return out;
}

void ChangeFeed::TrimTo(uint64_t keep) {
  while (events_.size() > keep) {
    events_.pop_front();
    ++trimmed_;
  }
}

void ChangeFeed::Audit(audit::Report* report, const std::string& path) const {
  if (events_.size() > capacity_) {
    report->Add(path, "feed-continuity",
                "retained " + std::to_string(events_.size()) +
                    " events exceeds capacity " + std::to_string(capacity_));
  }
  if (trimmed_ + events_.size() != last_seq_) {
    report->Add(path, "feed-continuity",
                "trimmed (" + std::to_string(trimmed_) + ") + retained (" +
                    std::to_string(events_.size()) + ") != last_seq (" +
                    std::to_string(last_seq_) + ")");
  }
  if (!events_.empty() && events_.back().seq != last_seq_) {
    report->Add(path, "feed-continuity",
                "newest retained seq " + std::to_string(events_.back().seq) +
                    " != last_seq " + std::to_string(last_seq_));
  }
  uint64_t expected = first_retained_seq();
  for (const FeedEvent& event : events_) {
    if (event.seq != expected) {
      report->Add(path, "feed-continuity",
                  "sequence gap: expected #" + std::to_string(expected) +
                      ", found " + event.ToString());
      expected = event.seq;  // resync so one gap reports once
    }
    ++expected;
  }
}

}  // namespace store
}  // namespace ltree
