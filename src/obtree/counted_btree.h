// Counted (order-statistic) B+-tree.
//
// Section 4.2 of the paper runs the L-Tree maintenance algorithm without a
// materialized tree: "if the leaf labels are maintained in a B-tree whose
// internal nodes also maintain counts, such range queries can be executed
// efficiently (in logarithmic time)". This module is that substrate: a
// B+-tree keyed by Label whose internal nodes carry subtree entry counts,
// supporting logarithmic rank/select/range-count plus ordered scans and
// range replacement (the "updated in place" relabeling step).
//
// Keys are unique. Values are opaque uint64 payloads (the virtual L-Tree
// stores a tag id plus a tombstone bit).

#ifndef LTREE_OBTREE_COUNTED_BTREE_H_
#define LTREE_OBTREE_COUNTED_BTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/epoch.h"
#include "core/params.h"
#include "core/pool_arena.h"
#include "core/validate.h"

namespace ltree {
namespace obtree {

/// Chunked pool behind every CountedBTree node (defined in the .cc, where
/// the node layout lives; a PoolArena instantiation like core/NodeArena).
class BTreeNodeArena;

/// Largest supported node order. Node key/child arrays are fixed-capacity
/// (embedded in the 64B-aligned arena slot, no heap indirection), sized for
/// kMaxNodeOrder plus one transient overflow slot on insert-then-split
/// paths.
inline constexpr uint32_t kMaxNodeOrder = 64;

/// One key/value entry.
struct Entry {
  Label key;
  uint64_t value;

  bool operator==(const Entry& other) const = default;
};

class CountedBTree {
 public:
  /// `order` = max entries per leaf and max children per internal node, in
  /// [4, kMaxNodeOrder]. Minimum occupancy is order/2 (root exempt).
  explicit CountedBTree(uint32_t order = 64);
  ~CountedBTree();

  CountedBTree(const CountedBTree&) = delete;
  CountedBTree& operator=(const CountedBTree&) = delete;
  CountedBTree(CountedBTree&& other) noexcept;
  CountedBTree& operator=(CountedBTree&& other) noexcept;

  // ------------------------------------------------------------- mutations

  /// Inserts a new entry; AlreadyExists if the key is present.
  Status Insert(Label key, uint64_t value);

  /// Updates the value of an existing key; NotFound otherwise.
  Status Update(Label key, uint64_t value);

  /// Removes a key; NotFound if absent.
  Status Delete(Label key);

  /// Replaces all entries with keys in [lo, hi) by `entries` (which must be
  /// sorted by key, unique, and lie within [lo, hi)). This is the virtual
  /// L-Tree's bulk relabel primitive, implemented as one structural pass:
  /// locate the leaf range, splice the replacement run in place, repair
  /// occupancy/counts/separators bottom-up once (instead of k deletes plus
  /// k inserts at O(log n) each). `lo == hi` is a no-op; an empty `entries`
  /// span is a pure range erase; replacing the whole key range degenerates
  /// to a pool-recycled BulkBuild.
  Status ReplaceRange(Label lo, Label hi, std::span<const Entry> entries);

  /// Rebuilds the tree from sorted unique entries (replacing any content).
  Status BulkBuild(std::span<const Entry> entries);

  /// Removes everything.
  void Clear();

  // --------------------------------------------------------------- queries

  /// Number of entries.
  uint64_t size() const;

  Result<uint64_t> Lookup(Label key) const;
  bool Contains(Label key) const;

  /// Number of keys strictly below `key`. O(log n).
  uint64_t CountLess(Label key) const;

  /// Number of keys in [lo, hi). O(log n).
  uint64_t RangeCount(Label lo, Label hi) const;

  /// The rank-th smallest entry (rank 0 = smallest); OutOfRange if rank >=
  /// size(). O(log n).
  Result<Entry> Select(uint64_t rank) const;

  /// Smallest entry with key >= `key`; NotFound if none.
  Result<Entry> LowerBound(Label key) const;

  /// Largest entry with key < `key`; NotFound if none.
  Result<Entry> Predecessor(Label key) const;

  /// All entries with keys in [lo, hi), in key order.
  std::vector<Entry> Scan(Label lo, Label hi) const;

  /// All entries in key order.
  std::vector<Entry> ScanAll() const;

  /// Ordered forward iterator.
  class Iterator {
   public:
    bool Valid() const { return !stack_.empty(); }
    Label key() const;
    uint64_t value() const;
    void Next();

   private:
    friend class CountedBTree;
    struct Frame {
      const void* node;
      uint32_t index;
    };
    std::vector<Frame> stack_;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const;
  /// Iterator at the smallest key >= `key`.
  Iterator Seek(Label key) const;

  /// Deep validator: appends every violated structural rule (occupancy,
  /// key ordering, separator and count consistency, uniform leaf depth,
  /// arena conservation live() == NodeCount()) to `report` with
  /// "btree:"-prefixed node paths.
  void Audit(audit::Report* report) const;

  /// Validates structural invariants (occupancy, key ordering, counts,
  /// uniform leaf depth); the first Audit() violation as a Status.
  Status CheckInvariants() const;

  uint32_t order() const { return order_; }

  /// Attaches an epoch manager for concurrent readers: every node freed by
  /// Delete/ReplaceRange/BulkBuild/Clear is retired through it instead of
  /// going straight to the pool free list, so a reader traversing a
  /// possibly-stale structure under a ReadGuard never observes a recycled
  /// node. The manager must outlive the tree, and the owner must drain it
  /// (ReclaimAllUnsafe) before the tree's arena dies. Survives moves.
  void set_epoch(epoch::EpochManager* epoch) { epoch_ = epoch; }
  epoch::EpochManager* epoch() const { return epoch_; }

  /// Lifetime allocator counters of the node pool (monotonic; never
  /// reset). arena_stats().live() equals NodeCount() at every quiescent
  /// point — the conservation property the obtree arena tests assert.
  const PoolArenaStats& arena_stats() const;

  /// Number of nodes currently reachable from the root. O(n) walk; meant
  /// for tests and memory accounting, not hot paths.
  uint64_t NodeCount() const;

  /// Measured heap footprint: arena chunks (for the Section 4.2 space
  /// bench). Every node's key/value/child storage is embedded in its
  /// cache-line-padded arena slot, so chunks are the whole footprint.
  uint64_t ApproxHeapBytes() const;

  /// Opaque node type (defined in the .cc; public so file-local helpers can
  /// name it).
  struct Node;

 private:
  /// Re-creates the arena if a move emptied it (arena_ == nullptr implies
  /// root_ == nullptr, so only Insert/BulkBuild ever need this).
  BTreeNodeArena* EnsureArena();

  Node* root_ = nullptr;
  uint32_t order_;
  std::unique_ptr<BTreeNodeArena> arena_;
  epoch::EpochManager* epoch_ = nullptr;  ///< not owned; may be nullptr
};

}  // namespace obtree
}  // namespace ltree

#endif  // LTREE_OBTREE_COUNTED_BTREE_H_
