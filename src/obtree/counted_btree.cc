#include "obtree/counted_btree.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace obtree {

struct CountedBTree::Node {
  bool leaf = true;
  /// Entries in this subtree (== keys.size() for leaves).
  uint64_t count = 0;
  /// Leaf: entry keys. Internal: keys[i] == smallest key in children[i+1].
  std::vector<Label> keys;
  /// Leaf only.
  std::vector<uint64_t> values;
  /// Internal only.
  std::vector<Node*> children;
  /// Arena free-list link; meaningless while the node is reachable.
  Node* free_next = nullptr;
};

namespace {

using Node = CountedBTree::Node;

struct BTreeNodeArenaTraits {
  static void SetFreeNext(Node* n, Node* next) { n->free_next = next; }
  static Node* GetFreeNext(Node* n) { return n->free_next; }
  static void Recycle(Node* n) {
    n->leaf = true;
    n->count = 0;
    // clear() keeps each heap buffer for the next reuse; children are
    // never destroyed here — merge/teardown move or release them first.
    n->keys.clear();
    n->values.clear();
    n->children.clear();
  }
};

}  // namespace

class BTreeNodeArena final
    : public PoolArena<Node, BTreeNodeArenaTraits> {};

namespace {

/// Free context threaded through the mutation helpers. With no epoch
/// attached, frees recycle straight onto the pool free list; with one,
/// nodes are retired and recycle only once no in-flight reader could still
/// observe them (the retired node keeps its keys/children intact until its
/// deleter runs, so a stale traversal reads consistent old data).
struct NodePool {
  BTreeNodeArena* arena;
  epoch::EpochManager* epoch;

  void Free(Node* n) const {
    if (epoch == nullptr) {
      arena->Release(n);
      return;
    }
    epoch->Retire(
        n,
        [](void* obj, void* ctx) {
          static_cast<BTreeNodeArena*>(ctx)->Release(static_cast<Node*>(obj));
        },
        arena);
  }
};

/// Returns a whole subtree to the free list (so Clear()/BulkBuild rebuilds
/// — every virtual root split — recycle the old structure). Wholesale
/// teardown goes through the arena's chunk drop instead.
void ReleaseTree(const NodePool& pool, Node* n) {
  if (n == nullptr) return;
  for (Node* c : n->children) ReleaseTree(pool, c);
  pool.Free(n);
}

/// Smallest key in the subtree.
Label MinKey(const Node* n) {
  while (!n->leaf) n = n->children.front();
  return n->keys.front();
}

/// Largest key in the subtree.
Label MaxKey(const Node* n) {
  while (!n->leaf) n = n->children.back();
  return n->keys.back();
}

/// Child index to descend into for `key`.
uint32_t ChildIndex(const Node* n, Label key) {
  return static_cast<uint32_t>(
      std::upper_bound(n->keys.begin(), n->keys.end(), key) -
      n->keys.begin());
}

struct SplitResult {
  Label separator;  // smallest key of the new right node
  Node* right;
};

}  // namespace

CountedBTree::CountedBTree(uint32_t order)
    : order_(order), arena_(std::make_unique<BTreeNodeArena>()) {
  LTREE_CHECK(order_ >= 4);
}

// Every node lives in arena chunks, which free wholesale — no tree walk.
CountedBTree::~CountedBTree() = default;

// A moved-from tree keeps a null arena (so the noexcept moves never
// allocate); the invariant is arena_ == nullptr implies root_ == nullptr,
// and the two entry points that can grow an empty tree re-arm it lazily.
CountedBTree::CountedBTree(CountedBTree&& other) noexcept
    : root_(other.root_),
      order_(other.order_),
      arena_(std::move(other.arena_)),
      epoch_(other.epoch_) {
  other.root_ = nullptr;
  other.epoch_ = nullptr;
}

CountedBTree& CountedBTree::operator=(CountedBTree&& other) noexcept {
  if (this != &other) {
    root_ = other.root_;
    order_ = other.order_;
    arena_ = std::move(other.arena_);  // old nodes die with the old arena
    epoch_ = other.epoch_;
    other.root_ = nullptr;
    other.epoch_ = nullptr;
  }
  return *this;
}

BTreeNodeArena* CountedBTree::EnsureArena() {
  if (arena_ == nullptr) arena_ = std::make_unique<BTreeNodeArena>();
  return arena_.get();
}

void CountedBTree::Clear() {
  if (root_ == nullptr) return;
  ReleaseTree(NodePool{arena_.get(), epoch_}, root_);
  root_ = nullptr;
}

const PoolArenaStats& CountedBTree::arena_stats() const {
  static const PoolArenaStats kEmpty;
  return arena_ == nullptr ? kEmpty : arena_->stats();
}

uint64_t CountedBTree::size() const {
  return root_ == nullptr ? 0 : root_->count;
}

// --------------------------------------------------------------------------
// Insert
// --------------------------------------------------------------------------

namespace {

Result<SplitResult*> InsertRec(Node* n, Label key, uint64_t value,
                               uint32_t order, BTreeNodeArena* arena,
                               SplitResult* split_storage) {
  if (n->leaf) {
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - n->keys.begin());
    if (it != n->keys.end() && *it == key) {
      return Status::AlreadyExists("duplicate key");
    }
    n->keys.insert(it, key);
    n->values.insert(n->values.begin() + pos, value);
    n->count = n->keys.size();
    if (n->keys.size() <= order) return static_cast<SplitResult*>(nullptr);
    // Split the leaf in half.
    Node* right = arena->Allocate();
    right->leaf = true;
    const size_t half = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + half, n->keys.end());
    right->values.assign(n->values.begin() + half, n->values.end());
    n->keys.resize(half);
    n->values.resize(half);
    n->count = n->keys.size();
    right->count = right->keys.size();
    split_storage->separator = right->keys.front();
    split_storage->right = right;
    return split_storage;
  }

  const uint32_t ci = ChildIndex(n, key);
  SplitResult child_split;
  LTREE_ASSIGN_OR_RETURN(SplitResult * split,
                         InsertRec(n->children[ci], key, value, order, arena,
                                   &child_split));
  ++n->count;
  if (split == nullptr) return static_cast<SplitResult*>(nullptr);
  n->keys.insert(n->keys.begin() + ci, split->separator);
  n->children.insert(n->children.begin() + ci + 1, split->right);
  if (n->children.size() <= order) return static_cast<SplitResult*>(nullptr);
  // Split this internal node.
  Node* right = arena->Allocate();
  right->leaf = false;
  const size_t half_children = n->children.size() / 2;
  // Separator promoted upward is the min key of the right half.
  const Label up_sep = n->keys[half_children - 1];
  right->children.assign(n->children.begin() + half_children,
                         n->children.end());
  right->keys.assign(n->keys.begin() + half_children, n->keys.end());
  n->children.resize(half_children);
  n->keys.resize(half_children - 1);
  uint64_t right_count = 0;
  for (Node* c : right->children) right_count += c->count;
  right->count = right_count;
  n->count -= right_count;
  split_storage->separator = up_sep;
  split_storage->right = right;
  return split_storage;
}

}  // namespace

Status CountedBTree::Insert(Label key, uint64_t value) {
  EnsureArena();
  if (root_ == nullptr) {
    root_ = arena_->Allocate();
    root_->leaf = true;
  }
  SplitResult split_storage;
  LTREE_ASSIGN_OR_RETURN(
      SplitResult * split,
      InsertRec(root_, key, value, order_, arena_.get(), &split_storage));
  if (split != nullptr) {
    Node* new_root = arena_->Allocate();
    new_root->leaf = false;
    new_root->children = {root_, split->right};
    new_root->keys = {split->separator};
    new_root->count = root_->count + split->right->count;
    root_ = new_root;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Update / Lookup
// --------------------------------------------------------------------------

namespace {

Node* FindLeaf(Node* n, Label key) {
  if (n == nullptr) return nullptr;
  while (!n->leaf) n = n->children[ChildIndex(n, key)];
  return n;
}

}  // namespace

Status CountedBTree::Update(Label key, uint64_t value) {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not present");
  }
  leaf->values[static_cast<size_t>(it - leaf->keys.begin())] = value;
  return Status::OK();
}

Result<uint64_t> CountedBTree::Lookup(Label key) const {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not present");
  }
  return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
}

bool CountedBTree::Contains(Label key) const { return Lookup(key).ok(); }

// --------------------------------------------------------------------------
// Delete
// --------------------------------------------------------------------------

namespace {

/// Rebalances n->children[ci] after a deletion left it underfull.
void FixUnderflow(Node* n, uint32_t ci, uint32_t order,
                  const NodePool& pool) {
  Node* child = n->children[ci];
  const size_t min_fill = order / 2;
  const size_t child_size =
      child->leaf ? child->keys.size() : child->children.size();
  if (child_size >= min_fill) return;

  Node* left = ci > 0 ? n->children[ci - 1] : nullptr;
  Node* right = ci + 1 < n->children.size() ? n->children[ci + 1] : nullptr;

  auto left_size = [&]() {
    return left->leaf ? left->keys.size() : left->children.size();
  };
  auto right_size = [&]() {
    return right->leaf ? right->keys.size() : right->children.size();
  };

  if (left != nullptr && left_size() > min_fill) {
    // Borrow the largest item of the left sibling.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      child->count = child->keys.size();
      left->count = left->keys.size();
    } else {
      Node* moved = left->children.back();
      left->children.pop_back();
      // The separator between `moved` and child's old first child is the
      // min key of the old first child.
      child->keys.insert(child->keys.begin(), MinKey(child->children.front()));
      child->children.insert(child->children.begin(), moved);
      left->keys.pop_back();
      child->count += moved->count;
      left->count -= moved->count;
    }
    n->keys[ci - 1] = MinKey(child);
    return;
  }
  if (right != nullptr && right_size() > min_fill) {
    // Borrow the smallest item of the right sibling.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      child->count = child->keys.size();
      right->count = right->keys.size();
    } else {
      Node* moved = right->children.front();
      right->children.erase(right->children.begin());
      child->keys.push_back(MinKey(moved));
      child->children.push_back(moved);
      right->keys.erase(right->keys.begin());
      child->count += moved->count;
      right->count -= moved->count;
    }
    n->keys[ci] = MinKey(right);
    return;
  }

  // Merge with a sibling (prefer left).
  if (left != nullptr) {
    // Merge child into left.
    if (child->leaf) {
      left->keys.insert(left->keys.end(), child->keys.begin(),
                        child->keys.end());
      left->values.insert(left->values.end(), child->values.begin(),
                          child->values.end());
      left->count = left->keys.size();
    } else {
      left->keys.push_back(MinKey(child->children.front()));
      for (size_t i = 0; i + 1 < child->children.size(); ++i) {
        left->keys.push_back(child->keys[i]);
      }
      left->children.insert(left->children.end(), child->children.begin(),
                            child->children.end());
      left->count += child->count;
    }
    // The merged-away node's children now live under `left`; the husk is
    // recycled (its child list cleared, not destroyed) once freed.
    pool.Free(child);
    n->children.erase(n->children.begin() + ci);
    n->keys.erase(n->keys.begin() + (ci - 1));
  } else {
    LTREE_CHECK(right != nullptr);
    // Merge right into child.
    if (child->leaf) {
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      child->values.insert(child->values.end(), right->values.begin(),
                           right->values.end());
      child->count = child->keys.size();
    } else {
      child->keys.push_back(MinKey(right->children.front()));
      for (size_t i = 0; i + 1 < right->children.size(); ++i) {
        child->keys.push_back(right->keys[i]);
      }
      child->children.insert(child->children.end(), right->children.begin(),
                             right->children.end());
      child->count += right->count;
    }
    pool.Free(right);
    n->children.erase(n->children.begin() + ci + 1);
    n->keys.erase(n->keys.begin() + ci);
  }
}

Status DeleteRec(Node* n, Label key, uint32_t order,
                 const NodePool& pool) {
  if (n->leaf) {
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it == n->keys.end() || *it != key) {
      return Status::NotFound("key not present");
    }
    const size_t pos = static_cast<size_t>(it - n->keys.begin());
    n->keys.erase(it);
    n->values.erase(n->values.begin() + pos);
    n->count = n->keys.size();
    return Status::OK();
  }
  const uint32_t ci = ChildIndex(n, key);
  LTREE_RETURN_IF_ERROR(DeleteRec(n->children[ci], key, order, pool));
  --n->count;
  // Deleting the subtree minimum stales the separator left of ci; fix it
  // while children[ci] still exists (FixUnderflow may merge it away).
  if (ci > 0) {
    n->keys[ci - 1] = MinKey(n->children[ci]);
  }
  FixUnderflow(n, ci, order, pool);
  return Status::OK();
}

}  // namespace

Status CountedBTree::Delete(Label key) {
  if (root_ == nullptr) return Status::NotFound("empty tree");
  const NodePool pool{arena_.get(), epoch_};
  LTREE_RETURN_IF_ERROR(DeleteRec(root_, key, order_, pool));
  if (!root_->leaf && root_->children.size() == 1) {
    Node* only = root_->children.front();
    pool.Free(root_);  // root collapse: the surviving child lives on
    root_ = only;
  } else if (root_->leaf && root_->keys.empty()) {
    pool.Free(root_);
    root_ = nullptr;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Order statistics
// --------------------------------------------------------------------------

uint64_t CountedBTree::CountLess(Label key) const {
  const Node* n = root_;
  if (n == nullptr) return 0;
  uint64_t rank = 0;
  while (!n->leaf) {
    const uint32_t ci = ChildIndex(n, key);
    for (uint32_t i = 0; i < ci; ++i) rank += n->children[i]->count;
    n = n->children[ci];
  }
  rank += static_cast<uint64_t>(
      std::lower_bound(n->keys.begin(), n->keys.end(), key) -
      n->keys.begin());
  return rank;
}

uint64_t CountedBTree::RangeCount(Label lo, Label hi) const {
  if (lo >= hi) return 0;
  return CountLess(hi) - CountLess(lo);
}

Result<Entry> CountedBTree::Select(uint64_t rank) const {
  if (root_ == nullptr || rank >= root_->count) {
    return Status::OutOfRange(
        StrFormat("rank %llu >= size %llu",
                  static_cast<unsigned long long>(rank),
                  static_cast<unsigned long long>(size())));
  }
  const Node* n = root_;
  while (!n->leaf) {
    for (const Node* c : n->children) {
      if (rank < c->count) {
        n = c;
        break;
      }
      rank -= c->count;
    }
  }
  return Entry{n->keys[rank], n->values[rank]};
}

Result<Entry> CountedBTree::LowerBound(Label key) const {
  const uint64_t rank = CountLess(key);
  if (root_ == nullptr || rank >= root_->count) {
    return Status::NotFound("no key >= bound");
  }
  return Select(rank);
}

Result<Entry> CountedBTree::Predecessor(Label key) const {
  const uint64_t rank = CountLess(key);
  if (rank == 0) return Status::NotFound("no key < bound");
  return Select(rank - 1);
}

// --------------------------------------------------------------------------
// Iteration / scans
// --------------------------------------------------------------------------

Label CountedBTree::Iterator::key() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->keys[stack_.back().index];
}

uint64_t CountedBTree::Iterator::value() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->values[stack_.back().index];
}

void CountedBTree::Iterator::Next() {
  LTREE_CHECK(Valid());
  Frame& top = stack_.back();
  const Node* leaf = static_cast<const Node*>(top.node);
  if (top.index + 1 < leaf->keys.size()) {
    ++top.index;
    return;
  }
  stack_.pop_back();
  // Ascend to the first ancestor with an unvisited right child.
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Node* n = static_cast<const Node*>(frame.node);
    if (frame.index + 1 < n->children.size()) {
      ++frame.index;
      // Descend leftmost from that child.
      const Node* cur = n->children[frame.index];
      while (!cur->leaf) {
        stack_.push_back({cur, 0});
        cur = cur->children.front();
      }
      stack_.push_back({cur, 0});
      return;
    }
    stack_.pop_back();
  }
}

CountedBTree::Iterator CountedBTree::Begin() const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    it.stack_.push_back({cur, 0});
    cur = cur->children.front();
  }
  it.stack_.push_back({cur, 0});
  return it;
}

CountedBTree::Iterator CountedBTree::Seek(Label key) const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    const uint32_t ci = ChildIndex(cur, key);
    it.stack_.push_back({cur, ci});
    cur = cur->children[ci];
  }
  const uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(cur->keys.begin(), cur->keys.end(), key) -
      cur->keys.begin());
  if (pos < cur->keys.size()) {
    it.stack_.push_back({cur, pos});
    return it;
  }
  // Key is past this leaf: step to the successor leaf via the stack.
  it.stack_.push_back({cur, pos == 0 ? 0u : pos - 1});
  if (cur->keys.empty()) {
    it.stack_.clear();
    return it;
  }
  it.Next();
  return it;
}

std::vector<Entry> CountedBTree::Scan(Label lo, Label hi) const {
  std::vector<Entry> out;
  for (Iterator it = Seek(lo); it.Valid() && it.key() < hi; it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

std::vector<Entry> CountedBTree::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

// --------------------------------------------------------------------------
// Bulk operations
// --------------------------------------------------------------------------

namespace {

/// Length of the next ~3/4-fill chunk of a run with `remaining` items left
/// (leaving slack for inserts). Absorbs a small tail into the current chunk
/// if it fits, otherwise splits the combined run evenly, so no chunk ever
/// lands under order/2.
size_t ChunkLen(size_t remaining, uint32_t order) {
  const size_t target = std::max<size_t>(order * 3 / 4, order / 2);
  size_t len = std::min(target, remaining);
  const size_t rest = remaining - len;
  if (rest > 0 && rest < order / 2) {
    len = (len + rest <= order) ? len + rest : (len + rest) / 2;
  }
  return len;
}

/// How many chunks ChunkLen splits `total` into. Pure arithmetic, so
/// ReplaceRange can dry-run a rebuild before allocating anything.
size_t CountChunks(size_t total, uint32_t order) {
  size_t chunks = 0;
  while (total > 0) {
    total -= ChunkLen(total, order);
    ++chunks;
  }
  return chunks;
}

/// Builds the leaf level over `entries` (appended to `level`).
void BuildLeafLevel(std::span<const Entry> entries, uint32_t order,
                    BTreeNodeArena* arena, std::vector<Node*>* level) {
  size_t i = 0;
  while (i < entries.size()) {
    const size_t len = ChunkLen(entries.size() - i, order);
    Node* leaf = arena->Allocate();
    leaf->leaf = true;
    leaf->keys.reserve(len);
    leaf->values.reserve(len);
    for (size_t j = i; j < i + len; ++j) {
      leaf->keys.push_back(entries[j].key);
      leaf->values.push_back(entries[j].value);
    }
    leaf->count = len;
    level->push_back(leaf);
    i += len;
  }
}

/// Stacks one internal level over `level`, replacing it.
void StackLevel(std::vector<Node*>* level, uint32_t order,
                BTreeNodeArena* arena) {
  std::vector<Node*> next;
  next.reserve(CountChunks(level->size(), order));
  size_t j = 0;
  while (j < level->size()) {
    const size_t len = ChunkLen(level->size() - j, order);
    Node* node = arena->Allocate();
    node->leaf = false;
    node->children.reserve(len);
    node->keys.reserve(len - 1);
    for (size_t k = j; k < j + len; ++k) {
      node->children.push_back((*level)[k]);
      node->count += (*level)[k]->count;
      if (k > j) node->keys.push_back(MinKey((*level)[k]));
    }
    next.push_back(node);
    j += len;
  }
  *level = std::move(next);
}

/// Appends the subtree's entries in key order.
void CollectEntries(const Node* n, std::vector<Entry>* out) {
  if (n->leaf) {
    for (size_t i = 0; i < n->keys.size(); ++i) {
      out->push_back(Entry{n->keys[i], n->values[i]});
    }
    return;
  }
  for (const Node* c : n->children) CollectEntries(c, out);
}

/// Edges from `n` down to the leaf level.
uint32_t SubtreeHeight(const Node* n) {
  uint32_t h = 0;
  while (!n->leaf) {
    ++h;
    n = n->children.front();
  }
  return h;
}

}  // namespace

Status CountedBTree::BulkBuild(std::span<const Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  Clear();
  if (entries.empty()) return Status::OK();
  EnsureArena();
  std::vector<Node*> level;
  BuildLeafLevel(entries, order_, arena_.get(), &level);
  while (level.size() > 1) StackLevel(&level, order_, arena_.get());
  root_ = level.front();
  return Status::OK();
}

Status CountedBTree::ReplaceRange(Label lo, Label hi,
                                  std::span<const Entry> entries) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key < lo || entries[i].key >= hi) {
      return Status::InvalidArgument("replacement key outside [lo, hi)");
    }
    if (i > 0 && entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  // lo == hi is an empty range: entries cannot lie inside it (rejected
  // above), so the call is a no-op.
  if (lo == hi) return Status::OK();
  if (root_ == nullptr) {
    return entries.empty() ? Status::OK() : BulkBuild(entries);
  }
  // Whole-tree replacement (e.g. every virtual L-Tree root split) skips
  // the descent entirely: all current entries are erased, so the result is
  // exactly `entries`.
  if (lo <= MinKey(root_) && MaxKey(root_) < hi) return BulkBuild(entries);

  // Single structural pass: descend once to the lowest node whose child
  // slice covers the whole range, splice the sorted replacements into that
  // slice's entry run, rebuild the slice in place, and repair counts and
  // separators bottom-up along the recorded path. Escalates the slice one
  // level up whenever the rebuilt piece cannot meet min occupancy at its
  // level; the worst case (a range reshaping most of the tree) degenerates
  // to a full BulkBuild, which is proportional to the replaced region
  // anyway.
  struct Frame {
    Node* node;
    uint32_t index;
  };
  std::vector<Frame> path;
  Node* a = root_;
  uint32_t cl = 0;
  uint32_t cr = 0;
  while (!a->leaf) {
    cl = ChildIndex(a, lo);
    cr = ChildIndex(a, hi - 1);
    if (cl != cr) break;
    path.push_back({a, cl});
    a = a->children[cl];
  }

  const size_t min_fill = order_ / 2;

  // Bottom-up repair: ancestor counts shift by `delta`, and the descended
  // child's min key may have changed, staling the separator to its left.
  auto repair_path = [&](int64_t delta) {
    for (size_t i = path.size(); i-- > 0;) {
      Node* n = path[i].node;
      n->count = static_cast<uint64_t>(static_cast<int64_t>(n->count) + delta);
      const uint32_t ci = path[i].index;
      if (ci > 0) n->keys[ci - 1] = MinKey(n->children[ci]);
    }
  };

  // Fallback: splice into the full entry run and rebuild from scratch
  // (BulkBuild recycles the old nodes through the arena).
  auto full_rebuild = [&]() -> Status {
    std::vector<Entry> all;
    all.reserve(root_->count + entries.size());
    CollectEntries(root_, &all);
    const auto key_less = [](const Entry& e, Label key) { return e.key < key; };
    auto eb = std::lower_bound(all.begin(), all.end(), lo, key_less);
    auto ee = std::lower_bound(all.begin(), all.end(), hi, key_less);
    std::vector<Entry> spliced;
    spliced.reserve(all.size() - (ee - eb) + entries.size());
    spliced.insert(spliced.end(), all.begin(), eb);
    spliced.insert(spliced.end(), entries.begin(), entries.end());
    spliced.insert(spliced.end(), ee, all.end());
    return BulkBuild(spliced);
  };

  if (a->leaf) {
    // In-leaf splice: the whole range lives in one leaf. No allocation at
    // all when the result keeps the leaf within occupancy bounds.
    auto kb = std::lower_bound(a->keys.begin(), a->keys.end(), lo);
    auto ke = std::lower_bound(a->keys.begin(), a->keys.end(), hi);
    const size_t eb = static_cast<size_t>(kb - a->keys.begin());
    const size_t ee = static_cast<size_t>(ke - a->keys.begin());
    const size_t new_size = a->keys.size() - (ee - eb) + entries.size();
    if (new_size <= order_ && (path.empty() || new_size >= min_fill)) {
      const int64_t delta = static_cast<int64_t>(new_size) -
                            static_cast<int64_t>(a->keys.size());
      a->keys.erase(kb, ke);
      a->values.erase(a->values.begin() + eb, a->values.begin() + ee);
      a->keys.insert(a->keys.begin() + eb, entries.size(), Label{0});
      a->values.insert(a->values.begin() + eb, entries.size(), uint64_t{0});
      for (size_t i = 0; i < entries.size(); ++i) {
        a->keys[eb + i] = entries[i].key;
        a->values[eb + i] = entries[i].value;
      }
      a->count = a->keys.size();
      if (path.empty() && a->keys.empty()) {
        NodePool{arena_.get(), epoch_}.Free(a);
        root_ = nullptr;
        return Status::OK();
      }
      repair_path(delta);
      return Status::OK();
    }
    if (path.empty()) return full_rebuild();  // over/underfull root leaf
    cl = cr = path.back().index;
    a = path.back().node;
    path.pop_back();
  }

  std::vector<Entry> combined;
  std::vector<Entry> spliced;
  for (;;) {
    const bool at_root = (a == root_);
    combined.clear();
    for (uint32_t i = cl; i <= cr; ++i) {
      CollectEntries(a->children[i], &combined);
    }
    const size_t old_total = combined.size();
    const auto key_less = [](const Entry& e, Label key) { return e.key < key; };
    auto eb = std::lower_bound(combined.begin(), combined.end(), lo, key_less);
    auto ee = std::lower_bound(combined.begin(), combined.end(), hi, key_less);
    spliced.clear();
    spliced.reserve(old_total -
                    static_cast<size_t>(ee - eb) + entries.size());
    spliced.insert(spliced.end(), combined.begin(), eb);
    spliced.insert(spliced.end(), entries.begin(), entries.end());
    spliced.insert(spliced.end(), ee, combined.end());

    const uint32_t child_height = SubtreeHeight(a->children[cl]);

    // Dry-run the level stacking (pure arithmetic) so a failed attempt
    // never allocates: every level of the rebuilt slice must be able to
    // meet min occupancy up to the slice's height.
    bool fits = true;
    size_t m_new = 0;
    if (!spliced.empty()) {
      size_t c = spliced.size();
      if (c < min_fill) {
        fits = false;
      } else {
        c = CountChunks(c, order_);
        for (uint32_t h = 1; h <= child_height && fits; ++h) {
          if (c < min_fill) {
            fits = false;
          } else {
            c = CountChunks(c, order_);
          }
        }
      }
      m_new = c;
    }
    const size_t removed = static_cast<size_t>(cr - cl) + 1;
    if (fits) {
      const size_t new_cc = a->children.size() - removed + m_new;
      if (new_cc > order_ || (!at_root && new_cc < min_fill)) fits = false;
    }
    if (!fits) {
      if (at_root) return full_rebuild();
      cl = cr = path.back().index;
      a = path.back().node;
      path.pop_back();
      continue;
    }

    // Commit: recycle the old slice first (its entries already live in
    // `spliced`) so the rebuild below is served from the free list, then
    // build the replacement and splice it over children [cl, cr]. With an
    // epoch attached the old slice recycles later, at quiescence.
    const NodePool pool{arena_.get(), epoch_};
    for (uint32_t i = cl; i <= cr; ++i) {
      ReleaseTree(pool, a->children[i]);
    }
    std::vector<Node*> level;
    if (!spliced.empty()) {
      BuildLeafLevel(spliced, order_, arena_.get(), &level);
      for (uint32_t h = 1; h <= child_height; ++h) {
        StackLevel(&level, order_, arena_.get());
      }
    }
    a->children.erase(a->children.begin() + cl,
                      a->children.begin() + cr + 1);
    a->children.insert(a->children.begin() + cl, level.begin(), level.end());
    a->keys.clear();
    for (size_t i = 1; i < a->children.size(); ++i) {
      a->keys.push_back(MinKey(a->children[i]));
    }
    const int64_t delta =
        static_cast<int64_t>(spliced.size()) - static_cast<int64_t>(old_total);
    a->count = static_cast<uint64_t>(static_cast<int64_t>(a->count) + delta);
    repair_path(delta);
    // An internal root may be left with one child (collapse) or none
    // (empty tree).
    while (root_ != nullptr && !root_->leaf && root_->children.size() <= 1) {
      Node* only =
          root_->children.empty() ? nullptr : root_->children.front();
      pool.Free(root_);  // recycles the husk; `only` lives on
      root_ = only;
    }
    return Status::OK();
  }
}

// --------------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------------

namespace {

void AuditNode(const Node* n, uint32_t order, bool is_root, int depth,
               int* leaf_depth, const std::string& path,
               audit::Report* report) {
  const size_t sz = n->leaf ? n->keys.size() : n->children.size();
  if (sz > order) {
    report->Add(path, "occupancy",
                StrFormat("node holds %zu slots, order is %u", sz, order));
  }
  if (!is_root && sz < order / 2) {
    report->Add(path, "occupancy",
                StrFormat("node holds %zu slots, minimum is %u", sz,
                          order / 2));
  }
  if (n->leaf) {
    if (n->count != n->keys.size()) {
      report->Add(path, "count-sum",
                  StrFormat("leaf count %llu != %zu keys",
                            static_cast<unsigned long long>(n->count),
                            n->keys.size()));
    }
    if (n->keys.size() != n->values.size()) {
      report->Add(path, "key-value-pairing",
                  StrFormat("%zu keys vs %zu values", n->keys.size(),
                            n->values.size()));
    }
    for (size_t i = 1; i < n->keys.size(); ++i) {
      if (n->keys[i - 1] >= n->keys[i]) {
        report->Add(path, "key-order",
                    StrFormat("keys[%zu]=%llu not above keys[%zu]=%llu", i,
                              static_cast<unsigned long long>(n->keys[i]),
                              i - 1,
                              static_cast<unsigned long long>(
                                  n->keys[i - 1])));
      }
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      report->Add(path, "leaf-depth",
                  StrFormat("leaf at depth %d, first leaf at depth %d",
                            depth, *leaf_depth));
    }
    return;
  }
  if (is_root && n->children.size() < 2) {
    report->Add(path, "root-fanout", "internal root with < 2 children");
  }
  if (n->keys.size() + 1 != n->children.size()) {
    report->Add(path, "separator",
                StrFormat("%zu separators for %zu children", n->keys.size(),
                          n->children.size()));
    return;  // child walk below indexes keys[i-1]; bail on this subtree
  }
  uint64_t total = 0;
  for (size_t i = 0; i < n->children.size(); ++i) {
    const std::string child_path = (path.back() == '/' ? path : path + "/") +
                                   std::to_string(i);
    if (n->children[i] == nullptr) {
      report->Add(child_path, "null-child", "null child pointer");
      continue;
    }
    AuditNode(n->children[i], order, false, depth + 1, leaf_depth,
              child_path, report);
    total += n->children[i]->count;
    if (i > 0 && n->keys[i - 1] != MinKey(n->children[i])) {
      report->Add(
          path, "separator",
          StrFormat("separator %llu != min key %llu of child %zu",
                    static_cast<unsigned long long>(n->keys[i - 1]),
                    static_cast<unsigned long long>(MinKey(n->children[i])),
                    i));
    }
  }
  if (total != n->count) {
    report->Add(path, "count-sum",
                StrFormat("internal count %llu != children sum %llu",
                          static_cast<unsigned long long>(n->count),
                          static_cast<unsigned long long>(total)));
  }
}

}  // namespace

namespace {

void CollectReachable(const Node* n, std::unordered_set<const void*>* out) {
  if (n == nullptr) return;
  out->insert(n);
  for (const Node* c : n->children) CollectReachable(c, out);
}

}  // namespace

void CountedBTree::Audit(audit::Report* report) const {
  if (root_ != nullptr) {
    int leaf_depth = -1;
    AuditNode(root_, order_, true, 0, &leaf_depth, "btree:/", report);
  }
  // Arena conservation: at every quiescent point the pool's live counter
  // must equal the number of nodes reachable from the root — plus, with an
  // epoch attached, the retired nodes still waiting in its buckets
  // (retired ∪ reachable == allocated-and-unreleased).
  const uint64_t reachable = NodeCount();
  const uint64_t pending = epoch_ == nullptr ? 0 : epoch_->pending();
  if (arena_stats().live() != reachable + pending) {
    report->Add("btree:/", "arena-conservation",
                StrFormat("%llu nodes reachable + %llu epoch-pending but the "
                          "pool accounts %llu live",
                          static_cast<unsigned long long>(reachable),
                          static_cast<unsigned long long>(pending),
                          static_cast<unsigned long long>(
                              arena_stats().live())));
  }
  // Epoch reclamation: a retired node must be unreachable from the live
  // structure (it was unlinked before Retire) and retired exactly once —
  // a node in two buckets would double-release into the pool.
  if (epoch_ != nullptr) {
    std::unordered_set<const void*> live_set;
    CollectReachable(root_, &live_set);
    std::unordered_set<const void*> retired_set;
    epoch_->ForEachPending([&](const void* obj) {
      if (live_set.count(obj) != 0) {
        report->Add("btree:/", "epoch-reclamation",
                    StrFormat("retired node %p still reachable from the "
                              "root",
                              obj));
      }
      if (!retired_set.insert(obj).second) {
        report->Add("btree:/", "epoch-reclamation",
                    StrFormat("node %p retired twice", obj));
      }
    });
  }
}

Status CountedBTree::CheckInvariants() const {
  audit::Report report;
  Audit(&report);
  return report.ToStatus();
}

// --------------------------------------------------------------------------
// Memory accounting
// --------------------------------------------------------------------------

namespace {

uint64_t CountReachable(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t total = 1;
  for (const Node* c : n->children) total += CountReachable(c);
  return total;
}

uint64_t BufferBytes(const Node* n) {
  return n->keys.capacity() * sizeof(Label) +
         n->values.capacity() * sizeof(uint64_t) +
         n->children.capacity() * sizeof(Node*);
}

uint64_t HeapBytesUnder(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t bytes = BufferBytes(n);
  for (const Node* c : n->children) bytes += HeapBytesUnder(c);
  return bytes;
}

}  // namespace

uint64_t CountedBTree::NodeCount() const { return CountReachable(root_); }

uint64_t CountedBTree::ApproxHeapBytes() const {
  // Chunks pin a cache-line-padded slot whether the slot is live or on the
  // free list; per-node vector buffers come on top — including the buffers
  // free-list nodes retain for reuse, which a reachable-only walk would
  // miss after delete-heavy churn.
  uint64_t bytes =
      arena_stats().chunks * BTreeNodeArena::kChunkBytes + HeapBytesUnder(root_);
  if (arena_ != nullptr) {
    arena_->ForEachFree([&bytes](const Node* n) { bytes += BufferBytes(n); });
  }
  return bytes;
}

}  // namespace obtree
}  // namespace ltree
