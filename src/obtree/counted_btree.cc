#include "obtree/counted_btree.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/simd_search.h"

namespace ltree {
namespace obtree {

namespace {

/// Fixed array capacity: one slot beyond the max order, because the insert
/// path materializes the overflowed node (order+1 entries / children)
/// before splitting it.
inline constexpr uint32_t kNodeCap = kMaxNodeOrder + 1;

}  // namespace

// Cache-conscious SoA layout, embedded in the 64B-aligned arena slot:
// keys first (offset 0), so a descent's in-node search streams the node's
// leading cache lines with no pointer chase; payloads follow as a union
// (leaves store values, internal nodes store children plus a cached copy
// of each child's subtree count, so rank descents touch no child lines);
// the rarely-written header trails at the end.
struct CountedBTree::Node {
  /// Leaf: entry keys. Internal: keys[i] == smallest key in child i+1.
  Label keys[kNodeCap];

  struct InternalArrays {
    Node* child[kNodeCap];
    /// ccount[i] caches child[i]->count (audited as child-count-cache), so
    /// CountLess/Select sum ranks without dereferencing siblings.
    uint64_t ccount[kNodeCap];
  };
  union {
    uint64_t values[kNodeCap];  ///< leaf payloads
    InternalArrays in;          ///< internal fan-out
  };

  /// Entries in this subtree (== num_keys for leaves).
  uint64_t count = 0;
  /// Arena free-list link; meaningless while the node is reachable.
  Node* free_next = nullptr;
  uint16_t num_keys = 0;
  uint16_t num_children = 0;  ///< internal only
  bool leaf = true;
};

static_assert(offsetof(CountedBTree::Node, keys) == 0,
              "keys must start at the aligned slot base");

namespace {

using Node = CountedBTree::Node;

struct BTreeNodeArenaTraits {
  static void SetFreeNext(Node* n, Node* next) { n->free_next = next; }
  static Node* GetFreeNext(Node* n) { return n->free_next; }
  static void Recycle(Node* n) {
    // Only the header resets; the embedded arrays keep their bytes. An
    // epoch-retired husk therefore stays fully readable until its deleter
    // runs Release (which is what calls this).
    n->leaf = true;
    n->count = 0;
    n->num_keys = 0;
    n->num_children = 0;
  }
};

}  // namespace

class BTreeNodeArena final
    : public PoolArena<Node, BTreeNodeArenaTraits> {};

namespace {

/// Free context threaded through the mutation helpers. With no epoch
/// attached, frees recycle straight onto the pool free list; with one,
/// nodes are retired and recycle only once no in-flight reader could still
/// observe them (the retired node keeps its keys/children intact until its
/// deleter runs, so a stale traversal reads consistent old data).
struct NodePool {
  BTreeNodeArena* arena;
  epoch::EpochManager* epoch;

  void Free(Node* n) const {
    if (epoch == nullptr) {
      arena->Release(n);
      return;
    }
    epoch->Retire(
        n,
        [](void* obj, void* ctx) {
          static_cast<BTreeNodeArena*>(ctx)->Release(static_cast<Node*>(obj));
        },
        arena);
  }
};

/// Returns a whole subtree to the free list (so Clear()/BulkBuild rebuilds
/// — every virtual root split — recycle the old structure). Wholesale
/// teardown goes through the arena's chunk drop instead.
void ReleaseTree(const NodePool& pool, Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (uint32_t i = 0; i < n->num_children; ++i) {
      ReleaseTree(pool, n->in.child[i]);
    }
  }
  pool.Free(n);
}

/// Smallest key in the subtree.
Label MinKey(const Node* n) {
  while (!n->leaf) n = n->in.child[0];
  return n->keys[0];
}

/// Largest key in the subtree.
Label MaxKey(const Node* n) {
  while (!n->leaf) n = n->in.child[n->num_children - 1];
  return n->keys[n->num_keys - 1];
}

/// Child index to descend into for `key` (branchless/SIMD upper_bound).
uint32_t ChildIndex(const Node* n, Label key) {
  return search::UpperBound(n->keys, n->num_keys, key);
}

// ---- array micro-ops (memmove over trivially-copyable slots) -------------

template <typename T>
inline void SlotInsert(T* a, uint32_t n, uint32_t pos, T v) {
  std::memmove(a + pos + 1, a + pos, (n - pos) * sizeof(T));
  a[pos] = v;
}

template <typename T>
inline void SlotErase(T* a, uint32_t n, uint32_t pos) {
  std::memmove(a + pos, a + pos + 1, (n - pos - 1) * sizeof(T));
}

/// Inserts a key/value pair at `pos` of a leaf.
inline void LeafInsert(Node* n, uint32_t pos, Label key, uint64_t value) {
  SlotInsert(n->keys, n->num_keys, pos, key);
  SlotInsert(n->values, n->num_keys, pos, value);
  ++n->num_keys;
}

/// Removes the pair at `pos` of a leaf.
inline void LeafErase(Node* n, uint32_t pos) {
  SlotErase(n->keys, n->num_keys, pos);
  SlotErase(n->values, n->num_keys, pos);
  --n->num_keys;
}

inline void KeyInsert(Node* n, uint32_t pos, Label key) {
  SlotInsert(n->keys, n->num_keys, pos, key);
  ++n->num_keys;
}

inline void KeyErase(Node* n, uint32_t pos) {
  SlotErase(n->keys, n->num_keys, pos);
  --n->num_keys;
}

/// Inserts `c` (and its count-cache slot) at child position `pos`.
inline void ChildInsert(Node* n, uint32_t pos, Node* c) {
  SlotInsert(n->in.child, n->num_children, pos, c);
  SlotInsert(n->in.ccount, n->num_children, pos, c->count);
  ++n->num_children;
}

inline void ChildErase(Node* n, uint32_t pos) {
  SlotErase(n->in.child, n->num_children, pos);
  SlotErase(n->in.ccount, n->num_children, pos);
  --n->num_children;
}

struct SplitResult {
  Label separator;  // smallest key of the new right node
  Node* right;
};

}  // namespace

CountedBTree::CountedBTree(uint32_t order)
    : order_(order), arena_(std::make_unique<BTreeNodeArena>()) {
  LTREE_CHECK(order_ >= 4 && order_ <= kMaxNodeOrder);
}

// Every node lives in arena chunks, which free wholesale — no tree walk.
CountedBTree::~CountedBTree() = default;

// A moved-from tree keeps a null arena (so the noexcept moves never
// allocate); the invariant is arena_ == nullptr implies root_ == nullptr,
// and the two entry points that can grow an empty tree re-arm it lazily.
CountedBTree::CountedBTree(CountedBTree&& other) noexcept
    : root_(other.root_),
      order_(other.order_),
      arena_(std::move(other.arena_)),
      epoch_(other.epoch_) {
  other.root_ = nullptr;
  other.epoch_ = nullptr;
}

CountedBTree& CountedBTree::operator=(CountedBTree&& other) noexcept {
  if (this != &other) {
    root_ = other.root_;
    order_ = other.order_;
    arena_ = std::move(other.arena_);  // old nodes die with the old arena
    epoch_ = other.epoch_;
    other.root_ = nullptr;
    other.epoch_ = nullptr;
  }
  return *this;
}

BTreeNodeArena* CountedBTree::EnsureArena() {
  if (arena_ == nullptr) arena_ = std::make_unique<BTreeNodeArena>();
  return arena_.get();
}

void CountedBTree::Clear() {
  if (root_ == nullptr) return;
  ReleaseTree(NodePool{arena_.get(), epoch_}, root_);
  root_ = nullptr;
}

const PoolArenaStats& CountedBTree::arena_stats() const {
  static const PoolArenaStats kEmpty;
  return arena_ == nullptr ? kEmpty : arena_->stats();
}

uint64_t CountedBTree::size() const {
  return root_ == nullptr ? 0 : root_->count;
}

// --------------------------------------------------------------------------
// Insert
// --------------------------------------------------------------------------

namespace {

Result<SplitResult*> InsertRec(Node* n, Label key, uint64_t value,
                               uint32_t order, BTreeNodeArena* arena,
                               SplitResult* split_storage) {
  if (n->leaf) {
    const uint32_t pos = search::LowerBound(n->keys, n->num_keys, key);
    if (pos < n->num_keys && n->keys[pos] == key) {
      return Status::AlreadyExists("duplicate key");
    }
    LeafInsert(n, pos, key, value);
    n->count = n->num_keys;
    if (n->num_keys <= order) return static_cast<SplitResult*>(nullptr);
    // Split the leaf in half.
    Node* right = arena->Allocate();
    right->leaf = true;
    const uint32_t half = n->num_keys / 2;
    const uint32_t rlen = n->num_keys - half;
    std::memcpy(right->keys, n->keys + half, rlen * sizeof(Label));
    std::memcpy(right->values, n->values + half, rlen * sizeof(uint64_t));
    right->num_keys = static_cast<uint16_t>(rlen);
    n->num_keys = static_cast<uint16_t>(half);
    n->count = half;
    right->count = rlen;
    split_storage->separator = right->keys[0];
    split_storage->right = right;
    return split_storage;
  }

  const uint32_t ci = ChildIndex(n, key);
  SplitResult child_split;
  LTREE_ASSIGN_OR_RETURN(SplitResult * split,
                         InsertRec(n->in.child[ci], key, value, order, arena,
                                   &child_split));
  ++n->count;
  // Refresh the count cache for the descended child: it either grew by one
  // or — if it split — shrank to its left half.
  n->in.ccount[ci] = n->in.child[ci]->count;
  if (split == nullptr) return static_cast<SplitResult*>(nullptr);
  KeyInsert(n, ci, split->separator);
  ChildInsert(n, ci + 1, split->right);
  if (n->num_children <= order) return static_cast<SplitResult*>(nullptr);
  // Split this internal node.
  Node* right = arena->Allocate();
  right->leaf = false;
  const uint32_t half_children = n->num_children / 2;
  // Separator promoted upward is the min key of the right half.
  const Label up_sep = n->keys[half_children - 1];
  const uint32_t rchildren = n->num_children - half_children;
  const uint32_t rkeys = n->num_keys - half_children;
  std::memcpy(right->in.child, n->in.child + half_children,
              rchildren * sizeof(Node*));
  std::memcpy(right->in.ccount, n->in.ccount + half_children,
              rchildren * sizeof(uint64_t));
  std::memcpy(right->keys, n->keys + half_children, rkeys * sizeof(Label));
  right->num_children = static_cast<uint16_t>(rchildren);
  right->num_keys = static_cast<uint16_t>(rkeys);
  n->num_children = static_cast<uint16_t>(half_children);
  n->num_keys = static_cast<uint16_t>(half_children - 1);
  uint64_t right_count = 0;
  for (uint32_t i = 0; i < rchildren; ++i) right_count += right->in.ccount[i];
  right->count = right_count;
  n->count -= right_count;
  split_storage->separator = up_sep;
  split_storage->right = right;
  return split_storage;
}

}  // namespace

Status CountedBTree::Insert(Label key, uint64_t value) {
  EnsureArena();
  if (root_ == nullptr) {
    root_ = arena_->Allocate();
    root_->leaf = true;
  }
  SplitResult split_storage;
  LTREE_ASSIGN_OR_RETURN(
      SplitResult * split,
      InsertRec(root_, key, value, order_, arena_.get(), &split_storage));
  if (split != nullptr) {
    Node* new_root = arena_->Allocate();
    new_root->leaf = false;
    new_root->in.child[0] = root_;
    new_root->in.ccount[0] = root_->count;
    new_root->in.child[1] = split->right;
    new_root->in.ccount[1] = split->right->count;
    new_root->num_children = 2;
    new_root->keys[0] = split->separator;
    new_root->num_keys = 1;
    new_root->count = root_->count + split->right->count;
    root_ = new_root;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Update / Lookup
// --------------------------------------------------------------------------

namespace {

Node* FindLeaf(Node* n, Label key) {
  if (n == nullptr) return nullptr;
  while (!n->leaf) n = n->in.child[ChildIndex(n, key)];
  return n;
}

}  // namespace

Status CountedBTree::Update(Label key, uint64_t value) {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  const uint32_t pos = search::LowerBound(leaf->keys, leaf->num_keys, key);
  if (pos >= leaf->num_keys || leaf->keys[pos] != key) {
    return Status::NotFound("key not present");
  }
  leaf->values[pos] = value;
  return Status::OK();
}

Result<uint64_t> CountedBTree::Lookup(Label key) const {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  const uint32_t pos = search::LowerBound(leaf->keys, leaf->num_keys, key);
  if (pos >= leaf->num_keys || leaf->keys[pos] != key) {
    return Status::NotFound("key not present");
  }
  return leaf->values[pos];
}

bool CountedBTree::Contains(Label key) const { return Lookup(key).ok(); }

// --------------------------------------------------------------------------
// Delete
// --------------------------------------------------------------------------

namespace {

/// Rebalances n->in.child[ci] after a deletion left it underfull.
void FixUnderflow(Node* n, uint32_t ci, uint32_t order,
                  const NodePool& pool) {
  Node* child = n->in.child[ci];
  const uint32_t min_fill = order / 2;
  const uint32_t child_size = child->leaf ? child->num_keys
                                          : child->num_children;
  if (child_size >= min_fill) return;

  Node* left = ci > 0 ? n->in.child[ci - 1] : nullptr;
  Node* right = ci + 1 < n->num_children ? n->in.child[ci + 1] : nullptr;

  auto left_size = [&]() {
    return left->leaf ? left->num_keys : left->num_children;
  };
  auto right_size = [&]() {
    return right->leaf ? right->num_keys : right->num_children;
  };

  if (left != nullptr && left_size() > min_fill) {
    // Borrow the largest item of the left sibling.
    if (child->leaf) {
      LeafInsert(child, 0, left->keys[left->num_keys - 1],
                 left->values[left->num_keys - 1]);
      --left->num_keys;
      child->count = child->num_keys;
      left->count = left->num_keys;
    } else {
      Node* moved = left->in.child[left->num_children - 1];
      --left->num_children;
      // The separator between `moved` and child's old first child is the
      // min key of the old first child.
      KeyInsert(child, 0, MinKey(child->in.child[0]));
      ChildInsert(child, 0, moved);
      --left->num_keys;
      child->count += moved->count;
      left->count -= moved->count;
    }
    n->keys[ci - 1] = MinKey(child);
    n->in.ccount[ci - 1] = left->count;
    n->in.ccount[ci] = child->count;
    return;
  }
  if (right != nullptr && right_size() > min_fill) {
    // Borrow the smallest item of the right sibling.
    if (child->leaf) {
      LeafInsert(child, child->num_keys, right->keys[0], right->values[0]);
      LeafErase(right, 0);
      child->count = child->num_keys;
      right->count = right->num_keys;
    } else {
      Node* moved = right->in.child[0];
      ChildErase(right, 0);
      KeyInsert(child, child->num_keys, MinKey(moved));
      ChildInsert(child, child->num_children, moved);
      KeyErase(right, 0);
      child->count += moved->count;
      right->count -= moved->count;
    }
    n->keys[ci] = MinKey(right);
    n->in.ccount[ci] = child->count;
    n->in.ccount[ci + 1] = right->count;
    return;
  }

  // Merge with a sibling (prefer left).
  if (left != nullptr) {
    // Merge child into left.
    if (child->leaf) {
      std::memcpy(left->keys + left->num_keys, child->keys,
                  child->num_keys * sizeof(Label));
      std::memcpy(left->values + left->num_keys, child->values,
                  child->num_keys * sizeof(uint64_t));
      left->num_keys = static_cast<uint16_t>(left->num_keys + child->num_keys);
      left->count = left->num_keys;
    } else {
      KeyInsert(left, left->num_keys, MinKey(child->in.child[0]));
      std::memcpy(left->keys + left->num_keys, child->keys,
                  child->num_keys * sizeof(Label));
      left->num_keys = static_cast<uint16_t>(left->num_keys + child->num_keys);
      std::memcpy(left->in.child + left->num_children, child->in.child,
                  child->num_children * sizeof(Node*));
      std::memcpy(left->in.ccount + left->num_children, child->in.ccount,
                  child->num_children * sizeof(uint64_t));
      left->num_children =
          static_cast<uint16_t>(left->num_children + child->num_children);
      left->count += child->count;
    }
    // The merged-away node's children now live under `left`; the husk keeps
    // its (stale) arrays readable until it recycles through the pool.
    pool.Free(child);
    ChildErase(n, ci);
    KeyErase(n, ci - 1);
    n->in.ccount[ci - 1] = left->count;
  } else {
    LTREE_CHECK(right != nullptr);
    // Merge right into child.
    if (child->leaf) {
      std::memcpy(child->keys + child->num_keys, right->keys,
                  right->num_keys * sizeof(Label));
      std::memcpy(child->values + child->num_keys, right->values,
                  right->num_keys * sizeof(uint64_t));
      child->num_keys =
          static_cast<uint16_t>(child->num_keys + right->num_keys);
      child->count = child->num_keys;
    } else {
      KeyInsert(child, child->num_keys, MinKey(right->in.child[0]));
      std::memcpy(child->keys + child->num_keys, right->keys,
                  right->num_keys * sizeof(Label));
      child->num_keys =
          static_cast<uint16_t>(child->num_keys + right->num_keys);
      std::memcpy(child->in.child + child->num_children, right->in.child,
                  right->num_children * sizeof(Node*));
      std::memcpy(child->in.ccount + child->num_children, right->in.ccount,
                  right->num_children * sizeof(uint64_t));
      child->num_children =
          static_cast<uint16_t>(child->num_children + right->num_children);
      child->count += right->count;
    }
    pool.Free(right);
    ChildErase(n, ci + 1);
    KeyErase(n, ci);
    n->in.ccount[ci] = child->count;
  }
}

Status DeleteRec(Node* n, Label key, uint32_t order,
                 const NodePool& pool) {
  if (n->leaf) {
    const uint32_t pos = search::LowerBound(n->keys, n->num_keys, key);
    if (pos >= n->num_keys || n->keys[pos] != key) {
      return Status::NotFound("key not present");
    }
    LeafErase(n, pos);
    n->count = n->num_keys;
    return Status::OK();
  }
  const uint32_t ci = ChildIndex(n, key);
  LTREE_RETURN_IF_ERROR(DeleteRec(n->in.child[ci], key, order, pool));
  --n->count;
  n->in.ccount[ci] = n->in.child[ci]->count;
  // Deleting the subtree minimum stales the separator left of ci; fix it
  // while children[ci] still exists (FixUnderflow may merge it away).
  if (ci > 0) {
    n->keys[ci - 1] = MinKey(n->in.child[ci]);
  }
  FixUnderflow(n, ci, order, pool);
  return Status::OK();
}

}  // namespace

Status CountedBTree::Delete(Label key) {
  if (root_ == nullptr) return Status::NotFound("empty tree");
  const NodePool pool{arena_.get(), epoch_};
  LTREE_RETURN_IF_ERROR(DeleteRec(root_, key, order_, pool));
  if (!root_->leaf && root_->num_children == 1) {
    Node* only = root_->in.child[0];
    pool.Free(root_);  // root collapse: the surviving child lives on
    root_ = only;
  } else if (root_->leaf && root_->num_keys == 0) {
    pool.Free(root_);
    root_ = nullptr;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Order statistics
// --------------------------------------------------------------------------

uint64_t CountedBTree::CountLess(Label key) const {
  const Node* n = root_;
  if (n == nullptr) return 0;
  uint64_t rank = 0;
  while (!n->leaf) {
    const uint32_t ci = ChildIndex(n, key);
    // The cached per-child counts make this a pure in-node sum: no sibling
    // cache lines are touched on the way down.
    for (uint32_t i = 0; i < ci; ++i) rank += n->in.ccount[i];
    n = n->in.child[ci];
  }
  rank += search::LowerBound(n->keys, n->num_keys, key);
  return rank;
}

uint64_t CountedBTree::RangeCount(Label lo, Label hi) const {
  if (lo >= hi) return 0;
  return CountLess(hi) - CountLess(lo);
}

Result<Entry> CountedBTree::Select(uint64_t rank) const {
  if (root_ == nullptr || rank >= root_->count) {
    return Status::OutOfRange(
        StrFormat("rank %llu >= size %llu",
                  static_cast<unsigned long long>(rank),
                  static_cast<unsigned long long>(size())));
  }
  const Node* n = root_;
  while (!n->leaf) {
    uint32_t i = 0;
    while (rank >= n->in.ccount[i]) {
      rank -= n->in.ccount[i];
      ++i;
    }
    n = n->in.child[i];
  }
  return Entry{n->keys[rank], n->values[rank]};
}

Result<Entry> CountedBTree::LowerBound(Label key) const {
  const uint64_t rank = CountLess(key);
  if (root_ == nullptr || rank >= root_->count) {
    return Status::NotFound("no key >= bound");
  }
  return Select(rank);
}

Result<Entry> CountedBTree::Predecessor(Label key) const {
  const uint64_t rank = CountLess(key);
  if (rank == 0) return Status::NotFound("no key < bound");
  return Select(rank - 1);
}

// --------------------------------------------------------------------------
// Iteration / scans
// --------------------------------------------------------------------------

Label CountedBTree::Iterator::key() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->keys[stack_.back().index];
}

uint64_t CountedBTree::Iterator::value() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->values[stack_.back().index];
}

void CountedBTree::Iterator::Next() {
  LTREE_CHECK(Valid());
  Frame& top = stack_.back();
  const Node* leaf = static_cast<const Node*>(top.node);
  if (top.index + 1 < leaf->num_keys) {
    ++top.index;
    return;
  }
  stack_.pop_back();
  // Ascend to the first ancestor with an unvisited right child.
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Node* n = static_cast<const Node*>(frame.node);
    if (frame.index + 1 < n->num_children) {
      ++frame.index;
      // Descend leftmost from that child.
      const Node* cur = n->in.child[frame.index];
      while (!cur->leaf) {
        stack_.push_back({cur, 0});
        cur = cur->in.child[0];
      }
      stack_.push_back({cur, 0});
      return;
    }
    stack_.pop_back();
  }
}

CountedBTree::Iterator CountedBTree::Begin() const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    it.stack_.push_back({cur, 0});
    cur = cur->in.child[0];
  }
  it.stack_.push_back({cur, 0});
  return it;
}

CountedBTree::Iterator CountedBTree::Seek(Label key) const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    const uint32_t ci = ChildIndex(cur, key);
    it.stack_.push_back({cur, ci});
    cur = cur->in.child[ci];
  }
  const uint32_t pos = search::LowerBound(cur->keys, cur->num_keys, key);
  if (pos < cur->num_keys) {
    it.stack_.push_back({cur, pos});
    return it;
  }
  // Key is past this leaf: step to the successor leaf via the stack.
  it.stack_.push_back({cur, pos == 0 ? 0u : pos - 1});
  if (cur->num_keys == 0) {
    it.stack_.clear();
    return it;
  }
  it.Next();
  return it;
}

std::vector<Entry> CountedBTree::Scan(Label lo, Label hi) const {
  std::vector<Entry> out;
  for (Iterator it = Seek(lo); it.Valid() && it.key() < hi; it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

std::vector<Entry> CountedBTree::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

// --------------------------------------------------------------------------
// Bulk operations
// --------------------------------------------------------------------------

namespace {

/// Length of the next ~3/4-fill chunk of a run with `remaining` items left
/// (leaving slack for inserts). Absorbs a small tail into the current chunk
/// if it fits, otherwise splits the combined run evenly, so no chunk ever
/// lands under order/2.
size_t ChunkLen(size_t remaining, uint32_t order) {
  const size_t target = std::max<size_t>(order * 3 / 4, order / 2);
  size_t len = std::min(target, remaining);
  const size_t rest = remaining - len;
  if (rest > 0 && rest < order / 2) {
    len = (len + rest <= order) ? len + rest : (len + rest) / 2;
  }
  return len;
}

/// How many chunks ChunkLen splits `total` into. Pure arithmetic, so
/// ReplaceRange can dry-run a rebuild before allocating anything.
size_t CountChunks(size_t total, uint32_t order) {
  size_t chunks = 0;
  while (total > 0) {
    total -= ChunkLen(total, order);
    ++chunks;
  }
  return chunks;
}

/// Builds the leaf level over `entries` (appended to `level`).
void BuildLeafLevel(std::span<const Entry> entries, uint32_t order,
                    BTreeNodeArena* arena, std::vector<Node*>* level) {
  size_t i = 0;
  while (i < entries.size()) {
    const size_t len = ChunkLen(entries.size() - i, order);
    Node* leaf = arena->Allocate();
    leaf->leaf = true;
    for (size_t j = 0; j < len; ++j) {
      leaf->keys[j] = entries[i + j].key;
      leaf->values[j] = entries[i + j].value;
    }
    leaf->num_keys = static_cast<uint16_t>(len);
    leaf->count = len;
    level->push_back(leaf);
    i += len;
  }
}

/// Stacks one internal level over `level`, replacing it.
void StackLevel(std::vector<Node*>* level, uint32_t order,
                BTreeNodeArena* arena) {
  std::vector<Node*> next;
  next.reserve(CountChunks(level->size(), order));
  size_t j = 0;
  while (j < level->size()) {
    const size_t len = ChunkLen(level->size() - j, order);
    Node* node = arena->Allocate();
    node->leaf = false;
    for (size_t k = 0; k < len; ++k) {
      Node* c = (*level)[j + k];
      node->in.child[k] = c;
      node->in.ccount[k] = c->count;
      node->count += c->count;
      if (k > 0) node->keys[k - 1] = MinKey(c);
    }
    node->num_children = static_cast<uint16_t>(len);
    node->num_keys = static_cast<uint16_t>(len - 1);
    next.push_back(node);
    j += len;
  }
  *level = std::move(next);
}

/// Appends the subtree's entries in key order.
void CollectEntries(const Node* n, std::vector<Entry>* out) {
  if (n->leaf) {
    for (uint32_t i = 0; i < n->num_keys; ++i) {
      out->push_back(Entry{n->keys[i], n->values[i]});
    }
    return;
  }
  for (uint32_t i = 0; i < n->num_children; ++i) {
    CollectEntries(n->in.child[i], out);
  }
}

/// Edges from `n` down to the leaf level.
uint32_t SubtreeHeight(const Node* n) {
  uint32_t h = 0;
  while (!n->leaf) {
    ++h;
    n = n->in.child[0];
  }
  return h;
}

}  // namespace

Status CountedBTree::BulkBuild(std::span<const Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  Clear();
  if (entries.empty()) return Status::OK();
  EnsureArena();
  std::vector<Node*> level;
  BuildLeafLevel(entries, order_, arena_.get(), &level);
  while (level.size() > 1) StackLevel(&level, order_, arena_.get());
  root_ = level.front();
  return Status::OK();
}

Status CountedBTree::ReplaceRange(Label lo, Label hi,
                                  std::span<const Entry> entries) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key < lo || entries[i].key >= hi) {
      return Status::InvalidArgument("replacement key outside [lo, hi)");
    }
    if (i > 0 && entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  // lo == hi is an empty range: entries cannot lie inside it (rejected
  // above), so the call is a no-op.
  if (lo == hi) return Status::OK();
  if (root_ == nullptr) {
    return entries.empty() ? Status::OK() : BulkBuild(entries);
  }
  // Whole-tree replacement (e.g. every virtual L-Tree root split) skips
  // the descent entirely: all current entries are erased, so the result is
  // exactly `entries`.
  if (lo <= MinKey(root_) && MaxKey(root_) < hi) return BulkBuild(entries);

  // Single structural pass: descend once to the lowest node whose child
  // slice covers the whole range, splice the sorted replacements into that
  // slice's entry run, rebuild the slice in place, and repair counts and
  // separators bottom-up along the recorded path. Escalates the slice one
  // level up whenever the rebuilt piece cannot meet min occupancy at its
  // level; the worst case (a range reshaping most of the tree) degenerates
  // to a full BulkBuild, which is proportional to the replaced region
  // anyway.
  struct Frame {
    Node* node;
    uint32_t index;
  };
  std::vector<Frame> path;
  Node* a = root_;
  uint32_t cl = 0;
  uint32_t cr = 0;
  while (!a->leaf) {
    cl = ChildIndex(a, lo);
    cr = ChildIndex(a, hi - 1);
    if (cl != cr) break;
    path.push_back({a, cl});
    a = a->in.child[cl];
  }

  const uint32_t min_fill = order_ / 2;

  // Bottom-up repair: ancestor counts (and their parents' cached copies)
  // shift by `delta`, and the descended child's min key may have changed,
  // staling the separator to its left.
  auto repair_path = [&](int64_t delta) {
    for (size_t i = path.size(); i-- > 0;) {
      Node* n = path[i].node;
      n->count = static_cast<uint64_t>(static_cast<int64_t>(n->count) + delta);
      const uint32_t ci = path[i].index;
      n->in.ccount[ci] = n->in.child[ci]->count;
      if (ci > 0) n->keys[ci - 1] = MinKey(n->in.child[ci]);
    }
  };

  // Fallback: splice into the full entry run and rebuild from scratch
  // (BulkBuild recycles the old nodes through the arena).
  auto full_rebuild = [&]() -> Status {
    std::vector<Entry> all;
    all.reserve(root_->count + entries.size());
    CollectEntries(root_, &all);
    const auto key_of = [](const Entry& e) { return e.key; };
    const uint32_t n_all = static_cast<uint32_t>(all.size());
    const uint32_t eb = search::LowerBoundBy(all.data(), n_all, lo, key_of);
    const uint32_t ee = search::LowerBoundBy(all.data(), n_all, hi, key_of);
    std::vector<Entry> spliced;
    spliced.reserve(all.size() - (ee - eb) + entries.size());
    spliced.insert(spliced.end(), all.begin(), all.begin() + eb);
    spliced.insert(spliced.end(), entries.begin(), entries.end());
    spliced.insert(spliced.end(), all.begin() + ee, all.end());
    return BulkBuild(spliced);
  };

  if (a->leaf) {
    // In-leaf splice: the whole range lives in one leaf. No allocation at
    // all when the result keeps the leaf within occupancy bounds.
    const uint32_t eb = search::LowerBound(a->keys, a->num_keys, lo);
    const uint32_t ee = search::LowerBound(a->keys, a->num_keys, hi);
    const size_t new_size = a->num_keys - (ee - eb) + entries.size();
    if (new_size <= order_ && (path.empty() || new_size >= min_fill)) {
      const int64_t delta = static_cast<int64_t>(new_size) -
                            static_cast<int64_t>(a->num_keys);
      // Shift the tail to its final position, then write the replacements
      // over [eb, eb + entries.size()).
      const uint32_t tail = a->num_keys - ee;
      std::memmove(a->keys + eb + entries.size(), a->keys + ee,
                   tail * sizeof(Label));
      std::memmove(a->values + eb + entries.size(), a->values + ee,
                   tail * sizeof(uint64_t));
      for (size_t i = 0; i < entries.size(); ++i) {
        a->keys[eb + i] = entries[i].key;
        a->values[eb + i] = entries[i].value;
      }
      a->num_keys = static_cast<uint16_t>(new_size);
      a->count = new_size;
      if (path.empty() && a->num_keys == 0) {
        NodePool{arena_.get(), epoch_}.Free(a);
        root_ = nullptr;
        return Status::OK();
      }
      repair_path(delta);
      return Status::OK();
    }
    if (path.empty()) return full_rebuild();  // over/underfull root leaf
    cl = cr = path.back().index;
    a = path.back().node;
    path.pop_back();
  }

  std::vector<Entry> combined;
  std::vector<Entry> spliced;
  for (;;) {
    const bool at_root = (a == root_);
    combined.clear();
    for (uint32_t i = cl; i <= cr; ++i) {
      CollectEntries(a->in.child[i], &combined);
    }
    const size_t old_total = combined.size();
    const auto key_of = [](const Entry& e) { return e.key; };
    const uint32_t n_comb = static_cast<uint32_t>(combined.size());
    const uint32_t eb =
        search::LowerBoundBy(combined.data(), n_comb, lo, key_of);
    const uint32_t ee =
        search::LowerBoundBy(combined.data(), n_comb, hi, key_of);
    spliced.clear();
    spliced.reserve(old_total - (ee - eb) + entries.size());
    spliced.insert(spliced.end(), combined.begin(), combined.begin() + eb);
    spliced.insert(spliced.end(), entries.begin(), entries.end());
    spliced.insert(spliced.end(), combined.begin() + ee, combined.end());

    const uint32_t child_height = SubtreeHeight(a->in.child[cl]);

    // Dry-run the level stacking (pure arithmetic) so a failed attempt
    // never allocates: every level of the rebuilt slice must be able to
    // meet min occupancy up to the slice's height.
    bool fits = true;
    size_t m_new = 0;
    if (!spliced.empty()) {
      size_t c = spliced.size();
      if (c < min_fill) {
        fits = false;
      } else {
        c = CountChunks(c, order_);
        for (uint32_t h = 1; h <= child_height && fits; ++h) {
          if (c < min_fill) {
            fits = false;
          } else {
            c = CountChunks(c, order_);
          }
        }
      }
      m_new = c;
    }
    const size_t removed = static_cast<size_t>(cr - cl) + 1;
    if (fits) {
      const size_t new_cc = a->num_children - removed + m_new;
      if (new_cc > order_ || (!at_root && new_cc < min_fill)) fits = false;
    }
    if (!fits) {
      if (at_root) return full_rebuild();
      cl = cr = path.back().index;
      a = path.back().node;
      path.pop_back();
      continue;
    }

    // Commit: recycle the old slice first (its entries already live in
    // `spliced`) so the rebuild below is served from the free list, then
    // build the replacement and splice it over children [cl, cr]. With an
    // epoch attached the old slice recycles later, at quiescence.
    const NodePool pool{arena_.get(), epoch_};
    for (uint32_t i = cl; i <= cr; ++i) {
      ReleaseTree(pool, a->in.child[i]);
    }
    std::vector<Node*> level;
    if (!spliced.empty()) {
      BuildLeafLevel(spliced, order_, arena_.get(), &level);
      for (uint32_t h = 1; h <= child_height; ++h) {
        StackLevel(&level, order_, arena_.get());
      }
    }
    // Splice the rebuilt run over child slots [cl, cr]: shift the tail to
    // its final position, then write the new children and their cached
    // counts.
    const uint32_t tail = a->num_children - (cr + 1);
    std::memmove(a->in.child + cl + level.size(), a->in.child + cr + 1,
                 tail * sizeof(Node*));
    std::memmove(a->in.ccount + cl + level.size(), a->in.ccount + cr + 1,
                 tail * sizeof(uint64_t));
    for (size_t i = 0; i < level.size(); ++i) {
      a->in.child[cl + i] = level[i];
      a->in.ccount[cl + i] = level[i]->count;
    }
    a->num_children = static_cast<uint16_t>(a->num_children - removed +
                                            level.size());
    a->num_keys = 0;
    for (uint32_t i = 1; i < a->num_children; ++i) {
      a->keys[a->num_keys++] = MinKey(a->in.child[i]);
    }
    const int64_t delta =
        static_cast<int64_t>(spliced.size()) - static_cast<int64_t>(old_total);
    a->count = static_cast<uint64_t>(static_cast<int64_t>(a->count) + delta);
    repair_path(delta);
    // An internal root may be left with one child (collapse) or none
    // (empty tree).
    while (root_ != nullptr && !root_->leaf && root_->num_children <= 1) {
      Node* only = root_->num_children == 0 ? nullptr : root_->in.child[0];
      pool.Free(root_);  // recycles the husk; `only` lives on
      root_ = only;
    }
    return Status::OK();
  }
}

// --------------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------------

namespace {

void AuditNode(const Node* n, uint32_t order, bool is_root, int depth,
               int* leaf_depth, const std::string& path,
               audit::Report* report) {
  const size_t sz = n->leaf ? n->num_keys : n->num_children;
  if (sz > order) {
    report->Add(path, "occupancy",
                StrFormat("node holds %zu slots, order is %u", sz, order));
  }
  if (!is_root && sz < order / 2) {
    report->Add(path, "occupancy",
                StrFormat("node holds %zu slots, minimum is %u", sz,
                          order / 2));
  }
  if (n->leaf) {
    if (n->count != n->num_keys) {
      report->Add(path, "count-sum",
                  StrFormat("leaf count %llu != %u keys",
                            static_cast<unsigned long long>(n->count),
                            n->num_keys));
    }
    for (uint32_t i = 1; i < n->num_keys; ++i) {
      if (n->keys[i - 1] >= n->keys[i]) {
        report->Add(path, "key-order",
                    StrFormat("keys[%u]=%llu not above keys[%u]=%llu", i,
                              static_cast<unsigned long long>(n->keys[i]),
                              i - 1,
                              static_cast<unsigned long long>(
                                  n->keys[i - 1])));
      }
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      report->Add(path, "leaf-depth",
                  StrFormat("leaf at depth %d, first leaf at depth %d",
                            depth, *leaf_depth));
    }
    return;
  }
  if (is_root && n->num_children < 2) {
    report->Add(path, "root-fanout", "internal root with < 2 children");
  }
  if (n->num_keys + 1 != n->num_children) {
    report->Add(path, "separator",
                StrFormat("%u separators for %u children", n->num_keys,
                          n->num_children));
    return;  // child walk below indexes keys[i-1]; bail on this subtree
  }
  uint64_t total = 0;
  for (uint32_t i = 0; i < n->num_children; ++i) {
    const std::string child_path = (path.back() == '/' ? path : path + "/") +
                                   std::to_string(i);
    if (n->in.child[i] == nullptr) {
      report->Add(child_path, "null-child", "null child pointer");
      continue;
    }
    AuditNode(n->in.child[i], order, false, depth + 1, leaf_depth,
              child_path, report);
    total += n->in.child[i]->count;
    if (n->in.ccount[i] != n->in.child[i]->count) {
      report->Add(path, "child-count-cache",
                  StrFormat("cached count %llu != child %u's count %llu",
                            static_cast<unsigned long long>(n->in.ccount[i]),
                            i,
                            static_cast<unsigned long long>(
                                n->in.child[i]->count)));
    }
    if (i > 0 && n->keys[i - 1] != MinKey(n->in.child[i])) {
      report->Add(
          path, "separator",
          StrFormat("separator %llu != min key %llu of child %u",
                    static_cast<unsigned long long>(n->keys[i - 1]),
                    static_cast<unsigned long long>(MinKey(n->in.child[i])),
                    i));
    }
  }
  if (total != n->count) {
    report->Add(path, "count-sum",
                StrFormat("internal count %llu != children sum %llu",
                          static_cast<unsigned long long>(n->count),
                          static_cast<unsigned long long>(total)));
  }
}

}  // namespace

namespace {

void CollectReachable(const Node* n, std::unordered_set<const void*>* out) {
  if (n == nullptr) return;
  out->insert(n);
  if (n->leaf) return;
  for (uint32_t i = 0; i < n->num_children; ++i) {
    CollectReachable(n->in.child[i], out);
  }
}

}  // namespace

void CountedBTree::Audit(audit::Report* report) const {
  if (root_ != nullptr) {
    int leaf_depth = -1;
    AuditNode(root_, order_, true, 0, &leaf_depth, "btree:/", report);
  }
  // Arena conservation: at every quiescent point the pool's live counter
  // must equal the number of nodes reachable from the root — plus, with an
  // epoch attached, the retired nodes still waiting in its buckets
  // (retired ∪ reachable == allocated-and-unreleased).
  const uint64_t reachable = NodeCount();
  const uint64_t pending = epoch_ == nullptr ? 0 : epoch_->pending();
  if (arena_stats().live() != reachable + pending) {
    report->Add("btree:/", "arena-conservation",
                StrFormat("%llu nodes reachable + %llu epoch-pending but the "
                          "pool accounts %llu live",
                          static_cast<unsigned long long>(reachable),
                          static_cast<unsigned long long>(pending),
                          static_cast<unsigned long long>(
                              arena_stats().live())));
  }
  // Epoch reclamation: a retired node must be unreachable from the live
  // structure (it was unlinked before Retire) and retired exactly once —
  // a node in two buckets would double-release into the pool.
  if (epoch_ != nullptr) {
    std::unordered_set<const void*> live_set;
    CollectReachable(root_, &live_set);
    std::unordered_set<const void*> retired_set;
    epoch_->ForEachPending([&](const void* obj) {
      if (live_set.count(obj) != 0) {
        report->Add("btree:/", "epoch-reclamation",
                    StrFormat("retired node %p still reachable from the "
                              "root",
                              obj));
      }
      if (!retired_set.insert(obj).second) {
        report->Add("btree:/", "epoch-reclamation",
                    StrFormat("node %p retired twice", obj));
      }
    });
  }
}

Status CountedBTree::CheckInvariants() const {
  audit::Report report;
  Audit(&report);
  return report.ToStatus();
}

// --------------------------------------------------------------------------
// Memory accounting
// --------------------------------------------------------------------------

namespace {

uint64_t CountReachable(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t total = 1;
  if (!n->leaf) {
    for (uint32_t i = 0; i < n->num_children; ++i) {
      total += CountReachable(n->in.child[i]);
    }
  }
  return total;
}

}  // namespace

uint64_t CountedBTree::NodeCount() const { return CountReachable(root_); }

uint64_t CountedBTree::ApproxHeapBytes() const {
  // Every node's key/value/child storage is embedded in its arena slot, so
  // the chunks — which pin a cache-line-padded slot whether the slot is
  // live or on the free list — are the whole footprint.
  return arena_stats().chunks * BTreeNodeArena::kChunkBytes;
}

}  // namespace obtree
}  // namespace ltree
