#include "obtree/counted_btree.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace obtree {

struct CountedBTree::Node {
  bool leaf = true;
  /// Entries in this subtree (== keys.size() for leaves).
  uint64_t count = 0;
  /// Leaf: entry keys. Internal: keys[i] == smallest key in children[i+1].
  std::vector<Label> keys;
  /// Leaf only.
  std::vector<uint64_t> values;
  /// Internal only.
  std::vector<Node*> children;
  /// Arena free-list link; meaningless while the node is reachable.
  Node* free_next = nullptr;
};

namespace {

using Node = CountedBTree::Node;

struct BTreeNodeArenaTraits {
  static void SetFreeNext(Node* n, Node* next) { n->free_next = next; }
  static Node* GetFreeNext(Node* n) { return n->free_next; }
  static void Recycle(Node* n) {
    n->leaf = true;
    n->count = 0;
    // clear() keeps each heap buffer for the next reuse; children are
    // never destroyed here — merge/teardown move or release them first.
    n->keys.clear();
    n->values.clear();
    n->children.clear();
  }
};

}  // namespace

class BTreeNodeArena final
    : public PoolArena<Node, BTreeNodeArenaTraits> {};

namespace {

/// Returns a whole subtree to the free list (so Clear()/BulkBuild rebuilds
/// — every virtual root split — recycle the old structure). Wholesale
/// teardown goes through the arena's chunk drop instead.
void ReleaseTree(BTreeNodeArena* arena, Node* n) {
  if (n == nullptr) return;
  for (Node* c : n->children) ReleaseTree(arena, c);
  arena->Release(n);
}

/// Smallest key in the subtree.
Label MinKey(const Node* n) {
  while (!n->leaf) n = n->children.front();
  return n->keys.front();
}

/// Child index to descend into for `key`.
uint32_t ChildIndex(const Node* n, Label key) {
  return static_cast<uint32_t>(
      std::upper_bound(n->keys.begin(), n->keys.end(), key) -
      n->keys.begin());
}

struct SplitResult {
  Label separator;  // smallest key of the new right node
  Node* right;
};

}  // namespace

CountedBTree::CountedBTree(uint32_t order)
    : order_(order), arena_(std::make_unique<BTreeNodeArena>()) {
  LTREE_CHECK(order_ >= 4);
}

// Every node lives in arena chunks, which free wholesale — no tree walk.
CountedBTree::~CountedBTree() = default;

// A moved-from tree keeps a null arena (so the noexcept moves never
// allocate); the invariant is arena_ == nullptr implies root_ == nullptr,
// and the two entry points that can grow an empty tree re-arm it lazily.
CountedBTree::CountedBTree(CountedBTree&& other) noexcept
    : root_(other.root_),
      order_(other.order_),
      arena_(std::move(other.arena_)) {
  other.root_ = nullptr;
}

CountedBTree& CountedBTree::operator=(CountedBTree&& other) noexcept {
  if (this != &other) {
    root_ = other.root_;
    order_ = other.order_;
    arena_ = std::move(other.arena_);  // old nodes die with the old arena
    other.root_ = nullptr;
  }
  return *this;
}

BTreeNodeArena* CountedBTree::EnsureArena() {
  if (arena_ == nullptr) arena_ = std::make_unique<BTreeNodeArena>();
  return arena_.get();
}

void CountedBTree::Clear() {
  if (root_ == nullptr) return;
  ReleaseTree(arena_.get(), root_);
  root_ = nullptr;
}

const PoolArenaStats& CountedBTree::arena_stats() const {
  static const PoolArenaStats kEmpty;
  return arena_ == nullptr ? kEmpty : arena_->stats();
}

uint64_t CountedBTree::size() const {
  return root_ == nullptr ? 0 : root_->count;
}

// --------------------------------------------------------------------------
// Insert
// --------------------------------------------------------------------------

namespace {

Result<SplitResult*> InsertRec(Node* n, Label key, uint64_t value,
                               uint32_t order, BTreeNodeArena* arena,
                               SplitResult* split_storage) {
  if (n->leaf) {
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - n->keys.begin());
    if (it != n->keys.end() && *it == key) {
      return Status::AlreadyExists("duplicate key");
    }
    n->keys.insert(it, key);
    n->values.insert(n->values.begin() + pos, value);
    n->count = n->keys.size();
    if (n->keys.size() <= order) return static_cast<SplitResult*>(nullptr);
    // Split the leaf in half.
    Node* right = arena->Allocate();
    right->leaf = true;
    const size_t half = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + half, n->keys.end());
    right->values.assign(n->values.begin() + half, n->values.end());
    n->keys.resize(half);
    n->values.resize(half);
    n->count = n->keys.size();
    right->count = right->keys.size();
    split_storage->separator = right->keys.front();
    split_storage->right = right;
    return split_storage;
  }

  const uint32_t ci = ChildIndex(n, key);
  SplitResult child_split;
  LTREE_ASSIGN_OR_RETURN(SplitResult * split,
                         InsertRec(n->children[ci], key, value, order, arena,
                                   &child_split));
  ++n->count;
  if (split == nullptr) return static_cast<SplitResult*>(nullptr);
  n->keys.insert(n->keys.begin() + ci, split->separator);
  n->children.insert(n->children.begin() + ci + 1, split->right);
  if (n->children.size() <= order) return static_cast<SplitResult*>(nullptr);
  // Split this internal node.
  Node* right = arena->Allocate();
  right->leaf = false;
  const size_t half_children = n->children.size() / 2;
  // Separator promoted upward is the min key of the right half.
  const Label up_sep = n->keys[half_children - 1];
  right->children.assign(n->children.begin() + half_children,
                         n->children.end());
  right->keys.assign(n->keys.begin() + half_children, n->keys.end());
  n->children.resize(half_children);
  n->keys.resize(half_children - 1);
  uint64_t right_count = 0;
  for (Node* c : right->children) right_count += c->count;
  right->count = right_count;
  n->count -= right_count;
  split_storage->separator = up_sep;
  split_storage->right = right;
  return split_storage;
}

}  // namespace

Status CountedBTree::Insert(Label key, uint64_t value) {
  EnsureArena();
  if (root_ == nullptr) {
    root_ = arena_->Allocate();
    root_->leaf = true;
  }
  SplitResult split_storage;
  LTREE_ASSIGN_OR_RETURN(
      SplitResult * split,
      InsertRec(root_, key, value, order_, arena_.get(), &split_storage));
  if (split != nullptr) {
    Node* new_root = arena_->Allocate();
    new_root->leaf = false;
    new_root->children = {root_, split->right};
    new_root->keys = {split->separator};
    new_root->count = root_->count + split->right->count;
    root_ = new_root;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Update / Lookup
// --------------------------------------------------------------------------

namespace {

Node* FindLeaf(Node* n, Label key) {
  if (n == nullptr) return nullptr;
  while (!n->leaf) n = n->children[ChildIndex(n, key)];
  return n;
}

}  // namespace

Status CountedBTree::Update(Label key, uint64_t value) {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not present");
  }
  leaf->values[static_cast<size_t>(it - leaf->keys.begin())] = value;
  return Status::OK();
}

Result<uint64_t> CountedBTree::Lookup(Label key) const {
  Node* leaf = FindLeaf(root_, key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not present");
  }
  return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
}

bool CountedBTree::Contains(Label key) const { return Lookup(key).ok(); }

// --------------------------------------------------------------------------
// Delete
// --------------------------------------------------------------------------

namespace {

/// Rebalances n->children[ci] after a deletion left it underfull.
void FixUnderflow(Node* n, uint32_t ci, uint32_t order,
                  BTreeNodeArena* arena) {
  Node* child = n->children[ci];
  const size_t min_fill = order / 2;
  const size_t child_size =
      child->leaf ? child->keys.size() : child->children.size();
  if (child_size >= min_fill) return;

  Node* left = ci > 0 ? n->children[ci - 1] : nullptr;
  Node* right = ci + 1 < n->children.size() ? n->children[ci + 1] : nullptr;

  auto left_size = [&]() {
    return left->leaf ? left->keys.size() : left->children.size();
  };
  auto right_size = [&]() {
    return right->leaf ? right->keys.size() : right->children.size();
  };

  if (left != nullptr && left_size() > min_fill) {
    // Borrow the largest item of the left sibling.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      child->count = child->keys.size();
      left->count = left->keys.size();
    } else {
      Node* moved = left->children.back();
      left->children.pop_back();
      // The separator between `moved` and child's old first child is the
      // min key of the old first child.
      child->keys.insert(child->keys.begin(), MinKey(child->children.front()));
      child->children.insert(child->children.begin(), moved);
      left->keys.pop_back();
      child->count += moved->count;
      left->count -= moved->count;
    }
    n->keys[ci - 1] = MinKey(child);
    return;
  }
  if (right != nullptr && right_size() > min_fill) {
    // Borrow the smallest item of the right sibling.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      child->count = child->keys.size();
      right->count = right->keys.size();
    } else {
      Node* moved = right->children.front();
      right->children.erase(right->children.begin());
      child->keys.push_back(MinKey(moved));
      child->children.push_back(moved);
      right->keys.erase(right->keys.begin());
      child->count += moved->count;
      right->count -= moved->count;
    }
    n->keys[ci] = MinKey(right);
    return;
  }

  // Merge with a sibling (prefer left).
  if (left != nullptr) {
    // Merge child into left.
    if (child->leaf) {
      left->keys.insert(left->keys.end(), child->keys.begin(),
                        child->keys.end());
      left->values.insert(left->values.end(), child->values.begin(),
                          child->values.end());
      left->count = left->keys.size();
    } else {
      left->keys.push_back(MinKey(child->children.front()));
      for (size_t i = 0; i + 1 < child->children.size(); ++i) {
        left->keys.push_back(child->keys[i]);
      }
      left->children.insert(left->children.end(), child->children.begin(),
                            child->children.end());
      left->count += child->count;
    }
    // The merged-away node's children now live under `left`; Release only
    // recycles the husk (clearing, not destroying, its child list).
    arena->Release(child);
    n->children.erase(n->children.begin() + ci);
    n->keys.erase(n->keys.begin() + (ci - 1));
  } else {
    LTREE_CHECK(right != nullptr);
    // Merge right into child.
    if (child->leaf) {
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      child->values.insert(child->values.end(), right->values.begin(),
                           right->values.end());
      child->count = child->keys.size();
    } else {
      child->keys.push_back(MinKey(right->children.front()));
      for (size_t i = 0; i + 1 < right->children.size(); ++i) {
        child->keys.push_back(right->keys[i]);
      }
      child->children.insert(child->children.end(), right->children.begin(),
                             right->children.end());
      child->count += right->count;
    }
    arena->Release(right);
    n->children.erase(n->children.begin() + ci + 1);
    n->keys.erase(n->keys.begin() + ci);
  }
}

Status DeleteRec(Node* n, Label key, uint32_t order,
                 BTreeNodeArena* arena) {
  if (n->leaf) {
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it == n->keys.end() || *it != key) {
      return Status::NotFound("key not present");
    }
    const size_t pos = static_cast<size_t>(it - n->keys.begin());
    n->keys.erase(it);
    n->values.erase(n->values.begin() + pos);
    n->count = n->keys.size();
    return Status::OK();
  }
  const uint32_t ci = ChildIndex(n, key);
  LTREE_RETURN_IF_ERROR(DeleteRec(n->children[ci], key, order, arena));
  --n->count;
  // Deleting the subtree minimum stales the separator left of ci; fix it
  // while children[ci] still exists (FixUnderflow may merge it away).
  if (ci > 0) {
    n->keys[ci - 1] = MinKey(n->children[ci]);
  }
  FixUnderflow(n, ci, order, arena);
  return Status::OK();
}

}  // namespace

Status CountedBTree::Delete(Label key) {
  if (root_ == nullptr) return Status::NotFound("empty tree");
  LTREE_RETURN_IF_ERROR(DeleteRec(root_, key, order_, arena_.get()));
  if (!root_->leaf && root_->children.size() == 1) {
    Node* only = root_->children.front();
    arena_->Release(root_);  // root collapse: the surviving child lives on
    root_ = only;
  } else if (root_->leaf && root_->keys.empty()) {
    arena_->Release(root_);
    root_ = nullptr;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Order statistics
// --------------------------------------------------------------------------

uint64_t CountedBTree::CountLess(Label key) const {
  const Node* n = root_;
  if (n == nullptr) return 0;
  uint64_t rank = 0;
  while (!n->leaf) {
    const uint32_t ci = ChildIndex(n, key);
    for (uint32_t i = 0; i < ci; ++i) rank += n->children[i]->count;
    n = n->children[ci];
  }
  rank += static_cast<uint64_t>(
      std::lower_bound(n->keys.begin(), n->keys.end(), key) -
      n->keys.begin());
  return rank;
}

uint64_t CountedBTree::RangeCount(Label lo, Label hi) const {
  if (lo >= hi) return 0;
  return CountLess(hi) - CountLess(lo);
}

Result<Entry> CountedBTree::Select(uint64_t rank) const {
  if (root_ == nullptr || rank >= root_->count) {
    return Status::OutOfRange(
        StrFormat("rank %llu >= size %llu",
                  static_cast<unsigned long long>(rank),
                  static_cast<unsigned long long>(size())));
  }
  const Node* n = root_;
  while (!n->leaf) {
    for (const Node* c : n->children) {
      if (rank < c->count) {
        n = c;
        break;
      }
      rank -= c->count;
    }
  }
  return Entry{n->keys[rank], n->values[rank]};
}

Result<Entry> CountedBTree::LowerBound(Label key) const {
  const uint64_t rank = CountLess(key);
  if (root_ == nullptr || rank >= root_->count) {
    return Status::NotFound("no key >= bound");
  }
  return Select(rank);
}

Result<Entry> CountedBTree::Predecessor(Label key) const {
  const uint64_t rank = CountLess(key);
  if (rank == 0) return Status::NotFound("no key < bound");
  return Select(rank - 1);
}

// --------------------------------------------------------------------------
// Iteration / scans
// --------------------------------------------------------------------------

Label CountedBTree::Iterator::key() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->keys[stack_.back().index];
}

uint64_t CountedBTree::Iterator::value() const {
  const Node* leaf = static_cast<const Node*>(stack_.back().node);
  return leaf->values[stack_.back().index];
}

void CountedBTree::Iterator::Next() {
  LTREE_CHECK(Valid());
  Frame& top = stack_.back();
  const Node* leaf = static_cast<const Node*>(top.node);
  if (top.index + 1 < leaf->keys.size()) {
    ++top.index;
    return;
  }
  stack_.pop_back();
  // Ascend to the first ancestor with an unvisited right child.
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Node* n = static_cast<const Node*>(frame.node);
    if (frame.index + 1 < n->children.size()) {
      ++frame.index;
      // Descend leftmost from that child.
      const Node* cur = n->children[frame.index];
      while (!cur->leaf) {
        stack_.push_back({cur, 0});
        cur = cur->children.front();
      }
      stack_.push_back({cur, 0});
      return;
    }
    stack_.pop_back();
  }
}

CountedBTree::Iterator CountedBTree::Begin() const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    it.stack_.push_back({cur, 0});
    cur = cur->children.front();
  }
  it.stack_.push_back({cur, 0});
  return it;
}

CountedBTree::Iterator CountedBTree::Seek(Label key) const {
  Iterator it;
  const Node* cur = root_;
  if (cur == nullptr) return it;
  while (!cur->leaf) {
    const uint32_t ci = ChildIndex(cur, key);
    it.stack_.push_back({cur, ci});
    cur = cur->children[ci];
  }
  const uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(cur->keys.begin(), cur->keys.end(), key) -
      cur->keys.begin());
  if (pos < cur->keys.size()) {
    it.stack_.push_back({cur, pos});
    return it;
  }
  // Key is past this leaf: step to the successor leaf via the stack.
  it.stack_.push_back({cur, pos == 0 ? 0u : pos - 1});
  if (cur->keys.empty()) {
    it.stack_.clear();
    return it;
  }
  it.Next();
  return it;
}

std::vector<Entry> CountedBTree::Scan(Label lo, Label hi) const {
  std::vector<Entry> out;
  for (Iterator it = Seek(lo); it.Valid() && it.key() < hi; it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

std::vector<Entry> CountedBTree::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    out.push_back(Entry{it.key(), it.value()});
  }
  return out;
}

// --------------------------------------------------------------------------
// Bulk operations
// --------------------------------------------------------------------------

Status CountedBTree::BulkBuild(std::span<const Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  Clear();
  if (entries.empty()) return Status::OK();
  EnsureArena();

  // Build the leaf level at ~3/4 fill (leaving slack for inserts), then
  // stack internal levels on top.
  const size_t target = std::max<size_t>(order_ * 3 / 4, order_ / 2);
  std::vector<Node*> level;
  size_t i = 0;
  while (i < entries.size()) {
    size_t len = std::min(target, entries.size() - i);
    // Avoid an underfull final leaf: absorb a small tail into this chunk if
    // it fits, otherwise split the combined run evenly (each half is then
    // >= order/2 because the run exceeds order).
    const size_t remaining = entries.size() - i - len;
    if (remaining > 0 && remaining < order_ / 2) {
      if (len + remaining <= order_) {
        len += remaining;
      } else {
        len = (len + remaining) / 2;
      }
    }
    Node* leaf = arena_->Allocate();
    leaf->leaf = true;
    for (size_t j = i; j < i + len; ++j) {
      leaf->keys.push_back(entries[j].key);
      leaf->values.push_back(entries[j].value);
    }
    leaf->count = leaf->keys.size();
    level.push_back(leaf);
    i += len;
  }

  while (level.size() > 1) {
    std::vector<Node*> next;
    size_t j = 0;
    while (j < level.size()) {
      size_t len = std::min(target, level.size() - j);
      const size_t remaining = level.size() - j - len;
      if (remaining > 0 && remaining < order_ / 2) {
        if (len + remaining <= order_) {
          len += remaining;
        } else {
          len = (len + remaining) / 2;
        }
      }
      Node* node = arena_->Allocate();
      node->leaf = false;
      for (size_t k = j; k < j + len; ++k) {
        node->children.push_back(level[k]);
        node->count += level[k]->count;
        if (k > j) node->keys.push_back(MinKey(level[k]));
      }
      next.push_back(node);
      j += len;
    }
    level = std::move(next);
  }
  root_ = level.front();
  return Status::OK();
}

Status CountedBTree::ReplaceRange(Label lo, Label hi,
                                  std::span<const Entry> entries) {
  if (lo >= hi) return Status::InvalidArgument("empty range");
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key < lo || entries[i].key >= hi) {
      return Status::InvalidArgument("replacement key outside [lo, hi)");
    }
    if (i > 0 && entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("entries must be sorted and unique");
    }
  }
  // Remove the old keys, then insert the new ones. Both touch O(k) entries
  // at O(log n) each, matching the Section 4.2 trade-off discussion.
  std::vector<Label> victims;
  for (Iterator it = Seek(lo); it.Valid() && it.key() < hi; it.Next()) {
    victims.push_back(it.key());
  }
  for (Label k : victims) {
    LTREE_RETURN_IF_ERROR(Delete(k));
  }
  for (const Entry& e : entries) {
    LTREE_RETURN_IF_ERROR(Insert(e.key, e.value));
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------------

namespace {

Status CheckNode(const Node* n, uint32_t order, bool is_root, int depth,
                 int* leaf_depth) {
  const size_t sz = n->leaf ? n->keys.size() : n->children.size();
  if (sz > order) return Status::Corruption("node over capacity");
  if (!is_root && sz < order / 2) {
    return Status::Corruption("node under minimum occupancy");
  }
  if (n->leaf) {
    if (n->count != n->keys.size()) {
      return Status::Corruption("leaf count mismatch");
    }
    if (n->keys.size() != n->values.size()) {
      return Status::Corruption("leaf keys/values size mismatch");
    }
    if (!std::is_sorted(n->keys.begin(), n->keys.end())) {
      return Status::Corruption("leaf keys not sorted");
    }
    for (size_t i = 1; i < n->keys.size(); ++i) {
      if (n->keys[i - 1] == n->keys[i]) {
        return Status::Corruption("duplicate key");
      }
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    return Status::OK();
  }
  if (is_root && n->children.size() < 2) {
    return Status::Corruption("internal root with < 2 children");
  }
  if (n->keys.size() + 1 != n->children.size()) {
    return Status::Corruption("separator/child count mismatch");
  }
  uint64_t total = 0;
  for (size_t i = 0; i < n->children.size(); ++i) {
    LTREE_RETURN_IF_ERROR(
        CheckNode(n->children[i], order, false, depth + 1, leaf_depth));
    total += n->children[i]->count;
    if (i > 0 && n->keys[i - 1] != MinKey(n->children[i])) {
      return Status::Corruption("separator != min key of right child");
    }
  }
  if (total != n->count) return Status::Corruption("internal count mismatch");
  return Status::OK();
}

}  // namespace

Status CountedBTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::OK();
  int leaf_depth = -1;
  return CheckNode(root_, order_, true, 0, &leaf_depth);
}

// --------------------------------------------------------------------------
// Memory accounting
// --------------------------------------------------------------------------

namespace {

uint64_t CountReachable(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t total = 1;
  for (const Node* c : n->children) total += CountReachable(c);
  return total;
}

uint64_t BufferBytes(const Node* n) {
  return n->keys.capacity() * sizeof(Label) +
         n->values.capacity() * sizeof(uint64_t) +
         n->children.capacity() * sizeof(Node*);
}

uint64_t HeapBytesUnder(const Node* n) {
  if (n == nullptr) return 0;
  uint64_t bytes = BufferBytes(n);
  for (const Node* c : n->children) bytes += HeapBytesUnder(c);
  return bytes;
}

}  // namespace

uint64_t CountedBTree::NodeCount() const { return CountReachable(root_); }

uint64_t CountedBTree::ApproxHeapBytes() const {
  // Chunks pin sizeof(Node) per slot whether the slot is live or on the
  // free list; per-node vector buffers come on top — including the buffers
  // free-list nodes retain for reuse, which a reachable-only walk would
  // miss after delete-heavy churn.
  uint64_t bytes = arena_stats().chunks * BTreeNodeArena::kChunkNodes *
                       sizeof(Node) +
                   HeapBytesUnder(root_);
  if (arena_ != nullptr) {
    arena_->ForEachFree([&bytes](const Node* n) { bytes += BufferBytes(n); });
  }
  return bytes;
}

}  // namespace obtree
}  // namespace ltree
