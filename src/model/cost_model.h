// The paper's Section 3 analytical model, as executable formulas.
//
// Reconstructed forms (see DESIGN.md §1 for the OCR notes):
//   height(f,s,n)  = ceil(log_{f/s} n)            (bulk-loaded tree height)
//   cost(f,s,n)    = (1 + 2f/(s-1)) * log n / log(f/s) + f
//                    — amortized node accesses per insertion: the h term for
//                    ancestor count updates, 2f/(s-1) per level for the
//                    charged split relabelings, plus <= f for right-sibling
//                    relabels.
//   bits(f,s,n)    = log2(f+1) * log n / log(f/s)
//                    — the root label space is (f+1)^height.
//   batch(f,s,n,k) = (log n)/(k log(f/s)) + f/k
//                    + (2f/(s-1)) * ((log n - log k)/log(f/s) + 1)
//                    — Section 4.1's amortized per-leaf cost for batches of
//                    k; decreases roughly logarithmically in k.

#ifndef LTREE_MODEL_COST_MODEL_H_
#define LTREE_MODEL_COST_MODEL_H_

#include <cstdint>

namespace ltree {
namespace model {

/// Continuous relaxation of the Section 3.1 formulas. All functions require
/// f > s >= 2 (as reals) and n >= 2.
struct CostModel {
  /// Bulk-load height: log n / log(f/s).
  static double Height(double f, double s, double n);

  /// Amortized node accesses per single-leaf insertion (Section 3.1).
  static double AmortizedInsertCost(double f, double s, double n);

  /// Bits per label (Section 3.1).
  static double LabelBits(double f, double s, double n);

  /// Amortized per-leaf cost for batch insertions of size k (Section 4.1).
  static double BatchAmortizedCost(double f, double s, double n, double k);

  /// Label-comparison cost in machine words: 1 while the label fits a word,
  /// proportional to the word count beyond that (Section 3.2, model (c)).
  static double QueryCompareCost(double bits, uint32_t word_bits = 64);

  /// Section 3.2 model (c): expected per-operation cost for a workload with
  /// `query_fraction` of label comparisons and (1-query_fraction) inserts.
  static double OverallCost(double f, double s, double n,
                            double query_fraction, uint32_t word_bits = 64);
};

}  // namespace model
}  // namespace ltree

#endif  // LTREE_MODEL_COST_MODEL_H_
