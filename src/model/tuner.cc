#include "model/tuner.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/string_util.h"
#include "model/cost_model.h"

namespace ltree {
namespace model {

std::string TuningResult::ToString() const {
  return StrFormat(
      "TuningResult{f=%u s=%u cost=%.2f bits=%.2f overall=%.3f}", params.f,
      params.s, predicted_cost, predicted_bits, predicted_overall);
}

namespace {

/// Walks the (s, d) lattice and keeps the argmin of `objective`; lattice
/// points where `feasible` is false are skipped.
template <typename Objective, typename Feasible>
bool LatticeArgmin(double n, const TunerRanges& ranges, Objective objective,
                   Feasible feasible, TuningResult* best) {
  double best_value = std::numeric_limits<double>::infinity();
  bool found = false;
  for (uint32_t s = 2; s <= ranges.max_s; ++s) {
    for (uint32_t d = 2; d <= ranges.max_d; ++d) {
      const double f = static_cast<double>(s) * d;
      if (!feasible(f, static_cast<double>(s))) continue;
      const double value = objective(f, static_cast<double>(s));
      if (value < best_value) {
        best_value = value;
        best->params = Params{.f = s * d, .s = s};
        found = true;
      }
    }
  }
  if (found) {
    const double f = best->params.f;
    const double s = best->params.s;
    best->predicted_cost = CostModel::AmortizedInsertCost(f, s, n);
    best->predicted_bits = CostModel::LabelBits(f, s, n);
  }
  return found;
}

/// Golden-section minimization of a unimodal-ish function on [lo, hi].
double GoldenSection(const std::function<double(double)>& fn, double lo,
                     double hi, int iters = 80) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = fn(c);
  double fd = fn(d);
  for (int i = 0; i < iters; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = fn(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = fn(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace

TuningResult Tuner::MinimizeCost(double n, TunerRanges ranges) {
  TuningResult best;
  LatticeArgmin(
      n, ranges,
      [n](double f, double s) { return CostModel::AmortizedInsertCost(f, s, n); },
      [](double, double) { return true; }, &best);
  return best;
}

Result<TuningResult> Tuner::MinimizeCostWithBitsBudget(double n,
                                                       double max_bits,
                                                       TunerRanges ranges) {
  TuningResult best;
  const bool found = LatticeArgmin(
      n, ranges,
      [n](double f, double s) { return CostModel::AmortizedInsertCost(f, s, n); },
      [n, max_bits](double f, double s) {
        return CostModel::LabelBits(f, s, n) <= max_bits;
      },
      &best);
  if (!found) {
    return Status::InvalidArgument(
        StrFormat("no (f, s) in range satisfies bits <= %.1f for n=%.0f",
                  max_bits, n));
  }
  return best;
}

TuningResult Tuner::MinimizeOverallCost(double n, double query_fraction,
                                        uint32_t word_bits,
                                        TunerRanges ranges) {
  TuningResult best;
  LatticeArgmin(
      n, ranges,
      [n, query_fraction, word_bits](double f, double s) {
        return CostModel::OverallCost(f, s, n, query_fraction, word_bits);
      },
      [](double, double) { return true; }, &best);
  best.predicted_overall = CostModel::OverallCost(
      best.params.f, best.params.s, n, query_fraction, word_bits);
  return best;
}

std::pair<double, double> Tuner::ContinuousMinimizeCost(double n) {
  // Coordinate descent on (f, s) with the constraint f >= 2s (d >= 2).
  double s = 3.0;
  double f = 12.0;
  for (int round = 0; round < 60; ++round) {
    f = GoldenSection(
        [&](double ff) { return CostModel::AmortizedInsertCost(ff, s, n); },
        2.0 * s + 1e-6, 4096.0);
    s = GoldenSection(
        [&](double ss) { return CostModel::AmortizedInsertCost(f, ss, n); },
        2.0, f / 2.0 - 1e-6);
  }
  return {f, s};
}

}  // namespace model
}  // namespace ltree
