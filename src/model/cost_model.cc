#include "model/cost_model.h"

#include <cmath>

#include "common/macros.h"

namespace ltree {
namespace model {

double CostModel::Height(double f, double s, double n) {
  LTREE_CHECK(f > s && s >= 2.0 && n >= 2.0);
  return std::log(n) / std::log(f / s);
}

double CostModel::AmortizedInsertCost(double f, double s, double n) {
  const double h = Height(f, s, n);
  return (1.0 + 2.0 * f / (s - 1.0)) * h + f;
}

double CostModel::LabelBits(double f, double s, double n) {
  const double h = Height(f, s, n);
  return std::log2(f + 1.0) * h;
}

double CostModel::BatchAmortizedCost(double f, double s, double n, double k) {
  LTREE_CHECK(k >= 1.0);
  const double log_d = std::log(f / s);
  const double h = std::log(n) / log_d;
  const double h0 = std::log(std::max(k, 1.0)) / log_d;
  return h / k + f / k +
         (2.0 * f / (s - 1.0)) * (std::max(h - h0, 0.0) + 1.0);
}

double CostModel::QueryCompareCost(double bits, uint32_t word_bits) {
  if (bits <= static_cast<double>(word_bits)) return 1.0;
  return bits / static_cast<double>(word_bits);
}

double CostModel::OverallCost(double f, double s, double n,
                              double query_fraction, uint32_t word_bits) {
  const double q = query_fraction;
  return q * QueryCompareCost(LabelBits(f, s, n), word_bits) +
         (1.0 - q) * AmortizedInsertCost(f, s, n);
}

}  // namespace model
}  // namespace ltree
