// Section 3.2: "Tuning the L-Tree" — choosing f and s for an application.
//
// Three models, exactly as the paper lays them out:
//  (a) minimize the amortized update cost;
//  (b) minimize the update cost subject to a label-size budget bits <= B
//      (the paper solves this with a Lagrange multiplier on the boundary
//      and compares with the interior optimum — we do the same, numerically,
//      over the valid discrete lattice f = s*d);
//  (c) minimize the overall workload cost, where label comparisons cost 1
//      while a label fits a machine word and grow beyond that.

#ifndef LTREE_MODEL_TUNER_H_
#define LTREE_MODEL_TUNER_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "core/params.h"

namespace ltree {
namespace model {

/// Search lattice: s in [2, max_s], d = f/s in [2, max_d].
struct TunerRanges {
  uint32_t max_s = 16;
  uint32_t max_d = 64;
};

struct TuningResult {
  Params params;
  double predicted_cost = 0.0;
  double predicted_bits = 0.0;
  /// For model (c): predicted overall per-op cost.
  double predicted_overall = 0.0;

  std::string ToString() const;
};

class Tuner {
 public:
  /// Model (a): argmin over the lattice of AmortizedInsertCost(f, s, n).
  static TuningResult MinimizeCost(double n, TunerRanges ranges = TunerRanges());

  /// Model (b): argmin of cost subject to LabelBits(f, s, n) <= max_bits.
  /// Fails if no lattice point satisfies the budget.
  static Result<TuningResult> MinimizeCostWithBitsBudget(
      double n, double max_bits, TunerRanges ranges = TunerRanges());

  /// Model (c): argmin of OverallCost for the given query fraction.
  static TuningResult MinimizeOverallCost(double n, double query_fraction,
                                          uint32_t word_bits = 64,
                                          TunerRanges ranges = TunerRanges());

  /// The continuous optimum (∂cost/∂f = ∂cost/∂s = 0 of Section 3.2),
  /// located by coordinate descent with golden-section line searches.
  /// Returns (f*, s*) as reals; the lattice optimum of MinimizeCost should
  /// track it.
  static std::pair<double, double> ContinuousMinimizeCost(double n);
};

}  // namespace model
}  // namespace ltree

#endif  // LTREE_MODEL_TUNER_H_
