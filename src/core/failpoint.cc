#include "core/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/macros.h"

namespace ltree {
namespace failpoint {
namespace {

struct Entry {
  Status status;
  int64_t remaining = -1;  ///< hits left; < 0 means unbounded
  bool armed = false;
  uint64_t hits = 0;  ///< lifetime fire count, survives Disarm
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

// Count of currently armed failpoints; Check's disarmed fast path only
// reads this.
std::atomic<int> armed_count{0};

}  // namespace

void Arm(const std::string& name, Status status, int64_t times) {
  LTREE_CHECK(!status.ok());
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Entry& entry = r.entries[name];
  if (!entry.armed) armed_count.fetch_add(1, std::memory_order_relaxed);
  entry.status = std::move(status);
  entry.remaining = times;
  entry.armed = times != 0;
  if (!entry.armed) armed_count.fetch_sub(1, std::memory_order_relaxed);
}

bool Disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.entries.find(name);
  if (it == r.entries.end() || !it->second.armed) return false;
  it->second.armed = false;
  armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, entry] : r.entries) {
    if (entry.armed) {
      entry.armed = false;
      armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

Status Check(const char* name) {
  if (armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.entries.find(name);
  if (it == r.entries.end() || !it->second.armed) return Status::OK();
  Entry& entry = it->second;
  ++entry.hits;
  if (entry.remaining > 0 && --entry.remaining == 0) {
    entry.armed = false;
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return entry.status;
}

uint64_t Hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.entries.find(name);
  return it == r.entries.end() ? 0 : it->second.hits;
}

}  // namespace failpoint
}  // namespace ltree
