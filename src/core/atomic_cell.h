// A drop-in atomic wrapper for fields read lock-free by concurrent readers.
//
// The concurrent LabelStore read path lets reader threads load leaf labels
// and cookies while the serialized writer relabels. Making `Node::num` and
// `Node::cookie` plain `std::atomic` would break the large body of existing
// single-threaded code (no copy, no implicit conversion); AtomicCell keeps
// the call sites compiling by converting implicitly on read and assigning
// on write, while pinning the memory orders of the concurrent contract:
//
//   * every read is an acquire load — a reader that observes a label also
//     observes everything the writer published before storing it;
//   * every write is a release store — the writer's preceding structural
//     edits happen-before any reader that sees the new value.
//
// The wrapper is copyable (load + store) so node structs stay movable in
// containers and tests; copies are *not* atomic as a pair, which matches
// the single-writer contract (only the serialized writer copies nodes).

#ifndef LTREE_CORE_ATOMIC_CELL_H_
#define LTREE_CORE_ATOMIC_CELL_H_

#include <atomic>

namespace ltree {

template <typename T>
class AtomicCell {
 public:
  AtomicCell() = default;
  AtomicCell(T value) : value_(value) {}  // NOLINT: implicit by design
  AtomicCell(const AtomicCell& other) : value_(other.load()) {}
  AtomicCell& operator=(const AtomicCell& other) {
    store(other.load());
    return *this;
  }
  AtomicCell& operator=(T value) {
    store(value);
    return *this;
  }

  operator T() const { return load(); }  // NOLINT: implicit by design

  T load() const { return value_.load(std::memory_order_acquire); }
  void store(T value) { value_.store(value, std::memory_order_release); }

 private:
  std::atomic<T> value_{};
};

}  // namespace ltree

#endif  // LTREE_CORE_ATOMIC_CELL_H_
