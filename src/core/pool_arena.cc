#include "core/pool_arena.h"

#include "common/string_util.h"

namespace ltree {

std::string PoolArenaStats::ToString() const {
  return StrFormat(
      "PoolArenaStats{fresh=%llu reused=%llu released=%llu chunks=%llu "
      "live=%llu}",
      static_cast<unsigned long long>(fresh_allocs),
      static_cast<unsigned long long>(reused_allocs),
      static_cast<unsigned long long>(releases),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(live()));
}

}  // namespace ltree
