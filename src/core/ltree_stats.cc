#include "core/ltree_stats.h"

#include "common/string_util.h"

namespace ltree {

std::string LTreeStats::ToString() const {
  return StrFormat(
      "LTreeStats{inserts=%llu batch_leaves=%llu deletes=%llu splits=%llu "
      "root_splits=%llu escalations=%llu relabel_passes=%llu "
      "coalesced_regions=%llu ancestor_updates=%llu "
      "nodes_relabeled=%llu leaves_relabeled=%llu purged=%llu "
      "nodes_allocated=%llu nodes_reused=%llu nodes_released=%llu "
      "amortized_cost=%.3f}",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(batch_leaves),
      static_cast<unsigned long long>(deletes),
      static_cast<unsigned long long>(splits),
      static_cast<unsigned long long>(root_splits),
      static_cast<unsigned long long>(escalations),
      static_cast<unsigned long long>(relabel_passes),
      static_cast<unsigned long long>(coalesced_regions),
      static_cast<unsigned long long>(ancestor_updates),
      static_cast<unsigned long long>(nodes_relabeled),
      static_cast<unsigned long long>(leaves_relabeled),
      static_cast<unsigned long long>(tombstones_purged),
      static_cast<unsigned long long>(nodes_allocated),
      static_cast<unsigned long long>(nodes_reused),
      static_cast<unsigned long long>(nodes_released),
      AmortizedCostPerInsert());
}

}  // namespace ltree
