#include "core/epoch.h"

#include <thread>

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace epoch {

std::string EpochStats::ToString() const {
  return StrFormat(
      "EpochStats{retired=%llu reclaimed=%llu pending=%llu advances=%llu "
      "stalls=%llu pins=%llu}",
      static_cast<unsigned long long>(retired),
      static_cast<unsigned long long>(reclaimed),
      static_cast<unsigned long long>(pending()),
      static_cast<unsigned long long>(advances),
      static_cast<unsigned long long>(stalls),
      static_cast<unsigned long long>(pins));
}

EpochManager::EpochManager() : slots_(new ReaderSlot[kMaxReaders]) {}

EpochManager::~EpochManager() {
  // Owners drain before tearing down the backing arenas; anything left here
  // belongs to arenas that are still alive (e.g. a store destroyed without
  // ever reclaiming).
  LTREE_CHECK(!HasActiveReaders());
  for (auto& bucket : buckets_) Drain(&bucket);
}

uint32_t EpochManager::Pin() {
  for (;;) {
    for (uint32_t i = 0; i < kMaxReaders; ++i) {
      uint64_t expected = kIdle;
      // Claim + announce in one CAS: a slot is free iff it holds kIdle.
      if (slots_[i].epoch.compare_exchange_strong(
              expected, global_.load(std::memory_order_seq_cst),
              std::memory_order_seq_cst)) {
        // Re-announce until the announcement matches the global epoch: a
        // writer advancing concurrently must either observe our pin or be
        // observed by us, so our epoch is never stale by more than the
        // loop's last iteration.
        uint64_t announced = slots_[i].epoch.load(std::memory_order_relaxed);
        for (;;) {
          const uint64_t g = global_.load(std::memory_order_seq_cst);
          if (g == announced) break;
          slots_[i].epoch.store(g, std::memory_order_seq_cst);
          announced = g;
        }
        pin_count_.fetch_add(1, std::memory_order_relaxed);
        return i;
      }
    }
    std::this_thread::yield();  // all slots busy; readers are short-lived
  }
}

void EpochManager::Unpin(uint32_t slot) {
  LTREE_DCHECK(slot < kMaxReaders);
  slots_[slot].epoch.store(kIdle, std::memory_order_release);
}

void EpochManager::Retire(void* obj, Deleter fn, void* ctx) {
  const uint64_t e = global_.load(std::memory_order_relaxed);
  buckets_[e % 3].push_back(Retired{obj, fn, ctx});
  ++stats_.retired;
}

bool EpochManager::TryAdvance() {
  if (pending() == 0) return false;  // nothing to reclaim; skip the scan
  const uint64_t e = global_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kMaxReaders; ++i) {
    const uint64_t s = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (s != kIdle && s != e) {
      ++stats_.stalls;
      return false;  // a reader is still in an older epoch
    }
  }
  global_.store(e + 1, std::memory_order_seq_cst);
  ++stats_.advances;
  // The bucket slot for the new epoch held nodes retired at e - 2. Readers
  // that could observe them were pinned at <= e - 1 — and advancing twice
  // since then proved none remain.
  Drain(&buckets_[(e + 1) % 3]);
  return true;
}

uint64_t EpochManager::ReclaimAllUnsafe() {
  LTREE_CHECK(!HasActiveReaders());
  const uint64_t before = stats_.reclaimed;
  for (auto& bucket : buckets_) Drain(&bucket);
  return stats_.reclaimed - before;
}

bool EpochManager::HasActiveReaders() const {
  for (uint32_t i = 0; i < kMaxReaders; ++i) {
    if (slots_[i].epoch.load(std::memory_order_seq_cst) != kIdle) return true;
  }
  return false;
}

EpochStats EpochManager::stats() const {
  EpochStats out = stats_;
  out.pins = pin_count_.load(std::memory_order_relaxed);
  return out;
}

void EpochManager::Drain(std::vector<Retired>* bucket) {
  for (const Retired& r : *bucket) {
    r.fn(r.obj, r.ctx);
    ++stats_.reclaimed;
  }
  bucket->clear();  // keeps capacity for the next epoch's retires
}

}  // namespace epoch
}  // namespace ltree
