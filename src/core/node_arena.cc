#include "core/node_arena.h"

#include "common/string_util.h"

namespace ltree {

std::string NodeArenaStats::ToString() const {
  return StrFormat(
      "NodeArenaStats{fresh=%llu reused=%llu released=%llu chunks=%llu "
      "live=%llu}",
      static_cast<unsigned long long>(fresh_allocs),
      static_cast<unsigned long long>(reused_allocs),
      static_cast<unsigned long long>(releases),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(live()));
}

Node* NodeArena::Allocate() {
  if (free_head_ != nullptr) {
    Node* n = free_head_;
    free_head_ = n->parent;
    n->parent = nullptr;
    ++stats_.reused_allocs;
    return n;
  }
  if (used_in_last_chunk_ == kChunkNodes) {
    chunks_.emplace_back(new Node[kChunkNodes]);
    used_in_last_chunk_ = 0;
    ++stats_.chunks;
  }
  ++stats_.fresh_allocs;
  return &chunks_.back()[used_in_last_chunk_++];
}

void NodeArena::Release(Node* n) {
  // Reset to the default-constructed state so Allocate() callers never see
  // stale fields — but keep the children vector's heap buffer: recycled
  // internal nodes are the whole point.
  n->children.clear();
  n->num = 0;
  n->leaf_count = 1;
  n->height = 0;
  n->index_in_parent = 0;
  n->cookie = 0;
  n->deleted = false;
  n->parent = free_head_;
  free_head_ = n;
  ++stats_.releases;
}

}  // namespace ltree
