#include "core/simd_search.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LTREE_SEARCH_X86 1
#else
#define LTREE_SEARCH_X86 0
#endif

namespace ltree {
namespace search {

// --------------------------------------------------------------- scalar

uint32_t LowerBoundScalar(const Label* keys, uint32_t n, Label key) {
  return static_cast<uint32_t>(std::lower_bound(keys, keys + n, key) - keys);
}

uint32_t UpperBoundScalar(const Label* keys, uint32_t n, Label key) {
  return static_cast<uint32_t>(std::upper_bound(keys, keys + n, key) - keys);
}

// ----------------------------------------------------------- branchless

// On sorted input the bound index equals the number of elements below it,
// so a data-independent sum of setcc results replaces the binary search's
// unpredictable branches. n <= 65 in every tree-node caller.

uint32_t LowerBoundBranchless(const Label* keys, uint32_t n, Label key) {
  uint32_t c = 0;
  for (uint32_t i = 0; i < n; ++i) c += keys[i] < key ? 1u : 0u;
  return c;
}

uint32_t UpperBoundBranchless(const Label* keys, uint32_t n, Label key) {
  uint32_t c = 0;
  for (uint32_t i = 0; i < n; ++i) c += keys[i] <= key ? 1u : 0u;
  return c;
}

// ----------------------------------------------------------------- sse2

#if LTREE_SEARCH_X86

namespace {

/// Unsigned 64-bit a > b per lane with SSE2 only (no _mm_cmpgt_epi64):
/// flip every 32-bit lane's sign so signed 32-bit compares order like
/// unsigned ones, then combine per-64-bit halves:
/// gt64 = gt(hi) | (eq(hi) & gt(lo)).
inline __m128i CmpGtU64Sse2(__m128i a, __m128i b) {
  const __m128i sign32 = _mm_set1_epi32(static_cast<int>(0x80000000u));
  a = _mm_xor_si128(a, sign32);
  b = _mm_xor_si128(b, sign32);
  const __m128i gt = _mm_cmpgt_epi32(a, b);
  const __m128i eq = _mm_cmpeq_epi32(a, b);
  const __m128i gt_hi = _mm_shuffle_epi32(gt, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i gt_lo = _mm_shuffle_epi32(gt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i eq_hi = _mm_shuffle_epi32(eq, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
}

/// Number of all-ones 64-bit lanes (0..2).
inline uint32_t LaneCount2(__m128i m) {
  return static_cast<uint32_t>(
      __builtin_popcount(_mm_movemask_pd(_mm_castsi128_pd(m))));
}

}  // namespace

uint32_t LowerBoundSse2(const Label* keys, uint32_t n, Label key) {
  // lower_bound index == count(keys[i] < key) == count(key > keys[i]).
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(key));
  uint32_t c = 0;
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    c += LaneCount2(CmpGtU64Sse2(probe, v));
  }
  for (; i < n; ++i) c += keys[i] < key ? 1u : 0u;
  return c;
}

uint32_t UpperBoundSse2(const Label* keys, uint32_t n, Label key) {
  // upper_bound index == count(keys[i] <= key) == n - count(keys[i] > key).
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(key));
  uint32_t gt = 0;
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    gt += LaneCount2(CmpGtU64Sse2(v, probe));
  }
  for (; i < n; ++i) gt += keys[i] > key ? 1u : 0u;
  return n - gt;
}

// ----------------------------------------------------------------- avx2

__attribute__((target("avx2"))) uint32_t LowerBoundAvx2(const Label* keys,
                                                        uint32_t n,
                                                        Label key) {
  // AVX2 has a signed 64-bit compare; one sign flip makes it unsigned.
  const __m256i sign64 =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i probe = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), sign64);
  uint32_t c = 0;
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
        sign64);
    const __m256i gt = _mm256_cmpgt_epi64(probe, v);
    c += static_cast<uint32_t>(
        __builtin_popcount(_mm256_movemask_pd(_mm256_castsi256_pd(gt))));
  }
  for (; i < n; ++i) c += keys[i] < key ? 1u : 0u;
  return c;
}

__attribute__((target("avx2"))) uint32_t UpperBoundAvx2(const Label* keys,
                                                        uint32_t n,
                                                        Label key) {
  const __m256i sign64 =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i probe = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), sign64);
  uint32_t gt = 0;
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
        sign64);
    const __m256i m = _mm256_cmpgt_epi64(v, probe);
    gt += static_cast<uint32_t>(
        __builtin_popcount(_mm256_movemask_pd(_mm256_castsi256_pd(m))));
  }
  for (; i < n; ++i) gt += keys[i] > key ? 1u : 0u;
  return n - gt;
}

#else  // !LTREE_SEARCH_X86

// Non-x86 hosts never resolve to these kernels; keep the symbols defined
// (as the portable fallback) so callers link everywhere.
uint32_t LowerBoundSse2(const Label* keys, uint32_t n, Label key) {
  return LowerBoundBranchless(keys, n, key);
}
uint32_t UpperBoundSse2(const Label* keys, uint32_t n, Label key) {
  return UpperBoundBranchless(keys, n, key);
}
uint32_t LowerBoundAvx2(const Label* keys, uint32_t n, Label key) {
  return LowerBoundBranchless(keys, n, key);
}
uint32_t UpperBoundAvx2(const Label* keys, uint32_t n, Label key) {
  return UpperBoundBranchless(keys, n, key);
}

#endif  // LTREE_SEARCH_X86

// ------------------------------------------------------------- dispatch

namespace {

using SearchFn = uint32_t (*)(const Label*, uint32_t, Label);

constexpr uint8_t kUnresolved = 0xff;

// Idempotent once resolved, so relaxed atomics suffice: two threads racing
// the first call install identical pointers.
std::atomic<SearchFn> g_lower{nullptr};
std::atomic<SearchFn> g_upper{nullptr};
std::atomic<uint8_t> g_kernel{kUnresolved};

Kernel DetectKernel() {
  if (const char* env = std::getenv("LTREE_SEARCH_KERNEL")) {
    for (const Kernel k : {Kernel::kScalar, Kernel::kBranchless, Kernel::kSse2,
                           Kernel::kAvx2}) {
      if (std::strcmp(env, KernelName(k)) == 0 && KernelAvailable(k)) {
        return k;
      }
    }
    // Unknown or unavailable names fall through to cpuid detection.
  }
#if LTREE_SEARCH_X86
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
#endif
  // SSE2 is deliberately not auto-selected: emulating unsigned 64-bit
  // compares in 128-bit lanes measures slower than the branchless scalar
  // at every node width (see bench_search_micro). It stays reachable via
  // LTREE_SEARCH_KERNEL=sse2 for A/B runs.
  return Kernel::kBranchless;
}

void Install(Kernel k) {
  SearchFn lower = nullptr;
  SearchFn upper = nullptr;
  switch (k) {
    case Kernel::kScalar:
      lower = LowerBoundScalar;
      upper = UpperBoundScalar;
      break;
    case Kernel::kBranchless:
      lower = LowerBoundBranchless;
      upper = UpperBoundBranchless;
      break;
    case Kernel::kSse2:
      lower = LowerBoundSse2;
      upper = UpperBoundSse2;
      break;
    case Kernel::kAvx2:
      lower = LowerBoundAvx2;
      upper = UpperBoundAvx2;
      break;
  }
  g_lower.store(lower, std::memory_order_relaxed);
  g_upper.store(upper, std::memory_order_relaxed);
  g_kernel.store(static_cast<uint8_t>(k), std::memory_order_relaxed);
}

}  // namespace

uint32_t LowerBound(const Label* keys, uint32_t n, Label key) {
  SearchFn fn = g_lower.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    Install(DetectKernel());
    fn = g_lower.load(std::memory_order_relaxed);
  }
  return fn(keys, n, key);
}

uint32_t UpperBound(const Label* keys, uint32_t n, Label key) {
  SearchFn fn = g_upper.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    Install(DetectKernel());
    fn = g_upper.load(std::memory_order_relaxed);
  }
  return fn(keys, n, key);
}

bool KernelAvailable(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
    case Kernel::kBranchless:
      return true;
    case Kernel::kSse2:
#if LTREE_SEARCH_X86
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Kernel::kAvx2:
#if LTREE_SEARCH_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Kernel ActiveKernel() {
  uint8_t k = g_kernel.load(std::memory_order_relaxed);
  if (k == kUnresolved) {
    Install(DetectKernel());
    k = g_kernel.load(std::memory_order_relaxed);
  }
  return static_cast<Kernel>(k);
}

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kBranchless:
      return "branchless";
    case Kernel::kSse2:
      return "sse2";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void SetKernelForTest(Kernel k) {
  LTREE_CHECK(KernelAvailable(k));
  Install(k);
}

void ResetKernel() { Install(DetectKernel()); }

}  // namespace search
}  // namespace ltree
