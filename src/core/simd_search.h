// Branchless / SIMD in-node search over sorted Label arrays.
//
// Every descent level of both hot trees (the counted B+-tree's key arrays,
// the virtual store's entry runs) boils down to one primitive: the index of
// the first key >= (or >) a probe inside a short sorted array that now
// lives contiguously in the node's cache lines. For arrays this small
// (node order <= 64), a branch-free linear "count keys below the probe" is
// faster than std::lower_bound's unpredictable binary-search branches, and
// vectorizes naturally: SSE2 compares two labels per step, AVX2 four.
//
// Kernels (all return exactly std::lower_bound / std::upper_bound indices;
// the array MUST be sorted ascending — the linear forms count comparisons,
// which only equals the bound index on sorted input):
//  * kScalar     — std::lower_bound reference (differential baseline).
//  * kBranchless — branch-free linear sum; the portable fallback.
//  * kSse2       — 2 labels/vector; unsigned 64-bit compare emulated with
//                  sign-flipped 32-bit compares (SSE2 has no 64-bit cmpgt).
//  * kAvx2       — 4 labels/vector via _mm256_cmpgt_epi64 + sign flip.
//
// Dispatch is resolved once, on first use, from cpuid
// (__builtin_cpu_supports) — overridable by the LTREE_SEARCH_KERNEL env
// var (scalar|branchless|sse2|avx2) or SetKernelForTest(), which CI uses to
// exercise the scalar fallback on AVX2 hosts. The resolved function
// pointers live in relaxed atomics: initialization is idempotent, so a racy
// first call from two readers is benign (and TSan-clean).

#ifndef LTREE_CORE_SIMD_SEARCH_H_
#define LTREE_CORE_SIMD_SEARCH_H_

#include <cstdint>

#include "core/params.h"

namespace ltree {
namespace search {

enum class Kernel : uint8_t { kScalar = 0, kBranchless, kSse2, kAvx2 };

/// Index of the first element >= key (std::lower_bound). `keys` must be
/// sorted ascending; n is the element count (node orders keep n <= 65, but
/// any length works). Dispatches to the resolved kernel.
uint32_t LowerBound(const Label* keys, uint32_t n, Label key);

/// Index of the first element > key (std::upper_bound).
uint32_t UpperBound(const Label* keys, uint32_t n, Label key);

// Per-kernel entry points for the differential test and the micro-bench.
// The SIMD variants must only be called when KernelAvailable() says so.
uint32_t LowerBoundScalar(const Label* keys, uint32_t n, Label key);
uint32_t UpperBoundScalar(const Label* keys, uint32_t n, Label key);
uint32_t LowerBoundBranchless(const Label* keys, uint32_t n, Label key);
uint32_t UpperBoundBranchless(const Label* keys, uint32_t n, Label key);
uint32_t LowerBoundSse2(const Label* keys, uint32_t n, Label key);
uint32_t UpperBoundSse2(const Label* keys, uint32_t n, Label key);
uint32_t LowerBoundAvx2(const Label* keys, uint32_t n, Label key);
uint32_t UpperBoundAvx2(const Label* keys, uint32_t n, Label key);

/// True if this host can run `k`.
bool KernelAvailable(Kernel k);

/// The kernel the dispatcher resolved (forcing resolution if needed).
Kernel ActiveKernel();

/// "scalar" / "branchless" / "sse2" / "avx2".
const char* KernelName(Kernel k);

/// Forces the dispatcher to `k` (must be available). Used by the
/// differential test to cover every path and by LTREE_SEARCH_KERNEL.
void SetKernelForTest(Kernel k);

/// Re-resolves from cpuid + environment (undoes SetKernelForTest).
void ResetKernel();

/// Branch-free lower_bound over any sorted strided array via a key
/// projection: binary-narrows the window until it is scan-sized, then
/// finishes with a branch-free linear count. This is the AoS counterpart
/// of LowerBound for runs of {key, payload} structs (virtual L-Tree entry
/// runs, query-side tag buckets) that can be large — the binary phase keeps
/// O(log n), the final scan trades the last ~5 unpredictable branches for
/// predictable ALU work.
template <typename T, typename KeyFn>
inline uint32_t LowerBoundBy(const T* data, uint32_t n, Label key,
                             KeyFn key_of) {
  uint32_t lo = 0;
  uint32_t hi = n;
  while (hi - lo > 32) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (key_of(data[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint32_t pos = lo;
  for (uint32_t i = lo; i < hi; ++i) {
    pos += key_of(data[i]) < key ? 1u : 0u;
  }
  return pos;
}

}  // namespace search
}  // namespace ltree

#endif  // LTREE_CORE_SIMD_SEARCH_H_
