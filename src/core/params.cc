#include "core/params.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {

Status Params::Validate() const {
  if (s < 2) {
    return Status::InvalidArgument("L-Tree requires s >= 2, got s=" +
                                   std::to_string(s));
  }
  if (f == 0 || f % s != 0) {
    return Status::InvalidArgument(
        StrFormat("L-Tree requires s | f (complete f/s-ary subtrees), got "
                  "f=%u s=%u",
                  f, s));
  }
  if (f / s < 2) {
    return Status::InvalidArgument(
        StrFormat("L-Tree requires branching base d = f/s >= 2, got f=%u s=%u",
                  f, s));
  }
  return Status::OK();
}

std::string Params::ToString() const {
  return StrFormat("Params{f=%u, s=%u, d=%u, purge=%d}", f, s, d(),
                   purge_tombstones_on_split ? 1 : 0);
}

Result<PowerTable> PowerTable::Make(const Params& params) {
  LTREE_RETURN_IF_ERROR(params.Validate());
  PowerTable t;
  const uint64_t base = params.f + 1;
  const uint64_t d = params.d();
  const uint64_t s = params.s;
  // Grow the tables until either power computation overflows.
  uint64_t pf = 1;
  uint64_t pd = 1;
  t.pow_f1_.push_back(pf);
  t.pow_d_.push_back(pd);
  t.lmax_.push_back(s);  // s * d^0
  while (true) {
    auto next_pf = CheckedMul(pf, base);
    auto next_pd = CheckedMul(pd, d);
    if (!next_pf || !next_pd) break;
    auto next_lmax = CheckedMul(s, *next_pd);
    if (!next_lmax) break;
    pf = *next_pf;
    pd = *next_pd;
    t.pow_f1_.push_back(pf);
    t.pow_d_.push_back(pd);
    t.lmax_.push_back(*next_lmax);
  }
  t.max_height_ = static_cast<uint32_t>(t.pow_f1_.size() - 1);
  return t;
}

}  // namespace ltree
