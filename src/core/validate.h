// Unified invariant auditor.
//
// Every ordered structure in this library maintains invariants the paper's
// correctness argument rests on — L-Tree labels stay order-correct under
// batched relabeling within the Section 4.1 batch(f,s,n,k) bound — and each
// used to check them piecemeal (ad-hoc CheckInvariants methods returning
// only the first violation). This header is the common substrate those
// checks now share:
//
//   * audit::Violation — one broken rule, with a structural path to the
//     offending node (e.g. "ltree:/2/0") and a stable rule slug
//     (e.g. "label-order") tests can assert on;
//   * audit::Report — a bounded collector of violations that renders to a
//     human-readable listing or collapses to the legacy Corruption Status;
//   * deep validators — AuditLTree here, CountedBTree::Audit,
//     VirtualLTree::Audit and xml::Document::Audit on their classes (their
//     node types are private), and the scheme-generic
//     listlab::LabelStore::Validate() that every labeling scheme implements.
//
// Unlike the old first-failure checks, validators keep walking after a hit
// so one audit reports every broken rule at once (up to Report's cap).
// Configuring with -DLISTLAB_VALIDATE=ON makes every LabelStore re-audit
// itself after each mutating call and abort with the full report on the
// first operation that corrupts the structure.

#ifndef LTREE_CORE_VALIDATE_H_
#define LTREE_CORE_VALIDATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ltree {

class LTree;

namespace audit {

/// One violated invariant at one location.
struct Violation {
  /// Structural path to the offending node: a structure tag followed by
  /// child indices from the root, e.g. "ltree:/2/0" or "btree:/1".
  std::string path;
  /// Stable machine-checkable rule slug, e.g. "label-order" or
  /// "arena-conservation". Negative tests assert on these.
  std::string rule;
  /// Human-readable detail (expected vs. actual values).
  std::string message;

  std::string ToString() const;
};

/// Collects violations during a deep validation walk. Bounded: a badly
/// corrupted structure can violate a rule at every node, so past
/// `max_violations` the report only counts further hits.
class Report {
 public:
  Report() = default;
  explicit Report(size_t max_violations) : max_violations_(max_violations) {}

  /// Records one violation (or just counts it once the cap is reached).
  void Add(std::string path, std::string rule, std::string message);

  bool ok() const { return violations_.empty() && dropped_ == 0; }

  /// Total violations seen, including ones dropped past the cap.
  uint64_t total() const { return violations_.size() + dropped_; }

  const std::vector<Violation>& violations() const { return violations_; }

  /// True if any recorded violation matches `rule` (for negative tests).
  bool HasRule(std::string_view rule) const;

  /// Merges `other`'s recorded violations into this report, prefixing each
  /// path with `prefix` (for stores that aggregate sub-structure audits).
  void Absorb(const Report& other, std::string_view prefix);

  /// "ok" or a newline-separated listing of every recorded violation.
  std::string ToString() const;

  /// OK, or Corruption carrying the first violation (and the total count),
  /// matching what the legacy CheckInvariants methods returned.
  Status ToStatus() const;

 private:
  std::vector<Violation> violations_;
  size_t max_violations_ = 64;
  uint64_t dropped_ = 0;
};

/// Deep validator for the materialized L-Tree: Proposition 2 structure
/// (uniform leaf depth, fanout <= f+1, leaf budgets l(t) < lmax(t)),
/// parent/child link symmetry, the label identity
/// num(w) = num(parent) + index(w) * (f+1)^{h(w)} (hence Proposition 1
/// strict label monotonicity across leaves), tombstone accounting against
/// num_live_leaves(), and arena conservation (live() == reachable nodes).
void AuditLTree(const LTree& tree, Report* report);

}  // namespace audit
}  // namespace ltree

#endif  // LTREE_CORE_VALIDATE_H_
