// Epoch-based reclamation for concurrently read pool-arena structures.
//
// The concurrent LabelStore read path lets reader threads hold raw node
// pointers (L-Tree leaves, counted-B+-tree nodes) while a serialized writer
// rebuilds the structure. Rebuilds recycle nodes through PoolArena free
// lists, and a recycled node is immediately overwritten by the next
// Allocate() — which must never happen under an in-flight reader. This
// module layers the classic three-epoch reclamation scheme on top of the
// arenas:
//
//  * readers pin the current epoch with a cheap RAII ReadGuard (one CAS to
//    claim a cache-line-aligned slot, one store to release it);
//  * the single serialized writer retires unlinked nodes into the current
//    epoch's bucket instead of releasing them to the arena, and after each
//    mutation tries to advance the global epoch — which succeeds only when
//    every active reader has caught up to the current epoch;
//  * advancing from epoch e to e+1 proves no reader pinned at e-2 or
//    earlier survives, so the bucket retired during epoch e-2 is handed to
//    its deleters (typically PoolArena::Release) and recycling proceeds.
//
// With no readers active, retirement degrades to a one-mutation delay: the
// writer's own advances drain the buckets. With readers present, memory is
// bounded by what one epoch of mutations can retire.
//
// Thread contract: Pin/Unpin (via ReadGuard) are thread-safe and lock-free.
// Retire/TryAdvance/ReclaimAllUnsafe/stats are writer-side and must be
// externally serialized, like the structure that owns the manager.

#ifndef LTREE_CORE_EPOCH_H_
#define LTREE_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ltree {
namespace epoch {

/// Reclamation counters. Writer-side fields are plain (single writer);
/// pins is written by readers and read by anyone.
struct EpochStats {
  uint64_t retired = 0;    ///< nodes handed to Retire()
  uint64_t reclaimed = 0;  ///< nodes whose deleter has run
  uint64_t advances = 0;   ///< successful epoch advances
  uint64_t stalls = 0;     ///< TryAdvance calls blocked by a pinned reader
  uint64_t pins = 0;       ///< ReadGuard acquisitions (lifetime)

  /// Nodes retired but not yet reclaimed (sitting in an epoch bucket).
  uint64_t pending() const { return retired - reclaimed; }

  std::string ToString() const;
};

class EpochManager {
 public:
  /// Concurrent reader slots. Guard acquisition spins (yielding) when all
  /// slots are taken, so this bounds concurrency, not correctness.
  static constexpr uint32_t kMaxReaders = 64;

  /// Type-erased reclamation callback: typically
  /// `[](void* obj, void* ctx) { static_cast<Arena*>(ctx)->Release(obj); }`.
  using Deleter = void (*)(void* obj, void* ctx);

  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // ------------------------------------------------------------ reader side

  /// Claims a reader slot and announces the current epoch. Returns the slot
  /// id for Unpin. Prefer ReadGuard over calling this directly.
  uint32_t Pin();

  /// Releases the slot claimed by Pin.
  void Unpin(uint32_t slot);

  // ------------------------------------------------------------ writer side

  /// Defers `obj` into the current epoch's bucket; `fn(obj, ctx)` runs once
  /// no reader that could still observe `obj` remains. `obj` must already
  /// be unreachable from the live structure (published-unlink before
  /// retire is the caller's ordering obligation).
  void Retire(void* obj, Deleter fn, void* ctx);

  /// Advances the global epoch if every active reader has announced the
  /// current one, reclaiming the bucket that is now two epochs stale.
  /// No-op (returning false without counting a stall) when nothing is
  /// pending. Returns true iff the epoch advanced.
  bool TryAdvance();

  /// Runs every pending deleter regardless of epochs. Only legal when no
  /// reader is active (e.g. store teardown after joining reader threads);
  /// checked. Returns the number of nodes reclaimed.
  uint64_t ReclaimAllUnsafe();

  // --------------------------------------------------------------- queries

  uint64_t global_epoch() const {
    return global_.load(std::memory_order_acquire);
  }

  /// True if any reader slot is currently pinned.
  bool HasActiveReaders() const;

  /// Nodes retired but not yet reclaimed.
  uint64_t pending() const { return stats_.retired - stats_.reclaimed; }

  /// Snapshot of the counters (pins folded in from the readers' counter).
  EpochStats stats() const;

  /// Visits every pending retired object (all three buckets). Writer-side:
  /// must not race Retire/TryAdvance. The audit rule `epoch-reclamation`
  /// uses this to prove no retired node is still reachable.
  template <typename Fn>
  void ForEachPending(Fn&& fn) const {
    for (const auto& bucket : buckets_) {
      for (const Retired& r : bucket) fn(r.obj);
    }
  }

 private:
  struct Retired {
    void* obj;
    Deleter fn;
    void* ctx;
  };

  /// kIdle marks a free slot; claiming is a CAS kIdle -> epoch.
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  /// Reclaims every entry of `bucket` (writer side).
  void Drain(std::vector<Retired>* bucket);

  // Epochs start at 2 so `epoch - 2` bucket arithmetic never underflows.
  std::atomic<uint64_t> global_{2};
  std::unique_ptr<ReaderSlot[]> slots_;
  /// buckets_[e % 3] holds nodes retired while the global epoch was e.
  std::vector<Retired> buckets_[3];
  EpochStats stats_;                  ///< writer-side fields
  std::atomic<uint64_t> pin_count_{0};  ///< reader-side lifetime pins
};

/// RAII epoch pin. Readers hold one guard across a sequence of reads; any
/// node reachable when the guard was acquired stays un-recycled until the
/// guard drops. Movable, not copyable. A default-constructed guard pins
/// nothing (used by schemes with no concurrent structure to protect).
class ReadGuard {
 public:
  ReadGuard() = default;
  explicit ReadGuard(EpochManager* manager)
      : manager_(manager), slot_(manager ? manager->Pin() : 0) {}
  ReadGuard(ReadGuard&& other) noexcept
      : manager_(other.manager_), slot_(other.slot_) {
    other.manager_ = nullptr;
  }
  ReadGuard& operator=(ReadGuard&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      slot_ = other.slot_;
      other.manager_ = nullptr;
    }
    return *this;
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  ~ReadGuard() { Release(); }

  bool pinned() const { return manager_ != nullptr; }

 private:
  void Release() {
    if (manager_ != nullptr) {
      manager_->Unpin(slot_);
      manager_ = nullptr;
    }
  }

  EpochManager* manager_ = nullptr;
  uint32_t slot_ = 0;
};

}  // namespace epoch
}  // namespace ltree

#endif  // LTREE_CORE_EPOCH_H_
