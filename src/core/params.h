// L-Tree shape parameters (the paper's `f` and `s`) and the derived
// power tables used by label arithmetic.
//
// Section 2.1: "The shape of the L-Tree is determined by two parameters f
// and s, which control the number of leaf descendants of internal nodes."
// The branching base is d = f/s: bulk loading builds a complete d-ary tree
// (Section 2.2) and splits replace an overfull node with s complete d-ary
// subtrees (Section 2.3). Labels are assigned in base (f+1):
//   num(w) = num(v) + i * (f+1)^{h(w)}    (w = i-th child of v).

#ifndef LTREE_CORE_PARAMS_H_
#define LTREE_CORE_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ltree {

/// A leaf label. 64-bit: the label space of a tree of height H is
/// (f+1)^H, which must fit in uint64_t; exceeding it yields
/// Status::CapacityExceeded rather than wraparound.
using Label = uint64_t;

/// Client payload attached to each leaf (e.g. an XML tag id).
using LeafCookie = uint64_t;

/// Tunable L-Tree parameters. See model::CostModel (src/model) for the
/// paper's Section 3.2 guidance on choosing f and s.
struct Params {
  /// Max fanout control: lmax(t) = s * (f/s)^{h(t)} leaves per subtree.
  uint32_t f = 8;
  /// Split factor: an overfull node is replaced by s complete (f/s)-ary
  /// subtrees.
  uint32_t s = 2;
  /// If true, leaves marked deleted are physically dropped whenever the
  /// subtree containing them is rebuilt by a split. The paper (Section 2.3)
  /// only marks deletions; purging is an optional extension.
  bool purge_tombstones_on_split = false;

  /// Branching base d = f/s.
  uint32_t d() const { return f / s; }

  /// Requires s >= 2, s | f, and f/s >= 2.
  Status Validate() const;

  std::string ToString() const;
};

/// Precomputed powers for a given (f, s): (f+1)^h, d^h and lmax(h) = s*d^h
/// for every height h the 64-bit label space can accommodate.
class PowerTable {
 public:
  /// Builds tables for validated params.
  static Result<PowerTable> Make(const Params& params);

  /// Largest height H such that (f+1)^H and s*d^H both fit in uint64_t.
  uint32_t max_height() const { return max_height_; }

  /// (f+1)^h; h must be <= max_height().
  uint64_t PowF1(uint32_t h) const { return pow_f1_[h]; }

  /// d^h; h must be <= max_height().
  uint64_t PowD(uint32_t h) const { return pow_d_[h]; }

  /// Subtree leaf budget lmax(h) = s * d^h (Section 2.3).
  uint64_t LeafBudget(uint32_t h) const { return lmax_[h]; }

 private:
  PowerTable() = default;

  uint32_t max_height_ = 0;
  std::vector<uint64_t> pow_f1_;
  std::vector<uint64_t> pow_d_;
  std::vector<uint64_t> lmax_;
};

}  // namespace ltree

#endif  // LTREE_CORE_PARAMS_H_
