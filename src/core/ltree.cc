#include "core/ltree.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace ltree {

LTree::LTree(const Params& params, PowerTable powers)
    : params_(params), powers_(std::move(powers)) {
  root_ = arena_.Allocate();
  root_->height = 1;
  root_->leaf_count = 0;
  root_->num = 0;
}

// Every node lives in arena_ chunks, which free wholesale — no tree walk.
LTree::~LTree() = default;

const LTreeStats& LTree::stats() const {
  const NodeArenaStats& a = arena_.stats();
  stats_.nodes_allocated = a.fresh_allocs - arena_base_.fresh_allocs;
  stats_.nodes_reused = a.reused_allocs - arena_base_.reused_allocs;
  stats_.nodes_released = a.releases - arena_base_.releases;
  return stats_;
}

void LTree::ResetStats() {
  stats_ = LTreeStats();
  arena_base_ = arena_.stats();
}

namespace {

uint64_t ChildBufferBytes(const Node* n) {
  uint64_t bytes = n->children.capacity() * sizeof(Node*);
  for (const Node* c : n->children) bytes += ChildBufferBytes(c);
  return bytes;
}

}  // namespace

uint64_t LTree::ApproxHeapBytes() const {
  uint64_t bytes =
      arena_.stats().chunks * NodeArena::kChunkBytes + ChildBufferBytes(root_);
  // Free-list nodes keep their children buffers for reuse; count them too.
  arena_.ForEachFree([&bytes](const Node* n) {
    bytes += n->children.capacity() * sizeof(Node*);
  });
  return bytes;
}

Result<std::unique_ptr<LTree>> LTree::Create(const Params& params) {
  LTREE_ASSIGN_OR_RETURN(PowerTable powers, PowerTable::Make(params));
  return std::unique_ptr<LTree>(new LTree(params, std::move(powers)));
}

// --------------------------------------------------------------------------
// Bulk loading (Section 2.2)
// --------------------------------------------------------------------------

Status LTree::BulkLoad(std::span<const LeafCookie> cookies,
                       std::vector<LeafHandle>* handles) {
  if (root_->leaf_count != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty L-Tree");
  }
  const uint64_t n = cookies.size();
  if (n == 0) return Status::OK();
  const uint32_t h0 = std::max(1u, CeilLog(params_.d(), n));
  if (h0 > powers_.max_height()) {
    return Status::CapacityExceeded(
        StrFormat("bulk load of %llu leaves needs height %u > max height %u",
                  static_cast<unsigned long long>(n), h0,
                  powers_.max_height()));
  }
  std::vector<Node*> leaves;
  leaves.reserve(n);
  for (LeafCookie c : cookies) {
    Node* leaf = arena_.Allocate();
    leaf->cookie = c;
    leaf->num = kInvalidLabel;
    leaves.push_back(leaf);
  }
  arena_.Release(root_);  // the empty placeholder root
  root_ = BuildOverLeaves(std::span<Node*>(leaves), h0);
  live_leaves_ = n;
  // Initial label assignment is part of loading, not incremental maintenance.
  Relabel(root_, 0, 0, /*count_stats=*/false);
  ++stats_.bulk_loads;
  if (handles != nullptr) {
    handles->reserve(handles->size() + leaves.size());
    handles->insert(handles->end(), leaves.begin(), leaves.end());
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Tree construction helpers
// --------------------------------------------------------------------------

Node* LTree::BuildOverLeaves(std::span<Node*> leaves, uint32_t height) {
  LTREE_CHECK(!leaves.empty());
  if (height == 0) {
    LTREE_CHECK(leaves.size() == 1);
    Node* leaf = leaves[0];
    LTREE_CHECK(leaf->IsLeaf());
    return leaf;
  }
  LTREE_CHECK(leaves.size() <= powers_.PowD(height));
  Node* node = arena_.Allocate();
  node->height = height;
  node->leaf_count = leaves.size();
  const uint64_t seg_cap = powers_.PowD(height - 1);
  const uint64_t m = CeilDiv(leaves.size(), seg_cap);
  const uint64_t base = leaves.size() / m;
  const uint64_t rem = leaves.size() % m;
  node->children.reserve(m);
  size_t offset = 0;
  for (uint64_t i = 0; i < m; ++i) {
    const size_t len = static_cast<size_t>(base + (i < rem ? 1 : 0));
    Node* child = BuildOverLeaves(leaves.subspan(offset, len), height - 1);
    child->parent = node;
    child->index_in_parent = static_cast<uint32_t>(i);
    node->children.push_back(child);
    offset += len;
  }
  return node;
}

void LTree::BuildPieces(std::span<Node*> leaves, uint64_t pieces,
                        uint32_t piece_height, std::vector<Node*>* out) {
  LTREE_CHECK(pieces >= 1);
  LTREE_CHECK(leaves.size() >= pieces);
  out->clear();
  out->reserve(pieces);
  const uint64_t base = leaves.size() / pieces;
  const uint64_t rem = leaves.size() % pieces;
  size_t offset = 0;
  for (uint64_t i = 0; i < pieces; ++i) {
    const size_t len = static_cast<size_t>(base + (i < rem ? 1 : 0));
    out->push_back(BuildOverLeaves(leaves.subspan(offset, len), piece_height));
    offset += len;
  }
}

void LTree::ReleaseInternalNodes(Node* n) {
  if (n == nullptr || n->IsLeaf()) return;
  for (Node* child : n->children) ReleaseInternalNodes(child);
  arena_.Release(n);
}

void LTree::FixIndicesFrom(Node* parent, uint32_t from) {
  for (uint32_t i = from; i < parent->children.size(); ++i) {
    parent->children[i]->index_in_parent = i;
  }
}

// --------------------------------------------------------------------------
// Incremental maintenance (Section 2.3, Algorithm 1; Section 4.1 batches)
// --------------------------------------------------------------------------

Status LTree::EnsureCapacityFor(uint64_t k) const {
  auto l_new_opt = CheckedAdd(root_->leaf_count, k);
  if (!l_new_opt) {
    return Status::CapacityExceeded("leaf count would overflow uint64");
  }
  const uint64_t l_new = *l_new_opt;
  for (uint32_t h = root_->height; h <= powers_.max_height(); ++h) {
    if (l_new < powers_.LeafBudget(h) &&
        CeilDiv(l_new, powers_.PowD(h - 1)) <= params_.f) {
      return Status::OK();
    }
  }
  return Status::CapacityExceeded(StrFormat(
      "inserting %llu leaves (total %llu) exceeds the 64-bit label space of "
      "%s",
      static_cast<unsigned long long>(k),
      static_cast<unsigned long long>(l_new), params_.ToString().c_str()));
}

namespace {

/// Non-tombstoned leaves under `t` (the purge projection of the planner).
uint64_t LiveLeavesUnder(const Node* t) {
  if (t->IsLeaf()) return t->deleted ? 0 : 1;
  uint64_t live = 0;
  for (const Node* c : t->children) live += LiveLeavesUnder(c);
  return live;
}

}  // namespace

Status LTree::PlanInsertAt(Node* parent, uint32_t idx, uint64_t k,
                           BatchPlan* out) const {
  LTREE_CHECK(parent != nullptr);
  LTREE_CHECK(parent->height == 1);
  LTREE_CHECK(idx <= parent->children.size());
  BatchPlan& plan = *out;
  plan = BatchPlan();
  plan.parent = parent;
  plan.insert_index = idx;
  plan.batch_size = k;
  if (k == 0) return Status::OK();
  LTREE_RETURN_IF_ERROR(EnsureCapacityFor(k));

  // Algorithm 1 walk: the highest ancestor whose subtree would exceed its
  // leaf budget after the splice.
  Node* v = nullptr;
  for (Node* t = parent; t != nullptr; t = t->parent) {
    if (t->leaf_count + k >= powers_.LeafBudget(t->height)) v = t;
  }
  if (v == nullptr) return Status::OK();
  plan.needs_rebuild = true;

  // Escalation-aware coalescing: replacing the violator by m pieces can
  // momentarily overflow its parent's fanout (batches only; Proposition 3
  // rules it out for single leaves). Fold every such level into the region
  // now, so the apply phase rebuilds and relabels it exactly once instead
  // of once per level.
  while (v != root_) {
    const uint64_t leaves_after =
        (params_.purge_tombstones_on_split ? LiveLeavesUnder(v)
                                           : v->leaf_count) +
        k;
    const uint64_t m = CeilDiv(leaves_after, powers_.PowD(v->height));
    if (v->parent->children.size() - 1 + m <=
        static_cast<uint64_t>(params_.f) + 1) {
      plan.region = v;
      plan.region_leaves = leaves_after;
      plan.region_pieces = m;
      return Status::OK();
    }
    ++plan.levels_coalesced;
    v = v->parent;
  }
  plan.rebuild_root = true;
  return Status::OK();
}

Status LTree::InsertAt(Node* parent, uint32_t idx,
                       std::span<const LeafCookie> cookies,
                       std::vector<LeafHandle>* handles, bool is_batch) {
  BatchPlan plan;
  LTREE_RETURN_IF_ERROR(PlanInsertAt(parent, idx, cookies.size(), &plan));
  return ApplyPlan(plan, cookies, handles, is_batch);
}

Status LTree::ApplyPlan(const BatchPlan& plan,
                        std::span<const LeafCookie> cookies,
                        std::vector<LeafHandle>* handles, bool is_batch) {
  const uint64_t k = cookies.size();
  LTREE_CHECK(k == plan.batch_size);
  if (k == 0) return Status::OK();
  Node* parent = plan.parent;
  const uint32_t idx = plan.insert_index;

  std::vector<Node*>& fresh = fresh_scratch_;
  fresh.clear();
  fresh.reserve(k);
  for (LeafCookie c : cookies) {
    Node* leaf = arena_.Allocate();
    leaf->cookie = c;
    leaf->num = kInvalidLabel;
    leaf->parent = parent;
    fresh.push_back(leaf);
  }
  // Pre-size to the steady-state fanout so the range insert never
  // reallocates mid-shift: the tail moves exactly once, and repeated
  // single-leaf inserts at the same parent stop paying the geometric
  // growth ladder (a height-1 node tops out at f+1 children, batches
  // excepted).
  if (parent->children.size() + k > parent->children.capacity()) {
    parent->children.reserve(
        std::max<size_t>(parent->children.size() + k, params_.f + 1));
  }
  parent->children.insert(parent->children.begin() + idx, fresh.begin(),
                          fresh.end());
  FixIndicesFrom(parent, idx);

  // Bump l(t) for every ancestor (Algorithm 1, lines 4-10; the rebuild
  // decision was already made by the planner).
  for (Node* t = parent; t != nullptr; t = t->parent) {
    t->leaf_count += k;
    ++stats_.ancestor_updates;
  }
  live_leaves_ += k;

  if (!plan.needs_rebuild) {
    // No split: relabel the new leaves and their right siblings in one
    // pass (Algorithm 1, lines 12-13). Costs at most f node accesses.
    Relabel(parent, parent->num, idx, /*count_stats=*/true);
    ++stats_.relabel_passes;
  } else if (plan.rebuild_root) {
    stats_.escalations += plan.levels_coalesced;
    if (plan.levels_coalesced > 0) ++stats_.coalesced_regions;
    RebuildRoot();
  } else {
    RebuildRegion(plan);
  }

  if (is_batch) {
    ++stats_.batch_inserts;
    stats_.batch_leaves += k;
  } else {
    ++stats_.inserts;
  }
  if (handles != nullptr) {
    // Pre-size for the whole batch; the max() keeps growth geometric so
    // single-leaf insert streams stay amortized O(1) per append.
    const size_t need = handles->size() + fresh.size();
    if (need > handles->capacity()) {
      handles->reserve(std::max(need, handles->capacity() * 2));
    }
    handles->insert(handles->end(), fresh.begin(), fresh.end());
  }
  return Status::OK();
}

void LTree::RebuildRegion(const BatchPlan& plan) {
  Node* v = plan.region;
  LTREE_CHECK(v != nullptr && v != root_);
  Node* p = v->parent;
  const uint32_t j = v->index_in_parent;
  const uint32_t h = v->height;

  std::vector<Node*>& leaves = leaf_scratch_;
  leaves.clear();
  CollectLeaves(v, &leaves);
  // Release the internal skeleton before purging: MaybePurge recycles
  // tombstoned leaves, and the internal nodes' children vectors would
  // still point at them during the recursive walk. BuildPieces below
  // re-allocates a same-shape skeleton, so it is served almost entirely
  // from the free list these releases just filled.
  ReleaseInternalNodes(v);
  const uint64_t purged = MaybePurge(&leaves);
  LTREE_CHECK(leaves.size() == plan.region_leaves);

  // Section 2.3: replace v with m complete (f/s)-ary subtrees over the
  // same leaf sequence. (For the exact single-insert trigger
  // l(v) = s*d^h this is precisely s pieces of d^h leaves each; batches
  // may need more pieces.) The planner already guaranteed the m pieces fit
  // the parent's fanout, so no escalation can happen here.
  const uint64_t m = plan.region_pieces;
  std::vector<Node*>& pieces = piece_scratch_;
  BuildPieces(std::span<Node*>(leaves), m, h, &pieces);

  auto& siblings = p->children;
  siblings.erase(siblings.begin() + j);
  siblings.insert(siblings.begin() + j, pieces.begin(), pieces.end());
  for (Node* piece : pieces) piece->parent = p;
  FixIndicesFrom(p, j);
  if (purged > 0) {
    for (Node* t = p; t != nullptr; t = t->parent) t->leaf_count -= purged;
  }
  LTREE_CHECK(siblings.size() <= static_cast<size_t>(params_.f) + 1);
  ++stats_.splits;
  stats_.escalations += plan.levels_coalesced;
  if (plan.levels_coalesced > 0) ++stats_.coalesced_regions;

  // Algorithm 1, line 23: relabel the replacement subtrees and v's right
  // siblings — one pass for the whole coalesced region.
  Relabel(p, p->num, j, /*count_stats=*/true);
  ++stats_.relabel_passes;
}

void LTree::RebuildRoot() {
  std::vector<Node*>& leaves = leaf_scratch_;
  leaves.clear();
  CollectLeaves(root_, &leaves);
  const uint32_t old_height = root_->height;
  // As in RebuildAt: recycle the internal skeleton before MaybePurge
  // recycles any tombstoned leaves it still points at.
  ReleaseInternalNodes(root_);
  root_ = nullptr;
  const uint64_t purged = MaybePurge(&leaves);
  (void)purged;  // counts live in stats_.tombstones_purged

  const uint64_t l = leaves.size();
  LTREE_CHECK(l >= 1);
  // Smallest height at which the leaf budget and the fanout both fit. A
  // budget-triggered root split lands exactly on the paper's rule: a new
  // root of height H+1 whose children are the s top-level subtrees.
  uint32_t new_height = 0;
  for (uint32_t h = old_height; h <= powers_.max_height(); ++h) {
    if (l < powers_.LeafBudget(h) &&
        CeilDiv(l, powers_.PowD(h - 1)) <= params_.f) {
      new_height = h;
      break;
    }
  }
  LTREE_CHECK(new_height >= 1);  // guaranteed by EnsureCapacityFor

  const uint64_t m = CeilDiv(l, powers_.PowD(new_height - 1));
  Node* new_root = arena_.Allocate();
  new_root->height = new_height;
  new_root->leaf_count = l;
  std::vector<Node*>& pieces = piece_scratch_;
  BuildPieces(std::span<Node*>(leaves), m, new_height - 1, &pieces);
  // assign (not move): piece_scratch_ keeps its buffer for the next rebuild.
  new_root->children.assign(pieces.begin(), pieces.end());
  for (uint32_t i = 0; i < new_root->children.size(); ++i) {
    new_root->children[i]->parent = new_root;
    new_root->children[i]->index_in_parent = i;
  }
  root_ = new_root;
  ++stats_.root_splits;
  Relabel(root_, 0, 0, /*count_stats=*/true);
  ++stats_.relabel_passes;
}

uint64_t LTree::MaybePurge(std::vector<Node*>* leaves) {
  if (!params_.purge_tombstones_on_split) return 0;
  std::vector<Node*>& v = *leaves;
  uint64_t live = 0;
  for (Node* leaf : v) {
    if (!leaf->deleted) ++live;
  }
  if (live == v.size()) return 0;
  // Compact in place (no side buffer), recycling dropped tombstones.
  size_t w = 0;
  if (live == 0) {
    // Never leave a subtree empty: keep one tombstone as a placeholder.
    for (size_t i = 1; i < v.size(); ++i) RetireLeaf(v[i]);
    w = 1;
  } else {
    for (Node* leaf : v) {
      if (leaf->deleted) {
        RetireLeaf(leaf);
      } else {
        v[w++] = leaf;
      }
    }
  }
  const uint64_t purged = v.size() - w;
  stats_.tombstones_purged += purged;
  v.resize(w);
  return purged;
}

void LTree::RetireLeaf(Node* leaf) {
  if (epoch_ == nullptr) {
    arena_.Release(leaf);
    return;
  }
  epoch_->Retire(
      leaf,
      [](void* obj, void* ctx) {
        static_cast<NodeArena*>(ctx)->Release(static_cast<Node*>(obj));
      },
      &arena_);
}

// --------------------------------------------------------------------------
// Relabeling (Algorithm 1, function Relabel)
// --------------------------------------------------------------------------

void LTree::Relabel(Node* t, Label num, uint32_t from_child,
                    bool count_stats) {
  if (count_stats) ++stats_.nodes_relabeled;
  if (t->IsLeaf()) {
    if (t->num != num) {
      if (t->num != kInvalidLabel) {
        if (count_stats) ++stats_.leaves_relabeled;
        if (listener_ != nullptr) {
          listener_->OnRelabel(t->cookie, t->num, num);
        }
      }
      t->num = num;
    }
    return;
  }
  t->num = num;
  for (uint32_t i = from_child; i < t->children.size(); ++i) {
    Node* w = t->children[i];
    Relabel(w, num + static_cast<uint64_t>(i) * powers_.PowF1(w->height), 0,
            count_stats);
  }
}

// --------------------------------------------------------------------------
// Public update entry points
// --------------------------------------------------------------------------

Result<LTree::LeafHandle> LTree::InsertAfter(LeafHandle pos,
                                             LeafCookie cookie) {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  std::vector<LeafHandle> out;
  const LeafCookie cookies[1] = {cookie};
  LTREE_RETURN_IF_ERROR(InsertAt(pos->parent, pos->index_in_parent + 1,
                                 cookies, &out, /*is_batch=*/false));
  return out[0];
}

Result<LTree::LeafHandle> LTree::InsertBefore(LeafHandle pos,
                                              LeafCookie cookie) {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  std::vector<LeafHandle> out;
  const LeafCookie cookies[1] = {cookie};
  LTREE_RETURN_IF_ERROR(InsertAt(pos->parent, pos->index_in_parent, cookies,
                                 &out, /*is_batch=*/false));
  return out[0];
}

Result<LTree::LeafHandle> LTree::PushBack(LeafCookie cookie) {
  Node* last = RightmostLeaf(root_);
  if (last == nullptr) {
    std::vector<LeafHandle> out;
    const LeafCookie cookies[1] = {cookie};
    LTREE_RETURN_IF_ERROR(
        InsertAt(root_, 0, cookies, &out, /*is_batch=*/false));
    return out[0];
  }
  return InsertAfter(last, cookie);
}

Result<LTree::LeafHandle> LTree::PushFront(LeafCookie cookie) {
  Node* first = LeftmostLeaf(root_);
  if (first == nullptr) return PushBack(cookie);
  return InsertBefore(first, cookie);
}

Result<BatchPlan> LTree::PlanBatchAfter(LeafHandle pos, uint64_t k) const {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  BatchPlan plan;
  LTREE_RETURN_IF_ERROR(
      PlanInsertAt(pos->parent, pos->index_in_parent + 1, k, &plan));
  return plan;
}

Result<BatchPlan> LTree::PlanBatchBefore(LeafHandle pos, uint64_t k) const {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  BatchPlan plan;
  LTREE_RETURN_IF_ERROR(
      PlanInsertAt(pos->parent, pos->index_in_parent, k, &plan));
  return plan;
}

Status LTree::InsertBatchAfter(LeafHandle pos,
                               std::span<const LeafCookie> cookies,
                               std::vector<LeafHandle>* handles) {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  return InsertAt(pos->parent, pos->index_in_parent + 1, cookies, handles,
                  /*is_batch=*/true);
}

Status LTree::InsertBatchBefore(LeafHandle pos,
                                std::span<const LeafCookie> cookies,
                                std::vector<LeafHandle>* handles) {
  LTREE_CHECK(pos != nullptr);
  LTREE_CHECK(pos->IsLeaf());
  return InsertAt(pos->parent, pos->index_in_parent, cookies, handles,
                  /*is_batch=*/true);
}

Status LTree::PushBackBatch(std::span<const LeafCookie> cookies,
                            std::vector<LeafHandle>* handles) {
  Node* last = RightmostLeaf(root_);
  if (last == nullptr) {
    return InsertAt(root_, 0, cookies, handles, /*is_batch=*/true);
  }
  return InsertBatchAfter(last, cookies, handles);
}

Status LTree::MarkDeleted(LeafHandle leaf) {
  LTREE_CHECK(leaf != nullptr);
  LTREE_CHECK(leaf->IsLeaf());
  if (leaf->deleted) {
    return Status::FailedPrecondition("leaf already deleted");
  }
  leaf->deleted = true;
  --live_leaves_;
  ++stats_.deletes;
  return Status::OK();
}

// --------------------------------------------------------------------------
// Queries / introspection
// --------------------------------------------------------------------------

LTree::LeafHandle LTree::FirstLeaf() const { return LeftmostLeaf(root_); }

LTree::LeafHandle LTree::NextLeaf(LeafHandle leaf) const {
  return ltree::NextLeaf(leaf);
}

LTree::LeafHandle LTree::FirstLiveLeaf() const {
  Node* leaf = LeftmostLeaf(root_);
  while (leaf != nullptr && leaf->deleted) leaf = ltree::NextLeaf(leaf);
  return leaf;
}

LTree::LeafHandle LTree::NextLiveLeaf(LeafHandle leaf) const {
  Node* cur = ltree::NextLeaf(leaf);
  while (cur != nullptr && cur->deleted) cur = ltree::NextLeaf(cur);
  return cur;
}

LTree::LeafHandle LTree::FindLeafByLabel(Label label) const {
  Node* t = root_;
  if (t == nullptr || t->leaf_count == 0) return nullptr;
  // num(child i of t) = num(t) + i * (f+1)^(h(t)-1), so the owning child
  // index is pure arithmetic — no key comparisons, no search.
  while (!t->IsLeaf()) {
    const Label base = t->num.load();
    if (label < base) return nullptr;
    const uint64_t span = powers_.PowF1(t->height - 1);
    const uint64_t idx = (label - base) / span;
    if (idx >= t->children.size()) return nullptr;
    t = t->children[idx];
  }
  return t->num.load() == label ? t : nullptr;
}

uint64_t LTree::num_slots() const { return root_->leaf_count; }

uint32_t LTree::height() const { return root_->height; }

uint64_t LTree::label_space() const { return powers_.PowF1(root_->height); }

uint32_t LTree::label_bits() const {
  return BitWidth(label_space() - 1);
}

Label LTree::max_label() const {
  Node* last = RightmostLeaf(root_);
  return last == nullptr ? Label{0} : last->num.load();
}

std::vector<Label> LTree::LiveLabels() const {
  std::vector<Label> out;
  out.reserve(live_leaves_);
  for (Node* leaf = LeftmostLeaf(root_); leaf != nullptr;
       leaf = ltree::NextLeaf(leaf)) {
    if (!leaf->deleted) out.push_back(leaf->num);
  }
  return out;
}

std::vector<Label> LTree::AllLabels() const {
  std::vector<Label> out;
  out.reserve(root_->leaf_count);
  for (Node* leaf = LeftmostLeaf(root_); leaf != nullptr;
       leaf = ltree::NextLeaf(leaf)) {
    out.push_back(leaf->num);
  }
  return out;
}

}  // namespace ltree
