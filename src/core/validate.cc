// audit::Report plumbing and the deep L-Tree validator.
//
// The L-Tree checks migrated here from the first-failure
// LTree::CheckInvariants (core/invariants.cc keeps only the DebugString
// dumper and the thin Status wrapper): same rules, but every violation is
// reported with a structural path instead of stopping at the first.

#include "core/validate.h"

#include <sstream>
#include <unordered_set>

#include "common/string_util.h"
#include "core/ltree.h"

namespace ltree {
namespace audit {

std::string Violation::ToString() const {
  return StrFormat("[%s] %s: %s", rule.c_str(), path.c_str(),
                   message.c_str());
}

void Report::Add(std::string path, std::string rule, std::string message) {
  if (violations_.size() >= max_violations_) {
    ++dropped_;
    return;
  }
  violations_.push_back(
      Violation{std::move(path), std::move(rule), std::move(message)});
}

bool Report::HasRule(std::string_view rule) const {
  for (const Violation& v : violations_) {
    if (v.rule == rule) return true;
  }
  return false;
}

void Report::Absorb(const Report& other, std::string_view prefix) {
  for (const Violation& v : other.violations_) {
    Add(std::string(prefix) + v.path, v.rule, v.message);
  }
  dropped_ += other.dropped_;
}

std::string Report::ToString() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << total() << " violation(s):";
  for (const Violation& v : violations_) {
    os << "\n  " << v.ToString();
  }
  if (dropped_ > 0) {
    os << "\n  ... and " << dropped_ << " more (report cap reached)";
  }
  return os.str();
}

Status Report::ToStatus() const {
  if (ok()) return Status::OK();
  const Violation& first = violations_.front();
  std::string msg = first.ToString();
  if (total() > 1) {
    msg += StrFormat(" (+%llu more)",
                     static_cast<unsigned long long>(total() - 1));
  }
  return Status::Corruption(std::move(msg));
}

// --------------------------------------------------------------------------
// Materialized L-Tree deep validator
// --------------------------------------------------------------------------

namespace {

struct LTreeAuditContext {
  const Params* params;
  const PowerTable* powers;
  Report* report;
  uint64_t leaf_slots = 0;
  uint64_t live = 0;
  uint64_t reachable_nodes = 0;
  Label prev_label = 0;
  bool saw_leaf = false;
};

void AuditNode(const Node* node, const Node* expected_parent,
               uint32_t expected_index, Label expected_num,
               const std::string& path, LTreeAuditContext* ctx) {
  ++ctx->reachable_nodes;
  if (node->parent != expected_parent) {
    ctx->report->Add(path, "parent-link",
                     "parent pointer does not point at the actual parent");
  }
  if (node->index_in_parent != expected_index) {
    ctx->report->Add(path, "child-index",
                     StrFormat("index_in_parent is %u, actual slot is %u",
                               node->index_in_parent, expected_index));
  }
  if (node->num != expected_num) {
    // The paper's label identity: num(w) = num(parent) + i * (f+1)^{h(w)}.
    ctx->report->Add(
        path, "label-identity",
        StrFormat("num is %llu, identity requires %llu at height %u",
                  static_cast<unsigned long long>(node->num),
                  static_cast<unsigned long long>(expected_num),
                  node->height));
  }
  if (node->IsLeaf()) {
    if (!node->children.empty()) {
      ctx->report->Add(path, "leaf-childless",
                       StrFormat("leaf has %zu children",
                                 node->children.size()));
    }
    if (node->leaf_count != 1) {
      ctx->report->Add(
          path, "leaf-count-unit",
          StrFormat("leaf has leaf_count %llu, want 1",
                    static_cast<unsigned long long>(node->leaf_count)));
    }
    // Proposition 1: labels strictly increase in document order.
    if (ctx->saw_leaf && node->num <= ctx->prev_label) {
      ctx->report->Add(
          path, "label-order",
          StrFormat("label %llu not above predecessor %llu",
                    static_cast<unsigned long long>(node->num),
                    static_cast<unsigned long long>(ctx->prev_label)));
    }
    ctx->prev_label = node->num;
    ctx->saw_leaf = true;
    ++ctx->leaf_slots;
    if (!node->deleted) ++ctx->live;
    return;
  }

  if (node->children.empty()) {
    ctx->report->Add(path, "internal-childless",
                     "internal node with no children");
    return;
  }
  // Fanout: at most f+1 children fit the (f+1)-ary label space (f steady
  // state, f+1 transiently; see DESIGN notes in core/invariants.cc).
  if (node->children.size() > static_cast<size_t>(ctx->params->f) + 1) {
    ctx->report->Add(path, "fanout",
                     StrFormat("fanout %zu exceeds f+1=%u at height %u",
                               node->children.size(), ctx->params->f + 1,
                               node->height));
  }
  // Proposition 2(1) upper bound: l(t) < lmax(t) after every operation.
  if (node->leaf_count >= ctx->powers->LeafBudget(node->height)) {
    ctx->report->Add(
        path, "leaf-budget",
        StrFormat("leaf_count %llu at height %u reaches budget %llu",
                  static_cast<unsigned long long>(node->leaf_count),
                  node->height,
                  static_cast<unsigned long long>(
                      ctx->powers->LeafBudget(node->height))));
  }
  uint64_t child_leaves = 0;
  for (uint32_t i = 0; i < node->children.size(); ++i) {
    const Node* child = node->children[i];
    const std::string child_path = (path.back() == '/' ? path : path + "/") +
                                   std::to_string(i);
    if (child == nullptr) {
      ctx->report->Add(child_path, "null-child", "null child pointer");
      continue;
    }
    if (child->height + 1 != node->height) {
      ctx->report->Add(child_path, "height-step",
                       StrFormat("height-%u child under height-%u node",
                                 child->height, node->height));
      // The label identity below would cascade nonsense; still recurse so
      // deeper violations surface.
    }
    const Label child_num =
        node->num +
        static_cast<uint64_t>(i) * ctx->powers->PowF1(child->height);
    AuditNode(child, node, i, child_num, child_path, ctx);
    child_leaves += child->leaf_count;
  }
  if (child_leaves != node->leaf_count) {
    ctx->report->Add(
        path, "leaf-count-sum",
        StrFormat("leaf_count %llu != sum of children %llu at height %u",
                  static_cast<unsigned long long>(node->leaf_count),
                  static_cast<unsigned long long>(child_leaves),
                  node->height));
  }
}

/// Collects every node reachable from `node` (for the epoch-reclamation
/// rule: a retired node must not be in this set).
void CollectReachable(const Node* node,
                      std::unordered_set<const void*>* out) {
  if (node == nullptr) return;
  out->insert(node);
  for (const Node* child : node->children) CollectReachable(child, out);
}

}  // namespace

void AuditLTree(const LTree& tree, Report* report) {
  const Node* root = tree.root();
  if (root == nullptr) {
    report->Add("ltree:/", "root-null", "null root");
    return;
  }
  if (root->IsLeaf()) {
    report->Add("ltree:/", "root-internal", "root must be internal");
    return;
  }
  LTreeAuditContext ctx;
  ctx.params = &tree.params();
  ctx.powers = &tree.powers();
  ctx.report = report;
  if (root->leaf_count == 0) {
    if (!root->children.empty()) {
      report->Add("ltree:/", "leaf-count-sum",
                  "empty tree (leaf_count 0) with children");
    }
    if (tree.num_live_leaves() != 0) {
      report->Add("ltree:/", "live-count",
                  StrFormat("empty tree but num_live_leaves() is %llu",
                            static_cast<unsigned long long>(
                                tree.num_live_leaves())));
    }
    return;
  }
  AuditNode(root, nullptr, 0, 0, "ltree:/", &ctx);
  if (ctx.leaf_slots != root->leaf_count) {
    report->Add("ltree:/", "leaf-count-sum",
                StrFormat("root leaf_count %llu != actual leaf slots %llu",
                          static_cast<unsigned long long>(root->leaf_count),
                          static_cast<unsigned long long>(ctx.leaf_slots)));
  }
  // Tombstone accounting: the live counter must equal leaf slots minus
  // tombstones, which the walk counts directly.
  if (ctx.live != tree.num_live_leaves()) {
    report->Add("ltree:/", "live-count",
                StrFormat("num_live_leaves() %llu != actual live leaves %llu",
                          static_cast<unsigned long long>(
                              tree.num_live_leaves()),
                          static_cast<unsigned long long>(ctx.live)));
  }
  // Label resolution: the arithmetic num(w) descent must resolve every
  // leaf's label (tombstoned or not) back to exactly that leaf — this is
  // what makes labels order-preserving addresses, not just comparands.
  // The walk runs only on a structurally clean tree: NextLeaf navigates
  // parent/index_in_parent links, so on a tree the rules above already
  // flagged (miswired child index, self-parent) it can cycle or index
  // out of bounds — and an auditor must stay total. The slot-count cap
  // is belt-and-braces for corruption no structural rule anticipated.
  if (report->ok()) {
    uint64_t resolved_walk = 0;
    for (LTree::LeafHandle leaf = tree.FirstLeaf();
         leaf != nullptr && resolved_walk < tree.num_slots();
         leaf = tree.NextLeaf(leaf), ++resolved_walk) {
      if (tree.FindLeafByLabel(tree.label(leaf)) != leaf) {
        report->Add("ltree:/", "label-resolution",
                    StrFormat("label %llu does not resolve back to its leaf",
                              static_cast<unsigned long long>(
                                  tree.label(leaf))));
      }
    }
  }
  // Arena conservation: every node the pool considers live must be
  // reachable from the root or sitting in an epoch bucket awaiting
  // reclamation, and vice versa.
  const epoch::EpochManager* epoch = tree.epoch();
  const uint64_t pending = epoch != nullptr ? epoch->pending() : 0;
  if (ctx.reachable_nodes + pending != tree.arena_stats().live()) {
    report->Add(
        "ltree:/", "arena-conservation",
        StrFormat("%llu nodes reachable + %llu epoch-pending but the arena "
                  "accounts %llu live",
                  static_cast<unsigned long long>(ctx.reachable_nodes),
                  static_cast<unsigned long long>(pending),
                  static_cast<unsigned long long>(
                      tree.arena_stats().live())));
  }
  // Epoch reclamation: retired ∪ reachable must partition the live nodes —
  // no retired node may still be reachable from the root (use-after-
  // reclaim in waiting) and no node may sit in two buckets (double free).
  if (epoch != nullptr && pending != 0) {
    std::unordered_set<const void*> live_set;
    CollectReachable(root, &live_set);
    std::unordered_set<const void*> retired_set;
    epoch->ForEachPending([&](const void* obj) {
      if (live_set.count(obj) != 0) {
        report->Add("ltree:/", "epoch-reclamation",
                    StrFormat("retired node %p still reachable from the root",
                              obj));
      }
      if (!retired_set.insert(obj).second) {
        report->Add("ltree:/", "epoch-reclamation",
                    StrFormat("node %p retired twice", obj));
      }
    });
  }
}

}  // namespace audit
}  // namespace ltree
