// Growable slot table whose elements stay address-stable under one writer
// and many lock-free readers.
//
// The concurrent LabelStore stores (ltree_store.cc) keep per-handle state in
// dense tables indexed by ItemHandle. `std::vector` cannot back those tables
// once readers go lock-free: growth reallocates, and a reader dereferencing
// the old buffer races the writer's free. ConcurrentSlotTable fixes the
// layout instead of locking it:
//
//  * elements live in geometrically sized chunks (16, 32, 64, ... slots)
//    that are never moved or freed while the table lives, so a reader's
//    `&table[i]` stays valid across any amount of writer growth;
//  * the chunk spine is a fixed array of atomic pointers (34 entries cover
//    2^38 slots), published with release stores; readers locate a slot with
//    two acquire loads and no locks;
//  * `size` is an atomic published *after* the slot's contents (release),
//    so a reader that observes `i < size()` also observes slot i's
//    initialized state.
//
// Writer operations (PushBack, Resize) must be externally serialized, like
// the store that owns the table. T must be default-constructible and is
// typically a bundle of std::atomic fields.

#ifndef LTREE_CORE_SLOT_TABLE_H_
#define LTREE_CORE_SLOT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ltree {

template <typename T>
class ConcurrentSlotTable {
 public:
  ConcurrentSlotTable() = default;
  ~ConcurrentSlotTable() {
    for (uint32_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }
  ConcurrentSlotTable(const ConcurrentSlotTable&) = delete;
  ConcurrentSlotTable& operator=(const ConcurrentSlotTable&) = delete;

  /// Slots in chunk c: kFirstChunkSlots << c.
  static constexpr uint64_t kFirstChunkSlots = 16;
  static constexpr uint32_t kMaxChunks = 34;

  // ------------------------------------------------------------ reader side

  uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Slot access; `i` must be < size() as observed by this thread (readers)
  /// or < the writer's own size (writer). Never invalidated by growth.
  T& operator[](uint64_t i) {
    const Loc loc = Locate(i);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }
  const T& operator[](uint64_t i) const {
    const Loc loc = Locate(i);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }

  // ------------------------------------------------------------ writer side

  /// Appends a default-constructed slot and returns it for initialization
  /// *before* Publish(). The new slot is invisible to readers (size is
  /// unchanged) until the writer calls Publish.
  T& PushBack() {
    const uint64_t i = writer_size_;
    const Loc loc = Locate(i);
    T* chunk = chunks_[loc.chunk].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kFirstChunkSlots << loc.chunk]();
      chunks_[loc.chunk].store(chunk, std::memory_order_release);
    }
    ++writer_size_;
    return chunk[loc.offset];
  }

  /// Publishes every slot appended so far: a reader that observes the new
  /// size also observes the slots' initialized contents.
  void Publish() { size_.store(writer_size_, std::memory_order_release); }

  /// Writer's uncommitted size (>= size() between PushBack and Publish).
  uint64_t writer_size() const { return writer_size_; }

  /// Rolls back unpublished PushBacks: `n` must be >= the published size.
  /// Chunks are kept (slots are reused by later PushBacks).
  void ShrinkTo(uint64_t n) { writer_size_ = n; }

  /// Chunk memory currently allocated, for ApproxHeapBytes accounting.
  uint64_t ApproxHeapBytes() const {
    uint64_t bytes = 0;
    for (uint32_t c = 0; c < kMaxChunks; ++c) {
      if (chunks_[c].load(std::memory_order_relaxed) != nullptr) {
        bytes += (kFirstChunkSlots << c) * sizeof(T);
      }
    }
    return bytes;
  }

 private:
  struct Loc {
    uint32_t chunk;
    uint64_t offset;
  };

  /// Chunk c covers [kFirstChunkSlots*(2^c - 1), kFirstChunkSlots*(2^(c+1)-1)).
  static Loc Locate(uint64_t i) {
    const uint64_t block = i / kFirstChunkSlots + 1;  // >= 1
    uint32_t chunk = 0;
    for (uint64_t b = block; b > 1; b >>= 1) ++chunk;
    const uint64_t chunk_first = kFirstChunkSlots * ((uint64_t{1} << chunk) - 1);
    return Loc{chunk, i - chunk_first};
  }

  std::atomic<T*> chunks_[kMaxChunks] = {};
  std::atomic<uint64_t> size_{0};
  uint64_t writer_size_ = 0;  // writer-private until Publish()
};

}  // namespace ltree

#endif  // LTREE_CORE_SLOT_TABLE_H_
