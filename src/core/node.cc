#include "core/node.h"

namespace ltree {

// Note: there is deliberately no free function that deletes core nodes —
// every Node is owned by its tree's NodeArena (core/node_arena.h), which
// recycles individual nodes and frees its chunks wholesale on destruction.

Node* LeftmostLeaf(Node* node) {
  while (node != nullptr && !node->IsLeaf()) {
    if (node->children.empty()) return nullptr;
    node = node->children.front();
  }
  return node;
}

Node* RightmostLeaf(Node* node) {
  while (node != nullptr && !node->IsLeaf()) {
    if (node->children.empty()) return nullptr;
    node = node->children.back();
  }
  return node;
}

Node* NextLeaf(Node* leaf) {
  Node* cur = leaf;
  // Climb until cur has a right sibling.
  while (cur->parent != nullptr &&
         cur->index_in_parent + 1 == cur->parent->children.size()) {
    cur = cur->parent;
  }
  if (cur->parent == nullptr) return nullptr;
  Node* sib = cur->parent->children[cur->index_in_parent + 1];
  return LeftmostLeaf(sib);
}

Node* PrevLeaf(Node* leaf) {
  Node* cur = leaf;
  while (cur->parent != nullptr && cur->index_in_parent == 0) {
    cur = cur->parent;
  }
  if (cur->parent == nullptr) return nullptr;
  Node* sib = cur->parent->children[cur->index_in_parent - 1];
  return RightmostLeaf(sib);
}

void CollectLeaves(Node* node, std::vector<Node*>* out) {
  if (node == nullptr) return;
  if (node->IsLeaf()) {
    out->push_back(node);
    return;
  }
  for (Node* child : node->children) CollectLeaves(child, out);
}

}  // namespace ltree
