// Chunked pool allocator for L-Tree nodes with free-list recycling.
//
// The paper's cost model (Section 3.1) counts node accesses, but wall time
// on the insert hot path is dominated by allocator traffic: every leaf and
// internal Node used to be a separate `new`, and every split (Section 2.3)
// freed the violator's whole internal skeleton only to immediately
// re-allocate it when building the s replacement subtrees. The arena makes
// both cheap:
//
//  * nodes are carved from fixed-size chunks, so a fresh allocation is a
//    bump of a chunk cursor (and chunk-local nodes are address-contiguous,
//    which the rebuild's depth-first construction turns into sequential
//    memory traffic);
//  * Release() pushes a node onto an intrusive free list (threaded through
//    Node::parent) and the next Allocate() pops it, so a rebuild's
//    re-allocation is served entirely by the skeleton it just released —
//    including each recycled internal node's `children` vector, whose heap
//    buffer is deliberately kept (clear() preserves capacity);
//  * nothing is returned to the system allocator until the arena dies, and
//    the arena frees its chunks wholesale, so tree teardown never walks the
//    structure.
//
// Counters (NodeArenaStats) separate fresh allocations (real heap growth)
// from free-list reuse, which is exactly the "allocations per insert"
// column of the perf-trajectory benches.
//
// Thread-compatibility: externally synchronized, like the LTree that owns
// it.

#ifndef LTREE_CORE_NODE_ARENA_H_
#define LTREE_CORE_NODE_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"

namespace ltree {

/// Allocator-traffic counters. Monotonic over the arena's lifetime;
/// consumers wanting per-window numbers (LTree::ResetStats) snapshot and
/// subtract.
struct NodeArenaStats {
  uint64_t fresh_allocs = 0;   ///< nodes carved from a chunk (heap growth)
  uint64_t reused_allocs = 0;  ///< nodes served from the free list
  uint64_t releases = 0;       ///< nodes returned for recycling
  uint64_t chunks = 0;         ///< chunks allocated so far

  /// Every allocation request ever served (== the `new` count the
  /// pre-arena code would have issued).
  uint64_t TotalAllocs() const { return fresh_allocs + reused_allocs; }

  /// Nodes currently handed out (allocated and not yet released).
  uint64_t live() const { return TotalAllocs() - releases; }

  std::string ToString() const;
};

class NodeArena {
 public:
  /// Nodes per chunk. 256 nodes ≈ 20 KB of Node headers per chunk: big
  /// enough that chunk allocation is off the hot path, small enough that a
  /// tiny tree doesn't pin megabytes.
  static constexpr size_t kChunkNodes = 256;

  NodeArena() = default;
  ~NodeArena() = default;  // chunks own every node, free list included
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Returns a node in the default-constructed (fresh leaf) state, either
  /// recycled from the free list or carved from a chunk.
  Node* Allocate();

  /// Returns `n` to the free list. The node must have been obtained from
  /// this arena and must no longer be reachable from any tree structure;
  /// its children vector keeps its capacity for the next reuse.
  void Release(Node* n);

  const NodeArenaStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<Node[]>> chunks_;
  size_t used_in_last_chunk_ = kChunkNodes;  // "full" => first Allocate
                                             // opens a chunk
  Node* free_head_ = nullptr;  // intrusive list threaded through ->parent
  NodeArenaStats stats_;
};

}  // namespace ltree

#endif  // LTREE_CORE_NODE_ARENA_H_
