// Chunked pool allocator for materialized L-Tree nodes.
//
// The paper's cost model (Section 3.1) counts node accesses, but wall time
// on the insert hot path is dominated by allocator traffic: every leaf and
// internal Node used to be a separate `new`, and every split (Section 2.3)
// freed the violator's whole internal skeleton only to immediately
// re-allocate it when building the s replacement subtrees. This is the
// L-Tree instantiation of the generic chunked pool (core/pool_arena.h);
// the free list threads through Node::parent, which is meaningless for an
// unreachable node, so recycling costs no extra space.

#ifndef LTREE_CORE_NODE_ARENA_H_
#define LTREE_CORE_NODE_ARENA_H_

#include "core/node.h"
#include "core/pool_arena.h"

namespace ltree {

/// Allocator-traffic counters (see PoolArenaStats).
using NodeArenaStats = PoolArenaStats;

struct LTreeNodeArenaTraits {
  static void SetFreeNext(Node* n, Node* next) { n->parent = next; }
  static Node* GetFreeNext(Node* n) { return n->parent; }
  static void Recycle(Node* n) {
    n->children.clear();  // keeps the heap buffer for the next reuse
    n->num = 0;
    n->leaf_count = 1;
    n->height = 0;
    n->index_in_parent = 0;
    n->cookie = 0;
    n->deleted = false;
  }
};

using NodeArena = PoolArena<Node, LTreeNodeArenaTraits>;

}  // namespace ltree

#endif  // LTREE_CORE_NODE_ARENA_H_
