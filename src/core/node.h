// Internal node representation of the materialized L-Tree.
//
// Exposed in a header (rather than hidden in ltree.cc) so that the invariant
// checker, the test suite and the debug dumper can walk the raw structure;
// library users should treat LeafHandle as opaque.

#ifndef LTREE_CORE_NODE_H_
#define LTREE_CORE_NODE_H_

#include <cstdint>
#include <vector>

#include "core/atomic_cell.h"
#include "core/params.h"

namespace ltree {

/// One L-Tree node. Leaves have height 0, no children, and carry the client
/// cookie; internal nodes aggregate `leaf_count` (the paper's l(t), counting
/// tombstoned leaves too, since a tombstone still occupies a label slot).
///
/// `num` and `cookie` are AtomicCells: the concurrent LabelStore mode lets
/// reader threads load a leaf's label/cookie through a held LeafHandle while
/// the serialized writer relabels (release stores, acquire loads — see
/// core/atomic_cell.h). All other fields are structural and only touched
/// under the writer's exclusive section; readers never walk them.
struct Node {
  Node* parent = nullptr;
  std::vector<Node*> children;  ///< empty iff leaf

  /// The paper's num(t): smallest label of the node's interval.
  AtomicCell<Label> num = 0;
  /// l(t): number of leaf slots in this subtree (1 for a leaf).
  uint64_t leaf_count = 1;
  /// h(t): edges to the leaf level; 0 for leaves.
  uint32_t height = 0;
  /// Position within parent->children; maintained on every mutation.
  uint32_t index_in_parent = 0;

  /// Client payload (leaves only).
  AtomicCell<LeafCookie> cookie = 0;
  /// Tombstone flag (leaves only). Section 2.3: deletions only mark.
  bool deleted = false;

  bool IsLeaf() const { return height == 0; }
};

/// First (leftmost) leaf under `node`, or nullptr for a childless subtree.
Node* LeftmostLeaf(Node* node);

/// Last (rightmost) leaf under `node`, or nullptr.
Node* RightmostLeaf(Node* node);

/// In-order successor leaf (including tombstoned leaves), or nullptr.
Node* NextLeaf(Node* leaf);

/// In-order predecessor leaf, or nullptr.
Node* PrevLeaf(Node* leaf);

/// Appends all leaves under `node` to `out` in document order.
void CollectLeaves(Node* node, std::vector<Node*>* out);

}  // namespace ltree

#endif  // LTREE_CORE_NODE_H_
