// Plan phase of the batch-mutation pipeline (Section 4.1).
//
// Every splice into the L-Tree now runs plan -> apply. The plan walks the
// anchor's ancestor chain once, projects the post-insert (and, with purging
// enabled, post-purge) leaf counts, and coalesces the entire escalation
// chain into a single rebuild region before any node is touched. The apply
// phase then splices the fresh leaves, rebuilds the coalesced region
// exactly once and relabels it in one pass — instead of rebuilding level by
// level and discovering each fanout overflow only after paying for the
// rebuild below it.
//
// The virtual L-Tree (Section 4.2) mirrors this plan decision-for-decision
// over the counted B+-tree so identical operation streams keep producing
// bit-identical labels; see the plan phase of
// VirtualLTree::RebuildWithPending.

#ifndef LTREE_CORE_BATCH_PLAN_H_
#define LTREE_CORE_BATCH_PLAN_H_

#include <cstdint>

namespace ltree {

struct Node;

/// Outcome of LTree's planning phase for one (possibly single-leaf) batch
/// splice. Pointers are valid until the next mutation of the tree.
struct BatchPlan {
  /// Where the fresh leaves go: children [insert_index, insert_index + k)
  /// of `parent`, a height-1 node.
  Node* parent = nullptr;
  uint32_t insert_index = 0;
  uint64_t batch_size = 0;

  /// Some subtree exceeds its leaf budget after the splice.
  bool needs_rebuild = false;
  /// The coalesced region is the whole tree (rebuild grows the height).
  bool rebuild_root = false;
  /// Subtree rebuilt and relabeled in one pass (when !rebuild_root): the
  /// highest budget violator, escalated while replacing it by
  /// `region_pieces` subtrees would overflow its parent's fanout.
  Node* region = nullptr;
  /// Projected leaf count of the region after the splice and (if enabled)
  /// the tombstone purge.
  uint64_t region_leaves = 0;
  /// Number of complete (f/s)-ary pieces the region is rebuilt into.
  uint64_t region_pieces = 0;
  /// Escalation levels folded into the region (0 = the violator itself).
  uint32_t levels_coalesced = 0;
};

}  // namespace ltree

#endif  // LTREE_CORE_BATCH_PLAN_H_
