// Named failpoints: deterministic server-side fault injection.
//
// A failpoint is a named hook compiled into a production code path. Tests
// arm it with an error Status (optionally for a bounded number of hits);
// the hosting path consults it via LTREE_FAILPOINT(name) and propagates
// the injected error exactly as if the operation had failed for real —
// so recovery code (the replication layer's retry/backoff, the chaos
// suite's convergence proofs) can be exercised against faults that are
// impossible to trigger organically, on every toolchain, without
// recompiling.
//
// Disarmed cost is one relaxed atomic load of a global counter — no lock,
// no lookup — so the hooks stay in release builds. The registry itself is
// mutex-protected and safe to arm/disarm from any thread.
//
// Failpoints compiled into the store layer (see document_store.cc):
//   * "store.insert"  — consulted before any single/batch insert mutates;
//   * "store.erase"   — consulted before EraseAt/DropDocument unlink;
//   * "store.catchup" — consulted at the top of DocumentStore::CatchUp;
// and into the replication layer (see transport.cc):
//   * "replica.serve" — consulted before PrimaryEndpoint decodes a request.

#ifndef LTREE_CORE_FAILPOINT_H_
#define LTREE_CORE_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ltree {
namespace failpoint {

/// Arms `name`: the next `times` Check(name) calls return `status` (then
/// the failpoint disarms itself); times < 0 means "until Disarm". Re-arming
/// an armed failpoint replaces its status and budget. `status` must be
/// non-OK.
void Arm(const std::string& name, Status status, int64_t times = -1);

/// Disarms `name`. Returns false if it was not armed.
bool Disarm(const std::string& name);

/// Disarms every failpoint (test teardown).
void DisarmAll();

/// The injected Status if `name` is armed (consuming one hit of a bounded
/// budget), OK otherwise. This is the call sites' fast path: with no
/// failpoint armed anywhere it is a single atomic load.
Status Check(const char* name);

/// Times `name` has fired (returned its injected status) since process
/// start. Survives Disarm, so tests can assert a bounded arm was consumed.
uint64_t Hits(const std::string& name);

/// Arms in the constructor, disarms in the destructor — keeps negative
/// tests exception-safe and ASSERT-safe.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Status status, int64_t times = -1)
      : name_(std::move(name)) {
    Arm(name_, std::move(status), times);
  }
  ~ScopedFailpoint() { Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace ltree

/// Propagates the injected Status out of the enclosing function when the
/// named failpoint is armed; no-op (one atomic load) otherwise.
#define LTREE_FAILPOINT(name)                                  \
  do {                                                         \
    ::ltree::Status _fp = ::ltree::failpoint::Check(name);     \
    if (!_fp.ok()) return _fp;                                 \
  } while (false)

#endif  // LTREE_CORE_FAILPOINT_H_
