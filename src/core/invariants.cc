// CheckInvariants and DebugString for LTree.
//
// The deep validation walk lives in core/validate.cc (audit::AuditLTree),
// shared with the unified invariant auditor; this file keeps the legacy
// Status-returning wrapper and the structural dumper.
//
// The checker validates Proposition 2 of the paper plus the label-identity
// invariant that the virtual L-Tree (Section 4.2) relies on:
//   num(w) = num(parent(w)) + index(w) * (f+1)^{h(w)}.

#include <sstream>

#include "core/ltree.h"
#include "core/validate.h"

namespace ltree {

namespace {

void DumpNode(const Node* node, int depth, bool show_internal,
              std::ostringstream* os) {
  if (node->IsLeaf()) {
    for (int i = 0; i < depth; ++i) *os << "  ";
    *os << "leaf num=" << node->num << " cookie=" << node->cookie;
    if (node->deleted) *os << " [deleted]";
    *os << "\n";
    return;
  }
  if (show_internal) {
    for (int i = 0; i < depth; ++i) *os << "  ";
    *os << "node h=" << node->height << " num=" << node->num
        << " l=" << node->leaf_count << " c=" << node->children.size()
        << "\n";
  }
  for (const Node* child : node->children) {
    DumpNode(child, depth + 1, show_internal, os);
  }
}

}  // namespace

Status LTree::CheckInvariants() const {
  audit::Report report;
  audit::AuditLTree(*this, &report);
  return report.ToStatus();
}

std::string LTree::DebugString(bool show_internal) const {
  std::ostringstream os;
  os << params_.ToString() << " height=" << root_->height
     << " slots=" << root_->leaf_count << " live=" << live_leaves_
     << " label_space=" << label_space() << "\n";
  if (root_->leaf_count > 0) DumpNode(root_, 0, show_internal, &os);
  return os.str();
}

}  // namespace ltree
