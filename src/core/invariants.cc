// CheckInvariants and DebugString for LTree.
//
// The checker validates Proposition 2 of the paper plus the label-identity
// invariant that the virtual L-Tree (Section 4.2) relies on:
//   num(w) = num(parent(w)) + index(w) * (f+1)^{h(w)}.

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/ltree.h"

namespace ltree {

namespace {

struct CheckContext {
  const Params* params;
  const PowerTable* powers;
  uint32_t tree_height;
  uint64_t leaf_slots = 0;
  uint64_t live = 0;
  Label prev_label = 0;
  bool saw_leaf = false;
};

Status CheckNode(const Node* node, const Node* expected_parent,
                 uint32_t expected_index, Label expected_num,
                 CheckContext* ctx) {
  if (node->parent != expected_parent) {
    return Status::Corruption("parent pointer mismatch");
  }
  if (node->index_in_parent != expected_index) {
    return Status::Corruption(
        StrFormat("index_in_parent mismatch: have %u want %u",
                  node->index_in_parent, expected_index));
  }
  if (node->num != expected_num) {
    return Status::Corruption(StrFormat(
        "num mismatch at height %u: have %llu want %llu", node->height,
        static_cast<unsigned long long>(node->num),
        static_cast<unsigned long long>(expected_num)));
  }
  if (node->IsLeaf()) {
    if (!node->children.empty()) {
      return Status::Corruption("leaf with children");
    }
    if (node->leaf_count != 1) {
      return Status::Corruption("leaf with leaf_count != 1");
    }
    // Proposition 1: labels strictly increase in document order.
    if (ctx->saw_leaf && node->num <= ctx->prev_label) {
      return Status::Corruption(StrFormat(
          "labels not strictly increasing: %llu after %llu",
          static_cast<unsigned long long>(node->num),
          static_cast<unsigned long long>(ctx->prev_label)));
    }
    ctx->prev_label = node->num;
    ctx->saw_leaf = true;
    ++ctx->leaf_slots;
    if (!node->deleted) ++ctx->live;
    return Status::OK();
  }

  // Internal node checks.
  if (node->children.empty()) {
    return Status::Corruption("internal node with no children");
  }
  // Fanout: at most f+1 children fit the (f+1)-ary label space. (f for
  // steady state; f+1 transiently, see DESIGN.md.)
  if (node->children.size() > static_cast<size_t>(ctx->params->f) + 1) {
    return Status::Corruption(StrFormat(
        "fanout %zu exceeds f+1=%u at height %u", node->children.size(),
        ctx->params->f + 1, node->height));
  }
  // Proposition 2(1) upper bound: l(t) < lmax(t) after every operation
  // (nodes reaching the budget are split immediately).
  if (node->leaf_count >= ctx->powers->LeafBudget(node->height)) {
    return Status::Corruption(StrFormat(
        "leaf_count %llu at height %u reaches budget %llu",
        static_cast<unsigned long long>(node->leaf_count), node->height,
        static_cast<unsigned long long>(
            ctx->powers->LeafBudget(node->height))));
  }
  uint64_t child_leaves = 0;
  for (uint32_t i = 0; i < node->children.size(); ++i) {
    const Node* child = node->children[i];
    if (child->height + 1 != node->height) {
      return Status::Corruption(StrFormat(
          "height mismatch: child %u under height-%u node", child->height,
          node->height));
    }
    const Label child_num =
        node->num +
        static_cast<uint64_t>(i) * ctx->powers->PowF1(child->height);
    LTREE_RETURN_IF_ERROR(CheckNode(child, node, i, child_num, ctx));
    child_leaves += child->leaf_count;
  }
  if (child_leaves != node->leaf_count) {
    return Status::Corruption(StrFormat(
        "leaf_count %llu != sum of children %llu at height %u",
        static_cast<unsigned long long>(node->leaf_count),
        static_cast<unsigned long long>(child_leaves), node->height));
  }
  return Status::OK();
}

void DumpNode(const Node* node, int depth, bool show_internal,
              std::ostringstream* os) {
  if (node->IsLeaf()) {
    for (int i = 0; i < depth; ++i) *os << "  ";
    *os << "leaf num=" << node->num << " cookie=" << node->cookie;
    if (node->deleted) *os << " [deleted]";
    *os << "\n";
    return;
  }
  if (show_internal) {
    for (int i = 0; i < depth; ++i) *os << "  ";
    *os << "node h=" << node->height << " num=" << node->num
        << " l=" << node->leaf_count << " c=" << node->children.size()
        << "\n";
  }
  for (const Node* child : node->children) {
    DumpNode(child, depth + 1, show_internal, os);
  }
}

}  // namespace

Status LTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::Corruption("null root");
  if (root_->IsLeaf()) return Status::Corruption("root must be internal");
  if (root_->leaf_count == 0) {
    if (!root_->children.empty()) {
      return Status::Corruption("empty tree with children");
    }
    return Status::OK();
  }
  CheckContext ctx;
  ctx.params = &params_;
  ctx.powers = &powers_;
  ctx.tree_height = root_->height;
  LTREE_RETURN_IF_ERROR(CheckNode(root_, nullptr, 0, 0, &ctx));
  if (ctx.leaf_slots != root_->leaf_count) {
    return Status::Corruption("root leaf_count mismatch");
  }
  if (ctx.live != live_leaves_) {
    return Status::Corruption(
        StrFormat("live leaf counter %llu != actual %llu",
                  static_cast<unsigned long long>(live_leaves_),
                  static_cast<unsigned long long>(ctx.live)));
  }
  return Status::OK();
}

std::string LTree::DebugString(bool show_internal) const {
  std::ostringstream os;
  os << params_.ToString() << " height=" << root_->height
     << " slots=" << root_->leaf_count << " live=" << live_leaves_
     << " label_space=" << label_space() << "\n";
  if (root_->leaf_count > 0) DumpNode(root_, 0, show_internal, &os);
  return os.str();
}

}  // namespace ltree
