// Materialized L-Tree (the paper's primary contribution).
//
// An L-Tree is an ordered, balanced tree whose n leaves correspond, in
// document order, to the begin/end tags of an XML document (Section 2). Each
// leaf's label is the paper's num(leaf); labels are order-preserving
// (Proposition 1) and are maintained under insertions with O(log n)
// amortized node accesses and O(log n) bits per label (Section 3.1).
//
// Supported operations:
//  * BulkLoad          — Section 2.2: complete (f/s)-ary initial build.
//  * InsertAfter/Before — Section 2.3, Algorithm 1: single-leaf insertion;
//    splits the highest ancestor whose subtree exceeds its leaf budget
//    lmax(t) = s*(f/s)^{h(t)} into s complete (f/s)-ary subtrees.
//  * InsertBatchAfter  — Section 4.1: multi-leaf (subtree) insertion with a
//    single rebalance, lowering amortized cost roughly logarithmically in
//    the batch size.
//  * MarkDeleted       — Section 2.3: deletions are tombstones, no relabeling
//    (optional purge-on-split extension via Params).
//
// Thread-compatibility: externally synchronized (like an STL container).

#ifndef LTREE_CORE_LTREE_H_
#define LTREE_CORE_LTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/batch_plan.h"
#include "core/epoch.h"
#include "core/ltree_stats.h"
#include "core/node.h"
#include "core/node_arena.h"
#include "core/params.h"
#include "core/relabel_listener.h"

namespace ltree {

class LTree {
 public:
  /// Opaque, stable reference to a leaf. Handles survive splits and
  /// relabelings; they are invalidated only by tombstone purging (if enabled)
  /// and by destroying the tree.
  using LeafHandle = Node*;

  /// Creates an empty L-Tree. Fails if params are invalid.
  static Result<std::unique_ptr<LTree>> Create(const Params& params);

  ~LTree();
  LTree(const LTree&) = delete;
  LTree& operator=(const LTree&) = delete;

  // ---------------------------------------------------------------- loading

  /// Builds the initial complete (f/s)-ary tree over `cookies` (Section 2.2).
  /// Only valid on an empty tree. If `handles` is non-null it receives one
  /// handle per cookie, in order. Bulk loading does not count toward the
  /// incremental-maintenance statistics.
  Status BulkLoad(std::span<const LeafCookie> cookies,
                  std::vector<LeafHandle>* handles = nullptr);

  // ---------------------------------------------------------------- updates

  /// Inserts a new leaf immediately after `pos` (Algorithm 1).
  Result<LeafHandle> InsertAfter(LeafHandle pos, LeafCookie cookie);

  /// Inserts a new leaf immediately before `pos`.
  Result<LeafHandle> InsertBefore(LeafHandle pos, LeafCookie cookie);

  /// Appends a leaf after the current last leaf (works on an empty tree).
  Result<LeafHandle> PushBack(LeafCookie cookie);

  /// Prepends a leaf before the current first leaf (works on an empty tree).
  Result<LeafHandle> PushFront(LeafCookie cookie);

  /// Inserts `cookies.size()` consecutive leaves after `pos` with a single
  /// rebalance (Section 4.1). Appends the new handles to `handles` if
  /// non-null.
  Status InsertBatchAfter(LeafHandle pos, std::span<const LeafCookie> cookies,
                          std::vector<LeafHandle>* handles = nullptr);

  /// Inserts consecutive leaves before `pos` (batch form of InsertBefore).
  Status InsertBatchBefore(LeafHandle pos, std::span<const LeafCookie> cookies,
                           std::vector<LeafHandle>* handles = nullptr);

  /// Appends a batch at the end (works on an empty tree).
  Status PushBackBatch(std::span<const LeafCookie> cookies,
                       std::vector<LeafHandle>* handles = nullptr);

  /// Planning phase of the batch pipeline, exposed for tests and benches:
  /// projects the effect of splicing `k` leaves after/before `pos` without
  /// mutating the tree — the highest budget violator with the whole
  /// escalation chain coalesced into one rebuild region. Fails with
  /// CapacityExceeded exactly when the insert itself would. The plan is
  /// invalidated by any mutation.
  Result<BatchPlan> PlanBatchAfter(LeafHandle pos, uint64_t k) const;
  Result<BatchPlan> PlanBatchBefore(LeafHandle pos, uint64_t k) const;

  /// Tombstones a leaf (Section 2.3): the label slot stays occupied, no
  /// relabeling happens. Fails with FailedPrecondition if already deleted.
  Status MarkDeleted(LeafHandle leaf);

  // ---------------------------------------------------------------- queries

  /// The leaf's current label. O(1); Proposition 1: document order of two
  /// tags is exactly the numeric order of their labels.
  Label label(LeafHandle leaf) const { return leaf->num; }

  LeafCookie cookie(LeafHandle leaf) const { return leaf->cookie; }
  bool deleted(LeafHandle leaf) const { return leaf->deleted; }

  /// Resolves a label to the leaf holding it via the num(w) identity of
  /// Proposition 2 — an arithmetic descent: at each level the child index
  /// is (label - num(t)) / (f+1)^(h(t)-1), one subtraction and one divide,
  /// with no per-node key comparisons (the L-Tree counterpart of the
  /// B+-tree's in-node search). Returns nullptr if no leaf currently owns
  /// that exact label; tombstoned leaves still own their slot and are
  /// returned. O(height).
  LeafHandle FindLeafByLabel(Label label) const;

  /// Leftmost leaf (including tombstones), or nullptr if empty.
  LeafHandle FirstLeaf() const;
  /// Successor in label order (including tombstones), or nullptr.
  LeafHandle NextLeaf(LeafHandle leaf) const;
  /// First non-deleted leaf, or nullptr.
  LeafHandle FirstLiveLeaf() const;
  /// Next non-deleted leaf, or nullptr.
  LeafHandle NextLiveLeaf(LeafHandle leaf) const;

  /// Number of leaf slots (live + tombstoned).
  uint64_t num_slots() const;
  /// Number of live (non-deleted) leaves.
  uint64_t num_live_leaves() const { return live_leaves_; }

  /// Current height H of the tree (>= 1).
  uint32_t height() const;

  /// Size of the current label space, (f+1)^H. All labels are < this.
  uint64_t label_space() const;

  /// Bits needed to encode any label the current tree can produce.
  uint32_t label_bits() const;

  /// Largest label currently assigned (0 if empty).
  Label max_label() const;

  const Params& params() const { return params_; }
  const PowerTable& powers() const { return powers_; }

  /// Operation counters since the last ResetStats(). The allocator-traffic
  /// fields (nodes_allocated/reused/released) are refreshed from the arena
  /// on every call, windowed the same way as the node-access counters.
  const LTreeStats& stats() const;

  /// Restarts the stats window (node accesses and allocator traffic).
  void ResetStats();

  /// Lifetime arena counters (monotonic; never reset). arena_stats().live()
  /// equals the number of nodes currently reachable from the root, which
  /// the conservation tests assert.
  const NodeArenaStats& arena_stats() const { return arena_.stats(); }

  /// Measured heap footprint: arena chunks (sizeof(Node) per slot, live or
  /// free) plus every reachable node's children buffer — the materialized
  /// side of the Section 4.2 space bench, mirroring
  /// CountedBTree::ApproxHeapBytes so the comparison shares one policy.
  uint64_t ApproxHeapBytes() const;

  /// Receives label-change notifications; may be nullptr.
  void set_listener(RelabelListener* listener) { listener_ = listener; }

  /// Attaches an epoch manager for concurrent readers: tombstone-purged
  /// leaves are retired through it instead of released straight to the
  /// arena, so a reader loading `label(handle)` under a ReadGuard never
  /// observes a recycled node. Internal skeleton nodes are still released
  /// immediately — readers hold only leaf handles, never internal pointers.
  /// The manager must outlive the tree, and the owner must drain it
  /// (ReclaimAllUnsafe) before the tree's arena dies.
  void set_epoch(epoch::EpochManager* epoch) { epoch_ = epoch; }
  epoch::EpochManager* epoch() const { return epoch_; }

  /// Labels of live leaves, in document order.
  std::vector<Label> LiveLabels() const;
  /// Labels of all leaf slots (including tombstones), in document order.
  std::vector<Label> AllLabels() const;

  /// Root node, exposed for the invariant checker / tests / debug dumper.
  const Node* root() const { return root_; }

  /// Verifies the structural invariants of Proposition 2 plus label
  /// consistency:
  ///  * all leaves at the same depth; height bookkeeping consistent;
  ///  * leaf_count(t) equals the actual number of leaf slots and is strictly
  ///    below the budget lmax(t) = s*(f/s)^{h(t)};
  ///  * fanout within [1, f+1];
  ///  * num(w) = num(parent) + index(w) * (f+1)^{h(w)} for every node, hence
  ///    labels strictly increase in document order (Proposition 1).
  Status CheckInvariants() const;

  /// Multi-line structural dump (for examples and debugging).
  std::string DebugString(bool show_internal = true) const;

 private:
  explicit LTree(const Params& params, PowerTable powers);

  /// Plan + apply: inserts `cookies` as children of `parent` (height-1
  /// node) starting at child index `idx`.
  Status InsertAt(Node* parent, uint32_t idx,
                  std::span<const LeafCookie> cookies,
                  std::vector<LeafHandle>* handles, bool is_batch);

  /// Planning phase (Algorithm 1 walk + escalation coalescing); mutates
  /// nothing. `idx` is unused by the decision but recorded in the plan.
  /// Out-param form so the per-insert hot path pays no Result packaging.
  Status PlanInsertAt(Node* parent, uint32_t idx, uint64_t k,
                      BatchPlan* plan) const;

  /// Apply phase: splices the fresh leaves per `plan`, then rebuilds and
  /// relabels the planned region exactly once.
  Status ApplyPlan(const BatchPlan& plan, std::span<const LeafCookie> cookies,
                   std::vector<LeafHandle>* handles, bool is_batch);

  /// Fails with CapacityExceeded if adding `k` leaves could require a root
  /// rebuild beyond the 64-bit label space.
  Status EnsureCapacityFor(uint64_t k) const;

  /// Rebuilds plan.region into plan.region_pieces complete (f/s)-ary
  /// subtrees and relabels the parent suffix in a single pass (Section 2.3;
  /// the coalesced form of the paper's split).
  void RebuildRegion(const BatchPlan& plan);

  /// Rebuilds the root, growing the height (root split of Algorithm 1).
  void RebuildRoot();

  /// Builds a (f/s)-ary tree of exactly `height` over `leaves` (reusing the
  /// leaf nodes). leaves.size() must be in [1, d^height].
  Node* BuildOverLeaves(std::span<Node*> leaves, uint32_t height);

  /// Splits `leaves` into `pieces` even segments and builds one subtree of
  /// height `piece_height` per segment, written into `*out` (cleared
  /// first; rebuilds pass the reusable piece_scratch_).
  void BuildPieces(std::span<Node*> leaves, uint64_t pieces,
                   uint32_t piece_height, std::vector<Node*>* out);

  /// Paper's Relabel(t, num, from): assigns num(t) and recursively relabels
  /// children starting at `from_child`.
  void Relabel(Node* t, Label num, uint32_t from_child, bool count_stats);

  /// Compacts tombstoned leaves out of `leaves` in place (if purging is
  /// enabled), releasing the nodes to the arena and reporting how many were
  /// dropped. Always keeps at least one leaf so subtrees never become empty.
  uint64_t MaybePurge(std::vector<Node*>* leaves);

  /// Releases the internal nodes of the subtree rooted at `n` to the arena,
  /// leaving leaf nodes alive (they are reused by rebuilds).
  void ReleaseInternalNodes(Node* n);

  /// Frees a purged leaf: epoch-retired when a manager is attached (readers
  /// may still hold the handle), released to the arena otherwise.
  void RetireLeaf(Node* leaf);

  static void FixIndicesFrom(Node* parent, uint32_t from);

  Params params_;
  PowerTable powers_;
  NodeArena arena_;  ///< owns every node; must outlive root_
  Node* root_ = nullptr;
  uint64_t live_leaves_ = 0;
  mutable LTreeStats stats_;      // mutable: stats() refreshes arena fields
  NodeArenaStats arena_base_;     ///< arena snapshot at last ResetStats()
  RelabelListener* listener_ = nullptr;
  epoch::EpochManager* epoch_ = nullptr;  ///< not owned; may be nullptr

  // Scratch buffers reused across rebuilds so RebuildAt/RebuildRoot (and
  // the escalation loop) stop re-allocating their leaf and piece vectors on
  // every split. Only valid within one rebuild step at a time.
  std::vector<Node*> leaf_scratch_;
  std::vector<Node*> piece_scratch_;
  std::vector<Node*> fresh_scratch_;  ///< InsertAt's new-leaf buffer
};

}  // namespace ltree

#endif  // LTREE_CORE_LTREE_H_
