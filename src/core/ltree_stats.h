// Operation counters matching the paper's cost accounting (Section 3.1):
// the cost of an insertion = ancestor count updates (height of the tree)
// plus the number of nodes visited while relabeling.

#ifndef LTREE_CORE_LTREE_STATS_H_
#define LTREE_CORE_LTREE_STATS_H_

#include <cstdint>
#include <string>

namespace ltree {

struct LTreeStats {
  // ---- operations ----
  uint64_t inserts = 0;        ///< single-leaf insertions
  uint64_t batch_inserts = 0;  ///< InsertBatchAfter calls
  uint64_t batch_leaves = 0;   ///< leaves inserted via batches
  uint64_t deletes = 0;        ///< MarkDeleted calls
  uint64_t bulk_loads = 0;

  // ---- structural events ----
  uint64_t splits = 0;            ///< non-root region rebuilds (one per
                                  ///< coalesced region, not per level)
  uint64_t root_splits = 0;       ///< height-increasing rebuilds
  uint64_t escalations = 0;       ///< fanout-overflow levels folded into a
                                  ///< region by the planner (batch only)
  uint64_t tombstones_purged = 0;

  // ---- plan/apply pipeline ----
  /// Relabel passes run by the mutation path: exactly one per operation —
  /// the no-split sibling relabel, or the single pass over the coalesced
  /// rebuilt region (bulk loads don't count).
  uint64_t relabel_passes = 0;
  /// Rebuilt regions that absorbed at least one escalation level, i.e.
  /// regions the planner coalesced beyond the original budget violator.
  uint64_t coalesced_regions = 0;

  // ---- allocator traffic (NodeArena; not part of the paper's cost) ----
  /// Fresh arena allocations (real heap growth) since the last reset.
  uint64_t nodes_allocated = 0;
  /// Allocations served by free-list recycling since the last reset.
  uint64_t nodes_reused = 0;
  /// Nodes returned to the arena (rebuild skeletons, purged tombstones).
  uint64_t nodes_released = 0;

  // ---- the paper's cost metric ----
  /// Ancestor leaf_count updates (the `h` term of the cost formula).
  uint64_t ancestor_updates = 0;
  /// Nodes visited by Relabel() (the `f` + split-relabel terms).
  uint64_t nodes_relabeled = 0;
  /// Leaves whose label actually changed (excludes the freshly inserted ones).
  uint64_t leaves_relabeled = 0;

  /// Total node accesses charged by the paper's accounting.
  uint64_t NodeAccesses() const { return ancestor_updates + nodes_relabeled; }

  /// NodeAccesses() / single-leaf-equivalent insert count.
  double AmortizedCostPerInsert() const {
    uint64_t n = inserts + batch_leaves;
    return n == 0 ? 0.0
                  : static_cast<double>(NodeAccesses()) / static_cast<double>(n);
  }

  std::string ToString() const;
};

}  // namespace ltree

#endif  // LTREE_CORE_LTREE_STATS_H_
