// Relabel notification hook, shared by every labeling scheme.
//
// Lives apart from the L-Tree headers so that layers which only need the
// callback (the LabelStore interface, the docstore) can depend on it
// without pulling in the materialized tree's internal Node type.

#ifndef LTREE_CORE_RELABEL_LISTENER_H_
#define LTREE_CORE_RELABEL_LISTENER_H_

#include "core/params.h"

namespace ltree {

/// Sentinel for "label not yet assigned".
inline constexpr Label kInvalidLabel = ~Label{0};

/// Callback fired for every existing leaf whose label changes during
/// relabeling, so external indexes (e.g. the label column of a node table)
/// can be kept in sync. Bulk loading assigns initial labels and does not
/// fire the listener; incremental maintenance does.
class RelabelListener {
 public:
  virtual ~RelabelListener() = default;
  virtual void OnRelabel(LeafCookie cookie, Label old_label,
                         Label new_label) = 0;
};

}  // namespace ltree

#endif  // LTREE_CORE_RELABEL_LISTENER_H_
