// Label-change notification hook, shared by every labeling scheme.
//
// Lives apart from the L-Tree headers so that layers which only need the
// callback (the LabelStore interface, the docstore, the sharded store's
// change-feed taps) can depend on it without pulling in the materialized
// tree's internal Node type.

#ifndef LTREE_CORE_RELABEL_LISTENER_H_
#define LTREE_CORE_RELABEL_LISTENER_H_

#include "core/params.h"

namespace ltree {

/// Sentinel for "label not yet assigned".
inline constexpr Label kInvalidLabel = ~Label{0};

/// Callbacks fired by a labeling scheme as its label state evolves, so
/// external indexes (the label column of a node table, a replication
/// change-feed) can be kept in sync. Bulk loading assigns initial labels
/// and does not fire the listener; incremental maintenance does.
class RelabelListener {
 public:
  virtual ~RelabelListener() = default;

  /// An existing item's label changed during relabeling. Never fired for
  /// the item an insertion is currently adding (the caller knows its label
  /// from the returned handle). Tombstoning schemes may fire this for
  /// already erased items whose slots a rebuild shuffles — consumers that
  /// only track live state must filter on their own liveness records.
  virtual void OnRelabel(LeafCookie cookie, Label old_label,
                         Label new_label) = 0;

  /// An item left the order through LabelStore::Erase, with the label it
  /// held at that moment. Default no-op so relabel-only consumers (the
  /// docstore's node table) are unaffected; outward-facing consumers (the
  /// sharded store's per-shard change-feeds) override it to version erase
  /// events alongside relabels.
  virtual void OnErase(LeafCookie cookie, Label last_label) {
    (void)cookie;
    (void)last_label;
  }
};

}  // namespace ltree

#endif  // LTREE_CORE_RELABEL_LISTENER_H_
