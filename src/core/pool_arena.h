// Generic chunked pool allocator with intrusive free-list recycling.
//
// PR 3 introduced this design for the materialized L-Tree's nodes
// (core/NodeArena); the counted B+-tree behind the virtual L-Tree pays the
// same allocator tax on its hot paths (splits, merges, root collapse,
// BulkBuild on every virtual root split), so the mechanism is generalized
// here into a template both trees instantiate:
//
//  * nodes are carved from fixed-size chunks, so a fresh allocation is a
//    bump of a chunk cursor (and chunk-local nodes are address-contiguous,
//    which depth-first construction turns into sequential memory traffic);
//  * Release() pushes a node onto an intrusive free list (threaded through
//    a node field chosen by the Traits) and the next Allocate() pops it, so
//    a rebuild's re-allocation is served by the skeleton it just released —
//    including any recycled vectors, whose heap buffers the Traits'
//    Recycle() deliberately keeps (clear() preserves capacity);
//  * nothing is returned to the system allocator until the arena dies, and
//    the arena frees its chunks wholesale (each node's own destructor frees
//    its vector buffers), so tree teardown never walks the structure.
//
// Traits contract (all static):
//   void   Traits::SetFreeNext(NodeT* n, NodeT* next);  // store link in n
//   NodeT* Traits::GetFreeNext(NodeT* n);               // read link back
//   void   Traits::Recycle(NodeT* n);  // reset n to the default-constructed
//                                      // state, keeping vector capacities
//
// Counters (PoolArenaStats) separate fresh allocations (real heap growth)
// from free-list reuse, which is exactly the "allocations per insert"
// column of the perf-trajectory benches.
//
// Thread-compatibility: externally synchronized, like the tree that owns
// the arena.

#ifndef LTREE_CORE_POOL_ARENA_H_
#define LTREE_CORE_POOL_ARENA_H_

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

namespace ltree {

/// Allocator-traffic counters. Monotonic over the arena's lifetime;
/// consumers wanting per-window numbers (LTree::ResetStats,
/// VirtualLTree::ResetStats) snapshot and subtract.
struct PoolArenaStats {
  uint64_t fresh_allocs = 0;   ///< nodes carved from a chunk (heap growth)
  uint64_t reused_allocs = 0;  ///< nodes served from the free list
  uint64_t releases = 0;       ///< nodes returned for recycling
  uint64_t chunks = 0;         ///< chunks allocated so far

  /// Every allocation request ever served (== the `new` count the
  /// pre-arena code would have issued).
  uint64_t TotalAllocs() const { return fresh_allocs + reused_allocs; }

  /// Nodes currently handed out (allocated and not yet released).
  uint64_t live() const { return TotalAllocs() - releases; }

  std::string ToString() const;
};

template <typename NodeT, typename Traits>
class PoolArena {
 public:
  /// Nodes per chunk. 256 nodes keeps chunk allocation off the hot path
  /// without pinning megabytes for a tiny tree.
  static constexpr size_t kChunkNodes = 256;

  /// Every slot starts on a cache line: a node is never split across (or
  /// shares a line's false-sharing tail with) its neighbor, which the
  /// concurrent read mode and the planned SIMD node-scan layout both rely
  /// on. Slots are padded to the next 64-byte multiple.
  static constexpr size_t kSlotAlign = 64;
  static constexpr size_t kSlotStride =
      (sizeof(NodeT) + kSlotAlign - 1) / kSlotAlign * kSlotAlign;

  /// Heap bytes per chunk (for ApproxHeapBytes accounting in the trees).
  static constexpr size_t kChunkBytes = kChunkNodes * kSlotStride;

  PoolArena() = default;
  ~PoolArena() = default;  // chunks own every node, free list included
  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  /// Returns a node in the default-constructed state, either recycled from
  /// the free list or carved from a chunk.
  NodeT* Allocate() {
    if (free_head_ != nullptr) {
      NodeT* n = free_head_;
      free_head_ = Traits::GetFreeNext(n);
      Traits::SetFreeNext(n, nullptr);
      ++stats_.reused_allocs;
      return n;
    }
    if (used_in_last_chunk_ == kChunkNodes) {
      chunks_.emplace_back(new Chunk());
      used_in_last_chunk_ = 0;
      ++stats_.chunks;
    }
    ++stats_.fresh_allocs;
    return chunks_.back()->slot(used_in_last_chunk_++);
  }

  /// Returns `n` to the free list. The node must have been obtained from
  /// this arena and must no longer be reachable from any tree structure;
  /// its vectors keep their capacity for the next reuse.
  void Release(NodeT* n) {
    // Reset to the default-constructed state so Allocate() callers never
    // see stale fields — but keep the vectors' heap buffers: recycled
    // nodes are the whole point.
    Traits::Recycle(n);
    Traits::SetFreeNext(n, free_head_);
    free_head_ = n;
    ++stats_.releases;
  }

  const PoolArenaStats& stats() const { return stats_; }

  /// Visits every node currently on the free list (memory accounting needs
  /// this: recycled nodes keep their buffer capacities, which a
  /// reachable-only walk would under-report).
  template <typename Fn>
  void ForEachFree(Fn&& fn) const {
    for (NodeT* n = free_head_; n != nullptr; n = Traits::GetFreeNext(n)) {
      fn(static_cast<const NodeT*>(n));
    }
  }

 private:
  /// One over-aligned slab of kChunkNodes cache-line-aligned slots. Slots
  /// are constructed up front and destroyed with the chunk, so teardown
  /// still never walks the tree structure.
  class Chunk {
   public:
    Chunk()
        : raw_(static_cast<unsigned char*>(::operator new(
              kChunkBytes, std::align_val_t{kSlotAlign}))) {
      for (size_t i = 0; i < kChunkNodes; ++i) new (slot(i)) NodeT();
    }
    ~Chunk() {
      for (size_t i = 0; i < kChunkNodes; ++i) slot(i)->~NodeT();
      ::operator delete(raw_, std::align_val_t{kSlotAlign});
    }
    Chunk(const Chunk&) = delete;
    Chunk& operator=(const Chunk&) = delete;

    NodeT* slot(size_t i) {
      return reinterpret_cast<NodeT*>(raw_ + i * kSlotStride);
    }

   private:
    unsigned char* raw_;
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t used_in_last_chunk_ = kChunkNodes;  // "full" => first Allocate
                                             // opens a chunk
  NodeT* free_head_ = nullptr;  // intrusive list threaded by the Traits
  PoolArenaStats stats_;
};

}  // namespace ltree

#endif  // LTREE_CORE_POOL_ARENA_H_
