// Stack-based structural join over interval labels.
//
// This is the join the paper's Section 1 motivates: with order-preserving
// (start, end) labels, "a // d" is answered by one merge pass over the two
// tag lists sorted by start label — O(|A| + |D| + output) — instead of a
// chain of parent-id self-joins. The algorithm is the classic stack-tree
// join (Al-Khalifa et al.), exploiting that regions never partially
// overlap.

#ifndef LTREE_QUERY_STRUCTURAL_JOIN_H_
#define LTREE_QUERY_STRUCTURAL_JOIN_H_

#include <utility>
#include <vector>

#include "query/node_table.h"

namespace ltree {
namespace query {

/// Result pair: (ancestor row, descendant row).
using JoinPair = std::pair<const NodeRow*, const NodeRow*>;

/// All (a, d) with a.region containing d.region. Both inputs must be sorted
/// by region.start (as NodeTable::ByTag returns them).
std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<const NodeRow*>& ancestors,
    const std::vector<const NodeRow*>& descendants);

/// All (p, c) where additionally c.level == p.level + 1.
std::vector<JoinPair> ParentChildJoin(
    const std::vector<const NodeRow*>& parents,
    const std::vector<const NodeRow*>& children);

/// Distinct descendants with at least one ancestor in `ancestors`
/// (projection of AncestorDescendantJoin on the descendant side), sorted by
/// start label.
std::vector<const NodeRow*> DescendantsSemiJoin(
    const std::vector<const NodeRow*>& ancestors,
    const std::vector<const NodeRow*>& descendants);

/// Distinct children with parent (level-constrained containment) in
/// `parents`, sorted by start label.
std::vector<const NodeRow*> ChildrenSemiJoin(
    const std::vector<const NodeRow*>& parents,
    const std::vector<const NodeRow*>& children);

}  // namespace query
}  // namespace ltree

#endif  // LTREE_QUERY_STRUCTURAL_JOIN_H_
