#include "query/structural_join.h"

#include <algorithm>

namespace ltree {
namespace query {

namespace {

/// Core merge: for each descendant, the stack holds exactly the ancestors
/// whose region contains the current start position (they are nested in
/// one another because regions never partially overlap).
template <typename Emit>
void StackJoin(const std::vector<const NodeRow*>& ancestors,
               const std::vector<const NodeRow*>& descendants, Emit emit) {
  std::vector<const NodeRow*> stack;
  size_t a = 0;
  for (const NodeRow* d : descendants) {
    // Admit all ancestors that start before d.
    while (a < ancestors.size() &&
           ancestors[a]->region.start < d->region.start) {
      while (!stack.empty() &&
             stack.back()->region.end < ancestors[a]->region.start) {
        stack.pop_back();
      }
      stack.push_back(ancestors[a]);
      ++a;
    }
    // Retire ancestors that end before d starts.
    while (!stack.empty() && stack.back()->region.end < d->region.start) {
      stack.pop_back();
    }
    // Everything left on the stack contains d (nested chain).
    for (const NodeRow* anc : stack) {
      if (anc->region.Contains(d->region)) emit(anc, d);
    }
  }
}

}  // namespace

std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<const NodeRow*>& ancestors,
    const std::vector<const NodeRow*>& descendants) {
  std::vector<JoinPair> out;
  StackJoin(ancestors, descendants,
            [&](const NodeRow* a, const NodeRow* d) { out.emplace_back(a, d); });
  return out;
}

std::vector<JoinPair> ParentChildJoin(
    const std::vector<const NodeRow*>& parents,
    const std::vector<const NodeRow*>& children) {
  std::vector<JoinPair> out;
  StackJoin(parents, children, [&](const NodeRow* p, const NodeRow* c) {
    if (c->level == p->level + 1) out.emplace_back(p, c);
  });
  return out;
}

std::vector<const NodeRow*> DescendantsSemiJoin(
    const std::vector<const NodeRow*>& ancestors,
    const std::vector<const NodeRow*>& descendants) {
  std::vector<const NodeRow*> out;
  const NodeRow* last = nullptr;
  StackJoin(ancestors, descendants, [&](const NodeRow*, const NodeRow* d) {
    if (d != last) {
      out.push_back(d);
      last = d;
    }
  });
  return out;  // descendants iterated in start order => output sorted
}

std::vector<const NodeRow*> ChildrenSemiJoin(
    const std::vector<const NodeRow*>& parents,
    const std::vector<const NodeRow*>& children) {
  std::vector<const NodeRow*> out;
  const NodeRow* last = nullptr;
  StackJoin(parents, children, [&](const NodeRow* p, const NodeRow* c) {
    if (c->level == p->level + 1 && c != last) {
      out.push_back(c);
      last = c;
    }
  });
  return out;
}

}  // namespace query
}  // namespace ltree
