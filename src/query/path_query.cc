#include "query/path_query.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "query/structural_join.h"

namespace ltree {
namespace query {

namespace {

bool IsStepChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

}  // namespace

Result<PathQuery> PathQuery::Parse(const std::string& text) {
  PathQuery q;
  q.text_ = text;
  size_t pos = 0;
  if (text.empty()) return Status::ParseError("empty path");

  PathStep::Axis next_axis = PathStep::Axis::kDescendant;
  if (text[0] == '/') {
    if (text.size() > 1 && text[1] == '/') {
      next_axis = PathStep::Axis::kDescendant;
      pos = 2;
    } else {
      next_axis = PathStep::Axis::kChild;
      pos = 1;
    }
  }

  while (pos < text.size()) {
    // Parse one step name.
    std::string tag;
    if (text[pos] == '*') {
      tag = "*";
      ++pos;
    } else {
      while (pos < text.size() && IsStepChar(text[pos])) {
        tag.push_back(text[pos++]);
      }
      if (tag.empty()) {
        return Status::ParseError(
            StrFormat("expected step name at offset %zu in '%s'", pos,
                      text.c_str()));
      }
    }
    q.steps_.push_back(PathStep{next_axis, std::move(tag)});

    if (pos == text.size()) break;
    if (text[pos] != '/') {
      return Status::ParseError(
          StrFormat("expected '/' at offset %zu in '%s'", pos, text.c_str()));
    }
    if (pos + 1 < text.size() && text[pos + 1] == '/') {
      next_axis = PathStep::Axis::kDescendant;
      pos += 2;
    } else {
      next_axis = PathStep::Axis::kChild;
      pos += 1;
    }
    if (pos == text.size()) {
      return Status::ParseError("path ends with '/'");
    }
  }
  if (q.steps_.empty()) return Status::ParseError("path has no steps");
  return q;
}

// ---------------------------------------------------------------------------
// Label-based plan
// ---------------------------------------------------------------------------

namespace {

std::vector<const NodeRow*> Candidates(const NodeTable& table,
                                       const std::string& tag) {
  return tag == "*" ? table.AllElements() : table.ByTag(tag);
}

}  // namespace

std::vector<const NodeRow*> EvaluateWithLabels(const PathQuery& query,
                                               const NodeTable& table) {
  std::vector<const NodeRow*> contexts;
  bool first = true;
  for (const PathStep& step : query.steps()) {
    std::vector<const NodeRow*> candidates = Candidates(table, step.tag);
    if (first) {
      if (step.axis == PathStep::Axis::kChild) {
        // Anchored at the (virtual) document root: keep level-0 matches.
        std::vector<const NodeRow*> roots;
        for (const NodeRow* row : candidates) {
          if (row->level == 0) roots.push_back(row);
        }
        contexts = std::move(roots);
      } else {
        contexts = std::move(candidates);
      }
      first = false;
      continue;
    }
    contexts = step.axis == PathStep::Axis::kChild
                   ? ChildrenSemiJoin(contexts, candidates)
                   : DescendantsSemiJoin(contexts, candidates);
    if (contexts.empty()) break;
  }
  return contexts;
}

// ---------------------------------------------------------------------------
// Edge-table plan
// ---------------------------------------------------------------------------

std::vector<const NodeRow*> EvaluateWithEdges(const PathQuery& query,
                                              const NodeTable& table,
                                              uint64_t* join_count) {
  uint64_t joins = 0;
  std::vector<const NodeRow*> contexts;
  bool first = true;
  for (const PathStep& step : query.steps()) {
    if (first) {
      std::vector<const NodeRow*> candidates = Candidates(table, step.tag);
      if (step.axis == PathStep::Axis::kChild) {
        std::vector<const NodeRow*> roots;
        for (const NodeRow* row : candidates) {
          if (row->level == 0) roots.push_back(row);
        }
        contexts = std::move(roots);
      } else {
        contexts = std::move(candidates);
      }
      first = false;
      continue;
    }

    auto matches = [&](const NodeRow* row) {
      return !row->is_text && (step.tag == "*" || row->tag == step.tag);
    };

    std::vector<const NodeRow*> next;
    std::unordered_set<xml::NodeId> seen;
    if (step.axis == PathStep::Axis::kChild) {
      // One parent-id join pass.
      ++joins;
      for (const NodeRow* ctx : contexts) {
        for (const NodeRow* child : table.ChildrenOf(ctx->id)) {
          if (matches(child) && seen.insert(child->id).second) {
            next.push_back(child);
          }
        }
      }
    } else {
      // Descendant axis: iterated self-joins, one per level reached.
      // `visited` bounds traversal when contexts nest; matching is tracked
      // separately in `seen` so a context that is itself a descendant of
      // another context is still reported.
      std::vector<const NodeRow*> frontier = contexts;
      std::unordered_set<xml::NodeId> visited;
      while (!frontier.empty()) {
        ++joins;
        std::vector<const NodeRow*> level;
        for (const NodeRow* ctx : frontier) {
          for (const NodeRow* child : table.ChildrenOf(ctx->id)) {
            if (child->is_text) continue;
            if (matches(child) && seen.insert(child->id).second) {
              next.push_back(child);
            }
            if (visited.insert(child->id).second) {
              level.push_back(child);
            }
          }
        }
        frontier = std::move(level);
      }
    }
    std::sort(next.begin(), next.end(),
              [](const NodeRow* a, const NodeRow* b) {
                return a->region.start < b->region.start;
              });
    contexts = std::move(next);
    if (contexts.empty()) break;
  }
  if (join_count != nullptr) *join_count = joins;
  return contexts;
}

// ---------------------------------------------------------------------------
// DOM ground truth
// ---------------------------------------------------------------------------

namespace {

void CollectDescendants(const xml::Node* node,
                        std::vector<const xml::Node*>* out) {
  for (const xml::Node* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->IsElement()) out->push_back(c);
    CollectDescendants(c, out);
  }
}

bool TagMatches(const xml::Node* node, const std::string& tag) {
  return node->IsElement() && (tag == "*" || node->tag == tag);
}

}  // namespace

std::vector<xml::NodeId> EvaluateOnDocument(const PathQuery& query,
                                            const xml::Document& doc) {
  if (doc.root() == nullptr) return {};
  std::vector<const xml::Node*> contexts;
  bool first = true;
  for (const PathStep& step : query.steps()) {
    std::vector<const xml::Node*> next;
    std::unordered_set<const xml::Node*> seen;
    if (first) {
      if (step.axis == PathStep::Axis::kChild) {
        if (TagMatches(doc.root(), step.tag)) next.push_back(doc.root());
      } else {
        if (TagMatches(doc.root(), step.tag)) next.push_back(doc.root());
        std::vector<const xml::Node*> all;
        CollectDescendants(doc.root(), &all);
        for (const xml::Node* n : all) {
          if (TagMatches(n, step.tag)) next.push_back(n);
        }
      }
      first = false;
    } else if (step.axis == PathStep::Axis::kChild) {
      for (const xml::Node* ctx : contexts) {
        for (const xml::Node* c = ctx->first_child; c != nullptr;
             c = c->next_sibling) {
          if (TagMatches(c, step.tag) && seen.insert(c).second) {
            next.push_back(c);
          }
        }
      }
    } else {
      for (const xml::Node* ctx : contexts) {
        std::vector<const xml::Node*> descendants;
        CollectDescendants(ctx, &descendants);
        for (const xml::Node* d : descendants) {
          if (TagMatches(d, step.tag) && seen.insert(d).second) {
            next.push_back(d);
          }
        }
      }
    }
    contexts = std::move(next);
    if (contexts.empty()) break;
  }

  // Report ids in document order.
  std::unordered_set<const xml::Node*> result(contexts.begin(),
                                              contexts.end());
  std::vector<xml::NodeId> ids;
  doc.Visit([&](const xml::Node& n) {
    if (result.count(&n) > 0) ids.push_back(n.id);
  });
  return ids;
}

}  // namespace query
}  // namespace ltree
