// Labeled node table: the relational view of an XML document.
//
// This models the paper's motivating setup (Section 1): XML stored in an
// RDBMS as one row per node carrying the (start, end) interval labels
// produced by the labeling structure, its depth and its parent id. With
// interval labels, the ancestor-descendant test is
//     a.start < d.start && d.end < a.end
// so "//" steps become a single label-comparison join; the edge-table
// alternative [11] must chain one parent-id self-join per level.

#ifndef LTREE_QUERY_NODE_TABLE_H_
#define LTREE_QUERY_NODE_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/params.h"
#include "xml/xml_node.h"

namespace ltree {
namespace query {

/// An interval label (begin-tag label, end-tag label).
struct Region {
  Label start = 0;
  Label end = 0;

  /// Strict containment: does this region contain `other`?
  /// (Proposition 1 territory: a is an ancestor of d iff a's interval
  /// includes d's.)
  bool Contains(const Region& other) const {
    return start < other.start && other.end < end;
  }

  bool operator==(const Region& other) const = default;
};

/// One row of the node table.
struct NodeRow {
  xml::NodeId id = 0;
  std::string tag;  ///< empty for text nodes
  Region region;
  int32_t level = 0;          ///< root element = 0
  xml::NodeId parent_id = 0;  ///< 0 for the root
  bool is_text = false;
};

/// In-memory node table with a tag index (rows per tag, sorted by start
/// label) and an edge index (children per parent). Because every labeling
/// scheme in this library is order-preserving, relabeling never reorders
/// rows, so label updates are O(1) in-place writes.
class NodeTable {
 public:
  /// Adds a row. Call Finalize() before querying.
  void Add(NodeRow row);

  /// Sorts and indexes the rows. Fails if regions are malformed (start >=
  /// end) or duplicate ids exist.
  Status Finalize();

  /// Rewrites the start label of a node (relabel hook). O(1).
  Status UpdateStart(xml::NodeId id, Label start);
  /// Rewrites the end label of a node (relabel hook). O(1).
  Status UpdateEnd(xml::NodeId id, Label end);

  /// Appends a new row after Finalize (used by live documents). The table
  /// keeps its indexes consistent; cost O(row count) worst case (vector
  /// insert into tag bucket).
  Status Insert(NodeRow row);

  /// Removes a row by id.
  Status Erase(xml::NodeId id);

  uint64_t size() const { return live_count_; }

  Result<const NodeRow*> Find(xml::NodeId id) const;

  /// Element rows with this tag, sorted by start label.
  std::vector<const NodeRow*> ByTag(const std::string& tag) const;

  /// All element rows, sorted by start label.
  std::vector<const NodeRow*> AllElements() const;

  /// Direct children of a node (by parent id), unsorted.
  std::vector<const NodeRow*> ChildrenOf(xml::NodeId parent) const;

  /// Verifies regions are consistent with the index ordering.
  Status CheckInvariants() const;

 private:
  struct Slot {
    NodeRow row;
    bool live = false;
  };

  Status IndexRow(size_t slot_index);

  // deque: stable addresses across Insert (ByTag returns row pointers).
  std::deque<Slot> rows_;
  std::unordered_map<xml::NodeId, size_t> by_id_;
  // tag -> slot indices sorted by region.start
  std::unordered_map<std::string, std::vector<size_t>> by_tag_;
  std::unordered_map<xml::NodeId, std::vector<size_t>> by_parent_;
  uint64_t live_count_ = 0;
  bool finalized_ = false;
};

}  // namespace query
}  // namespace ltree

#endif  // LTREE_QUERY_NODE_TABLE_H_
