#include "query/node_table.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/simd_search.h"

namespace ltree {
namespace query {

void NodeTable::Add(NodeRow row) {
  LTREE_CHECK(!finalized_);
  rows_.push_back(Slot{std::move(row), true});
  ++live_count_;
}

Status NodeTable::IndexRow(size_t slot_index) {
  const NodeRow& row = rows_[slot_index].row;
  if (row.region.start >= row.region.end) {
    return Status::InvalidArgument(
        StrFormat("malformed region for node %llu",
                  static_cast<unsigned long long>(row.id)));
  }
  if (!by_id_.emplace(row.id, slot_index).second) {
    return Status::AlreadyExists(
        StrFormat("duplicate node id %llu",
                  static_cast<unsigned long long>(row.id)));
  }
  if (!row.is_text) {
    auto& bucket = by_tag_[row.tag];
    // Insert keeping the bucket sorted by start label.
    const uint32_t pos = search::LowerBoundBy(
        bucket.data(), static_cast<uint32_t>(bucket.size()),
        row.region.start,
        [this](size_t a) { return rows_[a].row.region.start; });
    bucket.insert(bucket.begin() + pos, slot_index);
  }
  if (row.parent_id != 0) {
    by_parent_[row.parent_id].push_back(slot_index);
  }
  return Status::OK();
}

Status NodeTable::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  // Sort rows by start once so tag-bucket construction is linear-ish.
  std::sort(rows_.begin(), rows_.end(), [](const Slot& a, const Slot& b) {
    return a.row.region.start < b.row.region.start;
  });
  for (size_t i = 0; i < rows_.size(); ++i) {
    LTREE_RETURN_IF_ERROR(IndexRow(i));
  }
  finalized_ = true;
  return Status::OK();
}

Status NodeTable::UpdateStart(xml::NodeId id, Label start) {
  auto it = by_id_.find(id);
  if (it == by_id_.end() || !rows_[it->second].live) {
    return Status::NotFound("unknown node id");
  }
  rows_[it->second].row.region.start = start;
  return Status::OK();
}

Status NodeTable::UpdateEnd(xml::NodeId id, Label end) {
  auto it = by_id_.find(id);
  if (it == by_id_.end() || !rows_[it->second].live) {
    return Status::NotFound("unknown node id");
  }
  rows_[it->second].row.region.end = end;
  return Status::OK();
}

Status NodeTable::Insert(NodeRow row) {
  if (!finalized_) {
    Add(std::move(row));
    return Status::OK();
  }
  rows_.push_back(Slot{std::move(row), true});
  Status st = IndexRow(rows_.size() - 1);
  if (!st.ok()) {
    rows_.pop_back();
    return st;
  }
  ++live_count_;
  return Status::OK();
}

Status NodeTable::Erase(xml::NodeId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end() || !rows_[it->second].live) {
    return Status::NotFound("unknown node id");
  }
  const size_t slot = it->second;
  NodeRow& row = rows_[slot].row;
  rows_[slot].live = false;
  by_id_.erase(it);
  if (!row.is_text) {
    auto& bucket = by_tag_[row.tag];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), slot),
                 bucket.end());
  }
  if (row.parent_id != 0) {
    auto pit = by_parent_.find(row.parent_id);
    if (pit != by_parent_.end()) {
      pit->second.erase(
          std::remove(pit->second.begin(), pit->second.end(), slot),
          pit->second.end());
    }
  }
  --live_count_;
  return Status::OK();
}

Result<const NodeRow*> NodeTable::Find(xml::NodeId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end() || !rows_[it->second].live) {
    return Status::NotFound("unknown node id");
  }
  return &rows_[it->second].row;
}

std::vector<const NodeRow*> NodeTable::ByTag(const std::string& tag) const {
  std::vector<const NodeRow*> out;
  auto it = by_tag_.find(tag);
  if (it == by_tag_.end()) return out;
  out.reserve(it->second.size());
  for (size_t slot : it->second) {
    if (rows_[slot].live) out.push_back(&rows_[slot].row);
  }
  return out;
}

std::vector<const NodeRow*> NodeTable::AllElements() const {
  std::vector<const NodeRow*> out;
  for (const Slot& slot : rows_) {
    if (slot.live && !slot.row.is_text) out.push_back(&slot.row);
  }
  std::sort(out.begin(), out.end(), [](const NodeRow* a, const NodeRow* b) {
    return a->region.start < b->region.start;
  });
  return out;
}

std::vector<const NodeRow*> NodeTable::ChildrenOf(xml::NodeId parent) const {
  std::vector<const NodeRow*> out;
  auto it = by_parent_.find(parent);
  if (it == by_parent_.end()) return out;
  for (size_t slot : it->second) {
    if (rows_[slot].live) out.push_back(&rows_[slot].row);
  }
  return out;
}

Status NodeTable::CheckInvariants() const {
  for (const auto& [tag, bucket] : by_tag_) {
    Label prev = 0;
    bool first = true;
    for (size_t slot : bucket) {
      if (!rows_[slot].live) continue;
      const NodeRow& row = rows_[slot].row;
      if (row.region.start >= row.region.end) {
        return Status::Corruption("malformed region");
      }
      if (!first && row.region.start <= prev) {
        return Status::Corruption("tag bucket not sorted by start label");
      }
      prev = row.region.start;
      first = false;
    }
  }
  return Status::OK();
}

}  // namespace query
}  // namespace ltree
