// Mini-XPath ("/", "//", tag names, "*") parsing and evaluation.
//
// Three evaluators share the same semantics:
//   * EvaluateWithLabels   — structural joins over interval labels (the
//     paper's recommended plan: one label-comparison join per step);
//   * EvaluateWithEdges    — edge-table plan [11]: parent-id joins, one
//     level at a time, with "//" expanded by iterated self-joins;
//   * EvaluateOnDocument   — naive DOM traversal used as ground truth.
//
// Grammar:   path  := ('/' | '//')? step (('/' | '//') step)*
//            step  := NAME | '*'
// A leading '/' anchors the first step at the document root; a leading '//'
// (or no leading slash) matches the first step anywhere.

#ifndef LTREE_QUERY_PATH_QUERY_H_
#define LTREE_QUERY_PATH_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/node_table.h"
#include "xml/xml_node.h"

namespace ltree {
namespace query {

struct PathStep {
  enum class Axis { kChild, kDescendant };
  Axis axis = Axis::kDescendant;
  /// Element tag to match; "*" matches any element.
  std::string tag;
};

/// A parsed path query.
class PathQuery {
 public:
  /// Parses the mini-XPath grammar above.
  static Result<PathQuery> Parse(const std::string& text);

  const std::vector<PathStep>& steps() const { return steps_; }
  const std::string& text() const { return text_; }

 private:
  std::vector<PathStep> steps_;
  std::string text_;
};

/// Label-based plan: matching element rows, sorted by start label.
std::vector<const NodeRow*> EvaluateWithLabels(const PathQuery& query,
                                               const NodeTable& table);

/// Edge-table plan: same result set, computed with parent-id joins only
/// (descendant steps iterate a level at a time). `join_count`, if non-null,
/// receives the number of elementary parent-child join passes performed —
/// the paper's argument is that this grows with document depth while the
/// label plan always needs exactly one join per step.
std::vector<const NodeRow*> EvaluateWithEdges(const PathQuery& query,
                                              const NodeTable& table,
                                              uint64_t* join_count = nullptr);

/// Ground truth by direct DOM traversal; node ids in document order.
std::vector<xml::NodeId> EvaluateOnDocument(const PathQuery& query,
                                            const xml::Document& doc);

}  // namespace query
}  // namespace ltree

#endif  // LTREE_QUERY_PATH_QUERY_H_
