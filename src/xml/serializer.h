// XML serialization (round-trip counterpart of parser.h).

#ifndef LTREE_XML_SERIALIZER_H_
#define LTREE_XML_SERIALIZER_H_

#include <string>

#include "xml/xml_node.h"

namespace ltree {
namespace xml {

struct SerializeOptions {
  /// Pretty-print with this many spaces per depth level; 0 = compact.
  int indent = 0;
  /// Collapse childless elements to <tag/>.
  bool self_close_empty = true;
};

/// Serializes an attached document (entity-escaping text and attributes).
std::string Serialize(const Document& doc,
                      const SerializeOptions& options = SerializeOptions());

/// Serializes the subtree rooted at `node`.
std::string SerializeNode(const Node& node,
                          const SerializeOptions& options = SerializeOptions());

/// Escapes &, <, >, " and ' for use in text/attribute content.
std::string EscapeText(std::string_view text);

}  // namespace xml
}  // namespace ltree

#endif  // LTREE_XML_SERIALIZER_H_
