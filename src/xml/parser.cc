#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace xml {

namespace {

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> Run() {
    Document doc;
    SkipProlog();
    if (AtEnd()) return Status::ParseError(Where("document has no root element"));
    LTREE_ASSIGN_OR_RETURN(Node * root, ParseElement(&doc));
    LTREE_RETURN_IF_ERROR(doc.SetRoot(root));
    SkipMisc();
    if (!AtEnd()) {
      return Status::ParseError(Where("trailing content after root element"));
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    AdvanceBy(token.size());
    return true;
  }

  std::string Where(std::string_view msg) const {
    return StrFormat("%.*s (line %zu, column %zu)",
                     static_cast<int>(msg.size()), msg.data(), line_, col_);
  }

  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  /// Skips <?...?>, <!DOCTYPE ...> and comments before the root.
  void SkipProlog() {
    for (;;) {
      SkipSpace();
      if (AtEnd()) return;
      if (Peek() != '<') return;
      if (PeekAt(1) == '?') {
        SkipUntil("?>");
      } else if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
        SkipUntil("-->");
      } else if (PeekAt(1) == '!') {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (AtEnd()) return;
      if (Peek() == '<' && PeekAt(1) == '?') {
        SkipUntil("?>");
      } else if (Peek() == '<' && PeekAt(1) == '!' && PeekAt(2) == '-') {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd()) {
      if (input_.substr(pos_).substr(0, terminator.size()) == terminator) {
        AdvanceBy(terminator.size());
        return;
      }
      Advance();
    }
  }

  void SkipDoctype() {
    // <!DOCTYPE ...> possibly with an internal subset in [ ... ].
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return;
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Status::ParseError(Where("expected a name"));
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError(Where("unterminated entity reference"));
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        uint64_t code = 0;
        bool ok = ent.size() > 1;
        if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
          for (size_t j = 2; j < ent.size() && ok; ++j) {
            const char c = ent[j];
            code = code * 16;
            if (c >= '0' && c <= '9') {
              code += static_cast<uint64_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
              code += static_cast<uint64_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
              code += static_cast<uint64_t>(c - 'A' + 10);
            } else {
              ok = false;
            }
          }
          ok = ok && ent.size() > 2;
        } else {
          for (size_t j = 1; j < ent.size() && ok; ++j) {
            if (ent[j] < '0' || ent[j] > '9') {
              ok = false;
            } else {
              code = code * 10 + static_cast<uint64_t>(ent[j] - '0');
            }
          }
        }
        if (!ok || code == 0 || code > 0x10FFFF) {
          return Status::ParseError(Where("invalid character reference"));
        }
        AppendUtf8(static_cast<uint32_t>(code), &out);
      } else {
        return Status::ParseError(Where("unknown entity reference"));
      }
      i = semi + 1;
    }
    return out;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseAttributes(Node* element) {
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Status::ParseError(Where("unterminated start tag"));
      const char c = Peek();
      if (c == '>' || c == '/') return Status::OK();
      LTREE_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipSpace();
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError(Where("expected '=' after attribute name"));
      }
      Advance();
      SkipSpace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Status::ParseError(Where("expected quoted attribute value"));
      }
      const char quote = Peek();
      Advance();
      const size_t start = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) {
        return Status::ParseError(Where("unterminated attribute value"));
      }
      LTREE_ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(input_.substr(start, pos_ - start)));
      Advance();  // closing quote
      for (const auto& [k, v] : element->attrs) {
        if (k == name) {
          return Status::ParseError(Where("duplicate attribute"));
        }
      }
      element->attrs.emplace_back(std::move(name), std::move(value));
    }
  }

  Result<Node*> ParseElement(Document* doc) {
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError(Where("expected '<'"));
    }
    Advance();
    LTREE_ASSIGN_OR_RETURN(std::string tag, ParseName());
    Node* element = doc->CreateElement(std::move(tag));
    LTREE_RETURN_IF_ERROR(ParseAttributes(element));
    if (Consume("/>")) return element;
    if (!Consume(">")) {
      return Status::ParseError(Where("malformed start tag"));
    }
    LTREE_RETURN_IF_ERROR(ParseContent(doc, element));
    // ParseContent consumed "</".
    LTREE_ASSIGN_OR_RETURN(std::string close, ParseName());
    if (close != element->tag) {
      return Status::ParseError(
          Where(StrFormat("mismatched end tag </%s> for <%s>", close.c_str(),
                          element->tag.c_str())));
    }
    SkipSpace();
    if (!Consume(">")) {
      return Status::ParseError(Where("malformed end tag"));
    }
    return element;
  }

  Status ParseContent(Document* doc, Node* element) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::OK();
      const bool all_space =
          StripWhitespace(text).empty();
      if (!all_space || options_.keep_whitespace_text) {
        LTREE_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(text));
        LTREE_RETURN_IF_ERROR(
            doc->AppendChild(element, doc->CreateText(std::move(decoded))));
      }
      text.clear();
      return Status::OK();
    };

    for (;;) {
      if (AtEnd()) {
        return Status::ParseError(Where("unterminated element content"));
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          LTREE_RETURN_IF_ERROR(flush_text());
          AdvanceBy(2);
          return Status::OK();
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
          LTREE_RETURN_IF_ERROR(flush_text());
          SkipUntil("-->");
          continue;
        }
        if (Consume("<![CDATA[")) {
          const size_t start = pos_;
          while (!AtEnd() &&
                 input_.substr(pos_).substr(0, 3) != "]]>") {
            Advance();
          }
          if (AtEnd()) {
            return Status::ParseError(Where("unterminated CDATA section"));
          }
          // CDATA is literal: bypass entity decoding by flushing separately.
          LTREE_RETURN_IF_ERROR(flush_text());
          std::string cdata(input_.substr(start, pos_ - start));
          AdvanceBy(3);
          if (!cdata.empty()) {
            LTREE_RETURN_IF_ERROR(
                doc->AppendChild(element, doc->CreateText(std::move(cdata))));
          }
          continue;
        }
        if (PeekAt(1) == '?') {
          LTREE_RETURN_IF_ERROR(flush_text());
          SkipUntil("?>");
          continue;
        }
        LTREE_RETURN_IF_ERROR(flush_text());
        LTREE_ASSIGN_OR_RETURN(Node * child, ParseElement(doc));
        LTREE_RETURN_IF_ERROR(doc->AppendChild(element, child));
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  return parser.Run();
}

}  // namespace xml
}  // namespace ltree
