#include "xml/serializer.h"

#include <sstream>

namespace ltree {
namespace xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void Indent(std::ostringstream* os, const SerializeOptions& opts, int depth) {
  if (opts.indent > 0) {
    for (int i = 0; i < depth * opts.indent; ++i) *os << ' ';
  }
}

void Newline(std::ostringstream* os, const SerializeOptions& opts) {
  if (opts.indent > 0) *os << '\n';
}

void WriteNode(const Node& n, const SerializeOptions& opts, int depth,
               std::ostringstream* os) {
  if (n.IsText()) {
    Indent(os, opts, depth);
    *os << EscapeText(n.text);
    Newline(os, opts);
    return;
  }
  Indent(os, opts, depth);
  *os << '<' << n.tag;
  for (const auto& [k, v] : n.attrs) {
    *os << ' ' << k << "=\"" << EscapeText(v) << '"';
  }
  if (n.first_child == nullptr && opts.self_close_empty) {
    *os << "/>";
    Newline(os, opts);
    return;
  }
  *os << '>';
  // Compact mode for a single text child keeps <a>text</a> on one line.
  const bool single_text_child =
      n.first_child != nullptr && n.first_child == n.last_child &&
      n.first_child->IsText();
  if (single_text_child) {
    *os << EscapeText(n.first_child->text);
    *os << "</" << n.tag << '>';
    Newline(os, opts);
    return;
  }
  Newline(os, opts);
  for (const Node* c = n.first_child; c != nullptr; c = c->next_sibling) {
    WriteNode(*c, opts, depth + 1, os);
  }
  Indent(os, opts, depth);
  *os << "</" << n.tag << '>';
  Newline(os, opts);
}

}  // namespace

std::string SerializeNode(const Node& node, const SerializeOptions& options) {
  std::ostringstream os;
  WriteNode(node, options, 0, &os);
  std::string out = os.str();
  // Trim the trailing newline pretty-printing leaves behind.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.root() == nullptr) return "";
  return SerializeNode(*doc.root(), options);
}

}  // namespace xml
}  // namespace ltree
