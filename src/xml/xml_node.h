// Ordered XML document model.
//
// The paper treats an XML document as an ordered tree whose textual form is
// "a linear ordered list of begin tags, end tags, and text sections"
// (Section 2). This module provides that tree: element and text nodes with
// sibling order, plus the document-order tag stream the labeling structures
// attach to.

#ifndef LTREE_XML_XML_NODE_H_
#define LTREE_XML_XML_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/validate.h"

namespace ltree {
namespace xml {

enum class NodeType { kElement, kText };

/// Document-unique node identifier (stable across edits; never reused).
using NodeId = uint64_t;

struct Node {
  NodeType type = NodeType::kElement;
  NodeId id = 0;

  /// Element name; empty for text nodes.
  std::string tag;
  /// Attribute list in document order (elements only).
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Text content (text nodes only).
  std::string text;

  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* last_child = nullptr;
  Node* prev_sibling = nullptr;
  Node* next_sibling = nullptr;

  bool IsElement() const { return type == NodeType::kElement; }
  bool IsText() const { return type == NodeType::kText; }

  /// Value of an attribute, or nullptr.
  const std::string* FindAttr(std::string_view name) const;

  /// Number of children.
  size_t ChildCount() const;
};

/// One entry of the document-order tag stream (Section 2's list
/// "t1 t2 ... tk"): elements contribute a begin and an end tag, text nodes a
/// single section.
struct TagEntry {
  enum class Kind { kBegin, kEnd, kText };
  Kind kind;
  const Node* node;
};

/// An ordered XML document. Owns all its nodes.
class Document {
 public:
  Document();
  ~Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) noexcept;
  Document& operator=(Document&&) noexcept;

  /// The single root element, or nullptr for an empty document.
  Node* root() const { return root_; }

  /// Creates a detached element node owned by this document.
  Node* CreateElement(std::string tag);
  /// Creates a detached text node owned by this document.
  Node* CreateText(std::string text);

  /// Installs `node` as the document root. Fails if a root already exists
  /// or the node is not a detached element.
  Status SetRoot(Node* node);

  /// Appends a detached node as the last child of `parent`.
  Status AppendChild(Node* parent, Node* child);
  /// Inserts a detached node before `ref` (a child of `parent`).
  Status InsertBefore(Node* parent, Node* ref, Node* child);
  /// Inserts a detached node after `ref` (a child of `parent`).
  Status InsertAfter(Node* parent, Node* ref, Node* child);

  /// Detaches `node` from its parent (subtree stays alive and owned).
  Status Detach(Node* node);

  /// Detaches and destroys a subtree.
  Status Remove(Node* node);

  /// Total live nodes (elements + text).
  uint64_t num_nodes() const { return live_nodes_; }
  /// Live element count.
  uint64_t num_elements() const { return live_elements_; }

  /// Node with the given id, or nullptr if unknown or destroyed. O(1).
  Node* FindById(NodeId id) const;

  /// Pre-order traversal of the attached tree.
  void Visit(const std::function<void(const Node&)>& fn) const;

  /// Document-order tag stream of the attached tree (Section 2).
  std::vector<TagEntry> TagStream() const;

  /// Deep validator: appends every broken structural rule (link symmetry,
  /// single root, text-node leaf-ness, live-node accounting) to `report`
  /// with "doc:"-prefixed node paths.
  void Audit(audit::Report* report) const;

  /// Structural checks: link symmetry, ownership, single root; the first
  /// Audit() violation as a Status.
  Status CheckInvariants() const;

 private:
  Node* NewNode(NodeType type);
  void DestroySubtree(Node* node);
  static bool IsAttachedToDoc(const Node* node, const Node* root);

  Node* root_ = nullptr;
  std::vector<Node*> all_nodes_;  // ownership (includes detached/destroyed slots)
  uint64_t live_nodes_ = 0;
  uint64_t live_elements_ = 0;
  NodeId next_id_ = 1;
};

}  // namespace xml
}  // namespace ltree

#endif  // LTREE_XML_XML_NODE_H_
