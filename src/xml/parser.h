// A from-scratch, dependency-free XML parser sufficient for the document
// corpus this reproduction uses: elements, attributes, text, entities,
// comments, CDATA, processing instructions and DOCTYPE (the latter three are
// skipped). Namespaces are treated as plain tag characters.

#ifndef LTREE_XML_PARSER_H_
#define LTREE_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/xml_node.h"

namespace ltree {
namespace xml {

struct ParseOptions {
  /// Keep text nodes that consist solely of whitespace (default: dropped,
  /// which is what layout-indented XML wants).
  bool keep_whitespace_text = false;
};

/// Parses a complete XML document. Errors carry line/column context.
Result<Document> Parse(std::string_view input,
                       const ParseOptions& options = ParseOptions());

}  // namespace xml
}  // namespace ltree

#endif  // LTREE_XML_PARSER_H_
