#include "xml/xml_node.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ltree {
namespace xml {

const std::string* Node::FindAttr(std::string_view name) const {
  for (const auto& [k, v] : attrs) {
    if (k == name) return &v;
  }
  return nullptr;
}

size_t Node::ChildCount() const {
  size_t n = 0;
  for (const Node* c = first_child; c != nullptr; c = c->next_sibling) ++n;
  return n;
}

Document::Document() = default;

Document::~Document() {
  for (Node* n : all_nodes_) delete n;
}

Document::Document(Document&& other) noexcept
    : root_(other.root_),
      all_nodes_(std::move(other.all_nodes_)),
      live_nodes_(other.live_nodes_),
      live_elements_(other.live_elements_),
      next_id_(other.next_id_) {
  other.root_ = nullptr;
  other.all_nodes_.clear();
  other.live_nodes_ = other.live_elements_ = 0;
}

Document& Document::operator=(Document&& other) noexcept {
  if (this != &other) {
    for (Node* n : all_nodes_) delete n;
    root_ = other.root_;
    all_nodes_ = std::move(other.all_nodes_);
    live_nodes_ = other.live_nodes_;
    live_elements_ = other.live_elements_;
    next_id_ = other.next_id_;
    other.root_ = nullptr;
    other.all_nodes_.clear();
    other.live_nodes_ = other.live_elements_ = 0;
  }
  return *this;
}

Node* Document::NewNode(NodeType type) {
  Node* n = new Node;
  n->type = type;
  n->id = next_id_++;
  all_nodes_.push_back(n);
  ++live_nodes_;
  if (type == NodeType::kElement) ++live_elements_;
  return n;
}

Node* Document::CreateElement(std::string tag) {
  Node* n = NewNode(NodeType::kElement);
  n->tag = std::move(tag);
  return n;
}

Node* Document::CreateText(std::string text) {
  Node* n = NewNode(NodeType::kText);
  n->text = std::move(text);
  return n;
}

Status Document::SetRoot(Node* node) {
  if (root_ != nullptr) {
    return Status::FailedPrecondition("document already has a root");
  }
  if (node == nullptr || !node->IsElement()) {
    return Status::InvalidArgument("root must be an element");
  }
  if (node->parent != nullptr) {
    return Status::InvalidArgument("root must be detached");
  }
  root_ = node;
  return Status::OK();
}

namespace {
Status CheckDetached(const Node* child) {
  if (child == nullptr) return Status::InvalidArgument("null child");
  if (child->parent != nullptr || child->prev_sibling != nullptr ||
      child->next_sibling != nullptr) {
    return Status::InvalidArgument("child must be detached");
  }
  return Status::OK();
}
}  // namespace

Status Document::AppendChild(Node* parent, Node* child) {
  if (parent == nullptr || !parent->IsElement()) {
    return Status::InvalidArgument("parent must be an element");
  }
  LTREE_RETURN_IF_ERROR(CheckDetached(child));
  if (child == root_) return Status::InvalidArgument("cannot attach the root");
  child->parent = parent;
  child->prev_sibling = parent->last_child;
  if (parent->last_child != nullptr) {
    parent->last_child->next_sibling = child;
  } else {
    parent->first_child = child;
  }
  parent->last_child = child;
  return Status::OK();
}

Status Document::InsertBefore(Node* parent, Node* ref, Node* child) {
  if (parent == nullptr || !parent->IsElement()) {
    return Status::InvalidArgument("parent must be an element");
  }
  if (ref == nullptr || ref->parent != parent) {
    return Status::InvalidArgument("ref must be a child of parent");
  }
  LTREE_RETURN_IF_ERROR(CheckDetached(child));
  child->parent = parent;
  child->next_sibling = ref;
  child->prev_sibling = ref->prev_sibling;
  if (ref->prev_sibling != nullptr) {
    ref->prev_sibling->next_sibling = child;
  } else {
    parent->first_child = child;
  }
  ref->prev_sibling = child;
  return Status::OK();
}

Status Document::InsertAfter(Node* parent, Node* ref, Node* child) {
  if (ref == nullptr || ref->parent != parent) {
    return Status::InvalidArgument("ref must be a child of parent");
  }
  if (ref->next_sibling == nullptr) return AppendChild(parent, child);
  return InsertBefore(parent, ref->next_sibling, child);
}

Status Document::Detach(Node* node) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (node == root_) {
    root_ = nullptr;
    return Status::OK();
  }
  if (node->parent == nullptr) {
    return Status::FailedPrecondition("node already detached");
  }
  Node* parent = node->parent;
  if (node->prev_sibling != nullptr) {
    node->prev_sibling->next_sibling = node->next_sibling;
  } else {
    parent->first_child = node->next_sibling;
  }
  if (node->next_sibling != nullptr) {
    node->next_sibling->prev_sibling = node->prev_sibling;
  } else {
    parent->last_child = node->prev_sibling;
  }
  node->parent = nullptr;
  node->prev_sibling = node->next_sibling = nullptr;
  return Status::OK();
}

void Document::DestroySubtree(Node* node) {
  Node* child = node->first_child;
  while (child != nullptr) {
    Node* next = child->next_sibling;
    DestroySubtree(child);
    child = next;
  }
  --live_nodes_;
  if (node->IsElement()) --live_elements_;
  // Ownership slot: ids are 1-based indexes into all_nodes_.
  all_nodes_[node->id - 1] = nullptr;
  delete node;
}

Status Document::Remove(Node* node) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (node->parent != nullptr || node == root_) {
    LTREE_RETURN_IF_ERROR(Detach(node));
  }
  DestroySubtree(node);
  return Status::OK();
}

Node* Document::FindById(NodeId id) const {
  if (id == 0 || id >= next_id_) return nullptr;
  return all_nodes_[id - 1];
}

void Document::Visit(const std::function<void(const Node&)>& fn) const {
  if (root_ == nullptr) return;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    fn(*n);
    // Push children in reverse so traversal is document order.
    std::vector<const Node*> kids;
    for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
}

namespace {
void StreamNode(const Node* n, std::vector<TagEntry>* out) {
  if (n->IsText()) {
    out->push_back({TagEntry::Kind::kText, n});
    return;
  }
  out->push_back({TagEntry::Kind::kBegin, n});
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    StreamNode(c, out);
  }
  out->push_back({TagEntry::Kind::kEnd, n});
}
}  // namespace

std::vector<TagEntry> Document::TagStream() const {
  std::vector<TagEntry> out;
  if (root_ != nullptr) StreamNode(root_, &out);
  return out;
}

void Document::Audit(audit::Report* report) const {
  uint64_t visited = 0;
  if (root_ != nullptr) {
    if (root_->parent != nullptr) {
      report->Add("doc:/", "root-parent", "root has a parent");
    }
    struct Frame {
      const Node* node;
      std::string path;
    };
    std::vector<Frame> stack{{root_, "doc:/"}};
    while (!stack.empty()) {
      const Frame frame = stack.back();
      const Node* n = frame.node;
      stack.pop_back();
      ++visited;
      if (n->IsText() && n->first_child != nullptr) {
        report->Add(frame.path, "text-childless", "text node with children");
        continue;
      }
      const Node* prev = nullptr;
      uint32_t idx = 0;
      bool links_ok = true;
      for (const Node* c = n->first_child; c != nullptr;
           c = c->next_sibling, ++idx) {
        const std::string child_path =
            (frame.path.back() == '/' ? frame.path : frame.path + "/") +
            std::to_string(idx);
        if (c->parent != n) {
          report->Add(child_path, "parent-link",
                      "child's parent pointer does not point at the actual "
                      "parent");
          links_ok = false;
          break;
        }
        if (c->prev_sibling != prev) {
          report->Add(child_path, "sibling-link",
                      "prev_sibling does not point at the previous child");
          links_ok = false;
          break;
        }
        prev = c;
        stack.push_back({c, child_path});
      }
      if (links_ok && n->last_child != prev) {
        report->Add(frame.path, "sibling-link",
                    "last_child does not point at the final child");
      }
    }
  }
  if (visited > live_nodes_) {
    report->Add("doc:/", "live-count",
                StrFormat("%llu attached nodes exceed %llu live nodes",
                          static_cast<unsigned long long>(visited),
                          static_cast<unsigned long long>(live_nodes_)));
  }
}

Status Document::CheckInvariants() const {
  audit::Report report;
  Audit(&report);
  return report.ToStatus();
}

}  // namespace xml
}  // namespace ltree
