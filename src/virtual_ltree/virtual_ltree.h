// Virtual L-Tree (Section 4.2 of the paper).
//
// "As an alternative to storing the L-Tree on disk, we can store only the
// leaf labels (with the XML nodes) because all the structural information of
// the L-Tree is implicit in the labels themselves": the base-(f+1) digits of
// a leaf label encode its whole ancestor path. This class runs the exact
// incremental-maintenance algorithm of Section 2.3 with no materialized
// internal nodes, using a counted B+-tree over the labels:
//
//  * l(t) of a virtual node at height h containing label x is the range
//    count of [trunc_h(x), trunc_h(x) + (f+1)^h);
//  * a split recomputes the labels in the violating interval (plus right
//    siblings) and writes them back with a range replacement.
//
// The implementation mirrors LTree decision-for-decision, so an identical
// operation stream yields bit-identical label sequences (this is verified
// by the equivalence test suite). The trade-off, as the paper notes, is
// extra O(log n) computation per access in exchange for not materializing
// the structure.

#ifndef LTREE_VIRTUAL_LTREE_VIRTUAL_LTREE_H_
#define LTREE_VIRTUAL_LTREE_VIRTUAL_LTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/ltree.h"
#include "core/params.h"
#include "core/validate.h"
#include "obtree/counted_btree.h"

namespace ltree {

/// Counters for the virtual variant. The cost unit here is B-tree
/// operations, reflecting the Section 4.2 trade-off discussion.
struct VirtualLTreeStats {
  uint64_t inserts = 0;
  uint64_t batch_inserts = 0;
  uint64_t batch_leaves = 0;
  uint64_t deletes = 0;
  uint64_t splits = 0;       ///< one per coalesced rebuilt region
  uint64_t root_splits = 0;
  uint64_t escalations = 0;  ///< fanout-overflow levels folded by the plan
  uint64_t tombstones_purged = 0;
  /// Mirror of LTreeStats' plan/apply counters (see core/ltree_stats.h):
  /// exactly one label-rewrite pass per operation, and the number of
  /// regions that absorbed at least one escalation level.
  uint64_t relabel_passes = 0;
  uint64_t coalesced_regions = 0;
  /// Range-count probes issued by the maintenance walk (violator walk plus
  /// the planner's escalation probes).
  uint64_t range_counts = 0;
  /// Labels written back by relabeling (excluding fresh leaves).
  uint64_t labels_rewritten = 0;
  /// Allocator traffic of the counted B+-tree's node pool, windowed by
  /// ResetStats() like everything else (the virtual scheme's analogue of
  /// LTreeStats' arena counters).
  uint64_t nodes_allocated = 0;  ///< fresh pool allocations (heap growth)
  uint64_t nodes_reused = 0;     ///< allocations served by recycling
  uint64_t nodes_released = 0;   ///< nodes returned for recycling
  uint64_t arena_chunks = 0;     ///< system allocations (256-node chunks)

  std::string ToString() const;
};

class VirtualLTree {
 public:
  static Result<std::unique_ptr<VirtualLTree>> Create(const Params& params);

  // ---------------------------------------------------------------- loading

  /// Initial build (Section 2.2); assigns exactly the labels the
  /// materialized bulk load would. Returns them in order via `labels`.
  Status BulkLoad(std::span<const LeafCookie> cookies,
                  std::vector<Label>* labels = nullptr);

  // ---------------------------------------------------------------- updates
  //
  // Unlike the materialized tree there are no stable handles: positions are
  // identified by their current label. Relabeled neighbours are reported
  // through the RelabelListener.

  /// Inserts a new leaf right after the leaf labeled `prev`.
  Result<Label> InsertAfter(Label prev, LeafCookie cookie);

  /// Inserts a new leaf right before the leaf labeled `next`.
  Result<Label> InsertBefore(Label next, LeafCookie cookie);

  /// Appends after the largest label (valid on an empty structure).
  Result<Label> PushBack(LeafCookie cookie);

  /// Prepends before the smallest label (valid on an empty structure).
  Result<Label> PushFront(LeafCookie cookie);

  /// Batch insertion (Section 4.1) after the leaf labeled `prev`. New labels
  /// are appended to `labels` if non-null. NOTE: the new labels are the
  /// post-rebalance ones.
  Status InsertBatchAfter(Label prev, std::span<const LeafCookie> cookies,
                          std::vector<Label>* labels = nullptr);

  /// Batch insertion before the leaf labeled `next`.
  Status InsertBatchBefore(Label next, std::span<const LeafCookie> cookies,
                           std::vector<Label>* labels = nullptr);

  /// Appends a batch at the end (valid on an empty structure).
  Status PushBackBatch(std::span<const LeafCookie> cookies,
                       std::vector<Label>* labels = nullptr);

  /// Tombstones the leaf labeled `label` (Section 2.3).
  Status MarkDeleted(Label label);

  // ---------------------------------------------------------------- queries

  /// Cookie of the leaf labeled `label`; NotFound if absent.
  Result<LeafCookie> GetCookie(Label label) const;

  /// Whether the slot exists and is tombstoned.
  Result<bool> IsDeleted(Label label) const;

  /// Label of the rank-th slot (0-based, document order).
  Result<Label> SelectSlot(uint64_t rank) const;

  uint64_t num_slots() const;
  uint64_t num_live_leaves() const { return live_leaves_; }
  uint32_t height() const { return height_; }
  uint64_t label_space() const;
  uint32_t label_bits() const;

  std::vector<Label> AllLabels() const;
  std::vector<Label> LiveLabels() const;

  const Params& params() const { return params_; }

  /// Operation counters since the last ResetStats(). The allocator-traffic
  /// fields (nodes_allocated/reused/released/arena_chunks) are refreshed
  /// from the B+-tree's node pool on every call, windowed the same way as
  /// the B-tree-operation counters.
  const VirtualLTreeStats& stats() const;

  /// Restarts the stats window (B-tree operations and allocator traffic).
  void ResetStats();

  /// Lifetime pool counters of the underlying counted B+-tree (monotonic;
  /// never reset). arena_stats().live() equals the B+-tree's reachable
  /// node count — the conservation property the obtree tests assert.
  const PoolArenaStats& arena_stats() const { return btree_.arena_stats(); }

  void set_listener(RelabelListener* listener) { listener_ = listener; }

  /// Attaches an epoch manager to the backing counted B+-tree: nodes freed
  /// by relabel rebuilds are retired instead of recycled immediately, so
  /// concurrent readers of the owning store never observe a reused node.
  /// See CountedBTree::set_epoch for lifetime obligations.
  void set_epoch(epoch::EpochManager* epoch) { btree_.set_epoch(epoch); }
  epoch::EpochManager* epoch() const { return btree_.epoch(); }

  /// Bytes of heap the label store roughly occupies (for the Section 4.2
  /// space-trade-off bench).
  uint64_t ApproxMemoryBytes() const;

  /// Deep validator: audits the backing counted B+-tree, then the virtual
  /// structure — label-space bounds, consecutive child digits within every
  /// occupied interval, leaf budgets, and tombstone accounting against
  /// num_live_leaves(). Appends every violation to `report`.
  void Audit(audit::Report* report) const;

  /// Validates the virtual structure: digit bounds, consecutive child
  /// indices within every occupied interval, and leaf budgets; the first
  /// Audit() violation as a Status.
  Status CheckInvariants() const;

 private:
  VirtualLTree(const Params& params, PowerTable powers);

  /// Truncates label x to the base of its height-h virtual ancestor.
  Label TruncTo(Label x, uint32_t h) const;
  /// Base-(f+1) digit of x at height h.
  uint64_t DigitAt(Label x, uint32_t h) const;

  /// Core insertion: k new leaves become children j..j+k-1 of the height-1
  /// virtual node based at P (existing children at >= j shift right).
  Status InsertCore(Label parent_base, uint64_t j,
                    std::span<const LeafCookie> cookies,
                    std::vector<Label>* labels, bool is_batch);

  Status EnsureCapacityFor(uint64_t k) const;

  /// Mirrors LTree::BuildOverLeaves/Relabel: emits labels for `count`
  /// leaves arranged as an even (f/s)-ary tree of `height` based at `base`.
  void AssignOver(uint64_t count, uint32_t height, Label base,
                  std::vector<Label>* out) const;

  /// Rebuild of the violating interval at height `vh` (split of Section
  /// 2.3), with escalation and root growth. `pending` are the new entries
  /// to splice at `insert_before_key` (i.e. before any existing entry with
  /// key >= that).
  Status RebuildWithPending(uint32_t vh, Label anchor,
                            Label insert_before_key,
                            std::span<const obtree::Entry> pending,
                            std::vector<Label>* fresh_labels);

  /// Drops tombstoned entries if purging is enabled (keeps >= 1 entry).
  uint64_t MaybePurge(std::vector<obtree::Entry>* entries,
                      std::span<const Label> fresh);

  static uint64_t PackValue(LeafCookie cookie, bool deleted) {
    return (cookie << 1) | (deleted ? 1u : 0u);
  }
  static LeafCookie UnpackCookie(uint64_t value) { return value >> 1; }
  static bool UnpackDeleted(uint64_t value) { return (value & 1u) != 0; }

  Params params_;
  PowerTable powers_;
  obtree::CountedBTree btree_;
  uint32_t height_ = 1;
  uint64_t live_leaves_ = 0;
  mutable VirtualLTreeStats stats_;  ///< alloc fields refreshed by stats()
  PoolArenaStats arena_base_;        ///< pool snapshot at last ResetStats()
  RelabelListener* listener_ = nullptr;
};

}  // namespace ltree

#endif  // LTREE_VIRTUAL_LTREE_VIRTUAL_LTREE_H_
