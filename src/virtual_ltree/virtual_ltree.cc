#include "virtual_ltree/virtual_ltree.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/simd_search.h"

namespace ltree {

std::string VirtualLTreeStats::ToString() const {
  return StrFormat(
      "VirtualLTreeStats{inserts=%llu batch_leaves=%llu deletes=%llu "
      "splits=%llu root_splits=%llu escalations=%llu relabel_passes=%llu "
      "coalesced_regions=%llu range_counts=%llu "
      "labels_rewritten=%llu purged=%llu nodes_allocated=%llu "
      "nodes_reused=%llu nodes_released=%llu arena_chunks=%llu}",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(batch_leaves),
      static_cast<unsigned long long>(deletes),
      static_cast<unsigned long long>(splits),
      static_cast<unsigned long long>(root_splits),
      static_cast<unsigned long long>(escalations),
      static_cast<unsigned long long>(relabel_passes),
      static_cast<unsigned long long>(coalesced_regions),
      static_cast<unsigned long long>(range_counts),
      static_cast<unsigned long long>(labels_rewritten),
      static_cast<unsigned long long>(tombstones_purged),
      static_cast<unsigned long long>(nodes_allocated),
      static_cast<unsigned long long>(nodes_reused),
      static_cast<unsigned long long>(nodes_released),
      static_cast<unsigned long long>(arena_chunks));
}

const VirtualLTreeStats& VirtualLTree::stats() const {
  const PoolArenaStats& a = btree_.arena_stats();
  stats_.nodes_allocated = a.fresh_allocs - arena_base_.fresh_allocs;
  stats_.nodes_reused = a.reused_allocs - arena_base_.reused_allocs;
  stats_.nodes_released = a.releases - arena_base_.releases;
  stats_.arena_chunks = a.chunks - arena_base_.chunks;
  return stats_;
}

void VirtualLTree::ResetStats() {
  stats_ = VirtualLTreeStats();
  arena_base_ = btree_.arena_stats();
}

VirtualLTree::VirtualLTree(const Params& params, PowerTable powers)
    : params_(params), powers_(std::move(powers)) {}

Result<std::unique_ptr<VirtualLTree>> VirtualLTree::Create(
    const Params& params) {
  LTREE_ASSIGN_OR_RETURN(PowerTable powers, PowerTable::Make(params));
  return std::unique_ptr<VirtualLTree>(
      new VirtualLTree(params, std::move(powers)));
}

Label VirtualLTree::TruncTo(Label x, uint32_t h) const {
  return x - x % powers_.PowF1(h);
}

uint64_t VirtualLTree::DigitAt(Label x, uint32_t h) const {
  return (x / powers_.PowF1(h)) % (params_.f + 1);
}

// --------------------------------------------------------------------------
// Label assignment (mirror of LTree::BuildOverLeaves + Relabel)
// --------------------------------------------------------------------------

void VirtualLTree::AssignOver(uint64_t count, uint32_t height, Label base,
                              std::vector<Label>* out) const {
  if (height == 0) {
    LTREE_CHECK(count == 1);
    out->push_back(base);
    return;
  }
  const uint64_t seg_cap = powers_.PowD(height - 1);
  const uint64_t m = CeilDiv(count, seg_cap);
  const uint64_t seg_base = count / m;
  const uint64_t rem = count % m;
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t len = seg_base + (i < rem ? 1 : 0);
    AssignOver(len, height - 1, base + i * powers_.PowF1(height - 1), out);
  }
}

// --------------------------------------------------------------------------
// Loading
// --------------------------------------------------------------------------

Status VirtualLTree::BulkLoad(std::span<const LeafCookie> cookies,
                              std::vector<Label>* labels) {
  if (btree_.size() != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty virtual L-Tree");
  }
  const uint64_t n = cookies.size();
  if (n == 0) return Status::OK();
  const uint32_t h0 = std::max(1u, CeilLog(params_.d(), n));
  if (h0 > powers_.max_height()) {
    return Status::CapacityExceeded("bulk load exceeds 64-bit label space");
  }
  std::vector<Label> assigned;
  assigned.reserve(n);
  AssignOver(n, h0, 0, &assigned);
  std::vector<obtree::Entry> entries;
  entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    entries.push_back({assigned[i], PackValue(cookies[i], false)});
  }
  LTREE_RETURN_IF_ERROR(btree_.BulkBuild(entries));
  height_ = h0;
  live_leaves_ = n;
  if (labels != nullptr) {
    labels->insert(labels->end(), assigned.begin(), assigned.end());
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Maintenance
// --------------------------------------------------------------------------

Status VirtualLTree::EnsureCapacityFor(uint64_t k) const {
  auto l_new_opt = CheckedAdd(btree_.size(), k);
  if (!l_new_opt) {
    return Status::CapacityExceeded("slot count would overflow uint64");
  }
  const uint64_t l_new = *l_new_opt;
  for (uint32_t h = height_; h <= powers_.max_height(); ++h) {
    if (l_new < powers_.LeafBudget(h) &&
        CeilDiv(l_new, powers_.PowD(h - 1)) <= params_.f) {
      return Status::OK();
    }
  }
  return Status::CapacityExceeded("insertion exceeds 64-bit label space");
}

uint64_t VirtualLTree::MaybePurge(std::vector<obtree::Entry>* entries,
                                  std::span<const Label> fresh) {
  (void)fresh;
  if (!params_.purge_tombstones_on_split) return 0;
  uint64_t live = 0;
  for (const auto& e : *entries) {
    if (e.key == kInvalidLabel || !UnpackDeleted(e.value)) ++live;
  }
  if (live == entries->size()) return 0;
  std::vector<obtree::Entry> kept;
  kept.reserve(std::max<uint64_t>(live, 1));
  if (live == 0) {
    kept.push_back(entries->front());
  } else {
    for (const auto& e : *entries) {
      if (e.key == kInvalidLabel || !UnpackDeleted(e.value)) {
        kept.push_back(e);
      }
    }
  }
  const uint64_t purged = entries->size() - kept.size();
  stats_.tombstones_purged += purged;
  *entries = std::move(kept);
  return purged;
}

Status VirtualLTree::RebuildWithPending(uint32_t vh, Label anchor,
                                        Label insert_before_key,
                                        std::span<const obtree::Entry> pending,
                                        std::vector<Label>* fresh_labels) {
  const uint64_t k = pending.size();

  // ---- plan: coalesce the escalation chain without touching the tree ----
  //
  // Mirrors LTree::PlanInsertAt decision-for-decision: walk up from the
  // violator while replacing the interval by m pieces would overflow the
  // parent interval's fanout, projecting the post-insert (and post-purge)
  // occupancy per level with counting-tree probes instead of building the
  // whole candidate region once per level.
  uint32_t h = vh;
  uint32_t levels_coalesced = 0;
  uint64_t region_leaves = 0;
  uint64_t region_pieces = 0;
  bool rebuild_root = false;
  for (;;) {
    if (h >= height_) {
      rebuild_root = true;
      break;
    }
    const Label v_base = TruncTo(anchor, h);
    const uint64_t interval = powers_.PowF1(h);
    uint64_t l = k;
    if (params_.purge_tombstones_on_split) {
      // The purge projection needs the tombstone count, which only a scan
      // of the interval can see (the counting tree counts slots).
      for (const auto& e : btree_.Scan(v_base, v_base + interval)) {
        if (!UnpackDeleted(e.value)) ++l;
      }
    } else {
      l += btree_.RangeCount(v_base, v_base + interval);
      ++stats_.range_counts;
    }
    const uint64_t m = CeilDiv(l, powers_.PowD(h));
    const Label q_base = TruncTo(anchor, h + 1);
    const uint64_t q_interval = powers_.PowF1(h + 1);
    // Children of the parent interval after replacing v by m pieces.
    auto last_in_q = btree_.Predecessor(
        q_base > std::numeric_limits<Label>::max() - q_interval
            ? std::numeric_limits<Label>::max()
            : q_base + q_interval);
    LTREE_CHECK(last_in_q.ok());
    const uint64_t c_before = DigitAt(last_in_q->key, h) + 1;
    if (c_before - 1 + m <= static_cast<uint64_t>(params_.f) + 1) {
      region_leaves = l;
      region_pieces = m;
      break;
    }
    // Fanout overflow: fold this level into the region, exactly like the
    // materialized planner (only reachable through batch insertions).
    ++levels_coalesced;
    h += 1;
  }
  stats_.escalations += levels_coalesced;
  if (levels_coalesced > 0) ++stats_.coalesced_regions;

  // ---- apply: build and write back the coalesced region exactly once ----

  if (rebuild_root) {
    // Root split (Algorithm 1 lines 18-20): collect everything, grow the
    // height, reassign all labels from 0.
    std::vector<obtree::Entry> all = btree_.ScanAll();
    const size_t r = search::LowerBoundBy(
        all.data(), static_cast<uint32_t>(all.size()), insert_before_key,
        [](const obtree::Entry& e) { return e.key; });
    std::vector<obtree::Entry> combined;
    combined.reserve(all.size() + pending.size());
    combined.insert(combined.end(), all.begin(), all.begin() + r);
    for (const auto& p : pending) {
      combined.push_back({kInvalidLabel, p.value});
    }
    combined.insert(combined.end(), all.begin() + r, all.end());
    MaybePurge(&combined, {});

    const uint64_t l = combined.size();
    uint32_t new_height = 0;
    for (uint32_t hh = height_; hh <= powers_.max_height(); ++hh) {
      if (l < powers_.LeafBudget(hh) &&
          CeilDiv(l, powers_.PowD(hh - 1)) <= params_.f) {
        new_height = hh;
        break;
      }
    }
    LTREE_CHECK(new_height >= 1);  // guaranteed by EnsureCapacityFor

    std::vector<Label> assigned;
    assigned.reserve(l);
    AssignOver(l, new_height, 0, &assigned);
    std::vector<obtree::Entry> rebuilt;
    rebuilt.reserve(l);
    for (uint64_t i = 0; i < l; ++i) {
      const obtree::Entry& old = combined[i];
      rebuilt.push_back({assigned[i], old.value});
      if (old.key == kInvalidLabel) {
        if (fresh_labels != nullptr) fresh_labels->push_back(assigned[i]);
      } else if (old.key != assigned[i]) {
        ++stats_.labels_rewritten;
        if (listener_ != nullptr) {
          listener_->OnRelabel(UnpackCookie(old.value), old.key,
                               assigned[i]);
        }
      }
    }
    // The root split is a whole-tree range replacement; ReplaceRange
    // recognizes it and rebuilds through the node pool in one pass.
    LTREE_RETURN_IF_ERROR(btree_.ReplaceRange(
        0, std::numeric_limits<Label>::max(), rebuilt));
    height_ = new_height;
    ++stats_.root_splits;
    ++stats_.relabel_passes;
    return Status::OK();
  }

  const Label v_base = TruncTo(anchor, h);
  const uint64_t interval = powers_.PowF1(h);
  const Label q_base = TruncTo(anchor, h + 1);
  const uint64_t q_interval = powers_.PowF1(h + 1);

  std::vector<obtree::Entry> olds = btree_.Scan(v_base, v_base + interval);
  const size_t r = search::LowerBoundBy(
      olds.data(), static_cast<uint32_t>(olds.size()), insert_before_key,
      [](const obtree::Entry& e) { return e.key; });
  std::vector<obtree::Entry> combined;
  combined.reserve(olds.size() + pending.size());
  combined.insert(combined.end(), olds.begin(), olds.begin() + r);
  for (const auto& p : pending) {
    combined.push_back({kInvalidLabel, p.value});
  }
  combined.insert(combined.end(), olds.begin() + r, olds.end());
  MaybePurge(&combined, {});

  const uint64_t l = combined.size();
  LTREE_CHECK(l == region_leaves);  // the plan's projection was exact
  const uint64_t m = region_pieces;
  const uint64_t jv = DigitAt(v_base, h);

  // New labels: m pieces based at child indices jv .. jv+m-1 of q_base,
  // then v's right siblings shifted up by (m-1) child slots.
  std::vector<Label> assigned;
  assigned.reserve(l);
  {
    const uint64_t seg_base = l / m;
    const uint64_t rem = l % m;
    for (uint64_t i = 0; i < m; ++i) {
      const uint64_t len = seg_base + (i < rem ? 1 : 0);
      AssignOver(len, h, q_base + (jv + i) * interval, &assigned);
    }
  }
  std::vector<obtree::Entry> rebuilt;
  rebuilt.reserve(l);
  for (uint64_t i = 0; i < l; ++i) {
    const obtree::Entry& old = combined[i];
    rebuilt.push_back({assigned[i], old.value});
    if (old.key == kInvalidLabel) {
      if (fresh_labels != nullptr) fresh_labels->push_back(assigned[i]);
    } else if (old.key != assigned[i]) {
      ++stats_.labels_rewritten;
      if (listener_ != nullptr) {
        listener_->OnRelabel(UnpackCookie(old.value), old.key, assigned[i]);
      }
    }
  }
  // Right siblings of v within the parent interval shift wholesale.
  std::vector<obtree::Entry> sibs =
      btree_.Scan(v_base + interval, q_base + q_interval);
  const uint64_t shift = (m - 1) * interval;
  for (const auto& sib : sibs) {
    rebuilt.push_back({sib.key + shift, sib.value});
    if (shift != 0) {
      ++stats_.labels_rewritten;
      if (listener_ != nullptr) {
        listener_->OnRelabel(UnpackCookie(sib.value), sib.key,
                             sib.key + shift);
      }
    }
  }
  LTREE_RETURN_IF_ERROR(
      btree_.ReplaceRange(v_base, q_base + q_interval, rebuilt));
  ++stats_.splits;
  ++stats_.relabel_passes;
  return Status::OK();
}

Status VirtualLTree::InsertCore(Label parent_base, uint64_t j,
                                std::span<const LeafCookie> cookies,
                                std::vector<Label>* labels, bool is_batch) {
  const uint64_t k = cookies.size();
  if (k == 0) return Status::OK();
  LTREE_RETURN_IF_ERROR(EnsureCapacityFor(k));

  // Algorithm 1 walk: find the highest virtual ancestor whose post-insert
  // leaf count reaches its budget.
  uint32_t violator_height = 0;
  bool has_violator = false;
  for (uint32_t h = 1; h <= height_; ++h) {
    const Label base = TruncTo(parent_base, h);
    const uint64_t count =
        btree_.RangeCount(base, base + powers_.PowF1(h)) + k;
    ++stats_.range_counts;
    if (count >= powers_.LeafBudget(h)) {
      violator_height = h;
      has_violator = true;
    }
  }

  std::vector<Label> fresh;
  fresh.reserve(k);
  if (!has_violator) {
    // No split: new leaves take digits j..j+k-1; old children at digits >= j
    // shift right by k (Algorithm 1 lines 12-13).
    const Label slot_end = parent_base + powers_.PowF1(1);
    std::vector<obtree::Entry> olds =
        btree_.Scan(parent_base + j, slot_end);
    std::vector<obtree::Entry> rebuilt;
    rebuilt.reserve(olds.size() + k);
    for (uint64_t i = 0; i < k; ++i) {
      const Label lab = parent_base + j + i;
      rebuilt.push_back({lab, PackValue(cookies[i], false)});
      fresh.push_back(lab);
    }
    for (const auto& old : olds) {
      const Label shifted = old.key + k;
      LTREE_CHECK(shifted < slot_end);
      rebuilt.push_back({shifted, old.value});
      ++stats_.labels_rewritten;
      if (listener_ != nullptr) {
        listener_->OnRelabel(UnpackCookie(old.value), old.key, shifted);
      }
    }
    LTREE_RETURN_IF_ERROR(
        btree_.ReplaceRange(parent_base + j, slot_end, rebuilt));
    ++stats_.relabel_passes;  // the no-split sibling shift is one pass
  } else {
    std::vector<obtree::Entry> pending;
    pending.reserve(k);
    for (uint64_t i = 0; i < k; ++i) {
      pending.push_back({kInvalidLabel, PackValue(cookies[i], false)});
    }
    LTREE_RETURN_IF_ERROR(RebuildWithPending(
        violator_height, parent_base, parent_base + j, pending, &fresh));
  }

  live_leaves_ += k;
  if (is_batch) {
    ++stats_.batch_inserts;
    stats_.batch_leaves += k;
  } else {
    ++stats_.inserts;
  }
  if (labels != nullptr) {
    labels->insert(labels->end(), fresh.begin(), fresh.end());
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Public update entry points
// --------------------------------------------------------------------------

Result<Label> VirtualLTree::InsertAfter(Label prev, LeafCookie cookie) {
  if (!btree_.Contains(prev)) {
    return Status::NotFound("no leaf with the given label");
  }
  std::vector<Label> out;
  const LeafCookie cookies[1] = {cookie};
  LTREE_RETURN_IF_ERROR(InsertCore(TruncTo(prev, 1), DigitAt(prev, 0) + 1,
                                   cookies, &out, /*is_batch=*/false));
  return out[0];
}

Result<Label> VirtualLTree::InsertBefore(Label next, LeafCookie cookie) {
  if (!btree_.Contains(next)) {
    return Status::NotFound("no leaf with the given label");
  }
  std::vector<Label> out;
  const LeafCookie cookies[1] = {cookie};
  LTREE_RETURN_IF_ERROR(InsertCore(TruncTo(next, 1), DigitAt(next, 0),
                                   cookies, &out, /*is_batch=*/false));
  return out[0];
}

Result<Label> VirtualLTree::PushBack(LeafCookie cookie) {
  if (btree_.size() == 0) {
    std::vector<Label> out;
    const LeafCookie cookies[1] = {cookie};
    LTREE_RETURN_IF_ERROR(InsertCore(0, 0, cookies, &out,
                                     /*is_batch=*/false));
    return out[0];
  }
  auto last = btree_.Predecessor(std::numeric_limits<Label>::max());
  LTREE_CHECK(last.ok());
  return InsertAfter(last->key, cookie);
}

Result<Label> VirtualLTree::PushFront(LeafCookie cookie) {
  if (btree_.size() == 0) return PushBack(cookie);
  auto first = btree_.LowerBound(0);
  LTREE_CHECK(first.ok());
  return InsertBefore(first->key, cookie);
}

Status VirtualLTree::InsertBatchAfter(Label prev,
                                      std::span<const LeafCookie> cookies,
                                      std::vector<Label>* labels) {
  if (!btree_.Contains(prev)) {
    return Status::NotFound("no leaf with the given label");
  }
  return InsertCore(TruncTo(prev, 1), DigitAt(prev, 0) + 1, cookies, labels,
                    /*is_batch=*/true);
}

Status VirtualLTree::InsertBatchBefore(Label next,
                                       std::span<const LeafCookie> cookies,
                                       std::vector<Label>* labels) {
  if (!btree_.Contains(next)) {
    return Status::NotFound("no leaf with the given label");
  }
  return InsertCore(TruncTo(next, 1), DigitAt(next, 0), cookies, labels,
                    /*is_batch=*/true);
}

Status VirtualLTree::PushBackBatch(std::span<const LeafCookie> cookies,
                                   std::vector<Label>* labels) {
  if (btree_.size() == 0) {
    return InsertCore(0, 0, cookies, labels, /*is_batch=*/true);
  }
  auto last = btree_.Predecessor(std::numeric_limits<Label>::max());
  LTREE_CHECK(last.ok());
  return InsertBatchAfter(last->key, cookies, labels);
}

Status VirtualLTree::MarkDeleted(Label label) {
  LTREE_ASSIGN_OR_RETURN(uint64_t value, btree_.Lookup(label));
  if (UnpackDeleted(value)) {
    return Status::FailedPrecondition("leaf already deleted");
  }
  LTREE_RETURN_IF_ERROR(
      btree_.Update(label, PackValue(UnpackCookie(value), true)));
  --live_leaves_;
  ++stats_.deletes;
  return Status::OK();
}

// --------------------------------------------------------------------------
// Queries
// --------------------------------------------------------------------------

Result<LeafCookie> VirtualLTree::GetCookie(Label label) const {
  LTREE_ASSIGN_OR_RETURN(uint64_t value, btree_.Lookup(label));
  return UnpackCookie(value);
}

Result<bool> VirtualLTree::IsDeleted(Label label) const {
  LTREE_ASSIGN_OR_RETURN(uint64_t value, btree_.Lookup(label));
  return UnpackDeleted(value);
}

Result<Label> VirtualLTree::SelectSlot(uint64_t rank) const {
  LTREE_ASSIGN_OR_RETURN(obtree::Entry e, btree_.Select(rank));
  return e.key;
}

uint64_t VirtualLTree::num_slots() const { return btree_.size(); }

uint64_t VirtualLTree::label_space() const { return powers_.PowF1(height_); }

uint32_t VirtualLTree::label_bits() const {
  return BitWidth(label_space() - 1);
}

std::vector<Label> VirtualLTree::AllLabels() const {
  std::vector<Label> out;
  out.reserve(btree_.size());
  for (const auto& e : btree_.ScanAll()) out.push_back(e.key);
  return out;
}

std::vector<Label> VirtualLTree::LiveLabels() const {
  std::vector<Label> out;
  for (const auto& e : btree_.ScanAll()) {
    if (!UnpackDeleted(e.value)) out.push_back(e.key);
  }
  return out;
}

uint64_t VirtualLTree::ApproxMemoryBytes() const {
  // Measured, not estimated, now that the B+-tree's nodes live in pool
  // chunks: chunk slots plus every reachable node's buffer capacities.
  return btree_.ApproxHeapBytes();
}

// --------------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------------

namespace {
struct IntervalFrame {
  Label base;
  uint32_t height;
};
}  // namespace

void VirtualLTree::Audit(audit::Report* report) const {
  btree_.Audit(report);
  // Tombstone accounting: live counter vs. the actual non-deleted entries.
  uint64_t live = 0;
  for (const obtree::Entry& e : btree_.ScanAll()) {
    if (!UnpackDeleted(e.value)) ++live;
  }
  if (live != live_leaves_) {
    report->Add("virtual:/", "live-count",
                StrFormat("num_live_leaves() %llu != actual live slots %llu",
                          static_cast<unsigned long long>(live_leaves_),
                          static_cast<unsigned long long>(live)));
  }
  if (btree_.size() == 0) return;
  // Every label fits the current label space.
  auto last = btree_.Predecessor(std::numeric_limits<Label>::max());
  if (last.ok() && last->key >= label_space()) {
    report->Add("virtual:/", "label-space",
                StrFormat("label %llu outside the current label space %llu",
                          static_cast<unsigned long long>(last->key),
                          static_cast<unsigned long long>(label_space())));
  }
  std::vector<IntervalFrame> stack{{0, height_}};
  while (!stack.empty()) {
    const IntervalFrame frame = stack.back();
    stack.pop_back();
    const std::string path =
        StrFormat("virtual:/h%u@%llu", frame.height,
                  static_cast<unsigned long long>(frame.base));
    const uint64_t width = powers_.PowF1(frame.height);
    const uint64_t count = btree_.RangeCount(frame.base, frame.base + width);
    if (count == 0) continue;
    if (frame.height == 0) continue;  // single slot
    if (count >= powers_.LeafBudget(frame.height)) {
      report->Add(path, "leaf-budget",
                  StrFormat("virtual node holds %llu >= budget %llu",
                            static_cast<unsigned long long>(count),
                            static_cast<unsigned long long>(
                                powers_.LeafBudget(frame.height))));
    }
    // Occupied child digits must form a consecutive prefix 0..c-1.
    const uint64_t child_width = powers_.PowF1(frame.height - 1);
    bool gap_seen = false;
    for (uint64_t g = 0; g <= params_.f; ++g) {
      const Label child_base = frame.base + g * child_width;
      const uint64_t child_count =
          btree_.RangeCount(child_base, child_base + child_width);
      if (child_count == 0) {
        gap_seen = true;
        continue;
      }
      if (gap_seen) {
        report->Add(path, "child-gap",
                    StrFormat("occupied child digit %llu follows an empty "
                              "one",
                              static_cast<unsigned long long>(g)));
      }
      stack.push_back({child_base, frame.height - 1});
    }
  }
}

Status VirtualLTree::CheckInvariants() const {
  audit::Report report;
  Audit(&report);
  return report.ToStatus();
}

}  // namespace ltree
