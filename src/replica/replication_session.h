// ReplicationSession: a fault-tolerant subscriber driving a MirrorStore
// over a byte transport.
//
// PR 7 proved mirror convergence over in-process function calls; this
// session proves it across a boundary that drops, duplicates, reorders,
// truncates and bit-flips bytes. One SyncShard attempt is:
//
//   encode CatchUpRequest(shard, position) -> Transport::Call with a
//   per-request timeout -> decode the response -> classify -> apply.
//
// Recovery semantics:
//
//   * RETRYABLE outcomes — timeouts, transport errors, responses that
//     fail frame decode (line noise is Corruption by contract, never
//     applied), server error frames echoing a mangled request, and stale
//     responses (a reordered or duplicated delivery whose echoed nonce
//     does not match the outstanding request's) — consume one attempt and
//     retry after bounded exponential backoff with deterministic seeded
//     jitter, both measured on the injected Clock.
//   * Every retry re-reads the mirror's StateVector, so a session always
//     resumes from exactly what survived, and when the primary trims the
//     feed past the subscriber mid-retry the next attempt degrades to the
//     snapshot path automatically (the primary decides per request).
//   * PROTOCOL VIOLATIONS — well-formed frames the protocol forbids: a
//     delta that misaligns with the mirror position, double-applied
//     cookies, unexpected frame types, or non-retryable server errors —
//     also retry, but N consecutive violations poison the session: a
//     peer that persistently talks wrong protocol is broken, not slow,
//     and every later call fails FailedPrecondition until the operator
//     replaces the session.
//
// Validate() audits the session's own invariants (rules "session-state",
// "session-accounting", "session-progress"); under -DLISTLAB_VALIDATE=ON
// they re-run after every SyncShard and abort on violation, matching the
// store-layer auto-audit discipline.

#ifndef LTREE_REPLICA_REPLICATION_SESSION_H_
#define LTREE_REPLICA_REPLICATION_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/validate.h"
#include "replica/clock.h"
#include "replica/transport.h"
#include "replica/wire_format.h"
#include "store/mirror_store.h"

namespace ltree {
namespace replica {

struct SessionOptions {
  /// Identity used when registering the mirror's position with the
  /// primary (subscriber-aware trimming).
  uint64_t subscriber_id = 1;
  /// Deadline handed to Transport::Call for each exchange.
  uint64_t request_timeout_ms = 50;
  /// Attempts per shard per SyncShard call before giving up with
  /// TimedOut. >= 1.
  uint32_t max_attempts = 16;
  /// Backoff before retry k (k >= 2): min(max_backoff_ms,
  /// base_backoff_ms << (k-2)) plus uniform jitter in [0, jitter * that].
  uint64_t base_backoff_ms = 2;
  uint64_t max_backoff_ms = 1000;
  double jitter = 0.25;
  uint64_t jitter_seed = 0x5e55;
  /// Consecutive protocol violations that poison the session. >= 1.
  uint32_t poison_after = 8;
  /// Report the mirror's position to the primary after each successful
  /// round (best-effort; a lost registration only delays trimming).
  bool register_position = true;
};

/// Every attempt ends in exactly one of these buckets; the
/// "session-accounting" audit rule enforces the partition.
struct SessionStats {
  uint64_t rounds = 0;
  uint64_t attempts = 0;
  uint64_t timeouts = 0;           ///< Transport::Call TimedOut
  uint64_t transport_errors = 0;   ///< other transport-level failures
  uint64_t wire_corruptions = 0;   ///< response failed frame decode
  uint64_t stale_responses = 0;    ///< reordered/duplicated delivery
  uint64_t server_retryable = 0;   ///< error frame echoing a mangled request
  uint64_t protocol_violations = 0;
  uint64_t deltas_applied = 0;
  uint64_t snapshots_applied = 0;
  uint64_t backoffs = 0;
  uint64_t backoff_ms_total = 0;   ///< as measured on the injected clock
  uint64_t registration_attempts = 0;
  uint64_t registrations = 0;      ///< acked by the primary
};

class ReplicationSession {
 public:
  /// All dependencies are borrowed and must outlive the session.
  ReplicationSession(store::MirrorStore* mirror, Transport* transport,
                     Clock* clock, const SessionOptions& options);

  ReplicationSession(const ReplicationSession&) = delete;
  ReplicationSession& operator=(const ReplicationSession&) = delete;

  /// Catches `shard` up to the primary's head through the transport,
  /// retrying per the options. TimedOut when the retry budget runs out,
  /// FailedPrecondition once poisoned.
  Status SyncShard(uint32_t shard);

  /// One full catch-up round: every shard, then (optionally) position
  /// registration. Stops at the first shard that exhausts its budget.
  Status SyncRound();

  bool poisoned() const { return poisoned_; }
  const std::string& poison_reason() const { return poison_reason_; }
  uint32_t consecutive_violations() const { return consecutive_violations_; }
  const SessionStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }

  /// Session-invariant audit:
  ///   * "session-state"      — poisoned iff the violation threshold was
  ///     reached, and the live violation streak never exceeds it;
  ///   * "session-accounting" — the attempt-outcome counters partition
  ///     attempts exactly;
  ///   * "session-progress"   — the mirror's StateVector never regressed
  ///     below any position this session successfully applied.
  audit::Report Validate() const;

  Status CheckInvariants() const { return Validate().ToStatus(); }

 private:
  /// Outcome classification of one attempt (see SessionStats).
  enum class Attempt { kApplied, kRetryable, kViolation };

  Attempt TryOnce(uint32_t shard, Status* error);
  void NoteViolation(const Status& violation);
  uint64_t NextBackoffMs(uint32_t attempt);
  void RegisterPosition();
  void AutoValidate(const char* op) const;

  store::MirrorStore* mirror_;
  Transport* transport_;
  Clock* clock_;
  SessionOptions options_;
  Rng jitter_rng_;
  SessionStats stats_;
  /// Monotonic request-id source; each attempt's nonce must come back in
  /// the response for it to be accepted (exact stale-response screening).
  uint64_t last_nonce_ = 0;
  uint32_t consecutive_violations_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
  /// Per-shard high-water mark of successfully applied to_seq — the
  /// "session-progress" audit baseline.
  std::vector<uint64_t> applied_;
};

}  // namespace replica
}  // namespace ltree

#endif  // LTREE_REPLICA_REPLICATION_SESSION_H_
