// Injected time for the replication layer.
//
// Retry backoff, request timeouts and transport stalls are all expressed
// against this one-method-pair interface so tests (and the chaos suite)
// can run the entire fault/recovery schedule on a deterministic fake
// clock: a simulated 30-second stall costs nanoseconds of wall time and
// the exact backoff sequence can be asserted, not sampled.

#ifndef LTREE_REPLICA_CLOCK_H_
#define LTREE_REPLICA_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace ltree {
namespace replica {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds on a monotonic clock (epoch unspecified).
  virtual uint64_t NowMs() const = 0;

  /// Blocks (or simulates blocking) for `ms` milliseconds.
  virtual void SleepMs(uint64_t ms) = 0;
};

/// Wall time. Only for production wiring; every test uses FakeClock.
class SystemClock : public Clock {
 public:
  uint64_t NowMs() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepMs(uint64_t ms) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

/// Deterministic simulated time: SleepMs advances instantly and every
/// sleep is recorded, so a test can assert the whole backoff schedule.
class FakeClock : public Clock {
 public:
  uint64_t NowMs() const override { return now_ms_; }

  void SleepMs(uint64_t ms) override {
    now_ms_ += ms;
    sleeps_.push_back(ms);
  }

  /// Advances time without recording a sleep (transport stalls use this).
  void AdvanceMs(uint64_t ms) { now_ms_ += ms; }

  const std::vector<uint64_t>& sleeps() const { return sleeps_; }
  uint64_t total_slept_ms() const {
    uint64_t total = 0;
    for (const uint64_t ms : sleeps_) total += ms;
    return total;
  }

 private:
  uint64_t now_ms_ = 0;
  std::vector<uint64_t> sleeps_;
};

}  // namespace replica
}  // namespace ltree

#endif  // LTREE_REPLICA_CLOCK_H_
