#include "replica/transport.h"

#include <utility>

#include "common/macros.h"
#include "core/failpoint.h"
#include "store/state_vector.h"

namespace ltree {
namespace replica {

// ------------------------------------------------------------ endpoint

Result<std::vector<uint8_t>> PrimaryEndpoint::Call(
    const std::vector<uint8_t>& request, uint64_t timeout_ms) {
  (void)timeout_ms;  // in-process serving is instantaneous
  ++requests_served_;
  return Serve(request);
}

std::vector<uint8_t> PrimaryEndpoint::Serve(
    const std::vector<uint8_t>& request) {
  // Server-side fault injection: an armed "replica.serve" failpoint turns
  // into an error frame exactly like a real serving failure would.
  const Status injected = failpoint::Check("replica.serve");
  if (!injected.ok()) return EncodeFrame(MakeErrorFrame(injected));

  const Result<Frame> decoded = DecodeFrame(request);
  if (!decoded.ok()) {
    // The request got mangled in flight; tell the client so it resends.
    ++bad_requests_;
    return EncodeFrame(MakeErrorFrame(decoded.status()));
  }
  const Frame& frame = *decoded;
  switch (frame.type) {
    case FrameType::kCatchUpRequest: {
      const Result<store::CatchUpResult> result =
          primary_->CatchUp(frame.shard, frame.from_seq);
      if (!result.ok()) return EncodeFrame(MakeErrorFrame(result.status()));
      return EncodeFrame(
          MakeCatchUpResponseFrame(frame.shard, *result, frame.nonce));
    }
    case FrameType::kRegister: {
      if (registry_ == nullptr) {
        return EncodeFrame(MakeErrorFrame(
            Status::NotImplemented("endpoint is read-only; no registry")));
      }
      store::StateVector sv(static_cast<uint32_t>(frame.seqs.size()));
      for (uint32_t i = 0; i < sv.num_shards(); ++i) {
        sv.Set(i, frame.seqs[i]);
      }
      const Status registered =
          registry_->RegisterSubscriber(frame.subscriber, sv);
      if (!registered.ok()) return EncodeFrame(MakeErrorFrame(registered));
      return EncodeFrame(MakeAckFrame());
    }
    default:
      ++bad_requests_;
      return EncodeFrame(MakeErrorFrame(Status::InvalidArgument(
          std::string("unexpected request frame type ") +
          FrameTypeName(frame.type))));
  }
}

// ------------------------------------------------------ faulty transport

bool FaultyTransport::MaybeDamage(std::vector<uint8_t>* bytes) {
  bool damaged = false;
  if (!bytes->empty() && rng_.Bernoulli(options_.truncate)) {
    // Keep a strict prefix; cutting to 0..size-1 bytes models a torn read.
    bytes->resize(static_cast<size_t>(rng_.Uniform(bytes->size())));
    ++stats_.truncations;
    damaged = true;
  }
  if (!bytes->empty() && rng_.Bernoulli(options_.bit_flip)) {
    const uint64_t bit = rng_.Uniform(bytes->size() * 8);
    (*bytes)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ++stats_.bit_flips;
    damaged = true;
  }
  return damaged;
}

Result<std::vector<uint8_t>> FaultyTransport::Call(
    const std::vector<uint8_t>& request, uint64_t timeout_ms) {
  ++stats_.calls;

  // Outbound leg: the request can vanish or arrive damaged.
  if (rng_.Bernoulli(options_.drop)) {
    ++stats_.drops;
    clock_->SleepMs(timeout_ms);
    return Status::TimedOut("request lost in transit");
  }
  std::vector<uint8_t> outbound = request;
  bool any_fault = MaybeDamage(&outbound);

  LTREE_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                         inner_->Call(outbound, timeout_ms));

  // Inbound leg.
  if (rng_.Bernoulli(options_.drop)) {
    ++stats_.drops;
    clock_->SleepMs(timeout_ms);
    return Status::TimedOut("response lost in transit");
  }
  if (rng_.Bernoulli(options_.stall)) {
    ++stats_.stalls;
    any_fault = true;
    if (options_.stall_ms >= timeout_ms) {
      clock_->SleepMs(timeout_ms);
      return Status::TimedOut("response stalled past deadline");
    }
    clock_->SleepMs(options_.stall_ms);  // late but within deadline
  }
  if (!delayed_.empty()) {
    // A response held back by an earlier reorder finally arrives — in this
    // exchange's slot, displacing the fresh response (which is lost; its
    // delivery window was consumed by the late packet).
    response = std::move(delayed_.front());
    delayed_.pop_front();
    any_fault = true;
  } else if (rng_.Bernoulli(options_.reorder)) {
    // Hold the response back; it will arrive in a later exchange's slot.
    // This exchange sees nothing and times out.
    ++stats_.reorders;
    delayed_.push_back(std::move(response));
    clock_->SleepMs(timeout_ms);
    return Status::TimedOut("response held back for reordering");
  }
  if (!last_delivered_.empty() && rng_.Bernoulli(options_.duplicate)) {
    // A late duplicate of an earlier response overtakes the fresh one.
    ++stats_.duplicates;
    any_fault = true;
    response = last_delivered_;
  }
  any_fault |= MaybeDamage(&response);

  if (!any_fault) ++stats_.clean;
  last_delivered_ = response;
  return response;
}

}  // namespace replica
}  // namespace ltree
