// Replication wire protocol: length-prefixed, CRC32C-checksummed,
// versioned binary frames.
//
// Everything the change-feed sync protocol exchanges (see
// store/document_store.h) crosses the replication boundary as one frame:
//
//   offset 0  : magic 'L' 'R'            (2 bytes)
//   offset 2  : protocol version         (1 byte, currently 1)
//   offset 3  : frame type               (1 byte, FrameType)
//   offset 4  : payload length           (uint32 LE)
//   offset 8  : payload                  (payload-length bytes)
//   offset 8+n: CRC32C of bytes [0, 8+n) (uint32 LE)
//
// All integers are little-endian and fixed-width; the layout is pinned by
// the golden byte test in tests/replica/wire_format_test.cc — changing it
// requires a version bump, not a silent re-golden.
//
// Decode is TOTAL: DecodeFrame inspects every byte through a
// bounds-checked reader and returns Status::Corruption for anything that
// is not the exact encoding of a valid frame — short buffers, bad magic,
// unknown versions or types, length/CRC mismatches, truncated or trailing
// payload bytes, out-of-range enum values, element counts that could not
// fit in the payload (so a forged count can never drive an allocation
// beyond the received bytes). No input reaches undefined behavior; the
// fuzz_wire_frames harness feeds it arbitrary bytes to keep that promise.

#ifndef LTREE_REPLICA_WIRE_FORMAT_H_
#define LTREE_REPLICA_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/document_store.h"
#include "store/state_vector.h"

namespace ltree {
namespace replica {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78), software
/// slice-by-one table implementation — no hardware dependency.
uint32_t Crc32c(const uint8_t* data, size_t size);

inline constexpr uint8_t kWireMagic0 = 'L';
inline constexpr uint8_t kWireMagic1 = 'R';
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Hard payload bound: a decoded length above this is Corruption before
/// any allocation happens.
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 26;  // 64 MiB

enum class FrameType : uint8_t {
  kCatchUpRequest = 1,  ///< shard, from_seq
  kDelta = 2,           ///< shard, (from_seq, to_seq] event suffix
  kSnapshot = 3,        ///< shard, to_seq, full live (label, cookie) state
  kRegister = 4,        ///< subscriber id + full StateVector
  kError = 5,           ///< Status carried across the boundary
  kAck = 6,             ///< empty success response (to kRegister)
};

const char* FrameTypeName(FrameType type);

/// One decoded frame. `type` selects which fields are meaningful; decoded
/// frames always have every unrelated field empty/zero.
struct Frame {
  FrameType type = FrameType::kAck;

  uint32_t shard = 0;         ///< kCatchUpRequest / kDelta / kSnapshot
  /// Request id chosen by the client and echoed verbatim in the kDelta /
  /// kSnapshot response, so a client can tell THE answer to the request it
  /// just sent from a duplicated or reordered delivery of an older one —
  /// even when both requests were byte-identical (same shard and
  /// position). Error frames carry no nonce: the server may not have been
  /// able to decode the request that provoked them.
  uint64_t nonce = 0;         ///< kCatchUpRequest / kDelta / kSnapshot
  uint64_t from_seq = 0;      ///< kCatchUpRequest / kDelta
  uint64_t to_seq = 0;        ///< kDelta / kSnapshot
  uint64_t subscriber = 0;    ///< kRegister
  std::vector<store::FeedEvent> events;                  ///< kDelta
  std::vector<std::pair<Label, LeafCookie>> state;       ///< kSnapshot
  std::vector<uint64_t> seqs;                            ///< kRegister
  StatusCode error_code = StatusCode::kOk;               ///< kError
  std::string error_message;                             ///< kError
};

// ------------------------------------------------------------- builders

Frame MakeCatchUpRequestFrame(uint32_t shard, uint64_t from_seq,
                              uint64_t nonce = 0);

/// A store::CatchUpResult crosses the wire as either a kDelta or a
/// kSnapshot frame, depending on which path the primary chose. `nonce`
/// echoes the provoking request's nonce.
Frame MakeCatchUpResponseFrame(uint32_t shard,
                               const store::CatchUpResult& result,
                               uint64_t nonce = 0);

Frame MakeRegisterFrame(uint64_t subscriber, const store::StateVector& sv);

/// Requires a non-OK status (an OK "error" has no frame encoding).
Frame MakeErrorFrame(const Status& status);

Frame MakeAckFrame();

// ----------------------------------------------------- frame <-> bytes

std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Decodes exactly one frame occupying the whole buffer. Total: any input
/// that is not a valid encoding yields Status::Corruption, never UB.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size);
Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes);

// ------------------------------------------------------- frame -> model

/// Reassembles the store-level catch-up result from a kDelta or kSnapshot
/// frame (InvalidArgument for other types).
Result<store::CatchUpResult> ToCatchUpResult(const Frame& frame);

/// The Status a kError frame carries (InvalidArgument for other types).
Status ErrorFrameStatus(const Frame& frame);

}  // namespace replica
}  // namespace ltree

#endif  // LTREE_REPLICA_WIRE_FORMAT_H_
