// Byte-boundary transports for the replication protocol.
//
// The replication session never touches a DocumentStore directly: every
// exchange is encoded request bytes in, response bytes out, through the
// Transport interface. Two implementations live here:
//
//   * PrimaryEndpoint — the "server": decodes a request frame, serves it
//     from a DocumentStore (CatchUp / RegisterSubscriber), and encodes
//     the response frame. Malformed requests come back as kError
//     (Corruption) frames; store-level errors cross the boundary as
//     kError frames carrying the original status code. The
//     "replica.serve" failpoint fires before any decoding so server-side
//     outages are injectable.
//
//   * FaultyTransport — the hostile network between session and endpoint:
//     an in-memory decorator with deterministic seeded fault injection.
//     Each fault class models a real failure mode of a byte boundary:
//       - drop:      request or response vanishes; the caller times out;
//       - stall:     delivery is delayed; past the deadline it times out;
//       - truncate:  the response loses its tail (checksum catches it);
//       - bit_flip:  one random bit of the response flips (ditto);
//       - duplicate: a copy of an OLD response is delivered instead of
//                    the fresh one (late duplicate overtakes);
//       - reorder:   the fresh response is held back (this exchange times
//                    out) and delivered during a LATER exchange, in place
//                    of that exchange's fresh response.
//     All randomness flows from one seed, and time from the injected
//     Clock, so every chaos run is reproducible bit-for-bit.

#ifndef LTREE_REPLICA_TRANSPORT_H_
#define LTREE_REPLICA_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "replica/clock.h"
#include "replica/wire_format.h"
#include "store/document_store.h"

namespace ltree {
namespace replica {

class Transport {
 public:
  virtual ~Transport() = default;

  /// One request/response exchange. `timeout_ms` bounds the exchange: an
  /// implementation that cannot deliver a response within it returns
  /// Status::TimedOut. The returned bytes are whatever arrived — possibly
  /// corrupted; the caller must decode defensively.
  virtual Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request, uint64_t timeout_ms) = 0;
};

/// Serves a DocumentStore over the wire protocol (the in-process stand-in
/// for a network server; the protocol layer is what a socket version
/// would reuse unchanged).
class PrimaryEndpoint : public Transport {
 public:
  explicit PrimaryEndpoint(const store::DocumentStore* primary,
                           store::DocumentStore* registry = nullptr)
      : primary_(primary), registry_(registry) {}

  /// Never returns a transport-level error itself: every outcome —
  /// including a request that fails to decode — is a response frame, so
  /// the client side exercises its full decode/violation handling.
  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request,
                                    uint64_t timeout_ms) override;

  uint64_t requests_served() const { return requests_served_; }
  uint64_t bad_requests() const { return bad_requests_; }

 private:
  std::vector<uint8_t> Serve(const std::vector<uint8_t>& request);

  const store::DocumentStore* primary_;
  /// Mutable alias of `primary_` for kRegister requests; nullptr makes
  /// registration NotImplemented (read-only endpoint).
  store::DocumentStore* registry_;
  uint64_t requests_served_ = 0;
  uint64_t bad_requests_ = 0;
};

/// Per-class injection probabilities, each in [0, 1]. A class with
/// probability 0 never fires, so a chaos run can isolate one fault mode.
struct FaultOptions {
  uint64_t seed = 1;
  double drop = 0;
  double stall = 0;
  double truncate = 0;
  double bit_flip = 0;
  double duplicate = 0;
  double reorder = 0;
  /// Simulated network delay for a stalled delivery; at or past the
  /// caller's timeout the response is lost to the deadline.
  uint64_t stall_ms = 100;
};

/// How many times each fault class actually fired — chaos tests assert
/// the run really exercised its class.
struct FaultStats {
  uint64_t calls = 0;
  uint64_t clean = 0;  ///< exchanges delivered unmolested
  uint64_t drops = 0;
  uint64_t stalls = 0;
  uint64_t truncations = 0;
  uint64_t bit_flips = 0;
  uint64_t duplicates = 0;
  uint64_t reorders = 0;
};

class FaultyTransport : public Transport {
 public:
  /// `inner` and `clock` are borrowed and must outlive the transport.
  FaultyTransport(Transport* inner, Clock* clock, const FaultOptions& options)
      : inner_(inner), clock_(clock), options_(options), rng_(options.seed) {}

  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request,
                                    uint64_t timeout_ms) override;

  const FaultStats& stats() const { return stats_; }

 private:
  /// Applies byte-level damage (truncate / bit-flip) in place; returns
  /// true if anything was damaged.
  bool MaybeDamage(std::vector<uint8_t>* bytes);

  Transport* inner_;
  Clock* clock_;
  FaultOptions options_;
  Rng rng_;
  FaultStats stats_;
  /// Response mailbox for reorder faults: a delayed response waits here
  /// and is delivered in place of a later one.
  std::deque<std::vector<uint8_t>> delayed_;
  /// Copy of the last delivered response, replayed by duplicate faults.
  std::vector<uint8_t> last_delivered_;
};

}  // namespace replica
}  // namespace ltree

#endif  // LTREE_REPLICA_TRANSPORT_H_
