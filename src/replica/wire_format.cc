#include "replica/wire_format.h"

#include <array>

#include "common/macros.h"

namespace ltree {
namespace replica {

namespace {

// Generated once at first use from the reflected Castagnoli polynomial.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  const auto& table = Crc32cTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kCatchUpRequest:
      return "catchup-request";
    case FrameType::kDelta:
      return "delta";
    case FrameType::kSnapshot:
      return "snapshot";
    case FrameType::kRegister:
      return "register";
    case FrameType::kError:
      return "error";
    case FrameType::kAck:
      return "ack";
  }
  return "unknown";
}

namespace {

// ----------------------------------------------------------- byte writer

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

// ----------------------------------------------------------- byte reader

/// Bounds-checked cursor over the payload. Every Read* returns false on
/// overrun instead of touching out-of-range bytes — the decoder turns any
/// false into Corruption.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }

  bool ReadBytes(std::string* out, size_t n) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::Corruption("wire frame: " + what);
}

// Per-event wire size for kDelta: seq u64, kind u8, cookie u64, old u64,
// new u64.
constexpr size_t kEventBytes = 8 + 1 + 8 + 8 + 8;
// Per-entry wire size for kSnapshot: label u64, cookie u64.
constexpr size_t kSnapshotEntryBytes = 8 + 8;

void EncodePayload(const Frame& frame, std::vector<uint8_t>* out) {
  switch (frame.type) {
    case FrameType::kCatchUpRequest:
      PutU32(out, frame.shard);
      PutU64(out, frame.nonce);
      PutU64(out, frame.from_seq);
      return;
    case FrameType::kDelta:
      PutU32(out, frame.shard);
      PutU64(out, frame.nonce);
      PutU64(out, frame.from_seq);
      PutU64(out, frame.to_seq);
      PutU32(out, static_cast<uint32_t>(frame.events.size()));
      for (const store::FeedEvent& event : frame.events) {
        PutU64(out, event.seq);
        PutU8(out, static_cast<uint8_t>(event.kind));
        PutU64(out, event.cookie);
        PutU64(out, event.old_label);
        PutU64(out, event.new_label);
      }
      return;
    case FrameType::kSnapshot:
      PutU32(out, frame.shard);
      PutU64(out, frame.nonce);
      PutU64(out, frame.to_seq);
      PutU32(out, static_cast<uint32_t>(frame.state.size()));
      for (const auto& [label, cookie] : frame.state) {
        PutU64(out, label);
        PutU64(out, cookie);
      }
      return;
    case FrameType::kRegister:
      PutU64(out, frame.subscriber);
      PutU32(out, static_cast<uint32_t>(frame.seqs.size()));
      for (const uint64_t seq : frame.seqs) PutU64(out, seq);
      return;
    case FrameType::kError:
      PutU32(out, static_cast<uint32_t>(frame.error_code));
      PutU32(out, static_cast<uint32_t>(frame.error_message.size()));
      for (const char c : frame.error_message) {
        PutU8(out, static_cast<uint8_t>(c));
      }
      return;
    case FrameType::kAck:
      return;
  }
  LTREE_CHECK(false);  // unreachable: builders only produce valid types
}

Status DecodePayload(FrameType type, ByteReader* in, Frame* out) {
  switch (type) {
    case FrameType::kCatchUpRequest: {
      if (!in->ReadU32(&out->shard) || !in->ReadU64(&out->nonce) ||
          !in->ReadU64(&out->from_seq)) {
        return Corrupt("truncated catchup-request payload");
      }
      return Status::OK();
    }
    case FrameType::kDelta: {
      uint32_t count = 0;
      if (!in->ReadU32(&out->shard) || !in->ReadU64(&out->nonce) ||
          !in->ReadU64(&out->from_seq) || !in->ReadU64(&out->to_seq) ||
          !in->ReadU32(&count)) {
        return Corrupt("truncated delta header");
      }
      // A forged count must not drive the reserve past the bytes that
      // actually arrived.
      if (count > in->remaining() / kEventBytes) {
        return Corrupt("delta event count exceeds payload");
      }
      out->events.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        store::FeedEvent event;
        uint8_t kind = 0;
        if (!in->ReadU64(&event.seq) || !in->ReadU8(&kind) ||
            !in->ReadU64(&event.cookie) || !in->ReadU64(&event.old_label) ||
            !in->ReadU64(&event.new_label)) {
          return Corrupt("truncated delta event");
        }
        if (kind > static_cast<uint8_t>(store::FeedEvent::Kind::kErase)) {
          return Corrupt("unknown feed event kind " + std::to_string(kind));
        }
        event.kind = static_cast<store::FeedEvent::Kind>(kind);
        out->events.push_back(event);
      }
      return Status::OK();
    }
    case FrameType::kSnapshot: {
      uint32_t count = 0;
      if (!in->ReadU32(&out->shard) || !in->ReadU64(&out->nonce) ||
          !in->ReadU64(&out->to_seq) || !in->ReadU32(&count)) {
        return Corrupt("truncated snapshot header");
      }
      if (count > in->remaining() / kSnapshotEntryBytes) {
        return Corrupt("snapshot entry count exceeds payload");
      }
      out->state.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t label = 0;
        uint64_t cookie = 0;
        if (!in->ReadU64(&label) || !in->ReadU64(&cookie)) {
          return Corrupt("truncated snapshot entry");
        }
        out->state.emplace_back(label, cookie);
      }
      return Status::OK();
    }
    case FrameType::kRegister: {
      uint32_t count = 0;
      if (!in->ReadU64(&out->subscriber) || !in->ReadU32(&count)) {
        return Corrupt("truncated register header");
      }
      if (count > in->remaining() / 8) {
        return Corrupt("register shard count exceeds payload");
      }
      out->seqs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t seq = 0;
        if (!in->ReadU64(&seq)) return Corrupt("truncated register seq");
        out->seqs.push_back(seq);
      }
      return Status::OK();
    }
    case FrameType::kError: {
      uint32_t code = 0;
      uint32_t msg_len = 0;
      if (!in->ReadU32(&code) || !in->ReadU32(&msg_len)) {
        return Corrupt("truncated error header");
      }
      if (code == static_cast<uint32_t>(StatusCode::kOk) ||
          code > static_cast<uint32_t>(StatusCode::kTimedOut)) {
        return Corrupt("invalid error status code " + std::to_string(code));
      }
      if (!in->ReadBytes(&out->error_message, msg_len)) {
        return Corrupt("truncated error message");
      }
      out->error_code = static_cast<StatusCode>(code);
      return Status::OK();
    }
    case FrameType::kAck:
      return Status::OK();
  }
  return Corrupt("unknown frame type");
}

}  // namespace

// --------------------------------------------------------------- builders

Frame MakeCatchUpRequestFrame(uint32_t shard, uint64_t from_seq,
                              uint64_t nonce) {
  Frame frame;
  frame.type = FrameType::kCatchUpRequest;
  frame.shard = shard;
  frame.nonce = nonce;
  frame.from_seq = from_seq;
  return frame;
}

Frame MakeCatchUpResponseFrame(uint32_t shard,
                               const store::CatchUpResult& result,
                               uint64_t nonce) {
  Frame frame;
  frame.shard = shard;
  frame.nonce = nonce;
  frame.to_seq = result.to_seq;
  if (result.snapshot) {
    frame.type = FrameType::kSnapshot;
    frame.state = result.state;
  } else {
    frame.type = FrameType::kDelta;
    frame.from_seq = result.from_seq;
    frame.events = result.events;
  }
  return frame;
}

Frame MakeRegisterFrame(uint64_t subscriber, const store::StateVector& sv) {
  Frame frame;
  frame.type = FrameType::kRegister;
  frame.subscriber = subscriber;
  frame.seqs.reserve(sv.num_shards());
  for (uint32_t i = 0; i < sv.num_shards(); ++i) {
    frame.seqs.push_back(sv.seq(i));
  }
  return frame;
}

Frame MakeErrorFrame(const Status& status) {
  LTREE_CHECK(!status.ok());
  Frame frame;
  frame.type = FrameType::kError;
  frame.error_code = status.code();
  frame.error_message = status.message();
  return frame;
}

Frame MakeAckFrame() { return Frame{}; }

// --------------------------------------------------------- frame <-> bytes

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.push_back(kWireMagic0);
  out.push_back(kWireMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<uint8_t>(frame.type));
  PutU32(&out, 0);  // payload length backpatched below
  EncodePayload(frame, &out);
  const uint32_t payload_len =
      static_cast<uint32_t>(out.size() - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<uint8_t>(payload_len >> (8 * i));
  }
  PutU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes + kFrameTrailerBytes) {
    return Corrupt("buffer shorter than minimal frame");
  }
  if (data[0] != kWireMagic0 || data[1] != kWireMagic1) {
    return Corrupt("bad magic");
  }
  if (data[2] != kWireVersion) {
    return Corrupt("unsupported protocol version " + std::to_string(data[2]));
  }
  const uint8_t raw_type = data[3];
  if (raw_type < static_cast<uint8_t>(FrameType::kCatchUpRequest) ||
      raw_type > static_cast<uint8_t>(FrameType::kAck)) {
    return Corrupt("unknown frame type " + std::to_string(raw_type));
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(data[4 + i]) << (8 * i);
  }
  if (payload_len > kMaxPayloadBytes) {
    return Corrupt("payload length " + std::to_string(payload_len) +
                   " exceeds limit");
  }
  if (size != kFrameHeaderBytes + payload_len + kFrameTrailerBytes) {
    return Corrupt("length prefix disagrees with buffer size");
  }
  const size_t checked = kFrameHeaderBytes + payload_len;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(data[checked + i]) << (8 * i);
  }
  if (Crc32c(data, checked) != stored_crc) {
    return Corrupt("CRC32C mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  ByteReader reader(data + kFrameHeaderBytes, payload_len);
  LTREE_RETURN_IF_ERROR(DecodePayload(frame.type, &reader, &frame));
  if (!reader.exhausted()) {
    return Corrupt("trailing bytes after payload");
  }
  return frame;
}

Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes) {
  return DecodeFrame(bytes.data(), bytes.size());
}

// --------------------------------------------------------- frame -> model

Result<store::CatchUpResult> ToCatchUpResult(const Frame& frame) {
  store::CatchUpResult out;
  switch (frame.type) {
    case FrameType::kDelta:
      out.snapshot = false;
      out.from_seq = frame.from_seq;
      out.to_seq = frame.to_seq;
      out.events = frame.events;
      return out;
    case FrameType::kSnapshot:
      out.snapshot = true;
      out.from_seq = 0;
      out.to_seq = frame.to_seq;
      out.state = frame.state;
      return out;
    default:
      return Status::InvalidArgument(
          std::string("frame type ") + FrameTypeName(frame.type) +
          " carries no catch-up result");
  }
}

Status ErrorFrameStatus(const Frame& frame) {
  if (frame.type != FrameType::kError) {
    return Status::InvalidArgument(std::string("frame type ") +
                                   FrameTypeName(frame.type) +
                                   " carries no error status");
  }
  return Status(frame.error_code, frame.error_message);
}

}  // namespace replica
}  // namespace ltree
