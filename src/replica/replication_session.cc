#include "replica/replication_session.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "common/macros.h"

namespace ltree {
namespace replica {

ReplicationSession::ReplicationSession(store::MirrorStore* mirror,
                                       Transport* transport, Clock* clock,
                                       const SessionOptions& options)
    : mirror_(mirror),
      transport_(transport),
      clock_(clock),
      options_(options),
      jitter_rng_(options.jitter_seed),
      applied_(mirror->num_shards(), 0) {
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.poison_after == 0) options_.poison_after = 1;
}

uint64_t ReplicationSession::NextBackoffMs(uint32_t attempt) {
  // attempt is the 1-based index of the attempt that just failed; cap the
  // shift so the doubling can't overflow before the clamp.
  const uint32_t exponent = std::min<uint32_t>(attempt - 1, 32);
  uint64_t backoff = std::min(options_.max_backoff_ms,
                              options_.base_backoff_ms << exponent);
  if (options_.jitter > 0 && backoff > 0) {
    const uint64_t spread =
        static_cast<uint64_t>(options_.jitter * static_cast<double>(backoff));
    if (spread > 0) backoff += jitter_rng_.Uniform(spread + 1);
  }
  return backoff;
}

void ReplicationSession::NoteViolation(const Status& violation) {
  ++stats_.protocol_violations;
  ++consecutive_violations_;
  if (consecutive_violations_ >= options_.poison_after && !poisoned_) {
    poisoned_ = true;
    poison_reason_ = violation.ToString();
  }
}

ReplicationSession::Attempt ReplicationSession::TryOnce(uint32_t shard,
                                                        Status* error) {
  ++stats_.attempts;

  // Resume point: re-read the mirror's position on EVERY attempt, so a
  // partially applied history (or a snapshot that jumped us forward) is
  // never replayed and a trim-during-retry degrades to the snapshot path.
  const uint64_t from_seq = mirror_->state_vector().seq(shard);
  // Fresh nonce per attempt: two byte-identical requests (same shard and
  // position, e.g. across rounds) still get distinguishable responses.
  const uint64_t nonce = ++last_nonce_;

  const std::vector<uint8_t> request =
      EncodeFrame(MakeCatchUpRequestFrame(shard, from_seq, nonce));
  Result<std::vector<uint8_t>> raw =
      transport_->Call(request, options_.request_timeout_ms);
  if (!raw.ok()) {
    if (raw.status().IsTimedOut()) {
      ++stats_.timeouts;
    } else {
      ++stats_.transport_errors;
    }
    *error = raw.status();
    return Attempt::kRetryable;
  }

  Result<Frame> decoded = DecodeFrame(*raw);
  if (!decoded.ok()) {
    // Line noise: the checksum (or structure check) caught damaged bytes.
    // Nothing was applied, so simply ask again.
    ++stats_.wire_corruptions;
    *error = decoded.status();
    return Attempt::kRetryable;
  }
  const Frame& frame = *decoded;

  if (frame.type == FrameType::kError) {
    const Status server = ErrorFrameStatus(frame);
    *error = server;
    // Corruption here means the SERVER could not decode what it received —
    // our request was mangled in flight; TimedOut/IoError are transient
    // server-side failures (failpoints model these). All retryable.
    if (server.IsCorruption() || server.IsTimedOut() || server.IsIoError()) {
      ++stats_.server_retryable;
      return Attempt::kRetryable;
    }
    // The server understood a well-formed request and refused it: that is
    // a protocol-level disagreement, not weather.
    NoteViolation(server);
    return Attempt::kViolation;
  }

  // Stale-delivery screen: under reordering/duplication the transport may
  // hand us a perfectly valid response to an EARLIER request — possibly
  // one that was byte-identical except for its nonce (an old empty delta
  // would otherwise be accepted as "caught up" while the head has moved
  // on), or a straggling registration Ack. The echoed nonce makes the
  // screen exact — and it runs BEFORE the type check, so any frame that
  // does not answer the request just sent (Acks and other nonce-less
  // types can never match) is network weather, retried without ever
  // counting against the peer.
  if (frame.nonce != nonce) {
    ++stats_.stale_responses;
    *error = Status::IoError("stale response (reordered or duplicated)");
    return Attempt::kRetryable;
  }
  // Our nonce with someone else's content: the server echoed the request
  // id but answered a different question — a protocol violation.
  if ((frame.type != FrameType::kDelta &&
       frame.type != FrameType::kSnapshot) ||
      frame.shard != shard ||
      (frame.type == FrameType::kDelta && frame.from_seq != from_seq) ||
      (frame.type == FrameType::kSnapshot && frame.to_seq < from_seq)) {
    *error = Status::Corruption(
        std::string("response nonce matches but content does not (type ") +
        FrameTypeName(frame.type) + ")");
    NoteViolation(*error);
    return Attempt::kViolation;
  }

  Result<store::CatchUpResult> result = ToCatchUpResult(frame);
  if (!result.ok()) {
    *error = result.status();
    NoteViolation(*error);
    return Attempt::kViolation;
  }
  const Status applied = mirror_->ApplyCatchUp(shard, *result);
  if (!applied.ok()) {
    // Checksummed, well-formed, addressed to us — and still semantically
    // wrong (sequence gap, unknown cookie, double apply). The mirror's
    // strict apply protocol is the last line of defense; repeated hits
    // poison the session.
    *error = applied;
    NoteViolation(applied);
    return Attempt::kViolation;
  }

  consecutive_violations_ = 0;
  if (result->snapshot) {
    ++stats_.snapshots_applied;
  } else {
    ++stats_.deltas_applied;
  }
  applied_[shard] = std::max(applied_[shard], result->to_seq);
  *error = Status::OK();
  return Attempt::kApplied;
}

Status ReplicationSession::SyncShard(uint32_t shard) {
  if (poisoned_) {
    return Status::FailedPrecondition("session poisoned: " + poison_reason_);
  }
  if (shard >= mirror_->num_shards()) {
    return Status::InvalidArgument("shard out of range");
  }

  Status last = Status::OK();
  for (uint32_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      const uint64_t backoff = NextBackoffMs(attempt - 1);
      ++stats_.backoffs;
      stats_.backoff_ms_total += backoff;
      clock_->SleepMs(backoff);
    }
    const Attempt outcome = TryOnce(shard, &last);
    if (outcome == Attempt::kApplied) {
      AutoValidate("SyncShard");
      return Status::OK();
    }
    if (poisoned_) {
      AutoValidate("SyncShard");
      return Status::FailedPrecondition("session poisoned: " + poison_reason_);
    }
  }
  AutoValidate("SyncShard");
  return Status::TimedOut("retry budget exhausted after " +
                          std::to_string(options_.max_attempts) +
                          " attempts; last error: " + last.ToString());
}

void ReplicationSession::RegisterPosition() {
  ++stats_.registration_attempts;
  const std::vector<uint8_t> request = EncodeFrame(
      MakeRegisterFrame(options_.subscriber_id, mirror_->state_vector()));
  Result<std::vector<uint8_t>> raw =
      transport_->Call(request, options_.request_timeout_ms);
  if (!raw.ok()) return;  // best-effort: trimming just stays conservative
  Result<Frame> decoded = DecodeFrame(*raw);
  if (decoded.ok() && decoded->type == FrameType::kAck) {
    ++stats_.registrations;
  }
}

Status ReplicationSession::SyncRound() {
  if (poisoned_) {
    return Status::FailedPrecondition("session poisoned: " + poison_reason_);
  }
  ++stats_.rounds;
  for (uint32_t shard = 0; shard < mirror_->num_shards(); ++shard) {
    LTREE_RETURN_IF_ERROR(SyncShard(shard));
  }
  if (options_.register_position) RegisterPosition();
  return Status::OK();
}

audit::Report ReplicationSession::Validate() const {
  audit::Report report;

  // Rule "session-state": poisoning and the violation streak agree.
  if (poisoned_ && consecutive_violations_ < options_.poison_after) {
    report.Add("session:/", "session-state",
               "poisoned with only " +
                   std::to_string(consecutive_violations_) +
                   " consecutive violations (threshold " +
                   std::to_string(options_.poison_after) + ")");
  }
  if (!poisoned_ && consecutive_violations_ >= options_.poison_after) {
    report.Add("session:/", "session-state",
               "violation streak " + std::to_string(consecutive_violations_) +
                   " reached threshold " +
                   std::to_string(options_.poison_after) +
                   " without poisoning");
  }
  if (consecutive_violations_ > stats_.protocol_violations) {
    report.Add("session:/", "session-state",
               "violation streak exceeds total protocol violations");
  }

  // Rule "session-accounting": every attempt landed in exactly one
  // outcome bucket.
  const uint64_t outcomes = stats_.timeouts + stats_.transport_errors +
                            stats_.wire_corruptions + stats_.stale_responses +
                            stats_.server_retryable +
                            stats_.protocol_violations +
                            stats_.deltas_applied + stats_.snapshots_applied;
  if (outcomes != stats_.attempts) {
    report.Add("session:/", "session-accounting",
               "attempt outcomes sum to " + std::to_string(outcomes) +
                   ", expected attempts = " + std::to_string(stats_.attempts));
  }
  if (stats_.registrations > stats_.registration_attempts) {
    report.Add("session:/", "session-accounting",
               "more registrations acked than attempted");
  }

  // Rule "session-progress": the mirror never slid back below a position
  // this session successfully applied.
  const store::StateVector& sv = mirror_->state_vector();
  for (uint32_t shard = 0; shard < mirror_->num_shards(); ++shard) {
    if (sv.seq(shard) < applied_[shard]) {
      report.Add("session:/shard" + std::to_string(shard), "session-progress",
                 "mirror position " + std::to_string(sv.seq(shard)) +
                     " regressed below applied high-water " +
                     std::to_string(applied_[shard]));
    }
  }
  return report;
}

void ReplicationSession::AutoValidate(const char* op) const {
#ifdef LISTLAB_VALIDATE
  audit::Report report = Validate();
  if (report.ok()) return;
  std::cerr << "LISTLAB_VALIDATE: ReplicationSession corrupted after " << op
            << ":\n"
            << report.ToString() << "\n";
  std::abort();
#else
  (void)op;
#endif
}

}  // namespace replica
}  // namespace ltree
